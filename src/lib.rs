//! # kset — k-set consensus in asynchronous systems
//!
//! Facade crate for the `kset` workspace: a complete executable
//! reproduction of *"On k-Set Consensus Problems in Asynchronous Systems"*
//! (De Prisco, Malkhi, Reiter; PODC 1999 / IEEE TPDS 12(1), 2001).
//!
//! Each module re-exports one workspace crate:
//!
//! * [`sim`] — the deterministic discrete-event kernel (schedulers, delay
//!   rules, fault plans, traces, replay);
//! * [`net`] — the asynchronous reliable message-passing model;
//! * [`shmem`] — single-writer multi-reader atomic registers;
//! * [`core`] — the `SC(k, t, C)` problem, the six validity conditions,
//!   the run checker, and the machine-derived Figure-1 lattice;
//! * [`protocols`] — every protocol of the paper plus the MP→SM SIMULATION
//!   and the SM→MP register emulations;
//! * [`adversary`] — Byzantine strategies and crash placements;
//! * [`regions`] — the solvability atlases of Figures 2/4/5/6;
//! * [`serve`] — consensus as a service: millions of short-lived
//!   instances multiplexed over steppable [`sim::Session`]s.
//!
//! ## Example
//!
//! ```
//! use kset::{net::MpSystem, protocols::FloodMin, sim::FaultPlan};
//!
//! // SC(3, 2, RV1): 6 processes, 2 of them crashed from the start.
//! let outcome = MpSystem::new(6)
//!     .seed(2024)
//!     .fault_plan(FaultPlan::silent_crashes(6, &[1, 4]))
//!     .run_with(|p| FloodMin::boxed(6, 2, 100 + p as u64))?;
//! assert!(outcome.terminated);
//! assert!(outcome.correct_decision_set().len() <= 3); // k = t + 1
//! # Ok::<(), kset::sim::SimError>(())
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the lemma-to-module map,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

pub use kset_adversary as adversary;
pub use kset_core as core;
pub use kset_net as net;
pub use kset_protocols as protocols;
pub use kset_regions as regions;
pub use kset_serve as serve;
pub use kset_shmem as shmem;
pub use kset_sim as sim;
