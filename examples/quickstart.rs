//! Quickstart: solve 3-set consensus among 6 processes with 2 crash
//! failures, using Chaudhuri's FloodMin protocol (Lemma 3.1: `t < k`).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kset::core::{ProblemSpec, RunRecord, ValidityCondition};
use kset::net::MpSystem;
use kset::protocols::FloodMin;
use kset::sim::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k, t) = (6, 3, 2);
    let inputs: Vec<u64> = vec![42, 17, 99, 8, 63, 25];

    println!("SC(k={k}, t={t}, RV1) over n={n} processes");
    println!("inputs: {inputs:?}");
    println!("processes 1 and 4 crash before taking a single step\n");

    // Build the system: seeded random schedule, two silent crashes.
    let outcome = MpSystem::new(n)
        .seed(2024)
        .fault_plan(FaultPlan::silent_crashes(n, &[1, 4]))
        .trace_capacity(256)
        .run_with(|p| FloodMin::boxed(n, t, inputs[p]))?;

    println!("terminated: {}", outcome.terminated);
    for (p, v) in &outcome.decisions {
        println!("  p{p} decided {v}");
    }
    let set = outcome.correct_decision_set();
    println!("distinct decisions by correct processes: {set:?} (k = {k})");

    // Check the run against the formal specification.
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV1)?;
    let record = RunRecord::new(inputs)
        .with_faulty(outcome.faulty.iter().copied())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    println!("checker verdict for {spec}: {report}");
    assert!(report.is_ok());

    println!(
        "\n({} messages delivered in {} events)",
        outcome.stats.messages_delivered, outcome.stats.events_fired
    );
    Ok(())
}
