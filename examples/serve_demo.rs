//! Consensus as a service, in fifty lines.
//!
//! Starts a [`kset::serve::Server`] multiplexing FloodMin instances over
//! two worker threads, submits a thousand proposals, verifies every
//! decision against the `SC(2, 1, RV1)` specification, and prints the
//! observed throughput. Run with:
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::time::Instant;

use kset::core::{ProblemSpec, ValidityCondition};
use kset::serve::{ServeConfig, Server, Workload};

fn main() {
    let instances: u64 = 1_000;
    let workload = Workload::flood_min(3, 1);
    let server = Server::start(ServeConfig {
        threads: 2,
        ..ServeConfig::new(workload)
    });
    let client = server.client();
    let spec = ProblemSpec::new(3, 2, 1, ValidityCondition::RV1).expect("valid cell");

    let start = Instant::now();
    for i in 0..instances {
        // Three processes, three (varied) initial values per instance.
        client
            .propose(vec![i % 5, (i + 2) % 5, (i + 4) % 5])
            .expect("propose");
    }
    let mut events = 0u64;
    for _ in 0..instances {
        let decision = server.recv_decision().expect("decision");
        events += decision.events;
        let report = spec.check(&decision.record);
        assert!(report.is_ok(), "instance {}: {report}", decision.id);
    }
    let wall = start.elapsed();

    drop(client);
    let stats = server.shutdown();
    println!(
        "{} FloodMin instances decided and checked on {} workers in {:.3} s \
         ({:.0} decisions/s, {:.1} kernel events each)",
        stats.decided,
        stats.threads,
        wall.as_secs_f64(),
        stats.decided as f64 / wall.as_secs_f64(),
        events as f64 / stats.decided as f64,
    );
}
