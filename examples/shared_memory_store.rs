//! The shared-memory side of the paper: coordination through a replicated
//! register service that survives *any* number of client crashes.
//!
//! Scenario: 8 worker processes race to agree which of two snapshot ids to
//! garbage-collect. With message passing this needs a quorum of live
//! workers; with SWMR registers, Protocol E gives `SC(2, t, RV2)` for
//! **every** `t` — here all but one worker may crash (`t = 7`), far past
//! the `t < k` wall of the message-passing world (Lemma 4.5 vs Lemma 3.2).
//!
//! Protocol F is then shown on the same memory for the stronger SV2
//! condition with `k > t + 1` (Lemma 4.7).
//!
//! ```sh
//! cargo run --example shared_memory_store
//! ```

use kset::core::{ProblemSpec, RunRecord, ValidityCondition};
use kset::protocols::{ProtocolE, ProtocolF};
use kset::shmem::SmSystem;
use kset::sim::FaultPlan;

const NO_GC: u64 = u64::MAX; // default decision: collect nothing this round

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;

    // --- Protocol E: k = 2, t = 7 (all but one may crash) ---------------
    let t = n - 1;
    let inputs: Vec<u64> = (0..n).map(|p| if p < 5 { 101 } else { 202 }).collect();
    println!("Protocol E, SC(2, {t}, RV2): inputs {inputs:?}");
    let outcome = SmSystem::new(n)
        .seed(99)
        .fault_plan(FaultPlan::silent_crashes(n, &[0, 2, 3, 5, 6, 7]))
        .run_with(|p| ProtocolE::boxed(n, t, inputs[p], NO_GC))?;
    println!(
        "  six of eight workers crashed; survivors decided {:?}",
        outcome.correct_decision_set()
    );
    let spec = ProblemSpec::new(n, 2, t, ValidityCondition::RV2)?;
    let record = RunRecord::new(inputs)
        .with_faulty(outcome.faulty.iter().copied())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    assert!(spec.check(&record).is_ok());
    println!("  checker: ok (at most 2 values, registers never fail)\n");

    // --- Protocol F: SV2 with k > t + 1 ---------------------------------
    let t = 2;
    let k = 4;
    let inputs: Vec<u64> = vec![300; n]; // all correct workers agree
    println!("Protocol F, SC({k}, {t}, SV2): unanimous correct inputs {}", 300);
    let outcome = SmSystem::new(n)
        .seed(100)
        .fault_plan(FaultPlan::silent_crashes(n, &[1, 4]))
        .run_with(|p| ProtocolF::boxed(n, t, inputs[p], NO_GC))?;
    println!(
        "  decisions: {:?} — SV2 forces the unanimous value",
        outcome.correct_decision_set()
    );
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2)?;
    let record = RunRecord::new(inputs)
        .with_faulty(outcome.faulty.iter().copied())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    assert!(spec.check(&record).is_ok());
    println!("  checker: ok");

    // Final memory state is inspectable.
    println!("\nfinal register contents:");
    for (reg, val) in &outcome.memory {
        println!("  {reg} = {val}");
    }
    Ok(())
}
