//! Watch an impossibility proof happen: the partition run of Lemma 3.3
//! (the paper's Fig. 3), staged live against Protocol A.
//!
//! Three pairs of processes, each unanimous on a different value, each
//! isolated from the rest until it decides. Every pair reaches its quorum
//! of `n - t = 2` internally, sees a unanimous sample, and decides — three
//! distinct values against `SC(2, 4, WV2)`.
//!
//! ```sh
//! cargo run --example impossibility_demo
//! ```

use kset::core::{ProblemSpec, RunRecord, ValidityCondition};
use kset::net::MpSystem;
use kset::protocols::ProtocolA;
use kset::sim::DelayRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k, t) = (6, 2, 4);
    let inputs = [1u64, 1, 2, 2, 3, 3];
    println!("Protocol A at SC(k={k}, t={t}, WV2), n={n} — past Lemma 3.3's bound");
    println!("(k·t = {} > (k-1)·n = {})", k * t, (k - 1) * n);
    println!("inputs: {inputs:?}");
    println!("schedule: isolate {{0,1}}, {{2,3}}, {{4,5}} until each pair decides\n");

    let outcome = MpSystem::new(n)
        .seed(0)
        .trace_capacity(512)
        .delay_rule(DelayRule::isolate_until_decided(vec![0, 1]))
        .delay_rule(DelayRule::isolate_until_decided(vec![2, 3]))
        .delay_rule(DelayRule::isolate_until_decided(vec![4, 5]))
        .run_with(|p| ProtocolA::boxed(n, t, inputs[p], u64::MAX))?;

    for (p, v) in &outcome.decisions {
        println!("  p{p} decided {v}");
    }
    let set = outcome.correct_decision_set();
    println!("\ndistinct decisions: {set:?} — agreement allows only {k}");

    let spec = ProblemSpec::new(n, k, t, ValidityCondition::WV2)?;
    let record = RunRecord::new(inputs.to_vec())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    println!("checker: {report}");
    assert!(report.has_agreement_violation());

    println!("\nrun timeline (per-process lanes; d<pX = delivery from pX):\n");
    print!("{}", outcome.trace.render_timeline(n));
    println!("\n(the full set of re-enactments: cargo run -p kset-experiments --bin counterexamples)");
    Ok(())
}
