//! The SIMULATION transform (paper §4): take an unmodified message-passing
//! protocol and run it over shared-memory registers.
//!
//! FloodMin is executed twice with the *same* inputs and fault pattern —
//! once natively on the network substrate, once compiled to SWMR registers
//! — and both runs satisfy the same `SC(3, 2, RV1)` specification
//! (Lemma 3.1 natively; Lemma 4.4 via the transform).
//!
//! ```sh
//! cargo run --example simulation_transform
//! ```

use kset::core::{ProblemSpec, RunRecord, ValidityCondition};
use kset::net::MpSystem;
use kset::protocols::{FloodMin, Simulated};
use kset::shmem::SmSystem;
use kset::sim::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k, t) = (5, 3, 2);
    let inputs: Vec<u64> = vec![50, 10, 40, 20, 30];
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV1)?;
    println!("{spec}, inputs {inputs:?}, process 1 crashed\n");

    // Native message passing.
    let mp = MpSystem::new(n)
        .seed(5)
        .fault_plan(FaultPlan::silent_crashes(n, &[1]))
        .run_with(|p| FloodMin::boxed(n, t, inputs[p]))?;
    println!(
        "message passing:   decisions {:?} ({} messages)",
        mp.correct_decision_set(),
        mp.stats.messages_delivered
    );
    let record = RunRecord::new(inputs.clone())
        .with_faulty(mp.faulty.iter().copied())
        .with_decisions(mp.decisions.clone())
        .with_terminated(mp.terminated);
    assert!(spec.check(&record).is_ok());

    // The same protocol, compiled to shared memory: every send becomes a
    // register write, every receive a polling read.
    let sm = SmSystem::new(n)
        .seed(5)
        .event_limit(10_000_000)
        .fault_plan(FaultPlan::silent_crashes(n, &[1]))
        .run_with(|p| Simulated::boxed(n, FloodMin::new(n, t, inputs[p])))?;
    println!(
        "shared memory:     decisions {:?} ({} register ops)",
        sm.correct_decision_set(),
        sm.stats.ops_completed
    );
    let record = RunRecord::new(inputs)
        .with_faulty(sm.faulty.iter().copied())
        .with_decisions(sm.decisions.clone())
        .with_terminated(sm.terminated);
    assert!(spec.check(&record).is_ok());

    println!("\nboth substrates satisfy {spec}");
    println!("(the transform is what carries Lemmas 3.1/3.8/3.15/3.16 into Figures 5 and 6)");
    Ok(())
}
