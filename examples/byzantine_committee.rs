//! A motivating scenario from the paper's introduction: coordination under
//! the most severe failures. A committee of 10 replicas must narrow a set
//! of candidate configuration versions down to at most 2, while up to 2 of
//! them are Byzantine — `SC(2, 2, SV2)` in MP/Byz, solved by Protocol C(1)
//! (the Bracha–Toueg echo broadcast; Lemma 3.15 with `l = 1`:
//! `t < n/4` and `t < n/3` both hold for `t = 2, n = 10`).
//!
//! Three adversaries are thrown at the same configuration:
//! silence, echo-splitting, and a partition schedule.
//!
//! ```sh
//! cargo run --example byzantine_committee
//! ```

use kset::adversary::{EchoSplitter, Silent};
use kset::net::{DynMpProcess, MpSystem};
use kset::protocols::{CMsg, ProtocolC};
use kset::sim::{DelayRule, FaultPlan};

const N: usize = 10;
const T: usize = 2;
const L: usize = 1;
const DEFAULT: u64 = 0; // "no upgrade" fallback version

fn committee(
    byz: &'static [usize],
    strategy: impl Fn(usize) -> DynMpProcess<CMsg<u64>, u64> + Copy,
    rules: Vec<DelayRule>,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    // All correct replicas agree the next config version is 7.
    let outcome = MpSystem::new(N)
        .seed(7)
        .fault_plan(FaultPlan::byzantine(N, byz))
        .delay_rules(rules)
        .run_with(|p| {
            if byz.contains(&p) {
                strategy(p)
            } else {
                ProtocolC::boxed(N, T, L, 7u64, DEFAULT)
            }
        })?;
    println!(
        "{label:<28} terminated={} decisions={:?}",
        outcome.terminated,
        outcome.correct_decision_set()
    );
    // SV2: all correct replicas started with 7, so 7 it must be.
    assert_eq!(outcome.correct_decision_set(), vec![7]);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("committee of {N}, up to {T} Byzantine, SC(2, {T}, SV2) via Protocol C({L})\n");

    committee(
        &[0, 9],
        |_| Box::new(Silent::new()),
        vec![],
        "silent byzantines:",
    )?;

    committee(
        &[0, 9],
        |_| Box::new(EchoSplitter::new(vec![666, 777])),
        vec![],
        "echo-splitting byzantines:",
    )?;

    committee(
        &[0, 9],
        |_| Box::new(EchoSplitter::new(vec![666, 777])),
        vec![DelayRule::isolate_until_decided(vec![1, 2, 3, 4])],
        "splitters + partition:",
    )?;

    println!("\nall three adversaries defeated: correct replicas upgraded to version 7");
    Ok(())
}
