//! The middleware direction: run a shared-memory protocol over plain
//! message passing, with every register emulated by ABD majority quorums
//! (the paper's reference [4], and the motivation it gives for the
//! shared-memory Byzantine model).
//!
//! Protocol E runs unchanged — it still sees registers — but each write is
//! now a replicated store and each read a two-phase quorum query. The
//! price of leaving real shared memory: the emulation needs `t < n/2`,
//! whereas native registers served Protocol E at any `t`.
//!
//! ```sh
//! cargo run --example register_emulation
//! ```

use kset::core::{ProblemSpec, RunRecord, ValidityCondition};
use kset::net::MpSystem;
use kset::protocols::{Emulated, ProtocolE};
use kset::sim::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k, t) = (7, 2, 3); // t < n/2: the ABD boundary
    let inputs: Vec<u64> = vec![12; n];
    println!("Protocol E over ABD-emulated registers: SC({k}, {t}, RV2), n = {n}");
    println!("all correct processes propose snapshot id 12; three crash mid-run\n");

    let mut plan = FaultPlan::all_correct(n);
    for (i, victim) in [1usize, 3, 5].into_iter().enumerate() {
        plan.set(
            victim,
            kset::sim::FaultSpec::Crash {
                after_actions: 6 + 4 * i as u64,
            },
        );
    }

    let outcome = MpSystem::new(n)
        .seed(77)
        .fault_plan(plan)
        .run_with(|p| Emulated::boxed(n, t, ProtocolE::new(n, t, inputs[p], u64::MAX)))?;

    println!("terminated: {}", outcome.terminated);
    for (p, v) in &outcome.decisions {
        println!("  p{p} decided {v}");
    }
    println!(
        "\n{} messages carried the quorum traffic (native registers need none)",
        outcome.stats.messages_delivered
    );

    let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV2)?;
    let record = RunRecord::new(inputs)
        .with_faulty(outcome.faulty.iter().copied())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    println!("checker: {report}");
    assert!(report.is_ok());
    Ok(())
}
