//! Query and render the solvability atlases programmatically.
//!
//! Classifies a few interesting `SC(k, t, C)` instances across all four
//! models, then renders one full panel — the API behind the `fig*`
//! binaries.
//!
//! ```sh
//! cargo run --example region_atlas
//! ```

use kset::core::ValidityCondition as VC;
use kset::regions::{classify, render, Atlas, CellClass, Model};

fn describe(model: Model, v: VC, n: usize, k: usize, t: usize) {
    let cell = classify(model, v, n, k, t);
    let verdict = match cell {
        CellClass::Solvable(c) => format!("solvable   — {} ({})", c.lemma, c.means),
        CellClass::Impossible(c) => format!("impossible — {} ({})", c.lemma, c.means),
        CellClass::Open => "open problem".to_string(),
    };
    println!("{:<7} SC(k={k:<2}, t={t:<2}, {v}) n={n}: {verdict}", model.shorthand());
}

fn main() {
    println!("--- the classical split (Chaudhuri's k-set consensus) ---");
    describe(Model::MpCrash, VC::RV1, 64, 5, 4);
    describe(Model::MpCrash, VC::RV1, 64, 5, 5);

    println!("\n--- default decisions change everything ---");
    describe(Model::MpCrash, VC::RV2, 64, 2, 31);
    describe(Model::MpCrash, VC::RV2, 64, 2, 32); // the isolated open point
    describe(Model::MpCrash, VC::RV2, 64, 2, 33);
    describe(Model::SmCrash, VC::RV2, 64, 2, 63); // shared memory: any t

    println!("\n--- Byzantine failures ---");
    describe(Model::MpByzantine, VC::RV1, 64, 63, 1); // hopeless
    describe(Model::MpByzantine, VC::SV2, 64, 32, 21); // Protocol C(1)
    describe(Model::MpByzantine, VC::WV1, 64, 11, 10); // Protocol D
    describe(Model::SmByzantine, VC::WV2, 64, 2, 64); // Protocol E again

    println!("\n--- one full panel, as in the paper's figures ---\n");
    let atlas = Atlas::compute(Model::SmCrash, 16);
    print!("{}", render::panel_ascii(atlas.panel(VC::SV2)));
}
