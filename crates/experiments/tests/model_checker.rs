//! End-to-end certification of the schedule-space model checker against
//! the repo's other two verification routes.
//!
//! Three independent methods look at the same cells of the solvability
//! atlas:
//!
//! * `exhaustive` — analytic enumeration of reachable outcome vectors;
//! * `explorer::probe_cell` — seed-sampled adversarial runs of the real
//!   kernel;
//! * `checker` — systematic exploration of *every* schedule of the real
//!   kernel at small `n`.
//!
//! These tests pin the pairwise agreements at sizes small enough for CI.

use kset_core::ValidityCondition;
use kset_experiments::checker::{
    check_cell, cross_validate, read_counterexample, replay_fired, write_counterexample,
    CheckerConfig,
};
use kset_experiments::exhaustive::QuorumProtocol;
use kset_experiments::explorer::probe_cell;
use kset_regions::Model;

#[test]
fn checker_and_exhaustive_agree_on_a_solvable_cell() {
    // FloodMin with t < k solves SC(k, t, RV1) — Lemma 3.1. Both routes
    // must report that it holds, with the same worst-case agreement per
    // crash pattern.
    let cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    let verdict = check_cell(&cfg);
    assert!(verdict.complete, "n = 3 must be exhaustible: {verdict}");
    assert!(verdict.holds(), "{verdict}");
    let disagreements = cross_validate(&cfg, &verdict);
    assert!(disagreements.is_empty(), "{disagreements:?}");
}

#[test]
fn checker_rediscovers_the_violation_that_seed_search_finds() {
    // SC(1, 1, RV1) (consensus with one crash) is impossible; the seed
    // explorer finds a violating run by sampling, the checker finds one
    // by systematic search. They must agree the cell is broken.
    let probe = probe_cell(Model::MpCrash, ValidityCondition::RV1, 3, 1, 1, 0..200)
        .expect("probe runs")
        .expect("cell is not solvable, so it is probed");
    assert!(
        probe.violations > 0,
        "seed search should find a violation: {probe:?}"
    );

    let cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
    let verdict = check_cell(&cfg);
    assert!(!verdict.holds(), "{verdict}");
    let ce = verdict
        .counterexample
        .as_ref()
        .expect("violated verdicts carry a counterexample");
    assert!(!ce.fired.is_empty());
}

#[test]
fn shrunk_counterexamples_replay_exactly_and_are_byte_stable() {
    let cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);

    // The exploration order is deterministic, so two independent searches
    // must shrink to the identical schedule...
    let first = check_cell(&cfg);
    let second = check_cell(&cfg);
    let ce1 = first.counterexample.expect("violated");
    let ce2 = second.counterexample.expect("violated");
    assert_eq!(ce1, ce2);

    // ...and the file written for it must be byte-identical across runs.
    let dir = std::env::temp_dir().join(format!("kset-model-checker-{}", std::process::id()));
    let path1 = dir.join("ce1.schedule");
    let path2 = dir.join("ce2.schedule");
    write_counterexample(&path1, &cfg, &ce1).expect("write");
    write_counterexample(&path2, &cfg, &ce2).expect("write");
    let bytes1 = std::fs::read(&path1).expect("read back");
    let bytes2 = std::fs::read(&path2).expect("read back");
    assert_eq!(bytes1, bytes2);
    assert!(!bytes1.is_empty());

    // The round-tripped script re-executes with zero divergence and still
    // violates the specification.
    let saved = read_counterexample(&path1).expect("parse");
    assert_eq!(saved.n, 3);
    assert_eq!(saved.counterexample.fired, ce1.fired);
    let (violation, divergences) = replay_fired(&saved);
    assert!(violation.is_some(), "replay must still violate");
    assert_eq!(divergences, 0, "replay must follow the script exactly");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_exploration_is_reported_as_incomplete_not_as_a_verdict() {
    // A run budget that truncates the search may not silently certify the
    // cell: `complete` must be false and cross-validation must refuse.
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    cfg.max_runs = 10;
    let verdict = check_cell(&cfg);
    assert!(!verdict.complete);
    let disagreements = cross_validate(&cfg, &verdict);
    assert_eq!(disagreements.len(), 1);
    assert!(disagreements[0].contains("bounded"), "{disagreements:?}");
}
