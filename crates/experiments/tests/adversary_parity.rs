//! Adversary-space parity and invariance of the exploration engine.
//!
//! Two contracts:
//!
//! * **Inert deviation spaces are the crash checker.** A Byzantine
//!   adversary with an empty forging menu and no selective silence (or a
//!   lossy adversary with a zero drop budget) adds no branch points, so
//!   its verdicts, per-pattern counters, and counterexample schedules
//!   must be identical — field for field, and byte for byte in the
//!   schedule body — to the crash-only checker's, across every fork mode
//!   and thread count.
//! * **Active deviation spaces are execution-strategy-invariant.** A
//!   Byzantine cell's verdict, counters and recorded deviation script do
//!   not depend on `--fork-mode` or `--threads`, and survive a campaign
//!   kill/resume cycle bit-identically (the checkpoint codec round-trips
//!   Byzantine slots and deviations).

use std::fs;
use std::path::PathBuf;

use kset_core::ValidityCondition;
use kset_experiments::campaign::{
    resume_campaign, run_campaign, CampaignOptions, CampaignOutcome,
};
use kset_experiments::checker::{
    check_cell, write_counterexample, AdversaryModel, CellVerdict, CheckerConfig, ForkMode,
};
use kset_experiments::exhaustive::QuorumProtocol;

/// Full structural equality of two cell verdicts — verdict, counters,
/// counterexample — field by field.
fn assert_identical(context: &str, a: &CellVerdict, b: &CellVerdict) {
    assert_eq!(a.holds(), b.holds(), "{context}: verdict differs");
    assert_eq!(a.runs, b.runs, "{context}: run counters differ");
    assert_eq!(a.complete, b.complete, "{context}: completeness differs");
    assert_eq!(
        a.worst_agreement, b.worst_agreement,
        "{context}: worst agreement differs"
    );
    assert_eq!(
        a.counterexample, b.counterexample,
        "{context}: counterexamples differ"
    );
    assert_eq!(
        a.patterns.len(),
        b.patterns.len(),
        "{context}: pattern counts differ"
    );
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        let pat = format!("{context}, pattern {:?}", x.crashed);
        assert_eq!(x.crashed, y.crashed, "{pat}: crash set");
        assert_eq!(x.runs, y.runs, "{pat}: runs");
        assert_eq!(x.states, y.states, "{pat}: states");
        assert_eq!(x.sleep_skips, y.sleep_skips, "{pat}: sleep skips");
        assert_eq!(x.dedup_hits, y.dedup_hits, "{pat}: dedup hits");
        assert_eq!(x.complete, y.complete, "{pat}: completeness");
        assert_eq!(x.worst_agreement, y.worst_agreement, "{pat}: agreement");
        assert_eq!(x.tasks, y.tasks, "{pat}: task count");
        assert_eq!(x.violation, y.violation, "{pat}: violation");
    }
}

/// The schedule body of a counterexample file: everything after the
/// `# ...` header block. The headers necessarily name the adversary the
/// file was recorded under; the body is the schedule itself and must not
/// depend on an inert adversary label.
fn schedule_body(bytes: &[u8]) -> Vec<u8> {
    let text = std::str::from_utf8(bytes).expect("schedule files are UTF-8");
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .flat_map(|line| line.bytes().chain(std::iter::once(b'\n')))
        .collect()
}

/// Pins that `deviant` explores exactly like plain `crash` — verdict,
/// counters, counterexample, schedule-body bytes — for every fork mode
/// and thread count.
fn assert_crash_parity(context: &str, crash: &CheckerConfig, deviant: &CheckerConfig) {
    let dir = std::env::temp_dir().join(format!(
        "kset_adversary_parity_{}_{context}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for mode in [ForkMode::Replay, ForkMode::Fork, ForkMode::Auto] {
        for threads in [1usize, 2] {
            let scoped = format!("{context} [{mode}, {threads} thread(s)]");
            let mut crash = crash.clone();
            crash.fork = mode;
            crash.threads = threads;
            let mut deviant = deviant.clone();
            deviant.fork = mode;
            deviant.threads = threads;
            let cv = check_cell(&crash);
            let dv = check_cell(&deviant);
            assert_identical(&scoped, &cv, &dv);
            if let (Some(c), Some(d)) = (&cv.counterexample, &dv.counterexample) {
                let crash_path = dir.join(format!("crash_{mode}_{threads}.schedule"));
                let deviant_path = dir.join(format!("deviant_{mode}_{threads}.schedule"));
                write_counterexample(&crash_path, &crash, c).unwrap();
                write_counterexample(&deviant_path, &deviant, d).unwrap();
                assert_eq!(
                    schedule_body(&fs::read(&crash_path).unwrap()),
                    schedule_body(&fs::read(&deviant_path).unwrap()),
                    "{scoped}: schedule bodies differ"
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_menu_byzantine_matches_crash_on_message_passing() {
    // Both sides of the crash verdict: a holds cell and a violated cell.
    for (k, t) in [(2usize, 1usize), (1, 1)] {
        let crash = CheckerConfig::new(QuorumProtocol::FloodMin, 3, k, t, ValidityCondition::RV1);
        let mut byz = crash.clone();
        byz.adversary = AdversaryModel::MpByz;
        assert_crash_parity(&format!("mp_k{k}_t{t}"), &crash, &byz);
    }
}

#[test]
fn empty_menu_byzantine_matches_crash_on_shared_memory() {
    for (k, t) in [(2usize, 1usize), (1, 1)] {
        let crash = CheckerConfig::new(QuorumProtocol::ProtocolE, 3, k, t, ValidityCondition::RV1);
        let mut byz = crash.clone();
        byz.adversary = AdversaryModel::SmByz;
        assert_crash_parity(&format!("sm_k{k}_t{t}"), &crash, &byz);
    }
}

#[test]
fn zero_budget_lossy_matches_crash() {
    let crash = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
    let mut lossy = crash.clone();
    lossy.adversary = AdversaryModel::MpLossy;
    assert_crash_parity("lossy_zero", &crash, &lossy);
}

/// The canonical active MP/Byz cell of the certification run.
fn mp_byz_cell() -> CheckerConfig {
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    cfg.adversary = AdversaryModel::MpByz;
    cfg.byz_menu = vec![0];
    cfg.byz_silence = true;
    cfg.inputs = Some(vec![1, 1, 1]);
    cfg
}

#[test]
fn active_byzantine_cell_is_mode_and_thread_invariant() {
    let mut reference = mp_byz_cell();
    reference.fork = ForkMode::Replay;
    reference.threads = 1;
    let oracle = check_cell(&reference);
    assert!(!oracle.holds(), "the MP/Byz RV1 cell must be violated");
    let ce = oracle.counterexample.as_ref().expect("violation recorded");
    assert!(!ce.byzantine.is_empty());
    for mode in [ForkMode::Replay, ForkMode::Fork, ForkMode::Auto] {
        for threads in [1usize, 2, 4] {
            let mut cfg = mp_byz_cell();
            cfg.fork = mode;
            cfg.threads = threads;
            let verdict = check_cell(&cfg);
            assert_identical(
                &format!("mp_byz [{mode}, {threads} thread(s)]"),
                &oracle,
                &verdict,
            );
        }
    }
}

#[test]
fn byzantine_campaign_kill_resume_matches_in_memory_verdict() {
    // The checkpoint codec must round-trip Byzantine slots and recorded
    // deviations: a campaign paused at every checkpoint and resumed to
    // completion converges to the uninterrupted verdict bit-identically.
    let reference_cfg = mp_byz_cell();
    let reference = check_cell(&reference_cfg);

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "kset_adversary_parity_campaign_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let opts = CampaignOptions {
        shards: 4,
        checkpoint_every: 0,
        pause_after_checkpoints: Some(1),
    };
    let mut outcome = run_campaign(&reference_cfg, &dir, &opts).expect("campaign create");
    let mut interruptions = 0;
    let verdict = loop {
        match outcome {
            CampaignOutcome::Finished(verdict) => break *verdict,
            CampaignOutcome::Paused { .. } => {
                interruptions += 1;
                assert!(interruptions < 20_000, "campaign does not converge");
                outcome = resume_campaign(&reference_cfg, &dir, &opts).expect("campaign resume");
            }
        }
    };
    assert!(interruptions > 0, "the pause hook never fired");
    assert_identical("byzantine campaign vs in-memory", &reference, &verdict);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaign_rejects_invalid_adversary_configurations() {
    // The campaign door must apply the same validation as `check_cell`:
    // a substrate-mismatched adversary is an error, not a wrong-model
    // certification baked into a manifest.
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    cfg.adversary = AdversaryModel::SmByz;
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "kset_adversary_parity_invalid_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let err = run_campaign(&cfg, &dir, &CampaignOptions::default())
        .expect_err("invalid configuration must not start a campaign");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let _ = fs::remove_dir_all(&dir);
}
