//! Fork-mode == replay-mode bit-identity of the exploration engine.
//!
//! The forking executor's contract (`CheckerConfig::fork`): execution
//! strategy is unobservable. For every cell, every thread count, and
//! every configuration knob, `ForkMode::Fork` and `ForkMode::Auto`
//! produce verdicts, per-pattern counters, and counterexample bytes
//! identical to the `ForkMode::Replay` oracle. This suite pins that on
//! both substrates (message passing and shared memory), across a
//! deterministic pseudo-random sweep of cells and configurations, and
//! through a campaign kill/resume cycle running in fork mode.

use std::fs;
use std::path::PathBuf;

use kset_core::ValidityCondition;
use kset_experiments::campaign::{
    resume_campaign, run_campaign, CampaignOptions, CampaignOutcome,
};
use kset_experiments::checker::{
    check_cell, write_counterexample, CellVerdict, CheckerConfig, ForkMode,
};
use kset_experiments::exhaustive::QuorumProtocol;

/// Full structural equality of two cell verdicts — verdict, counters,
/// counterexample — field by field.
fn assert_identical(context: &str, a: &CellVerdict, b: &CellVerdict) {
    assert_eq!(a.holds(), b.holds(), "{context}: verdict differs");
    assert_eq!(a.runs, b.runs, "{context}: run counters differ");
    assert_eq!(a.complete, b.complete, "{context}: completeness differs");
    assert_eq!(
        a.worst_agreement, b.worst_agreement,
        "{context}: worst agreement differs"
    );
    assert_eq!(
        a.counterexample, b.counterexample,
        "{context}: counterexamples differ"
    );
    assert_eq!(
        a.patterns.len(),
        b.patterns.len(),
        "{context}: pattern counts differ"
    );
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        let pat = format!("{context}, pattern {:?}", x.crashed);
        assert_eq!(x.crashed, y.crashed, "{pat}: crash set");
        assert_eq!(x.runs, y.runs, "{pat}: runs");
        assert_eq!(x.states, y.states, "{pat}: states");
        assert_eq!(x.sleep_skips, y.sleep_skips, "{pat}: sleep skips");
        assert_eq!(x.dedup_hits, y.dedup_hits, "{pat}: dedup hits");
        assert_eq!(x.complete, y.complete, "{pat}: completeness");
        assert_eq!(x.worst_agreement, y.worst_agreement, "{pat}: agreement");
        assert_eq!(x.tasks, y.tasks, "{pat}: task count");
        assert_eq!(x.violation, y.violation, "{pat}: violation");
    }
}

/// Checks `cfg` under all three fork modes and asserts the fork and auto
/// results are identical to the replay oracle's.
fn assert_fork_parity(context: &str, cfg: &CheckerConfig) {
    let mut replay_cfg = cfg.clone();
    replay_cfg.fork = ForkMode::Replay;
    let oracle = check_cell(&replay_cfg);
    for mode in [ForkMode::Fork, ForkMode::Auto] {
        let mut fork_cfg = cfg.clone();
        fork_cfg.fork = mode;
        let verdict = check_cell(&fork_cfg);
        assert_identical(&format!("{context} [{mode}]"), &oracle, &verdict);
    }
}

/// xorshift64*: a tiny deterministic generator for the config sweep (the
/// suite must be reproducible — no entropy sources).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn message_passing_cells_match_replay() {
    // Hand-picked MP cells spanning holds and violated verdicts, all
    // three forkable MP protocols, and both t = 0 and crashy plans.
    for (protocol, n, k, t) in [
        (QuorumProtocol::FloodMin, 3, 2, 1), // holds
        (QuorumProtocol::FloodMin, 3, 1, 1), // violated
        (QuorumProtocol::FloodMin, 4, 3, 2), // holds, multi-crash plans
        (QuorumProtocol::FloodMin, 4, 2, 2), // violated
        (QuorumProtocol::ProtocolA, 3, 2, 1),
        (QuorumProtocol::ProtocolB, 3, 2, 1),
    ] {
        let mut cfg = CheckerConfig::new(protocol, n, k, t, ValidityCondition::RV1);
        cfg.threads = 1;
        cfg.max_runs = 30_000;
        assert_fork_parity(&format!("{protocol:?} n={n} k={k} t={t}"), &cfg);
    }
}

#[test]
fn shared_memory_cells_match_replay() {
    // The SM substrate forks atomic-snapshot memory alongside the
    // processes; both SM protocols, a holds and a violated shape each.
    for (protocol, n, k, t) in [
        (QuorumProtocol::ProtocolE, 3, 2, 1),
        (QuorumProtocol::ProtocolE, 3, 1, 1),
        (QuorumProtocol::ProtocolF, 3, 2, 1),
        (QuorumProtocol::ProtocolF, 3, 1, 1),
    ] {
        let mut cfg = CheckerConfig::new(protocol, n, k, t, ValidityCondition::RV1);
        cfg.threads = 1;
        cfg.max_runs = 30_000;
        assert_fork_parity(&format!("{protocol:?} n={n} k={k} t={t}"), &cfg);
    }
}

#[test]
fn random_configurations_match_replay() {
    // A deterministic sweep over the configuration space: protocol,
    // cell shape, POR/dedup/symmetry toggles, depth and preemption
    // bounds, run truncation, thread count. Every sampled point must be
    // mode-invariant — including truncated (incomplete) verdicts, where
    // the exact cut depends on run order and would expose any divergence
    // between the executors.
    let mut rng = XorShift(0x5eed_f0cc_5eed_f0cc);
    let protocols = [
        QuorumProtocol::FloodMin,
        QuorumProtocol::ProtocolA,
        QuorumProtocol::ProtocolB,
        QuorumProtocol::ProtocolE,
        QuorumProtocol::ProtocolF,
    ];
    for sample in 0..24 {
        let protocol = protocols[rng.below(protocols.len() as u64) as usize];
        let n = 3 + rng.below(2) as usize;
        let t = rng.below(n as u64 - 1) as usize;
        let k = 1 + rng.below(n as u64 - 1) as usize;
        let mut cfg = CheckerConfig::new(protocol, n, k, t, ValidityCondition::RV1);
        cfg.por = rng.below(4) != 0;
        cfg.dedup = rng.below(4) != 0;
        cfg.symmetry = rng.below(3) == 0;
        if rng.below(3) == 0 {
            cfg.depth = 4 + rng.below(8) as usize;
        }
        if rng.below(3) == 0 {
            cfg.preemptions = Some(rng.below(3) as usize);
        }
        cfg.max_runs = 500 + rng.below(4_000);
        cfg.threads = 1 + rng.below(3) as usize;
        assert_fork_parity(
            &format!(
                "sample {sample}: {protocol:?} n={n} k={k} t={t} por={} dedup={} sym={} \
                 depth={} preempt={:?} max_runs={} threads={}",
                cfg.por, cfg.dedup, cfg.symmetry, cfg.depth, cfg.preemptions, cfg.max_runs,
                cfg.threads
            ),
            &cfg,
        );
    }
}

#[test]
fn counterexample_scripts_are_byte_identical() {
    // The violated n=4 cell of the default certification: the replay
    // scripts emitted under each mode must match byte for byte.
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 4, 2, 2, ValidityCondition::RV1);
    cfg.threads = 2;
    let dir = std::env::temp_dir().join(format!("kset_fork_parity_ce_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let mut scripts = Vec::new();
    for mode in [ForkMode::Replay, ForkMode::Fork, ForkMode::Auto] {
        let mut cfg = cfg.clone();
        cfg.fork = mode;
        let verdict = check_cell(&cfg);
        let ce = verdict.counterexample.as_ref().expect("cell is violated");
        let path = dir.join(format!("{mode}.schedule"));
        write_counterexample(&path, &cfg, ce).unwrap();
        scripts.push(fs::read(&path).unwrap());
    }
    assert_eq!(scripts[0], scripts[1], "fork script differs from replay");
    assert_eq!(scripts[0], scripts[2], "auto script differs from replay");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaign_kill_resume_under_fork_mode() {
    // A campaign driven in fork mode, killed at every checkpoint (the
    // deterministic pause hook) and resumed to completion, must converge
    // to the replay-mode in-memory verdict. Spilled continuations cross
    // the checkpoint boundary as replayable work items — this exercises
    // exactly the snapshot-shedding path of the fork executor's spill.
    let mut reference_cfg =
        CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    reference_cfg.threads = 1;
    reference_cfg.fork = ForkMode::Replay;
    let reference = check_cell(&reference_cfg);
    assert!(reference.holds());

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "kset_fork_parity_campaign_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let mut cfg = reference_cfg.clone();
    cfg.fork = ForkMode::Fork;
    let opts = CampaignOptions {
        shards: 4,
        checkpoint_every: 0,
        pause_after_checkpoints: Some(1),
    };
    let mut outcome = run_campaign(&cfg, &dir, &opts).expect("campaign create");
    let mut interruptions = 0;
    let verdict = loop {
        match outcome {
            CampaignOutcome::Finished(verdict) => break *verdict,
            CampaignOutcome::Paused { .. } => {
                interruptions += 1;
                assert!(interruptions < 20_000, "campaign does not converge");
                outcome = resume_campaign(&cfg, &dir, &opts).expect("campaign resume");
            }
        }
    };
    assert!(interruptions > 0, "the pause hook never fired");
    assert_identical("fork-mode campaign vs replay reference", &reference, &verdict);
    let _ = fs::remove_dir_all(&dir);
}
