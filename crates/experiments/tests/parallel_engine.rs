//! Thread-count independence of the parallel exploration engine.
//!
//! The engine's contract (see `checker`'s module docs) is that worker
//! count is a pure throughput knob: verdicts, every aggregate counter
//! and the shrunk counterexample are functions of the task list alone,
//! never of worker timing. These tests pin that contract on a cell from
//! each side of the Lemma 3.1 frontier — one where the specification
//! holds (the full tree is explored and the counters summarize it) and
//! one where it is violated (early exit and shrinking are exercised).

use kset_core::ValidityCondition;
use kset_experiments::checker::{check_cell, write_counterexample, CellVerdict, CheckerConfig};
use kset_experiments::exhaustive::QuorumProtocol;

fn cell(k: usize, t: usize, threads: usize) -> CheckerConfig {
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, k, t, ValidityCondition::RV1);
    cfg.threads = threads;
    cfg
}

/// Every observable field of two verdicts must match, pattern by pattern.
fn assert_identical(a: &CellVerdict, b: &CellVerdict) {
    assert_eq!(a.runs, b.runs, "total runs");
    assert_eq!(a.worst_agreement, b.worst_agreement, "worst agreement");
    assert_eq!(a.complete, b.complete, "completeness");
    assert_eq!(a.counterexample, b.counterexample, "counterexample");
    assert_eq!(a.patterns.len(), b.patterns.len(), "patterns explored");
    for (pa, pb) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(pa.crashed, pb.crashed);
        assert_eq!(pa.runs, pb.runs, "runs for {:?}", pa.crashed);
        assert_eq!(pa.states, pb.states, "states for {:?}", pa.crashed);
        assert_eq!(pa.sleep_skips, pb.sleep_skips, "sleep skips for {:?}", pa.crashed);
        assert_eq!(pa.dedup_hits, pb.dedup_hits, "dedup hits for {:?}", pa.crashed);
        assert_eq!(pa.tasks, pb.tasks, "tasks for {:?}", pa.crashed);
        assert_eq!(pa.complete, pb.complete);
        assert_eq!(pa.worst_agreement, pb.worst_agreement);
    }
}

#[test]
fn holding_cell_verdict_is_thread_count_independent() {
    // FloodMin with t < k solves SC(k, t, RV1) — the solvable side of the
    // Lemma 3.1 frontier. Exhaustive certification must produce the same
    // counters serially and on four workers.
    let serial = check_cell(&cell(2, 1, 1));
    let parallel = check_cell(&cell(2, 1, 4));
    assert!(serial.complete && serial.holds(), "{serial}");
    assert_identical(&serial, &parallel);
}

#[test]
fn violated_cell_counterexample_is_byte_identical_across_thread_counts() {
    // SC(1, 1, RV1) is consensus with one crash — the impossible side of
    // the frontier. The violation, the chunk-aligned early exit, and the
    // shrunk replay script must all be thread-count independent.
    let serial = check_cell(&cell(1, 1, 1));
    let parallel = check_cell(&cell(1, 1, 4));
    assert!(!serial.holds(), "{serial}");
    assert_identical(&serial, &parallel);

    // The emitted schedule files must be byte-identical, not merely
    // equal as structs.
    let dir = std::env::temp_dir().join(format!("kset-parallel-engine-{}", std::process::id()));
    let p1 = dir.join("serial.schedule");
    let p4 = dir.join("parallel.schedule");
    let ce1 = serial.counterexample.expect("violated");
    let ce4 = parallel.counterexample.expect("violated");
    write_counterexample(&p1, &cell(1, 1, 1), &ce1).expect("write");
    write_counterexample(&p4, &cell(1, 1, 4), &ce4).expect("write");
    let b1 = std::fs::read(&p1).expect("read back");
    let b4 = std::fs::read(&p4).expect("read back");
    assert!(!b1.is_empty());
    assert_eq!(b1, b4, "shrunk scripts must not depend on thread count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversubscription_and_odd_thread_counts_agree_too() {
    // Worker counts far above the host's core count (and a count that
    // does not divide the wave size) still may not shift any counter.
    let baseline = check_cell(&cell(2, 1, 1));
    for threads in [3, 7, 32] {
        let other = check_cell(&cell(2, 1, threads));
        assert_identical(&baseline, &other);
    }
}
