//! Kill/resume bit-identity of certification campaigns.
//!
//! The campaign contract (`CAMPAIGNS.md`): a campaign killed at *any*
//! checkpoint and resumed produces byte-identical verdicts, counters, and
//! counterexample scripts to an uninterrupted run — for every thread
//! count and checkpoint cadence. This suite pins that contract at n = 3
//! and n = 4 through the library API (deterministic aborts via the
//! `pause_after_checkpoints` hook) and through the `model_check` binary's
//! `--campaign-dir`/`--resume` flags; CI's `campaign-smoke` job adds a
//! genuine SIGKILL on top.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use kset_core::ValidityCondition;
use kset_experiments::campaign::{
    manifest::{read_manifest, CampaignStatus},
    resume_campaign, run_campaign, CampaignOptions, CampaignOutcome,
};
use kset_experiments::checker::{check_cell, write_counterexample, CellVerdict, CheckerConfig};
use kset_experiments::exhaustive::QuorumProtocol;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kset_campaign_resume_{name}_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Full structural equality of two cell verdicts, field by field — the
/// "identical verdicts and counters" half of the contract.
fn assert_identical(a: &CellVerdict, b: &CellVerdict) {
    assert_eq!(a.holds(), b.holds());
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.complete, b.complete);
    assert_eq!(a.worst_agreement, b.worst_agreement);
    assert_eq!(a.counterexample, b.counterexample);
    assert_eq!(a.patterns.len(), b.patterns.len());
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.crashed, y.crashed);
        assert_eq!(x.runs, y.runs);
        assert_eq!(x.states, y.states);
        assert_eq!(x.sleep_skips, y.sleep_skips);
        assert_eq!(x.dedup_hits, y.dedup_hits);
        assert_eq!(x.complete, y.complete);
        assert_eq!(x.worst_agreement, y.worst_agreement);
        assert_eq!(x.tasks, y.tasks);
        assert_eq!(x.violation, y.violation);
    }
}

/// Drives a campaign to completion through repeated pause/resume cycles —
/// each cycle is a clean kill at a durable checkpoint — and returns the
/// final verdict plus the number of interruptions survived.
fn run_interrupted(cfg: &CheckerConfig, dir: &Path, opts: &CampaignOptions) -> (CellVerdict, u64) {
    let mut outcome = run_campaign(cfg, dir, opts).expect("campaign create");
    let mut interruptions = 0;
    loop {
        match outcome {
            CampaignOutcome::Finished(verdict) => return (*verdict, interruptions),
            CampaignOutcome::Paused { .. } => {
                interruptions += 1;
                assert!(interruptions < 20_000, "campaign does not converge");
                outcome = resume_campaign(cfg, dir, opts).expect("campaign resume");
            }
        }
    }
}

#[test]
fn n3_holds_cell_survives_interruption_at_every_checkpoint_cadence() {
    let mut reference_cfg =
        CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    reference_cfg.threads = 1;
    let reference = check_cell(&reference_cfg);
    assert!(reference.holds());

    // Interrupt at several cadences (0 = every wave boundary) and under
    // both serial and 2-thread drains: all runs must converge to the
    // reference verdict, counters included.
    for threads in [1, 2] {
        for checkpoint_every in [0, 400, 2_000] {
            let dir = tmp_dir(&format!("n3_holds_{threads}_{checkpoint_every}"));
            let mut cfg = reference_cfg.clone();
            cfg.threads = threads;
            let opts = CampaignOptions {
                shards: 4,
                checkpoint_every,
                pause_after_checkpoints: Some(1),
            };
            let (verdict, interruptions) = run_interrupted(&cfg, &dir, &opts);
            assert!(
                interruptions > 0,
                "threads={threads} every={checkpoint_every}: pause hook never fired"
            );
            assert_identical(&verdict, &reference);
            let manifest = read_manifest(&dir).unwrap();
            assert_eq!(manifest.status, CampaignStatus::Holds);
            assert_eq!(manifest.runs, reference.runs);
            assert_eq!(manifest.resumes, interruptions);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn n3_violated_cell_reproduces_counterexample_bytes() {
    // k = 1 with t = 1 is unsolvable: the campaign must find, shrink, and
    // persist the same counterexample the in-memory checker finds. (The
    // violation lands inside the first wave here, so the campaign may
    // legitimately finish without ever reaching a pauseable boundary —
    // the assertion is bit-identity, not that pauses occur.)
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
    cfg.threads = 2;
    let reference = check_cell(&cfg);
    assert!(!reference.holds());

    let dir = tmp_dir("n3_violated");
    let opts = CampaignOptions {
        shards: 2,
        checkpoint_every: 0,
        pause_after_checkpoints: Some(1),
    };
    let (verdict, _) = run_interrupted(&cfg, &dir, &opts);
    assert_identical(&verdict, &reference);

    // Byte-level: the emitted replay scripts are identical.
    let ref_path = dir.join("reference.schedule");
    let camp_path = dir.join("campaign.schedule");
    write_counterexample(&ref_path, &cfg, reference.counterexample.as_ref().unwrap()).unwrap();
    write_counterexample(&camp_path, &cfg, verdict.counterexample.as_ref().unwrap()).unwrap();
    assert_eq!(fs::read(&ref_path).unwrap(), fs::read(&camp_path).unwrap());

    let manifest = read_manifest(&dir).unwrap();
    assert_eq!(manifest.status, CampaignStatus::Violated);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn n4_cells_match_check_cell_after_interruptions() {
    // n = 4: the holds side bounded to a deterministic budget (bounded
    // verdicts are part of the contract too — max_runs is enforced at
    // wave boundaries), and the violated side to completion.
    let mut holds_cfg =
        CheckerConfig::new(QuorumProtocol::FloodMin, 4, 2, 1, ValidityCondition::RV1);
    holds_cfg.threads = 2;
    holds_cfg.max_runs = 6_000;
    let mut violated_cfg =
        CheckerConfig::new(QuorumProtocol::FloodMin, 4, 2, 2, ValidityCondition::RV1);
    violated_cfg.threads = 2;

    for (name, cfg, expect_pauses) in [
        ("n4_holds", &holds_cfg, true),
        // The violated cell finds its counterexample inside the first
        // wave of the first crash pattern, before any pauseable boundary
        // exists — zero interruptions is the correct outcome there.
        ("n4_violated", &violated_cfg, false),
    ] {
        let reference = check_cell(cfg);
        let dir = tmp_dir(name);
        let opts = CampaignOptions {
            shards: 8,
            checkpoint_every: 1_500,
            pause_after_checkpoints: Some(1),
        };
        let (verdict, interruptions) = run_interrupted(cfg, &dir, &opts);
        if expect_pauses {
            assert!(interruptions > 0, "{name}: pause hook never fired");
        }
        assert_identical(&verdict, &reference);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn model_check_binary_campaign_matches_direct_run() {
    // The CLI surface end to end: a campaign via --campaign-dir /
    // --pause-after-checkpoints / --resume must print the same verdict
    // line and emit byte-identical counterexample scripts as a direct
    // (campaign-less) invocation.
    let bin = env!("CARGO_BIN_EXE_model_check");
    let dir = tmp_dir("cli");
    fs::create_dir_all(&dir).unwrap();

    /// Runs the cell without a campaign and returns its verdict line.
    fn direct_verdict_line(bin: &str, cell: &[&str], ce: Option<&Path>) -> String {
        let mut cmd = Command::new(bin);
        cmd.args(cell).args(["--threads", "2"]);
        if let Some(ce) = ce {
            cmd.arg("--counterexample").arg(ce);
        }
        let out = cmd.output().expect("run model_check");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .find(|l| l.starts_with("SC("))
            .expect("verdict line")
            .to_string()
    }

    /// Creates a campaign pausing at the first checkpoint, then resumes
    /// (without restating the cell) until it finishes; returns the final
    /// stdout and the number of pause/resume rounds.
    fn drive_campaign(
        bin: &str,
        cell: &[&str],
        campaign: &Path,
        ce: Option<&Path>,
    ) -> (String, u64) {
        let mut cmd = Command::new(bin);
        cmd.args(cell)
            .arg("--campaign-dir")
            .arg(campaign)
            .args(["--checkpoint-every", "0", "--pause-after-checkpoints", "1", "--threads", "1"]);
        if let Some(ce) = ce {
            cmd.arg("--counterexample").arg(ce);
        }
        let create = cmd.output().expect("create campaign");
        assert!(create.status.success(), "{create:?}");
        let mut finished = String::from_utf8(create.stdout).unwrap();
        let mut rounds = 0;
        while finished.contains("campaign paused") {
            rounds += 1;
            assert!(rounds < 10_000, "campaign does not converge");
            let mut cmd = Command::new(bin);
            cmd.arg("--campaign-dir")
                .arg(campaign)
                .args(["--resume", "--threads", "2"]);
            if let Some(ce) = ce {
                cmd.arg("--counterexample").arg(ce);
            }
            let resume = cmd.output().expect("resume campaign");
            assert!(resume.status.success(), "{resume:?}");
            finished = String::from_utf8(resume.stdout).unwrap();
        }
        let line = finished
            .lines()
            .find(|l| l.starts_with("SC("))
            .expect("campaign verdict line")
            .to_string();
        (line, rounds)
    }

    // Holds cell: the campaign genuinely pauses and resumes (mixed thread
    // counts across the kill points) yet prints the same verdict line.
    let holds_cell = [
        "--protocol", "floodmin", "--n", "3", "--k", "2", "--t", "1", "--validity", "RV1",
    ];
    let holds_campaign = dir.join("holds-campaign");
    let holds_reference = direct_verdict_line(bin, &holds_cell, None);
    let (holds_line, rounds) = drive_campaign(bin, &holds_cell, &holds_campaign, None);
    assert!(rounds > 0, "the pause hook never fired on the holds cell");
    assert_eq!(holds_line, holds_reference);

    // Violated cell: same verdict line and byte-identical counterexample
    // script. (This cell violates inside the first wave, so the campaign
    // may finish without pausing — byte identity is the contract.)
    let violated_cell = [
        "--protocol", "floodmin", "--n", "3", "--k", "1", "--t", "1", "--validity", "RV1",
    ];
    let violated_campaign = dir.join("violated-campaign");
    let direct_ce = dir.join("direct.schedule");
    let campaign_ce = dir.join("campaign.schedule");
    let violated_reference = direct_verdict_line(bin, &violated_cell, Some(&direct_ce));
    let (violated_line, _) =
        drive_campaign(bin, &violated_cell, &violated_campaign, Some(&campaign_ce));
    assert_eq!(violated_line, violated_reference);
    assert_eq!(
        fs::read(&direct_ce).unwrap(),
        fs::read(&campaign_ce).unwrap(),
        "counterexample scripts differ"
    );

    // A finished campaign refuses --resume with a clear error.
    let again = Command::new(bin)
        .arg("--campaign-dir")
        .arg(&holds_campaign)
        .arg("--resume")
        .output()
        .expect("resume finished campaign");
    assert!(!again.status.success());
    let stderr = String::from_utf8(again.stderr).unwrap();
    assert!(stderr.contains("finished"), "{stderr}");
    let _ = fs::remove_dir_all(&dir);
}
