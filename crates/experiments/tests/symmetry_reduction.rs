//! Symmetry reduction is an *optimization*, not a semantics change: the
//! checker's verdicts — holds/violated, worst agreement, completeness, and
//! the shrunk counterexample's exact serialized bytes — must be identical
//! with canonical (symmetry-reduced) and plain (id-sensitive) digests.
//! Only the dedup accounting may differ, and only in one direction: the
//! canonical state partition is coarser, so it can never visit *more*
//! distinct states than the plain one (see `PERFORMANCE.md`).

use kset_core::ValidityCondition;
use kset_experiments::checker::{check_cell, write_counterexample, CheckerConfig, CellVerdict};
use kset_experiments::exhaustive::QuorumProtocol;

fn verdict(n: usize, k: usize, t: usize, symmetry: bool) -> CellVerdict {
    let mut cfg = CheckerConfig::new(QuorumProtocol::FloodMin, n, k, t, ValidityCondition::RV1);
    cfg.symmetry = symmetry;
    check_cell(&cfg)
}

fn counterexample_bytes(n: usize, k: usize, t: usize, v: &CellVerdict) -> String {
    let cfg = CheckerConfig::new(QuorumProtocol::FloodMin, n, k, t, ValidityCondition::RV1);
    let ce = v.counterexample.as_ref().expect("cell is violated");
    let path = std::env::temp_dir().join(format!(
        "kset-symmetry-{}-{n}-{k}-{t}.schedule",
        std::process::id()
    ));
    write_counterexample(&path, &cfg, ce).expect("write");
    let bytes = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn total_states(v: &CellVerdict) -> usize {
    v.patterns.iter().map(|p| p.states).sum()
}

/// Both digest modes certify the same holding cell, and the canonical
/// visited set is no larger than the plain one.
#[test]
fn holding_cell_verdicts_agree_at_n3() {
    let sym = verdict(3, 2, 1, true);
    let plain = verdict(3, 2, 1, false);
    assert!(sym.holds() && plain.holds());
    assert!(sym.complete && plain.complete);
    assert_eq!(sym.worst_agreement, plain.worst_agreement);
    assert!(
        total_states(&sym) <= total_states(&plain),
        "canonicalization must merge states, not split them: {} > {}",
        total_states(&sym),
        total_states(&plain)
    );
}

/// Both digest modes refute the same violated cell with byte-identical
/// shrunk counterexamples at n = 3.
#[test]
fn violated_cell_counterexamples_match_at_n3() {
    let sym = verdict(3, 1, 1, true);
    let plain = verdict(3, 1, 1, false);
    assert!(!sym.holds() && !plain.holds());
    assert_eq!(sym.worst_agreement, plain.worst_agreement);
    assert_eq!(
        counterexample_bytes(3, 1, 1, &sym),
        counterexample_bytes(3, 1, 1, &plain)
    );
}

/// Same at n = 4 (the benchmark's violated frontier cell): identical
/// verdict and counterexample bytes, canonical visited set no larger.
#[test]
fn violated_cell_counterexamples_match_at_n4() {
    let sym = verdict(4, 2, 2, true);
    let plain = verdict(4, 2, 2, false);
    assert!(!sym.holds() && !plain.holds());
    assert_eq!(sym.worst_agreement, plain.worst_agreement);
    assert_eq!(
        counterexample_bytes(4, 2, 2, &sym),
        counterexample_bytes(4, 2, 2, &plain)
    );
    assert!(total_states(&sym) <= total_states(&plain));
}
