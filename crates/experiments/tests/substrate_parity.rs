//! MP/SM parity: the backward-compatible facades and the substrate-generic
//! [`kset_sim::System`] must drive both communication models through the
//! same code path with **byte-identical** observables.
//!
//! Two layers of pinning:
//!
//! * *Facade vs. generic* — the same protocol, seed, fault plan, and
//!   metrics configuration run once through `MpSystem`/`SmSystem` and once
//!   through `System::run_digested::<…Substrate>` must produce equal
//!   outcomes, equal [`kset_sim::StateDigest`] sequences, and (for SM)
//!   equal register snapshots. This is the refactor's core contract: the
//!   facades are faces, not forks.
//! * *Golden constants* — decisions, kernel counters, and an Fnv64 chain
//!   over the full digest sequence are pinned to concrete values, so the
//!   whole stack (facade + generic) is anchored across refactors, not
//!   merely to itself.
//!
//! The golden constants have been re-recorded twice:
//!
//! * when `RandomScheduler`'s generator moved in-tree (SplitMix64 in
//!   `kset-sim`) — the previous values depended on whichever `rand`
//!   implementation happened to be linked, so they pinned the environment
//!   as much as the code;
//! * when the digest *composition* moved from byte-wise FNV-1a to the
//!   word-folding [`kset_sim::Mix64`] combiner (see `PERFORMANCE.md`) —
//!   every digest value changed, and the digest *partition* got finer:
//!   the old pool digest summed raw FNV hashes, which cancel
//!   systematically under trailing-byte swaps (demonstrated in
//!   `tests/property_digest.rs` at the workspace root), so the old
//!   checker merged some genuinely distinct states. The corrected plain
//!   partition coincides with what the canonical mode always measured,
//!   which pins the fix at benchmark scale (`BENCH_model_check.json`).
//!
//! Decisions, rosters, kernel counters and counterexample bytes are
//! schedule-determined, not hash-determined, and survived both.

use std::collections::BTreeMap;

use kset_adversary::plans;
use kset_core::ValidityCondition;
use kset_experiments::checker::{check_cell, write_counterexample, CheckerConfig};
use kset_experiments::exhaustive::QuorumProtocol;
use kset_net::{DynMpProcess, MpSubstrate, MpSystem};
use kset_protocols::{FloodMin, ProtocolE};
use kset_shmem::{DynSmProcess, RegisterId, SmSubstrate, SmSystem};
use kset_sim::{Fnv64, MetricsConfig, System};

/// Fnv64 chain over a digest sequence: one number pinning every step of a
/// run's digested evolution.
fn chain(digests: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    for &d in digests {
        h.write_u64(d);
    }
    h.finish()
}

fn mp_procs() -> Vec<DynMpProcess<u64, u64>> {
    (0..4).map(|p| FloodMin::boxed(4, 1, p as u64)).collect()
}

fn sm_procs() -> Vec<DynSmProcess<u64, u64>> {
    (0..3)
        .map(|p| ProtocolE::boxed(3, 2, p as u64, u64::MAX))
        .collect()
}

#[test]
fn mp_facade_and_generic_system_are_byte_identical() {
    let (facade, facade_digests) = MpSystem::new(4)
        .seed(7)
        .fault_plan(plans::last_t_silent(4, 1))
        .metrics(MetricsConfig::enabled())
        .run_digested(mp_procs())
        .expect("facade run");
    let (generic, generic_digests) = System::new(4)
        .seed(7)
        .fault_plan(plans::last_t_silent(4, 1))
        .metrics(MetricsConfig::enabled())
        .run_digested::<MpSubstrate<u64, u64>>(mp_procs())
        .expect("generic run");

    // `MpOutcome` is an alias of the generic outcome, so equality here is
    // full structural equality: decisions, rosters, stats, trace, metrics.
    assert_eq!(facade, generic);
    assert_eq!(facade_digests, generic_digests);

    // Golden constants (re-recorded at the Mix64 combiner switch; see the
    // module doc).
    let expected: BTreeMap<usize, u64> = [(0, 0), (1, 0), (2, 0)].into_iter().collect();
    assert_eq!(facade.decisions, expected);
    assert_eq!(facade.faulty, vec![3]);
    assert!(facade.terminated);
    assert_eq!(facade.stats.events_fired, 16);
    assert_eq!(facade.stats.messages_delivered, 12);
    assert_eq!(facade.stats.local_steps, 4);
    assert_eq!(facade_digests.len(), 16);
    assert_eq!(facade_digests[0], 0xf7b6_b35c_3672_8fcf);
    assert_eq!(*facade_digests.last().unwrap(), 0x3b4d_3a02_ad0d_69c2);
    assert_eq!(chain(&facade_digests), 0x6a13_dfce_ce27_01a1);
}

#[test]
fn sm_facade_and_generic_system_are_byte_identical() {
    let (facade, facade_digests) = SmSystem::new(3)
        .seed(11)
        .fault_plan(plans::last_t_silent(3, 1))
        .metrics(MetricsConfig::enabled())
        .run_digested(sm_procs())
        .expect("facade run");
    let (generic, generic_digests, memory) = System::new(3)
        .seed(11)
        .fault_plan(plans::last_t_silent(3, 1))
        .metrics(MetricsConfig::enabled())
        .run_digested_shared::<SmSubstrate<u64, u64>>(sm_procs())
        .expect("generic run");

    assert_eq!(*facade, generic); // deref: the substrate-generic part
    assert_eq!(facade.memory, memory.snapshot());
    assert_eq!(facade_digests, generic_digests);

    // Golden constants (re-recorded at the Mix64 combiner switch; see the
    // module doc).
    let expected: BTreeMap<usize, u64> = [(0, u64::MAX), (1, u64::MAX)].into_iter().collect();
    assert_eq!(facade.decisions, expected);
    assert_eq!(facade.faulty, vec![2]);
    assert!(facade.terminated);
    assert_eq!(facade.stats.events_fired, 10);
    assert_eq!(facade.stats.ops_completed, 7);
    assert_eq!(facade.stats.local_steps, 3);
    let expected_memory: BTreeMap<RegisterId, u64> =
        [(RegisterId::new(0, 0), 0), (RegisterId::new(1, 0), 1)]
            .into_iter()
            .collect();
    assert_eq!(facade.memory, expected_memory);
    assert_eq!(facade_digests.len(), 10);
    assert_eq!(facade_digests[0], 0x5412_9da2_5d8c_31ff);
    assert_eq!(*facade_digests.last().unwrap(), 0x0eff_2990_7aab_f4de);
    assert_eq!(chain(&facade_digests), 0x6a2e_d9a4_3503_594b);
}

#[test]
fn counterexample_bytes_match_the_pre_refactor_golden() {
    // The checker's shrunk counterexample for consensus-with-one-crash is
    // fully deterministic; its serialized form was captured before the
    // substrate refactor and must not drift.
    let cfg = CheckerConfig::new(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
    let verdict = check_cell(&cfg);
    let ce = verdict.counterexample.expect("SC(1,1,RV1) is violated");

    let path = std::env::temp_dir().join(format!(
        "kset-substrate-parity-{}.schedule",
        std::process::id()
    ));
    write_counterexample(&path, &cfg, &ce).expect("write");
    let bytes = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    let golden = "\
# kset model_check counterexample v1
# protocol: FloodMin
# n: 3
# k: 1
# t: 1
# validity: RV1
# crashed:
# choices: 0 0 0 0 0 1 3 1 2 1 1
# violation: 2 distinct values decided, agreement allows 1
0
1
2
3
4
6
9
7
10
8
11
";
    assert_eq!(bytes, golden);
}
