//! Structured run records and their JSONL sink.
//!
//! Every empirical run (one protocol execution under one seed) can be
//! captured as a [`RunRecord`]: the full cell coordinates, the seed, the
//! run's outcome, the kernel's aggregate [`RunStats`], and — when enabled —
//! the per-process [`RunMetrics`]. Records serialize one-per-line as JSON
//! (JSON Lines) through [`JsonlSink`], so experiment outputs stream to disk
//! and load back with [`read_jsonl`] for rollups.
//!
//! The schema is versioned ([`RUN_RECORD_VERSION`]) and documented
//! field-by-field in `OBSERVABILITY.md` at the repository root. Records are
//! deterministic: re-running the same binary with the same arguments
//! produces a byte-identical JSONL file (no wall-clock timestamps, no
//! floats, no map-ordering ambiguity).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use kset_core::ValidityCondition;
use kset_regions::Model;
use kset_sim::{RunMetrics, RunStats};
use serde::{Deserialize, Serialize};

/// Version of the [`RunRecord`] schema. Bumped whenever a field is added,
/// removed, or changes meaning; consumers should check it before parsing
/// further.
pub const RUN_RECORD_VERSION: u32 = 1;

/// A stable filename-safe slug for a model (`mp_cr`, `mp_byz`, `sm_cr`,
/// `sm_byz`) — the same convention the atlas CSV files use.
pub fn model_slug(model: Model) -> &'static str {
    match model {
        Model::MpCrash => "mp_cr",
        Model::MpByzantine => "mp_byz",
        Model::SmCrash => "sm_cr",
        Model::SmByzantine => "sm_byz",
    }
}

/// How one run ended, as far as the `SC(k, t, C)` checker is concerned.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Whether every correct process decided before events ran out.
    pub terminated: bool,
    /// Number of processes (correct or faulty) that decided.
    pub decided: usize,
    /// Number of distinct values decided by correct processes — the
    /// quantity the agreement condition bounds by `k`.
    pub distinct_decisions: usize,
    /// The violation message when the run failed `SC(k, t, C)`, else
    /// `None`. A clean experiment has `violation: null` on every line.
    pub violation: Option<String>,
}

impl RunOutcome {
    /// True when the run satisfied the specification.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// One experiment run, ready for JSONL emission.
///
/// This is the observability record of an *execution* — distinct from
/// `kset_core::RunRecord`, which is the checker's input (inputs/decisions).
/// See `OBSERVABILITY.md` for the field-by-field schema.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Schema version, currently [`RUN_RECORD_VERSION`].
    pub schema_version: u32,
    /// Deterministic identifier: `"<model>/<validity>/n<n>k<k>t<t>/s<seed>"`.
    pub run_id: String,
    /// The failure/communication model of the cell.
    pub model: Model,
    /// The validity condition being validated.
    pub validity: ValidityCondition,
    /// System size.
    pub n: usize,
    /// Agreement bound.
    pub k: usize,
    /// Fault budget.
    pub t: usize,
    /// Scheduler seed of this run.
    pub seed: u64,
    /// Protocol that ran, e.g. `"Protocol A"` or `"SIM(FloodMin)"`.
    pub protocol: String,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The kernel's aggregate counters.
    pub stats: RunStats,
    /// Per-process counters and histograms, when collection was enabled.
    pub metrics: Option<RunMetrics>,
}

impl RunRecord {
    /// Assembles a record, deriving the deterministic `run_id` from the
    /// cell coordinates and seed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: Model,
        validity: ValidityCondition,
        n: usize,
        k: usize,
        t: usize,
        seed: u64,
        protocol: impl Into<String>,
        outcome: RunOutcome,
        stats: RunStats,
        metrics: Option<RunMetrics>,
    ) -> Self {
        RunRecord {
            schema_version: RUN_RECORD_VERSION,
            run_id: format!("{}/{validity}/n{n}k{k}t{t}/s{seed}", model_slug(model)),
            model,
            validity,
            n,
            k,
            t,
            seed,
            protocol: protocol.into(),
            outcome,
            stats,
            metrics,
        }
    }
}

/// A buffered JSON Lines writer for [`RunRecord`]s: one record per line,
/// flushed on [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    written: usize,
}

impl JsonlSink {
    /// Creates (or truncates) the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Appends one record as a single JSON line.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write(&mut self, record: &RunRecord) -> io::Result<()> {
        let line = serde_json::to_string(record).map_err(io::Error::other)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and closes the sink, returning how many records it wrote.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> io::Result<usize> {
        self.writer.flush()?;
        Ok(self.written)
    }
}

/// Reads every record from a JSONL file written by [`JsonlSink`].
///
/// # Errors
///
/// Fails on I/O errors or if any non-empty line is not a valid record.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<RunRecord>> {
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::validate_cell_with;
    use kset_sim::MetricsConfig;

    fn sample_records(seeds: std::ops::Range<u64>) -> Vec<RunRecord> {
        let mut records = Vec::new();
        validate_cell_with(
            Model::MpCrash,
            ValidityCondition::RV1,
            6,
            4,
            3,
            seeds,
            MetricsConfig::enabled(),
            |r| records.push(r),
        )
        .unwrap()
        .expect("solvable cell");
        records
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kset-record-sink-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn run_id_is_deterministic_and_descriptive() {
        let records = sample_records(0..2);
        assert_eq!(records[0].run_id, "mp_cr/RV1/n6k4t3/s0");
        assert_eq!(records[1].run_id, "mp_cr/RV1/n6k4t3/s1");
        assert_eq!(records[0].schema_version, RUN_RECORD_VERSION);
        assert_eq!(records[0].protocol, "FloodMin");
        assert!(records[0].outcome.clean());
        assert!(records[0].metrics.is_some());
    }

    /// True when `serde_json` is the offline development stub, whose
    /// `to_string` emits a fixed placeholder and whose `from_str` panics —
    /// a faithful round-trip is unobservable in that environment.
    fn serde_is_devstub() -> bool {
        serde_json::to_string(&0u32).map(|s| s.contains("devstub")).unwrap_or(true)
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        if serde_is_devstub() {
            eprintln!("skipping: serde_json devstub cannot deserialize");
            return;
        }
        let records = sample_records(0..3);
        let path = temp_path("roundtrip");
        let mut sink = JsonlSink::create(&path).unwrap();
        for r in &records {
            sink.write(r).unwrap();
        }
        assert_eq!(sink.written(), 3);
        assert_eq!(sink.finish().unwrap(), 3);
        let back = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, records);
    }

    #[test]
    fn same_seed_produces_byte_identical_jsonl() {
        // The determinism guarantee documented in OBSERVABILITY.md: two
        // invocations with identical configuration write identical bytes.
        let (a, b) = (temp_path("det-a"), temp_path("det-b"));
        for path in [&a, &b] {
            let mut sink = JsonlSink::create(path).unwrap();
            for r in sample_records(0..3) {
                sink.write(&r).unwrap();
            }
            sink.finish().unwrap();
        }
        let (bytes_a, bytes_b) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        assert!(!bytes_a.is_empty());
        assert_eq!(bytes_a, bytes_b);
    }

    #[test]
    fn model_slugs_are_stable() {
        assert_eq!(model_slug(Model::MpCrash), "mp_cr");
        assert_eq!(model_slug(Model::MpByzantine), "mp_byz");
        assert_eq!(model_slug(Model::SmCrash), "sm_cr");
        assert_eq!(model_slug(Model::SmByzantine), "sm_byz");
    }
}
