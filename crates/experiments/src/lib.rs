//! # kset-experiments — regenerate every figure of the paper
//!
//! The executable side of the reproduction. Two complementary halves:
//!
//! * **Analytic**: the `fig1_lattice`, `fig2_mp_cr`, `fig4_mp_byz`,
//!   `fig5_sm_cr` and `fig6_sm_byz` binaries render the machine-checked
//!   validity lattice and the four solvability atlases at the paper's
//!   `n = 64` (backed by `kset-regions`).
//! * **Empirical**: [`cells`] runs the *designated* protocol of every
//!   solvable cell inside the simulator, under crash plans, Byzantine
//!   strategies and partition schedules, and checks Termination, Agreement
//!   and Validity on every run (`empirical_atlas` binary);
//!   [`counterexamples`] re-enacts the paper's impossibility constructions
//!   as concrete runs that demonstrably violate the predicted property
//!   just outside each protocol's proven region (`counterexamples`
//!   binary).
//!
//! The `reproduce_all` binary drives everything and emits the summary
//! tables recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

pub mod campaign;
pub mod cells;
pub mod checker;
pub mod engine;
pub mod figures;
pub mod counterexamples;
pub mod exhaustive;
pub mod explorer;
pub mod record_sink;
pub mod report;
