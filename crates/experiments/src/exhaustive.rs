//! Exhaustive small-model verification of the one-shot quorum protocols.
//!
//! Random and adversarial sampling (see [`crate::cells`]) can miss corner
//! schedules; for FloodMin and Protocols A and B we can do better. These
//! protocols are *one-shot*: every process broadcasts once at start, and a
//! correct process's decision is a pure function of the set of messages it
//! has processed when its quorum condition first holds. Deliveries to
//! different processes are independent in the asynchronous model, so
//! **every combination of per-process quorum sets is realizable by some
//! schedule** — and conversely, every schedule realizes some combination.
//!
//! Enumerating those combinations therefore covers the *entire* space of
//! asynchronous behaviours (for silent-crash fault patterns), turning the
//! agreement and validity claims of Lemmas 3.1, 3.7 and 3.8 into finite,
//! machine-checkable statements at small `n` — including exact tightness:
//! the worst-case number of distinct decisions jumps past `k` precisely
//! where the atlas stops being solvable.
//!
//! | protocol | processed set of process `p` |
//! |---|---|
//! | FloodMin | any `(n-t)`-subset of the live processes |
//! | Protocol A | any `(n-t)`-subset of the live processes |
//! | Protocol B | any subset containing `p` of size `>= n-t` |
//! | Protocol E | any subset of live writers containing `p` and the first writer `w` |
//! | Protocol F | as E, with size `>= n-t` |
//!
//! The shared-memory protocols carry one *global* constraint the
//! message-passing ones do not: every scan happens after the scanner's own
//! write, hence after the globally first write `w`, so `w`'s value is
//! visible in **every** scan (this is the linchpin of Lemmas 4.5/4.7).
//! The enumeration therefore quantifies over the choice of `w` in an outer
//! loop; within a fixed `w`, per-process visibility is independent again.

use kset_core::{RunRecord, ValidityCondition};

use crate::cells::DEFAULT_VALUE;

/// The quorum protocols amenable to exhaustive verification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuorumProtocol {
    /// Chaudhuri's protocol: decide the minimum of the quorum (Lemma 3.1).
    FloodMin,
    /// Protocol A: unanimity-or-default (Lemma 3.7).
    ProtocolA,
    /// Protocol B: own-value confirmation (Lemma 3.8).
    ProtocolB,
    /// Protocol E: write, scan once, unanimity-or-default (Lemma 4.5).
    ProtocolE,
    /// Protocol F: repeated scans with support counting (Lemma 4.7).
    ProtocolF,
}

impl QuorumProtocol {
    /// The protocol's display name, as used in reports and run records.
    pub fn name(self) -> &'static str {
        match self {
            QuorumProtocol::FloodMin => "FloodMin",
            QuorumProtocol::ProtocolA => "Protocol A",
            QuorumProtocol::ProtocolB => "Protocol B",
            QuorumProtocol::ProtocolE => "Protocol E",
            QuorumProtocol::ProtocolF => "Protocol F",
        }
    }

    /// Whether the protocol runs on shared memory (first-writer constraint
    /// applies).
    pub fn shared_memory(self) -> bool {
        matches!(self, QuorumProtocol::ProtocolE | QuorumProtocol::ProtocolF)
    }

    /// The decision of process `p` given the processed quorum `subset`.
    fn decide(self, inputs: &[u64], p: usize, subset: &[usize], t: usize) -> u64 {
        let n = inputs.len();
        match self {
            QuorumProtocol::FloodMin => subset
                .iter()
                .map(|&q| inputs[q])
                .min()
                .expect("quorums are non-empty"),
            QuorumProtocol::ProtocolA => {
                let first = inputs[subset[0]];
                if subset.iter().all(|&q| inputs[q] == first) {
                    first
                } else {
                    DEFAULT_VALUE
                }
            }
            QuorumProtocol::ProtocolB => {
                let own = inputs[p];
                let matching = subset.iter().filter(|&&q| inputs[q] == own).count();
                if matching >= n.saturating_sub(2 * t) {
                    own
                } else {
                    DEFAULT_VALUE
                }
            }
            QuorumProtocol::ProtocolE => {
                let first = inputs[subset[0]];
                if subset.iter().all(|&q| inputs[q] == first) {
                    first
                } else {
                    DEFAULT_VALUE
                }
            }
            QuorumProtocol::ProtocolF => {
                let r = subset.len();
                let own = inputs[p];
                if r <= t {
                    own
                } else {
                    let i = r - t;
                    let support = subset.iter().filter(|&&q| inputs[q] == own).count();
                    if support >= i {
                        own
                    } else {
                        DEFAULT_VALUE
                    }
                }
            }
        }
    }
}

/// Result of exhaustively checking one configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExhaustiveReport {
    /// Which protocol.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Fault budget (quorum parameter).
    pub t: usize,
    /// Inputs used.
    pub inputs: Vec<u64>,
    /// Silent-crashed processes.
    pub crashed: Vec<usize>,
    /// Number of distinct outcome profiles enumerated (the product of the
    /// per-process achievable-decision sets; every one is realizable by
    /// some schedule, and every schedule lands in one).
    pub profiles: u64,
    /// Worst-case number of distinct correct decisions over all schedules.
    pub worst_agreement: usize,
    /// Validity conditions violated in at least one schedule.
    pub violated_validities: Vec<ValidityCondition>,
}

impl ExhaustiveReport {
    /// Whether the configuration meets `SC(k, t, validity)` over *all*
    /// asynchronous schedules.
    pub fn satisfies(&self, k: usize, validity: ValidityCondition) -> bool {
        self.worst_agreement <= k && !self.violated_validities.contains(&validity)
    }
}

/// All `size`-subsets of `items`, in lexicographic order.
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination odometer.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The realizable processed sets of process `p`. For the shared-memory
/// protocols, `first_writer` is the process whose write completed first
/// (visible in every scan).
fn quorum_sets(
    protocol: QuorumProtocol,
    live: &[usize],
    p: usize,
    n: usize,
    t: usize,
    first_writer: Option<usize>,
) -> Vec<Vec<usize>> {
    match protocol {
        QuorumProtocol::FloodMin | QuorumProtocol::ProtocolA => combinations(live, n - t),
        QuorumProtocol::ProtocolB => {
            // Any processed set containing p of size n-t ..= live.len().
            let others: Vec<usize> = live.iter().copied().filter(|&q| q != p).collect();
            let mut sets = Vec::new();
            for extra in (n - t - 1)..=others.len() {
                for mut s in combinations(&others, extra) {
                    s.push(p);
                    s.sort_unstable();
                    sets.push(s);
                }
            }
            sets
        }
        QuorumProtocol::ProtocolE | QuorumProtocol::ProtocolF => {
            let w = first_writer.expect("SM protocols need the first writer");
            // Mandatory members: own register and the first writer's.
            let mut base: Vec<usize> = vec![p];
            if w != p {
                base.push(w);
            }
            let others: Vec<usize> =
                live.iter().copied().filter(|q| !base.contains(q)).collect();
            let min_size = if protocol == QuorumProtocol::ProtocolF {
                n - t
            } else {
                base.len()
            };
            let mut sets = Vec::new();
            for extra in 0..=others.len() {
                if base.len() + extra < min_size {
                    continue;
                }
                for mut s in combinations(&others, extra) {
                    s.extend_from_slice(&base);
                    s.sort_unstable();
                    sets.push(s);
                }
            }
            sets
        }
    }
}

/// The achievable decision set of every correct process — the atoms the
/// exhaustive verification enumerates over. Exposed so that simulator runs
/// can be cross-checked against the model: every decision observed in any
/// simulated schedule must lie in its process's achievable set.
///
/// Returns one sorted, deduplicated vector per live process, in live-id
/// order.
///
/// # Panics
///
/// Panics under the same conditions as [`verify`].
pub fn achievable_decisions(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
    crashed: &[usize],
) -> Vec<(usize, Vec<u64>)> {
    let n = inputs.len();
    assert!(t < n, "t must be smaller than n");
    assert!(crashed.len() <= t, "more crashes than the budget");
    let live: Vec<usize> = (0..n).filter(|p| !crashed.contains(p)).collect();
    let writers = first_writers(protocol, &live);
    live.iter()
        .map(|&p| {
            let mut decisions: Vec<u64> = writers
                .iter()
                .flat_map(|&w| {
                    quorum_sets(protocol, &live, p, n, t, w)
                        .iter()
                        .map(|subset| protocol.decide(inputs, p, subset, t))
                        .collect::<Vec<u64>>()
                })
                .collect();
            decisions.sort_unstable();
            decisions.dedup();
            (p, decisions)
        })
        .collect()
}

/// The first-writer choices to quantify over: one `None` for the
/// message-passing protocols (no global constraint), each live process for
/// the shared-memory ones.
fn first_writers(protocol: QuorumProtocol, live: &[usize]) -> Vec<Option<usize>> {
    if protocol.shared_memory() {
        live.iter().map(|&w| Some(w)).collect()
    } else {
        vec![None]
    }
}

/// Exhaustively enumerates every asynchronous schedule's outcome.
///
/// # Errors
///
/// Returns the (too large) profile count if the enumeration would exceed
/// `limit` combinations.
///
/// # Panics
///
/// Panics if `t >= n`, more than `t` processes are crashed, or a crashed
/// index is out of range.
pub fn verify(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
    crashed: &[usize],
    limit: u64,
) -> Result<ExhaustiveReport, u64> {
    let n = inputs.len();
    assert!(t < n, "t must be smaller than n");
    assert!(crashed.len() <= t, "more crashes than the budget");
    assert!(crashed.iter().all(|&c| c < n), "crashed index out of range");

    let live: Vec<usize> = (0..n).filter(|p| !crashed.contains(p)).collect();
    let correct = live.clone();

    let mut total_profiles: u64 = 0;
    let mut worst_agreement = 0;
    let mut violated: Vec<ValidityCondition> = Vec::new();

    // Outer quantifier: the first-completed writer for the shared-memory
    // protocols (None for message passing).
    for w in first_writers(protocol, &live) {
        // Achievable decisions per correct process under this choice. Two
        // schedules giving a process the same decision are equivalent for
        // agreement and validity, and decisions of different processes are
        // independently realizable — so the product of achievable-decision
        // sets covers exactly the space of observable outcomes, at a
        // fraction of the raw subset product.
        let candidates: Vec<Vec<u64>> = correct
            .iter()
            .map(|&p| {
                let mut decisions: Vec<u64> = quorum_sets(protocol, &live, p, n, t, w)
                    .iter()
                    .map(|subset| protocol.decide(inputs, p, subset, t))
                    .collect();
                decisions.sort_unstable();
                decisions.dedup();
                decisions
            })
            .collect();
        let profiles: u64 = candidates
            .iter()
            .map(|c| c.len() as u64)
            .try_fold(1u64, |acc, len| acc.checked_mul(len))
            .unwrap_or(u64::MAX);
        total_profiles = total_profiles.saturating_add(profiles);
        if total_profiles > limit {
            return Err(total_profiles);
        }

        // Odometer over the cartesian product of candidate sets.
        let mut choice = vec![0usize; correct.len()];
        'profiles: loop {
            let mut decisions: Vec<(usize, u64)> = Vec::with_capacity(correct.len());
            for (i, &p) in correct.iter().enumerate() {
                decisions.push((p, candidates[i][choice[i]]));
            }
            let mut distinct: Vec<u64> = decisions.iter().map(|&(_, d)| d).collect();
            distinct.sort_unstable();
            distinct.dedup();
            worst_agreement = worst_agreement.max(distinct.len());

            let record = RunRecord::new(inputs.to_vec())
                .with_faulty(crashed.iter().copied())
                .with_decisions(decisions);
            for v in ValidityCondition::ALL {
                if !violated.contains(&v) && !v.satisfied_by(&record) {
                    violated.push(v);
                }
            }

            // Advance.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    break 'profiles;
                }
                choice[i] += 1;
                if choice[i] < candidates[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
    violated.sort();
    Ok(ExhaustiveReport {
        protocol: protocol.name(),
        n,
        t,
        inputs: inputs.to_vec(),
        crashed: crashed.to_vec(),
        profiles: total_profiles,
        violated_validities: violated,
        worst_agreement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: u64 = 3_000_000;

    #[test]
    fn combinations_enumerate_binomially() {
        assert_eq!(combinations(&[0, 1, 2, 3], 2).len(), 6);
        assert_eq!(combinations(&[0, 1, 2], 3), vec![vec![0, 1, 2]]);
        assert!(combinations(&[0, 1], 3).is_empty());
    }

    #[test]
    fn floodmin_worst_case_is_exactly_t_plus_one() {
        // Lemma 3.1's bound is tight: with all-distinct inputs the maximum
        // number of distinct decisions over ALL schedules is exactly t+1.
        let inputs: Vec<u64> = (0..5).collect();
        for t in 1..=2usize {
            let report = verify(QuorumProtocol::FloodMin, &inputs, t, &[], LIMIT).unwrap();
            assert_eq!(report.worst_agreement, t + 1, "t = {t}");
            // RV1 always holds (decisions are inputs).
            assert!(!report.violated_validities.contains(&ValidityCondition::RV1));
            assert!(report.satisfies(t + 1, ValidityCondition::RV1));
            assert!(!report.satisfies(t, ValidityCondition::RV1));
        }
    }

    #[test]
    fn floodmin_with_crashes_still_meets_the_bound() {
        let inputs: Vec<u64> = (0..6).collect();
        let report = verify(QuorumProtocol::FloodMin, &inputs, 2, &[1, 4], LIMIT).unwrap();
        assert!(report.worst_agreement <= 3);
        assert!(report.satisfies(3, ValidityCondition::RV1));
    }

    #[test]
    fn protocol_a_exhaustive_inside_and_at_the_boundary() {
        // n = 6, k = 2: solvable needs 2t < 6, i.e. t <= 2; t = 3 is the
        // open boundary point (k t = (k-1) n).
        let inputs = [1u64, 1, 1, 2, 2, 2];
        let inside = verify(QuorumProtocol::ProtocolA, &inputs, 2, &[], LIMIT).unwrap();
        assert!(inside.worst_agreement <= 2, "{inside:?}");
        assert!(inside.satisfies(2, ValidityCondition::RV2));

        let boundary = verify(QuorumProtocol::ProtocolA, &inputs, 3, &[], LIMIT).unwrap();
        // At the open point Protocol A itself fails SC(2): two disjoint
        // unanimous quorums plus the default give 3 distinct decisions.
        assert_eq!(boundary.worst_agreement, 3, "{boundary:?}");
    }

    #[test]
    fn protocol_a_rv2_never_violated_within_its_region() {
        // Unanimous inputs: RV2 binds; exhaustively no schedule breaks it.
        let inputs = [7u64; 6];
        let report = verify(QuorumProtocol::ProtocolA, &inputs, 2, &[0, 1], LIMIT).unwrap();
        assert_eq!(report.worst_agreement, 1);
        assert!(report.violated_validities.is_empty());
    }

    #[test]
    fn protocol_b_exhaustive_sv2_inside_its_region() {
        // n = 6, t = 1: 2kt < (k-1)n for k = 2 (4 < 6). All correct share 5.
        let inputs = [9u64, 5, 5, 5, 5, 5];
        let report = verify(QuorumProtocol::ProtocolB, &inputs, 1, &[0], LIMIT).unwrap();
        assert!(report.worst_agreement <= 2, "{report:?}");
        assert!(!report.violated_validities.contains(&ValidityCondition::SV2));
        assert!(report.satisfies(2, ValidityCondition::SV2));
    }

    #[test]
    fn protocol_b_collapse_outside_its_region() {
        // n = 4, t = 2 (n <= 2t): every process self-confirms; with all
        // distinct inputs the worst case is 4 distinct decisions.
        let inputs = [1u64, 2, 3, 4];
        let report = verify(QuorumProtocol::ProtocolB, &inputs, 2, &[], LIMIT).unwrap();
        assert_eq!(report.worst_agreement, 4);
    }

    #[test]
    fn protocol_e_worst_case_is_exactly_two_for_all_t() {
        // Lemma 4.5 exhaustively: no schedule yields more than {v, v0},
        // for every fault budget including t = n - 1, because the first
        // completed write is visible in every scan.
        let inputs = [0u64, 1, 0, 1, 2];
        for t in 1..5usize {
            let report = verify(QuorumProtocol::ProtocolE, &inputs, t, &[], LIMIT).unwrap();
            assert!(report.worst_agreement <= 2, "t = {t}: {report:?}");
            assert!(
                !report.violated_validities.contains(&ValidityCondition::RV2),
                "t = {t}"
            );
            assert!(report.satisfies(2, ValidityCondition::RV2), "t = {t}");
        }
        // And the bound is achieved (some schedule defaults while another
        // process sees the unanimous prefix).
        let report = verify(QuorumProtocol::ProtocolE, &inputs, 2, &[], LIMIT).unwrap();
        assert_eq!(report.worst_agreement, 2);
    }

    #[test]
    fn protocol_e_unanimous_inputs_decide_only_that_value() {
        let inputs = [6u64; 5];
        let report = verify(QuorumProtocol::ProtocolE, &inputs, 4, &[0], LIMIT).unwrap();
        assert_eq!(report.worst_agreement, 1);
        assert!(report.violated_validities.is_empty());
    }

    #[test]
    fn first_writer_constraint_is_what_caps_protocol_e() {
        // Without the first-writer constraint, two processes could each
        // see only their own (distinct) values and decide them — three
        // distinct decisions with the default. The model must NOT contain
        // that profile: every achievable pair of non-default decisions
        // shares the first writer's value.
        let inputs = [1u64, 2, 3];
        let report = verify(QuorumProtocol::ProtocolE, &inputs, 2, &[], LIMIT).unwrap();
        assert!(report.worst_agreement <= 2, "{report:?}");
    }

    #[test]
    fn protocol_f_worst_case_is_t_plus_2_inside_its_region() {
        // n = 6, t = 2 (2t < n): Lemma 4.7's counting argument caps the
        // distinct decisions at t + 2 (own values pinned to the first t+1
        // completed writes, plus the default).
        let inputs = [1u64, 2, 3, 4, 5, 6];
        let report = verify(QuorumProtocol::ProtocolF, &inputs, 2, &[], LIMIT).unwrap();
        assert!(report.worst_agreement <= 4, "{report:?}");
        assert!(report.satisfies(4, ValidityCondition::SV2));
    }

    #[test]
    fn protocol_f_collapses_in_the_frozen_majority_regime() {
        // n = 6, t = 3 (2t >= n, Lemma 4.3's region): a scan of size
        // n - t = 3 <= t hits the decide-own branch; with distinct inputs
        // every process can self-decide — n distinct decisions.
        let inputs = [1u64, 2, 3, 4, 5, 6];
        let report = verify(QuorumProtocol::ProtocolF, &inputs, 3, &[], LIMIT).unwrap();
        assert_eq!(report.worst_agreement, 6, "{report:?}");
    }

    #[test]
    fn protocol_f_sv2_never_violated() {
        // All correct share 7 (the crashed process deviates): SV2 holds in
        // every schedule.
        let inputs = [9u64, 7, 7, 7, 7, 7];
        let report = verify(QuorumProtocol::ProtocolF, &inputs, 1, &[0], LIMIT).unwrap();
        assert!(
            !report.violated_validities.contains(&ValidityCondition::SV2),
            "{report:?}"
        );
        assert_eq!(report.worst_agreement, 1);
    }

    #[test]
    fn enumeration_limit_is_respected() {
        let inputs: Vec<u64> = (0..9).collect();
        let err = verify(QuorumProtocol::FloodMin, &inputs, 4, &[], 1000).unwrap_err();
        assert!(err > 1000);
    }

    #[test]
    fn exhaustive_agrees_with_the_atlas_frontier() {
        use kset_regions::{classify, CellClass, Model};
        // Sweep t for FloodMin at n = 5, k = t + 1 vs k = t: exhaustive
        // worst-case agreement matches the atlas's solvable/impossible
        // split on the RV1 panel.
        let inputs: Vec<u64> = (0..5).collect();
        for t in 1..=2usize {
            let report = verify(QuorumProtocol::FloodMin, &inputs, t, &[], LIMIT).unwrap();
            let solvable_k = t + 1;
            assert!(report.satisfies(solvable_k, ValidityCondition::RV1));
            assert!(matches!(
                classify(Model::MpCrash, ValidityCondition::RV1, 5, solvable_k, t),
                CellClass::Solvable(_)
            ));
            if t >= 2 {
                let impossible_k = t;
                assert!(!report.satisfies(impossible_k, ValidityCondition::RV1));
                assert!(matches!(
                    classify(Model::MpCrash, ValidityCondition::RV1, 5, impossible_k, t),
                    CellClass::Impossible(_)
                ));
            }
        }
    }
}
