//! Shared driver for the four atlas figure binaries.

use std::io::Write as _;

use kset_regions::{render, Atlas, Model};

/// Options of a figure binary, parsed from the command line.
#[derive(Clone, Debug)]
pub struct FigureOptions {
    /// System size (the paper's figures use 64).
    pub n: usize,
    /// Optional path for a CSV dump of the atlas.
    pub csv: Option<String>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions { n: 64, csv: None }
    }
}

impl FigureOptions {
    /// Parses `[n] [--csv FILE]` from an argument iterator (without the
    /// program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on malformed arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = FigureOptions::default();
        let mut args = args.peekable();
        if let Some(first) = args.peek() {
            if !first.starts_with("--") {
                let n: usize = first
                    .parse()
                    .map_err(|_| format!("expected a number for n, got {first:?}"))?;
                if n < 3 {
                    return Err("n must be at least 3".into());
                }
                opts.n = n;
                args.next();
            }
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--csv" => {
                    opts.csv = Some(args.next().ok_or("--csv requires a file path")?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }
}

/// Computes and prints the atlas of `model`; writes the CSV if requested.
///
/// This is the whole body of the `fig2_mp_cr` / `fig4_mp_byz` /
/// `fig5_sm_cr` / `fig6_sm_byz` binaries.
///
/// # Errors
///
/// Returns an error string for bad arguments or CSV I/O failures.
pub fn run_figure(model: Model, args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = FigureOptions::parse(args)?;
    let atlas = Atlas::compute(model, opts.n);
    print!("{}", render::atlas_ascii(&atlas));
    if let Some(path) = opts.csv {
        let csv = render::atlas_csv(&atlas);
        let mut f = std::fs::File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
        f.write_all(csv.as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FigureOptions, String> {
        FigureOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_is_paper_n() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.n, 64);
        assert!(opts.csv.is_none());
    }

    #[test]
    fn parses_n_and_csv() {
        let opts = parse(&["16", "--csv", "/tmp/out.csv"]).unwrap();
        assert_eq!(opts.n, 16);
        assert_eq!(opts.csv.as_deref(), Some("/tmp/out.csv"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&["abc"]).is_err());
        assert!(parse(&["2"]).is_err());
        assert!(parse(&["--csv"]).is_err());
        assert!(parse(&["--what"]).is_err());
    }
}
