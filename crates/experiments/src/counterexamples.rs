//! Executable re-enactments of the paper's impossibility constructions.
//!
//! Each function stages the run described in one impossibility proof —
//! partition schedules, crash placements, Byzantine mimicry — against the
//! protocol whose bound the lemma shows tight, and returns a
//! [`Counterexample`] recording the violated property. The test suite
//! asserts every construction produces exactly the predicted violation;
//! the `counterexamples` binary prints them.

use kset_adversary::{plans, GroupMimic, Silent};
use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
use kset_net::{DynMpProcess, MpSystem};
use kset_protocols::echo::LEcho;
use kset_protocols::{CMsg, FloodMin, ProtocolA, ProtocolB, ProtocolC, ProtocolE, ProtocolF};
use kset_shmem::{DynSmProcess, SmSystem};
use kset_sim::{DelayRule, FaultPlan, SimError, Until};

use crate::cells::DEFAULT_VALUE;

/// Which `SC` condition a construction violates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Violated {
    /// More than `k` distinct correct decisions.
    Agreement,
    /// The validity condition failed.
    Validity,
    /// Some correct process never decided.
    Termination,
}

/// One staged impossibility construction and its observed outcome.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The lemma whose construction this re-enacts.
    pub lemma: &'static str,
    /// Short description of the staging.
    pub construction: &'static str,
    /// The spec the run was checked against.
    pub spec: String,
    /// Distinct values decided by correct processes.
    pub correct_decisions: Vec<u64>,
    /// The property that broke, as predicted by the lemma.
    pub violated: Violated,
    /// The checker's full report for the run.
    pub report: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} — {}", self.lemma, self.construction)?;
        writeln!(f, "  spec:      {}", self.spec)?;
        writeln!(f, "  decisions: {:?}", self.correct_decisions)?;
        writeln!(f, "  violated:  {:?}", self.violated)?;
        write!(f, "  checker:   {}", self.report)
    }
}

#[allow(clippy::too_many_arguments)]
fn build(
    lemma: &'static str,
    construction: &'static str,
    spec: ProblemSpec,
    inputs: Vec<u64>,
    decisions: std::collections::BTreeMap<usize, u64>,
    faulty: Vec<usize>,
    terminated: bool,
    violated: Violated,
) -> Counterexample {
    let record = RunRecord::new(inputs)
        .with_faulty(faulty)
        .with_decisions(decisions.clone())
        .with_terminated(terminated);
    let report = spec.check(&record);
    let correct_decisions = record.correct_decision_set();
    Counterexample {
        lemma,
        construction,
        spec: spec.to_string(),
        correct_decisions,
        violated,
        report: report.to_string(),
    }
}

/// **Lemma 3.3 (and Fig. 3)** — the partition run against Protocol A just
/// past its RV2/WV2 bound.
///
/// `n = 6`, `t = 4` (so `k t > (k-1) n` for `k = 2`), quorum `n - t = 2`:
/// three groups of two, each unanimous on a different value, each isolated
/// until it decides. Every group reaches its quorum internally and decides
/// its own value — three distinct decisions against `SC(2)`.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_3_partition_run() -> Result<Counterexample, SimError> {
    let (n, k, t) = (6, 2, 4);
    let inputs = vec![1u64, 1, 2, 2, 3, 3];
    let outcome = MpSystem::new(n)
        .seed(0)
        .delay_rule(DelayRule::isolate_until_decided(vec![0, 1]))
        .delay_rule(DelayRule::isolate_until_decided(vec![2, 3]))
        .delay_rule(DelayRule::isolate_until_decided(vec![4, 5]))
        .run_with(|p| ProtocolA::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::WV2).expect("valid spec");
    Ok(build(
        "Lemma 3.3",
        "three isolated unanimous pairs vs Protocol A at t >= ((k-1)n+1)/k (the Fig. 3 run)",
        spec,
        inputs,
        outcome.decisions,
        vec![],
        outcome.terminated,
        Violated::Agreement,
    ))
}

/// **Lemma 3.5** — no protocol achieves SV1: crash the decided-upon
/// process right after its last send.
///
/// FloodMin with all-distinct inputs: everyone decides the minimum input,
/// owned by process 0 — which crashed immediately after broadcasting.
/// The decision is a *faulty* process's input: SV1 violated.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_5_crash_after_last_send() -> Result<Counterexample, SimError> {
    let (n, k, t) = (4, 2, 1);
    let inputs = vec![10u64, 20, 30, 40];
    let outcome = MpSystem::new(n)
        .seed(1)
        .fault_plan(plans::crash_after_initial_broadcast(n, 0))
        .run_with(|p| FloodMin::boxed(n, t, inputs[p]))?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV1).expect("valid spec");
    Ok(build(
        "Lemma 3.5",
        "minimum-input owner crashes right after its last send; its value is still decided",
        spec,
        inputs,
        outcome.decisions,
        vec![0],
        outcome.terminated,
        Violated::Validity,
    ))
}

/// **Lemma 3.6** — Protocol B past its SV2 bound: with `n <= 2t` the
/// own-value confirmation threshold `n - 2t` collapses to zero and every
/// process confirms itself.
///
/// `n = 4`, `t = 2`, all inputs distinct: four decisions against `SC(2)`.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_6_protocol_b_past_bound() -> Result<Counterexample, SimError> {
    let (n, k, t) = (4, 2, 2);
    let inputs = vec![1u64, 2, 3, 4];
    let outcome = MpSystem::new(n)
        .seed(2)
        .run_with(|p| ProtocolB::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).expect("valid spec");
    Ok(build(
        "Lemma 3.6",
        "Protocol B with n <= 2t: the n-2t threshold vanishes, every process self-confirms",
        spec,
        inputs,
        outcome.decisions,
        vec![],
        outcome.terminated,
        Violated::Agreement,
    ))
}

/// **Lemma 3.9** — Protocol A under Byzantine group mimicry: the faulty
/// set shows each isolated group a run in which "everyone" shares that
/// group's value.
///
/// `n = 7`, protocol `t = 4` (quorum 3), one actual Byzantine process:
/// three groups of two, each completed to a quorum by the mimic — three
/// distinct decisions against `SC(2)`.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_9_group_mimicry() -> Result<Counterexample, SimError> {
    let (n, k, t) = (7, 2, 4);
    let inputs = vec![0u64, 1, 1, 2, 2, 3, 3];
    let outcome = MpSystem::new(n)
        .seed(3)
        .fault_plan(FaultPlan::byzantine(n, &[0]))
        .delay_rule(DelayRule::isolate_with_allies(vec![1, 2], vec![0]))
        .delay_rule(DelayRule::isolate_with_allies(vec![3, 4], vec![0]))
        .delay_rule(DelayRule::isolate_with_allies(vec![5, 6], vec![0]))
        .run_with(|p| -> DynMpProcess<u64, u64> {
            if p == 0 {
                Box::new(GroupMimic::new(
                    n,
                    &[(vec![1, 2], 1), (vec![3, 4], 2), (vec![5, 6], 3)],
                ))
            } else {
                ProtocolA::boxed(n, t, inputs[p], DEFAULT_VALUE)
            }
        })?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::WV2).expect("valid spec");
    Ok(build(
        "Lemma 3.9",
        "a Byzantine mimic completes each isolated pair's quorum with that pair's value",
        spec,
        inputs,
        outcome.decisions,
        vec![0],
        outcome.terminated,
        Violated::Agreement,
    ))
}

/// **Lemma 3.10** — RV1 is unachievable under Byzantine failures: a liar
/// gets a value decided that is *nobody's* input.
///
/// FloodMin with a Byzantine process claiming a tiny forged input: the
/// forged value becomes the minimum and is decided, violating RV1 against
/// the true inputs.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_10_input_liar() -> Result<Counterexample, SimError> {
    let (n, k, t) = (4, 3, 1);
    // True inputs: the Byzantine process 0's "real" input is 100.
    let inputs = vec![100u64, 101, 102, 103];
    let outcome = MpSystem::new(n)
        .seed(4)
        .fault_plan(FaultPlan::byzantine(n, &[0]))
        .run_with(|p| -> DynMpProcess<u64, u64> {
            if p == 0 {
                // Behaves exactly like FloodMin, but claims input 1.
                FloodMin::boxed(n, t, 1)
            } else {
                FloodMin::boxed(n, t, inputs[p])
            }
        })?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV1).expect("valid spec");
    Ok(build(
        "Lemma 3.10",
        "a Byzantine process runs the protocol on a forged input; the forgery gets decided",
        spec,
        inputs,
        outcome.decisions,
        vec![0],
        outcome.terminated,
        Violated::Validity,
    ))
}

/// **Lemma 3.14 boundary** — the `l`-echo broadcast loses liveness outside
/// `t < l n / (2l + 1)`: with `n = 9, t = 3, l = 1` the acceptance
/// threshold (7) exceeds the number of correct processes (6), so no value
/// is ever accepted and Protocol C(1) cannot terminate.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_3_14_echo_liveness_boundary() -> Result<Counterexample, SimError> {
    let (n, k, t, l) = (9, 2, 3, 1);
    assert!(!LEcho::<u64>::new(n, t, l).parameters_sound());
    let inputs = vec![5u64; n];
    let outcome = MpSystem::new(n)
        .seed(5)
        .fault_plan(plans::first_t_byzantine(n, t))
        .run_with(|p| -> DynMpProcess<CMsg<u64>, u64> {
            if p < t {
                Box::new(Silent::new())
            } else {
                ProtocolC::boxed(n, t, l, inputs[p], DEFAULT_VALUE)
            }
        })?;
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).expect("valid spec");
    Ok(build(
        "Lemma 3.14",
        "1-echo with t >= n/3: acceptance threshold exceeds the correct population",
        spec,
        inputs,
        outcome.decisions,
        (0..t).collect(),
        outcome.terminated,
        Violated::Termination,
    ))
}

/// **Lemma 4.3** — Protocol F past its bound in shared memory: with
/// `t >= n/2` and `t >= k`, freeze everyone but `t + 1` distinct-valued
/// processes; each sees `r = t + 1` written registers and its own value
/// has the single vote it needs.
///
/// `n = 6, t = 3, k = 3`: four self-decisions against `SC(3)`.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_4_3_frozen_majority() -> Result<Counterexample, SimError> {
    let (n, k, t) = (6, 3, 3);
    let inputs = vec![1u64, 2, 3, 4, 9, 9];
    let group: Vec<usize> = (0..4).collect();
    let outcome = SmSystem::new(n)
        .seed(6)
        .delay_rule(DelayRule::freeze_process(4, Until::AllDecided(group.clone())))
        .delay_rule(DelayRule::freeze_process(5, Until::AllDecided(group)))
        .run_with(|p| ProtocolF::boxed(n, t, inputs[p], DEFAULT_VALUE))?
        .into_run();
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).expect("valid spec");
    Ok(build(
        "Lemma 4.3",
        "t+1 distinct writers run alone: every scan returns r = t+1 and self-support suffices",
        spec,
        inputs,
        outcome.decisions,
        vec![],
        outcome.terminated,
        Violated::Agreement,
    ))
}

/// **Lemma 4.9** — Protocol E does not give RV2 against Byzantine writers
/// (which is why SM/Byz only gets WV2 from it): a Byzantine process whose
/// nominal input matches everyone else's writes a *different* value first,
/// and correct scans fall to the default.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn lemma_4_9_byzantine_first_write() -> Result<Counterexample, SimError> {
    use kset_adversary::Scribbler;
    let (n, k, t) = (4, 2, 1);
    // Nominal inputs: everyone starts with 7 — the RV2 premise binds.
    let inputs = vec![7u64; n];
    let outcome = SmSystem::new(n)
        .scheduler(kset_sim::FifoScheduler::new())
        .fault_plan(FaultPlan::byzantine(n, &[0]))
        .run_with(|p| -> DynSmProcess<u64, u64> {
            if p == 0 {
                Box::new(Scribbler::new(vec![999]))
            } else {
                ProtocolE::boxed(n, t, inputs[p], DEFAULT_VALUE)
            }
        })?
        .into_run();
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV2).expect("valid spec");
    Ok(build(
        "Lemma 4.9",
        "a Byzantine writer lies first; unanimous correct scans still see the lie and default",
        spec,
        inputs,
        outcome.decisions,
        vec![0],
        outcome.terminated,
        Violated::Validity,
    ))
}

/// All constructions, in paper order.
///
/// # Errors
///
/// Propagates the first simulator failure (none are expected).
pub fn all() -> Result<Vec<Counterexample>, SimError> {
    Ok(vec![
        lemma_3_3_partition_run()?,
        lemma_3_5_crash_after_last_send()?,
        lemma_3_6_protocol_b_past_bound()?,
        lemma_3_9_group_mimicry()?,
        lemma_3_10_input_liar()?,
        lemma_3_14_echo_liveness_boundary()?,
        lemma_4_3_frozen_majority()?,
        lemma_4_9_byzantine_first_write()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_3_3_yields_three_decisions_against_k_2() {
        let cx = lemma_3_3_partition_run().unwrap();
        assert_eq!(cx.correct_decisions, vec![1, 2, 3]);
        assert!(cx.report.contains("3 distinct values decided"));
    }

    #[test]
    fn lemma_3_5_decides_a_faulty_input() {
        let cx = lemma_3_5_crash_after_last_send().unwrap();
        // The crashed process's input 10 is decided by at least one
        // survivor; 20 may also appear (k = 2 allows it). The violation is
        // SV1, not agreement.
        assert!(cx.correct_decisions.contains(&10));
        assert!(cx.correct_decisions.len() <= 2);
        assert!(cx.report.contains("SV1"));
    }

    #[test]
    fn lemma_3_6_self_confirmation_explosion() {
        let cx = lemma_3_6_protocol_b_past_bound().unwrap();
        assert_eq!(cx.correct_decisions.len(), 4);
        assert!(cx.report.contains("agreement allows 2"));
    }

    #[test]
    fn lemma_3_9_mimicry_yields_three_decisions() {
        let cx = lemma_3_9_group_mimicry().unwrap();
        assert_eq!(cx.correct_decisions, vec![1, 2, 3]);
        assert!(cx.report.contains("agreement allows 2"));
    }

    #[test]
    fn lemma_3_10_decides_a_forged_value() {
        let cx = lemma_3_10_input_liar().unwrap();
        assert!(cx.correct_decisions.contains(&1));
        assert!(cx.report.contains("RV1"));
    }

    #[test]
    fn lemma_3_14_starves_acceptance() {
        let cx = lemma_3_14_echo_liveness_boundary().unwrap();
        assert!(cx.correct_decisions.is_empty());
        assert!(cx.report.contains("never decided"));
    }

    #[test]
    fn lemma_4_3_yields_four_self_decisions() {
        let cx = lemma_4_3_frozen_majority().unwrap();
        // The four isolated writers each decide their own value; the two
        // released processes may add a default on top.
        for v in 1..=4u64 {
            assert!(cx.correct_decisions.contains(&v), "{v} missing");
        }
        assert!(cx.correct_decisions.len() >= 4);
        assert!(cx.report.contains("agreement allows 3"));
    }

    #[test]
    fn lemma_4_9_breaks_rv2_but_not_agreement() {
        let cx = lemma_4_9_byzantine_first_write().unwrap();
        assert!(cx.correct_decisions.contains(&DEFAULT_VALUE));
        assert!(cx.report.contains("RV2"));
    }

    #[test]
    fn all_returns_every_construction() {
        let list = all().unwrap();
        assert_eq!(list.len(), 8);
        // Every construction's checker report is a genuine violation.
        for cx in &list {
            assert_ne!(cx.report, "ok", "{} must violate something", cx.lemma);
        }
    }
}
