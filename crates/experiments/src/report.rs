//! Plain-text table formatting for experiment summaries.

use crate::cells::CellValidation;

/// Formats a batch of cell validations as an aligned text table with a
/// totals row.
pub fn validation_table(rows: &[CellValidation]) -> String {
    let mut out = String::new();
    out.push_str(
        "model   validity  n   k   t   protocol          runs  violations\n\
         ------  --------  --  --  --  ----------------  ----  ----------\n",
    );
    let mut total_runs = 0;
    let mut total_viol = 0;
    for r in rows {
        out.push_str(&format!(
            "{:<6}  {:<8}  {:<2}  {:<2}  {:<2}  {:<16}  {:<4}  {}\n",
            r.model.shorthand(),
            r.validity.name(),
            r.n,
            r.k,
            r.t,
            r.protocol,
            r.runs,
            r.violations
        ));
        total_runs += r.runs;
        total_viol += r.violations;
    }
    out.push_str(&format!(
        "total: {} cells, {} runs, {} violations\n",
        rows.len(),
        total_runs,
        total_viol
    ));
    out
}

/// Compact per-protocol rollup: `(protocol, cells, runs, violations)`.
pub fn rollup(rows: &[CellValidation]) -> Vec<(&'static str, usize, usize, usize)> {
    let mut agg: Vec<(&'static str, usize, usize, usize)> = Vec::new();
    for r in rows {
        if let Some(e) = agg.iter_mut().find(|e| e.0 == r.protocol) {
            e.1 += 1;
            e.2 += r.runs;
            e.3 += r.violations;
        } else {
            agg.push((r.protocol, 1, r.runs, r.violations));
        }
    }
    agg.sort_by_key(|e| e.0);
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::ValidityCondition;
    use kset_regions::Model;

    fn row(protocol: &'static str, runs: usize, violations: usize) -> CellValidation {
        CellValidation {
            model: Model::MpCrash,
            validity: ValidityCondition::RV1,
            n: 8,
            k: 3,
            t: 2,
            protocol,
            runs,
            violations,
            first_violation: None,
        }
    }

    #[test]
    fn table_has_header_rows_and_totals() {
        let rows = vec![row("FloodMin", 5, 0), row("Protocol A", 5, 1)];
        let table = validation_table(&rows);
        assert!(table.contains("FloodMin"));
        assert!(table.contains("Protocol A"));
        assert!(table.contains("total: 2 cells, 10 runs, 1 violations"));
    }

    #[test]
    fn rollup_aggregates_by_protocol() {
        let rows = vec![
            row("FloodMin", 5, 0),
            row("FloodMin", 3, 0),
            row("Protocol A", 2, 1),
        ];
        let agg = rollup(&rows);
        assert_eq!(agg, vec![("FloodMin", 2, 8, 0), ("Protocol A", 1, 2, 1)]);
    }
}
