//! Plain-text table formatting for experiment summaries.

use std::collections::BTreeMap;

use kset_sim::Histogram;

use crate::cells::CellValidation;
use crate::record_sink::RunRecord;

/// Formats a batch of cell validations as an aligned text table with a
/// totals row.
pub fn validation_table(rows: &[CellValidation]) -> String {
    let mut out = String::new();
    out.push_str(
        "model   validity  n   k   t   protocol          runs  violations\n\
         ------  --------  --  --  --  ----------------  ----  ----------\n",
    );
    let mut total_runs = 0;
    let mut total_viol = 0;
    for r in rows {
        out.push_str(&format!(
            "{:<6}  {:<8}  {:<2}  {:<2}  {:<2}  {:<16}  {:<4}  {}\n",
            r.model.shorthand(),
            r.validity.name(),
            r.n,
            r.k,
            r.t,
            r.protocol,
            r.runs,
            r.violations
        ));
        total_runs += r.runs;
        total_viol += r.violations;
    }
    out.push_str(&format!(
        "total: {} cells, {} runs, {} violations\n",
        rows.len(),
        total_runs,
        total_viol
    ));
    out
}

/// Compact per-protocol rollup: `(protocol, cells, runs, violations)`.
pub fn rollup(rows: &[CellValidation]) -> Vec<(&'static str, usize, usize, usize)> {
    let mut agg: Vec<(&'static str, usize, usize, usize)> = Vec::new();
    for r in rows {
        if let Some(e) = agg.iter_mut().find(|e| e.0 == r.protocol) {
            e.1 += 1;
            e.2 += r.runs;
            e.3 += r.violations;
        } else {
            agg.push((r.protocol, 1, r.runs, r.violations));
        }
    }
    agg.sort_by_key(|e| e.0);
    agg
}

/// Per-protocol metrics aggregated across a batch of [`RunRecord`]s.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsRollup {
    /// Runs contributing to this row (only runs with metrics count).
    pub runs: usize,
    /// Decision latencies merged across all runs, in virtual ticks.
    pub decision_latency: Histogram,
    /// Message delivery latencies merged across all runs.
    pub delivery_latency: Histogram,
    /// Total messages sent across all runs.
    pub messages_sent: u64,
    /// Total decisions made across all runs.
    pub decisions: u64,
    /// Largest pending pool seen in any run.
    pub peak_pending: u64,
}

impl MetricsRollup {
    /// Messages sent per decision, rounded down (0 when nothing decided).
    pub fn messages_per_decision(&self) -> u64 {
        self.messages_sent.checked_div(self.decisions).unwrap_or(0)
    }
}

/// Aggregates the metrics of a batch of records per protocol. Records
/// without metrics (collection disabled) are skipped.
pub fn metrics_rollup(records: &[RunRecord]) -> BTreeMap<String, MetricsRollup> {
    let mut agg: BTreeMap<String, MetricsRollup> = BTreeMap::new();
    for r in records {
        let Some(m) = &r.metrics else { continue };
        let e = agg.entry(r.protocol.clone()).or_default();
        e.runs += 1;
        e.decision_latency.merge(&m.decision_latency);
        e.delivery_latency.merge(&m.delivery_latency);
        e.messages_sent += m.total_messages_sent();
        e.decisions += m.decisions();
        e.peak_pending = e.peak_pending.max(m.peak_pending);
    }
    agg
}

/// Formats the per-protocol metrics rollup as an aligned text table:
/// decision latency quantiles (virtual ticks), messages per decision, and
/// peak pending-pool depth.
pub fn metrics_table(records: &[RunRecord]) -> String {
    let agg = metrics_rollup(records);
    let mut out = String::new();
    out.push_str(
        "protocol          runs  decide-p50  decide-p95  decide-max  msgs/decision  peak-pending\n\
         ----------------  ----  ----------  ----------  ----------  -------------  ------------\n",
    );
    if agg.is_empty() {
        out.push_str("(no records carried metrics)\n");
        return out;
    }
    for (protocol, e) in &agg {
        out.push_str(&format!(
            "{:<16}  {:<4}  {:<10}  {:<10}  {:<10}  {:<13}  {}\n",
            protocol,
            e.runs,
            e.decision_latency.quantile(0.5),
            e.decision_latency.quantile(0.95),
            e.decision_latency.max(),
            e.messages_per_decision(),
            e.peak_pending
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::ValidityCondition;
    use kset_regions::Model;

    fn row(protocol: &'static str, runs: usize, violations: usize) -> CellValidation {
        CellValidation {
            model: Model::MpCrash,
            validity: ValidityCondition::RV1,
            n: 8,
            k: 3,
            t: 2,
            protocol,
            runs,
            violations,
            first_violation: None,
        }
    }

    #[test]
    fn table_has_header_rows_and_totals() {
        let rows = vec![row("FloodMin", 5, 0), row("Protocol A", 5, 1)];
        let table = validation_table(&rows);
        assert!(table.contains("FloodMin"));
        assert!(table.contains("Protocol A"));
        assert!(table.contains("total: 2 cells, 10 runs, 1 violations"));
    }

    #[test]
    fn rollup_aggregates_by_protocol() {
        let rows = vec![
            row("FloodMin", 5, 0),
            row("FloodMin", 3, 0),
            row("Protocol A", 2, 1),
        ];
        let agg = rollup(&rows);
        assert_eq!(agg, vec![("FloodMin", 2, 8, 0), ("Protocol A", 1, 2, 1)]);
    }

    #[test]
    fn metrics_rollup_merges_real_runs() {
        use crate::cells::validate_cell_with;
        use kset_sim::MetricsConfig;

        let mut records = Vec::new();
        validate_cell_with(
            Model::MpCrash,
            ValidityCondition::RV1,
            6,
            4,
            3,
            0..4,
            MetricsConfig::enabled(),
            |r| records.push(r),
        )
        .unwrap()
        .expect("solvable cell");
        assert_eq!(records.len(), 4);
        let agg = metrics_rollup(&records);
        let e = &agg["FloodMin"];
        assert_eq!(e.runs, 4);
        assert!(e.decisions > 0);
        assert!(e.messages_sent > 0);
        assert!(e.decision_latency.count() == e.decisions);
        let table = metrics_table(&records);
        assert!(table.contains("FloodMin"));
        assert!(table.contains("msgs/decision"));
    }

    #[test]
    fn metrics_table_degrades_without_metrics() {
        use crate::cells::validate_cell_with;
        use kset_sim::MetricsConfig;

        let mut records = Vec::new();
        validate_cell_with(
            Model::MpCrash,
            ValidityCondition::RV1,
            6,
            4,
            3,
            0..2,
            MetricsConfig::disabled(),
            |r| records.push(r),
        )
        .unwrap()
        .expect("solvable cell");
        assert!(records.iter().all(|r| r.metrics.is_none()));
        assert!(metrics_table(&records).contains("no records carried metrics"));
    }
}
