//! Schedule-space model checking of the *real* simulator.
//!
//! The repository verifies protocols three ways, with complementary trust
//! stories:
//!
//! * [`crate::exhaustive`] enumerates outcome *profiles* analytically — it
//!   argues on paper which quorums are schedulable, then checks every
//!   combination. Fast and complete, but it trusts a hand-written model of
//!   each protocol's decision function.
//! * [`crate::explorer`] (`probe_cell`) throws random seeds and partition
//!   schedules at a cell — it runs the real code, but only samples the
//!   schedule space.
//! * This module closes the gap: it drives the **actual**
//!   [`kset_net::MpSystem`] / [`kset_shmem::SmSystem`] kernels through
//!   *every* scheduler decision at small `n`, so the verdict is both
//!   systematic (like `exhaustive`) and about the deployed code (like
//!   `probe_cell`).
//!
//! # How exploration works
//!
//! The checker is a *stateless* (re-execution based) explorer in the style
//! of systematic concurrency testers: a schedule is a sequence of canonical
//! choice indices (see [`kset_sim::ChoiceScheduler`]); the engine runs the
//! kernel to completion under a prefix, reads the recorded
//! [`kset_sim::ChoiceLog`] back, and pushes one work item per untried
//! alternative at every beyond-prefix decision point. Because the kernel is
//! deterministic given the prefix, re-execution is exact.
//!
//! Three reductions keep the tree tractable without losing soundness:
//!
//! * **No-op pruning** — events targeting decided or crashed processes
//!   cannot change protocol state (every handler in this workspace guards
//!   on `has_decided`, and the kernel drops deliveries to crashed
//!   processes). The scheduler fires them eagerly as *forced* points and
//!   the explorer never branches over them.
//! * **Sleep sets** — two deliveries to *different* processes commute: a
//!   handler mutates only its own process's state, and the events it posts
//!   get distinct ids either way, which the state digest ignores. After
//!   fully exploring the subtree that fires event `a` at a point, `a` is
//!   put to sleep in the sibling subtrees so interleavings differing only
//!   in the order of independent events are visited once.
//! * **State-digest deduplication** — [`kset_sim::StateDigest`]
//!   fingerprints of the full system state (per-process protocol state,
//!   crash flags, decisions, shared registers, pending pool as a multiset)
//!   let the explorer cut off a node whose state was already expanded.
//!   Combining this with sleep sets is only sound under a subset rule: a
//!   node is pruned only if the state was previously visited with a sleep
//!   set **contained in** the current one (otherwise the earlier visit
//!   explored strictly fewer successors).
//!
//! Crash behaviour is quantified separately: solving `SC(k, t, C)` means
//! surviving *every* pattern of at most `t` silent crashes under every
//! schedule, so [`check_cell`] runs one exploration per pattern from
//! [`kset_adversary::plans::all_silent_crash_patterns`].
//!
//! # Parallel exploration
//!
//! Stateless re-execution is embarrassingly parallel: two work items never
//! share kernel state, so any partition of the tree can run on any worker.
//! [`explore_pattern`] shards each crash pattern's tree at its **first
//! deviation from the canonical run**: the empty-prefix run is executed
//! once, every sibling it would enqueue becomes an independent *task*, and
//! [`crate::engine::parallel_drain_chunked`] drains the tasks across
//! [`CheckerConfig::threads`] workers stealing from a shared queue. Tasks
//! are not subtrees run to completion: after a constant run budget
//! (`TASK_BUDGET` schedules) a task spills its remaining DFS stack back
//! into the queue as fresh tasks, which both load-balances wildly skewed
//! subtrees and bounds how stale any worker's view of the dedup table can
//! get.
//!
//! Three rules keep every observable — verdicts, counters, counterexample
//! bytes — **identical for every thread count**:
//!
//! * **Dedup sharing is chunk-synchronized.** Unrestricted sharing of the
//!   visited table would stay *sound* under concurrent insertion
//!   (deduplication only ever over-approximates "explore again"; a missed
//!   or lost hit costs time, never coverage), but whether a hit lands
//!   would depend on worker timing, and with it the run counters. So the
//!   table is sharded by task instead: a task prunes against a **frozen
//!   snapshot** — the tables of every task in *earlier* waves, merged in
//!   task order at the wave barrier — plus its own insertions. What a task
//!   can see is then a function of its index alone. The price is the hits
//!   two tasks in the *same* wave could have fed each other; that is the
//!   whole time-vs-determinism trade, and it is bounded by the wave width.
//! * **Early exit is chunk-aligned.** Tasks are processed in fixed-size
//!   waves; a violation stops the search at the next wave boundary, and
//!   every task of a processed wave runs to completion. The executed set
//!   is therefore a pure function of the task list.
//! * **The reported violation is the canonically first one** — lowest task
//!   index, not earliest wall-clock discovery — and shrinking re-executes
//!   deterministically from it.
//!
//! When a run violates the `SC(k, t, C)` specification, the schedule is
//! [shrunk][shrink_counterexample] greedily and emitted as a plain-text
//! replay script (see [`write_counterexample`]) that the `model_check`
//! binary can re-execute deterministically.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::fs;
use std::hash::BuildHasherDefault;
use std::io::{self, Write as _};
use std::path::Path;
use std::rc::Rc;

use crate::campaign::store::CampaignStore;
use crate::engine::{DrainExit, WaveControl};

use kset_adversary::plans::{all_byzantine_patterns, all_silent_crash_patterns};
use kset_core::{ProblemSpec, ValidityCondition};
use kset_net::{DynMpProcess, MpSubstrate};
use kset_protocols::{FloodMin, ProtocolA, ProtocolB, ProtocolE, ProtocolF};
use kset_regions::Model;
use kset_shmem::{DynSmProcess, SmSubstrate};
use kset_sim::{
    ChoiceLog, ChoiceScheduler, Deviation, DeviationPolicy, DigestMode, EventId, FaultKind,
    FaultPlan, FaultSpec, ForkConfig, ForkGate, ForkSession, MetricsConfig, ProcessId, RunArena,
    RunMetrics, RunSnapshot, RunStats, SimError, SubstrateFork, System,
};

use crate::cells::DEFAULT_VALUE;
use crate::exhaustive::QuorumProtocol;
use crate::record_sink::{RunOutcome, RunRecord};

/// The checker's input: a cell plus exploration bounds and switches.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Protocol under test.
    pub protocol: QuorumProtocol,
    /// System size (keep small: the tree is exponential in events).
    pub n: usize,
    /// Agreement bound of the specification.
    pub k: usize,
    /// Fault budget; also sizes the crash-pattern quantification.
    pub t: usize,
    /// Validity condition of the specification.
    pub validity: ValidityCondition,
    /// Maximum decision depth at which the explorer still branches;
    /// beyond it, runs continue with defaults (the verdict is then marked
    /// incomplete if alternatives were dropped).
    pub depth: usize,
    /// CHESS-style preemption bound: maximum number of branch decisions
    /// that switch away from a process which still had an enabled event.
    /// `None` means unbounded.
    pub preemptions: Option<usize>,
    /// Run budget of one crash pattern's exploration. Enforced per task
    /// and, deterministically, at every wave boundary of the parallel
    /// drain (see the module docs), so the total may overshoot by at most
    /// one wave of task budgets; hitting it marks the verdict incomplete.
    pub max_runs: u64,
    /// Maximum number of sleep-set entries cached per task's visited
    /// table; when full, exploration continues but stops memoizing
    /// (sound, just slower).
    pub max_states: usize,
    /// Partial-order reduction (no-op preference + sleep sets). Disabling
    /// explores the raw schedule tree.
    pub por: bool,
    /// State-digest deduplication.
    pub dedup: bool,
    /// Symmetry reduction: deduplicate on fingerprints canonicalized
    /// modulo permutation of process ids ([`DigestMode::Canonical`])
    /// instead of the id-sensitive plain digest. Sound for the symmetric
    /// protocols this checker drives, and verdicts and counterexamples
    /// are identical either way — only the dedup accounting differs.
    ///
    /// **Off by default**: on the canonical all-distinct input vector
    /// every orbit is a singleton, so canonicalization merges nothing
    /// while its crash-budget component makes the partition strictly
    /// *finer* on multi-crash patterns — measurably more states and more
    /// time (see `PERFORMANCE.md` for the accounting). Enable it
    /// (`--symmetry`) for workloads with genuinely symmetric inputs.
    pub symmetry: bool,
    /// Emit a progress line to stderr every this many runs.
    pub progress: Option<u64>,
    /// Worker threads for the parallel exploration engine. Verdicts,
    /// counters and counterexamples are identical for every value (see
    /// the module docs); only wall-clock time changes.
    pub threads: usize,
    /// How work items reach their first beyond-prefix decision point:
    /// replay from the root, resume from a branch-point snapshot, or
    /// (the default) snapshots under a byte budget with replay as the
    /// fallback. Like `threads`, this is a pure execution strategy —
    /// verdicts, counters and counterexample bytes are identical for
    /// every value (pinned by `tests/fork_parity.rs`).
    pub fork: ForkMode,
    /// The adversary the cell is certified against — which fault patterns
    /// are quantified and which in-transit deviations each pattern may
    /// apply (see [`AdversaryModel`]). Must match the protocol's
    /// substrate; [`CheckerConfig::validate`] rejects mismatches.
    pub adversary: AdversaryModel,
    /// The forged-value menu of a Byzantine adversary: every value a
    /// Byzantine-sourced delivery may be corrupted to. Each menu entry
    /// multiplies the branch factor of every Byzantine-sourced event, so
    /// keep it to the values the protocol can actually distinguish
    /// (for the canonical inputs, a subset of them). Empty menu + no
    /// silence collapses the behaviour space to crash-only.
    pub byz_menu: Vec<u64>,
    /// Whether a Byzantine process may additionally *withhold* any of its
    /// messages (selective silence) — one extra `drop` branch per
    /// Byzantine-sourced delivery.
    pub byz_silence: bool,
    /// Message-drop budget of the lossy-network adversary: the scheduler
    /// may drop up to this many deliveries per run, each drop an extra
    /// branch point. `0` disables loss.
    pub loss_budget: u64,
    /// Override for the run inputs; `None` means [`canonical_inputs`].
    /// Byzantine frontiers are input-sensitive (an all-equal vector pins
    /// down validity where all-distinct inputs leave it vacuous), so the
    /// certification cells below set this explicitly.
    pub inputs: Option<Vec<u64>>,
}

/// Execution strategy for reaching a work item's branch point — see
/// [`CheckerConfig::fork`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForkMode {
    /// Re-execute every work item's prefix from the initial state — the
    /// stateless baseline, kept as the cross-checking oracle for the
    /// forking executor.
    Replay,
    /// Resume every work item from the snapshot taken at its branch
    /// point, with no snapshot byte budget. Items whose snapshot was
    /// elided (gate-closed points, spilled continuations) still replay.
    Fork,
    /// Fork, but stop taking new snapshots while a task's live snapshot
    /// bytes exceed a fixed budget — those points degrade to replay.
    /// The default.
    Auto,
}

/// Per-task live-snapshot byte budget of [`ForkMode::Auto`]. Generous for
/// the small-`n` cells the checker targets (an `n = 4` snapshot is ~2 KiB
/// and a task's DFS stack holds at most a few thousand), yet it bounds
/// memory on raw (`--no-por --no-dedup`) explosions and larger `n`.
const AUTO_FORK_BUDGET: usize = 64 << 20;

impl fmt::Display for ForkMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ForkMode::Replay => "replay",
            ForkMode::Fork => "fork",
            ForkMode::Auto => "auto",
        })
    }
}

/// Parses a fork mode as accepted by the `model_check` binary
/// (`fork`/`replay`/`auto`, case-insensitive).
pub fn parse_fork_mode(arg: &str) -> Option<ForkMode> {
    Some(match arg.trim().to_ascii_lowercase().as_str() {
        "replay" => ForkMode::Replay,
        "fork" => ForkMode::Fork,
        "auto" => ForkMode::Auto,
        _ => return None,
    })
}

/// The adversary a cell is certified against.
///
/// The crash adversaries quantify over
/// [`all_silent_crash_patterns`]; the Byzantine adversaries over
/// [`all_byzantine_patterns`], with each Byzantine slot's in-transit
/// behaviour (forged values from [`CheckerConfig::byz_menu`], selective
/// silence) an extra branch point of every schedule; the lossy adversary
/// keeps the crash pattern space but lets the scheduler drop up to
/// [`CheckerConfig::loss_budget`] deliveries per run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdversaryModel {
    /// Message passing, at most `t` silent crashes (the paper's Section 3
    /// crash model; the default for MP protocols).
    MpCrash,
    /// Shared memory, at most `t` silent crashes (Section 4; the default
    /// for SM protocols).
    SmCrash,
    /// Message passing, at most `t` Byzantine processes whose outgoing
    /// messages may be forged or withheld in transit (Section 3's
    /// Byzantine rows — Lemmas 3.10–3.13).
    MpByz,
    /// Shared memory, at most `t` Byzantine processes whose register
    /// reads may surface forged values (Section 4's Byzantine rows —
    /// Lemmas 4.9–4.10).
    SmByz,
    /// Message passing with silent crashes *and* a bounded number of
    /// message drops per run — the lossy-network variant.
    MpLossy,
}

impl AdversaryModel {
    /// Whether this adversary lives on the shared-memory substrate.
    pub fn shared_memory(&self) -> bool {
        matches!(self, AdversaryModel::SmCrash | AdversaryModel::SmByz)
    }

    /// Whether the fault-pattern space contains Byzantine slots.
    pub fn is_byzantine(&self) -> bool {
        matches!(self, AdversaryModel::MpByz | AdversaryModel::SmByz)
    }

    /// Whether the scheduler may drop deliveries outright.
    pub fn is_lossy(&self) -> bool {
        matches!(self, AdversaryModel::MpLossy)
    }

    /// The stable slug used in file names, bench JSON and CLI parsing.
    pub fn slug(&self) -> &'static str {
        match self {
            AdversaryModel::MpCrash => "mp_crash",
            AdversaryModel::SmCrash => "sm_crash",
            AdversaryModel::MpByz => "mp_byz",
            AdversaryModel::SmByz => "sm_byz",
            AdversaryModel::MpLossy => "mp_lossy",
        }
    }
}

impl fmt::Display for AdversaryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Parses an adversary model as accepted by the `model_check` binary's
/// `--model` flag (the slugs of [`AdversaryModel::slug`],
/// case-insensitive).
pub fn parse_adversary_model(arg: &str) -> Option<AdversaryModel> {
    Some(match arg.trim().to_ascii_lowercase().as_str() {
        "mp_crash" => AdversaryModel::MpCrash,
        "sm_crash" => AdversaryModel::SmCrash,
        "mp_byz" => AdversaryModel::MpByz,
        "sm_byz" => AdversaryModel::SmByz,
        "mp_lossy" => AdversaryModel::MpLossy,
        _ => return None,
    })
}

impl CheckerConfig {
    /// A configuration with effectively unbounded exploration (the
    /// practical limits `max_runs`/`max_states` still apply), partial-order
    /// reduction and dedup enabled, and symmetry reduction off (see
    /// [`CheckerConfig::symmetry`] for why that is the better default on
    /// the canonical inputs).
    pub fn new(
        protocol: QuorumProtocol,
        n: usize,
        k: usize,
        t: usize,
        validity: ValidityCondition,
    ) -> Self {
        CheckerConfig {
            protocol,
            n,
            k,
            t,
            validity,
            depth: usize::MAX,
            preemptions: None,
            max_runs: 10_000_000,
            max_states: 1 << 22,
            por: true,
            dedup: true,
            symmetry: false,
            progress: None,
            threads: crate::engine::available_threads(),
            fork: ForkMode::Auto,
            adversary: if protocol.shared_memory() {
                AdversaryModel::SmCrash
            } else {
                AdversaryModel::MpCrash
            },
            byz_menu: Vec::new(),
            byz_silence: false,
            loss_budget: 0,
            inputs: None,
        }
    }

    /// The paper-region model the configured adversary certifies against.
    /// The lossy variant keeps the crash model's region bookkeeping: it
    /// is the crash adversary over an unreliable network, and the
    /// [`kset_regions::Model`] taxonomy has no separate row for it.
    pub fn model(&self) -> Model {
        match self.adversary {
            AdversaryModel::MpCrash | AdversaryModel::MpLossy => Model::MpCrash,
            AdversaryModel::SmCrash => Model::SmCrash,
            AdversaryModel::MpByz => Model::MpByzantine,
            AdversaryModel::SmByz => Model::SmByzantine,
        }
    }

    /// Rejects configurations whose verdict would be *about the wrong
    /// model*: a substrate mismatch between adversary and protocol, a
    /// Byzantine behaviour menu under a non-Byzantine adversary (it would
    /// silently never branch), a loss budget under a loss-free adversary,
    /// or an input vector of the wrong length. [`check_cell`] treats any
    /// of these as a hard error — certifying under a model the caller did
    /// not ask for is precisely the failure mode this guards against.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.adversary.shared_memory() != self.protocol.shared_memory() {
            return Err(format!(
                "adversary model {} runs on the {} substrate but protocol {} is {}; \
                 pick a matching --model",
                self.adversary,
                if self.adversary.shared_memory() { "shared-memory" } else { "message-passing" },
                self.protocol.name(),
                if self.protocol.shared_memory() { "shared-memory" } else { "message-passing" },
            ));
        }
        if !self.adversary.is_byzantine() && (!self.byz_menu.is_empty() || self.byz_silence) {
            return Err(format!(
                "Byzantine behaviour space (menu {:?}, silence {}) configured under \
                 non-Byzantine adversary {}; it would never apply",
                self.byz_menu, self.byz_silence, self.adversary,
            ));
        }
        if !self.adversary.is_lossy() && self.loss_budget > 0 {
            return Err(format!(
                "loss budget {} configured under loss-free adversary {}",
                self.loss_budget, self.adversary,
            ));
        }
        if let Some(inputs) = &self.inputs {
            if inputs.len() != self.n {
                return Err(format!(
                    "inputs {:?} has length {} but n = {}",
                    inputs,
                    inputs.len(),
                    self.n,
                ));
            }
        }
        Ok(())
    }

    /// The input vector the cell runs with: the explicit override, or the
    /// canonical all-distinct vector.
    pub fn cell_inputs(&self) -> Vec<u64> {
        self.inputs
            .clone()
            .unwrap_or_else(|| canonical_inputs(self.n))
    }

    /// The deviation policy of the configured adversary, `None` when the
    /// behaviour space is empty (crash adversaries, or a Byzantine/lossy
    /// adversary with no menu, no silence and no budget — which by design
    /// collapses to the crash-only checker, bit for bit).
    pub fn deviation_policy(&self) -> Option<DeviationPolicy> {
        let policy = if self.adversary.is_byzantine() {
            DeviationPolicy::byzantine(self.byz_menu.clone(), self.byz_silence)
        } else if self.adversary.is_lossy() {
            DeviationPolicy::lossy(self.loss_budget)
        } else {
            return None;
        };
        policy.is_active().then_some(policy)
    }

    /// The deviation policy *one pattern's* exploration runs under: the
    /// cell policy, dropped entirely for Byzantine-adversary patterns
    /// without a single Byzantine slot. Such patterns cannot deviate, and
    /// taking the literal crash-only code path (including forking-executor
    /// eligibility) keeps them byte-identical to the crash checker.
    pub fn pattern_policy(&self, plan: &FaultPlan) -> Option<DeviationPolicy> {
        let policy = self.deviation_policy()?;
        if self.adversary.is_byzantine() && !plan.has_byzantine() {
            return None;
        }
        Some(policy)
    }

    /// The fault patterns the cell quantifies over: every assignment of
    /// at most `t` Byzantine/silent slots for an *active* Byzantine
    /// adversary, every pattern of at most `t` silent crashes otherwise.
    /// An inactive Byzantine space (empty menu, no silence) deliberately
    /// collapses to the crash enumeration — a Byzantine process with no
    /// available deviation *is* a correct process, and enumerating
    /// behaviour-free Byzantine slots would only re-explore crash
    /// subsets.
    pub fn fault_plans(&self) -> Vec<FaultPlan> {
        if self.adversary.is_byzantine() && self.deviation_policy().is_some() {
            all_byzantine_patterns(self.n, self.t)
        } else {
            all_silent_crash_patterns(self.n, self.t)
        }
    }

    /// The digest mode exploration runs under: canonical fingerprints when
    /// symmetry reduction is on, the plain id-sensitive digest otherwise.
    fn digest_mode(&self) -> DigestMode {
        if self.symmetry {
            DigestMode::Canonical
        } else {
            DigestMode::Plain
        }
    }

    /// The forking executor's configuration for this cell: same `n`,
    /// reductions and digest mode as the replay path, branch snapshots cut
    /// off at the explorer's depth bound (beyond it nothing branches, so a
    /// snapshot could never be consumed), and the byte budget of the
    /// selected [`ForkMode`].
    fn fork_config(&self) -> ForkConfig {
        ForkConfig {
            n: self.n,
            por: self.por,
            digest: self.digest_mode(),
            event_limit: None,
            max_branch_depth: self.depth,
            budget_bytes: match self.fork {
                ForkMode::Auto => Some(AUTO_FORK_BUDGET),
                _ => None,
            },
        }
    }
}

/// The canonical model-checking inputs: process `p` starts with value `p`.
/// All-distinct inputs maximize the number of observable decision profiles,
/// which is what makes small-`n` verdicts meaningful.
pub fn canonical_inputs(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Builds the boxed process vector for a message-passing protocol cell —
/// the single construction point shared by the replay executor, the
/// forking executor and the fired-id replayer.
///
/// # Panics
///
/// Panics on a shared-memory protocol; callers gate on
/// [`QuorumProtocol::shared_memory`].
fn mp_processes(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
) -> Vec<DynMpProcess<u64, u64>> {
    let n = inputs.len();
    (0..n)
        .map(|p| match protocol {
            QuorumProtocol::FloodMin => FloodMin::boxed(n, t, inputs[p]),
            QuorumProtocol::ProtocolA => ProtocolA::boxed(n, t, inputs[p], DEFAULT_VALUE),
            QuorumProtocol::ProtocolB => ProtocolB::boxed(n, t, inputs[p], DEFAULT_VALUE),
            _ => unreachable!("shared_memory() gates the protocol"),
        })
        .collect()
}

/// [`mp_processes`] for the shared-memory protocols.
fn sm_processes(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
) -> Vec<DynSmProcess<u64, u64>> {
    let n = inputs.len();
    (0..n)
        .map(|p| match protocol {
            QuorumProtocol::ProtocolE => ProtocolE::boxed(n, t, inputs[p], DEFAULT_VALUE),
            QuorumProtocol::ProtocolF => ProtocolF::boxed(n, t, inputs[p], DEFAULT_VALUE),
            _ => unreachable!("shared_memory() gates the protocol"),
        })
        .collect()
}

/// One executed schedule, distilled for the explorer.
#[derive(Clone, Debug)]
pub struct ScheduleRun {
    /// The recorded decision points, one per fired event.
    pub log: ChoiceLog,
    /// System-state digest after each fired event (`digests[i]` is the
    /// state `log.point(i)` produced).
    pub digests: Vec<u64>,
    /// Decisions by process id.
    pub decisions: BTreeMap<ProcessId, u64>,
    /// Faulty processes of the run.
    pub faulty: Vec<ProcessId>,
    /// Whether every correct process decided.
    pub terminated: bool,
    /// Kernel aggregate counters.
    pub stats: RunStats,
    /// Per-process metrics when requested.
    pub metrics: Option<RunMetrics>,
}

impl ScheduleRun {
    /// Number of distinct values decided by correct processes, counted by
    /// first occurrence — no per-call allocation (`n` is single digits).
    pub fn distinct_correct_decisions(&self) -> usize {
        let mut count = 0;
        for (i, (&p, &v)) in self.decisions.iter().enumerate() {
            if self.faulty.contains(&p) {
                continue;
            }
            let seen = self
                .decisions
                .iter()
                .take(i)
                .any(|(&q, &w)| !self.faulty.contains(&q) && w == v);
            if !seen {
                count += 1;
            }
        }
        count
    }
}

/// [`ScheduleRun::distinct_correct_decisions`] over the forking executor's
/// dense decision table.
fn distinct_correct_decisions_dense(decisions: &[Option<u64>], faulty: &[ProcessId]) -> usize {
    let mut count = 0;
    for (p, v) in decisions
        .iter()
        .enumerate()
        .filter_map(|(p, d)| d.map(|v| (p, v)))
    {
        if faulty.contains(&p) {
            continue;
        }
        let seen = decisions[..p]
            .iter()
            .enumerate()
            .any(|(q, w)| !faulty.contains(&q) && *w == Some(v));
        if !seen {
            count += 1;
        }
    }
    count
}

/// Executes one schedule of `protocol` under `plan`, following `prefix`
/// and then scheduler defaults, against the real kernel. `policy` is the
/// pattern's deviation space ([`CheckerConfig::pattern_policy`]); `None`
/// runs the crash-only fast path.
///
/// A convenience wrapper over [`execute_schedule_in`] with a throwaway
/// [`RunArena`] and the plain digest mode — fine for one-off replays
/// (shrinking, record emission, benches); the exploration loops thread a
/// recycled arena instead.
///
/// # Errors
///
/// Propagates simulator errors (e.g. the event limit, which bounds
/// protocols with unbounded retries such as Protocol F).
#[allow(clippy::too_many_arguments)]
pub fn execute_schedule(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
    plan: &FaultPlan,
    policy: Option<&DeviationPolicy>,
    prefix: &[usize],
    por: bool,
    metrics: bool,
) -> Result<ScheduleRun, SimError> {
    let mut arena = RunArena::new();
    execute_schedule_in(
        protocol,
        inputs,
        t,
        plan,
        policy,
        prefix.to_vec(),
        por,
        metrics,
        DigestMode::Plain,
        &mut arena,
    )
}

/// [`execute_schedule`] recycling per-run storage from `arena` and
/// fingerprinting states under `mode` — the exploration hot path.
///
/// The run's choice log and digest vector are *taken* from the arena;
/// return them via [`RunArena::put_log`]/[`RunArena::put_digests`] once
/// the [`ScheduleRun`] has been consumed, so the next run reuses their
/// capacity.
///
/// # Errors
///
/// See [`execute_schedule`].
#[allow(clippy::too_many_arguments)]
pub fn execute_schedule_in(
    protocol: QuorumProtocol,
    inputs: &[u64],
    t: usize,
    plan: &FaultPlan,
    policy: Option<&DeviationPolicy>,
    prefix: Vec<usize>,
    por: bool,
    metrics: bool,
    mode: DigestMode,
    arena: &mut RunArena,
) -> Result<ScheduleRun, SimError> {
    // A Byzantine slot without a deviation space would run the normal
    // protocol under crash semantics and certify the *wrong model* —
    // every caller must collapse such plans to crash patterns (see
    // [`CheckerConfig::pattern_policy`]) before reaching the executor.
    assert!(
        policy.is_some() || !plan.has_byzantine(),
        "fault plan contains Byzantine slots but no deviation policy was supplied; \
         the run would certify crash semantics under a Byzantine label"
    );
    let n = inputs.len();
    // The prefix is consumed (the scheduler owns it for the run), so the
    // exploration loop moves each work item's prefix here instead of
    // copying it — one fewer allocation per executed schedule.
    let sched = ChoiceScheduler::with_log(prefix, arena.take_log())
        .prefer_noops(por)
        .with_policy(policy.cloned());
    let log = sched.log_handle();
    // The kernel consumes (and at run end drops) the scheduler, so once
    // the run returns this handle is the log's only owner and the
    // recorded points move out without the per-run deep clone the
    // explorer used to pay on its hottest path.
    let take_log = |log: std::rc::Rc<std::cell::RefCell<ChoiceLog>>| -> ChoiceLog {
        match std::rc::Rc::try_unwrap(log) {
            Ok(cell) => cell.into_inner(),
            Err(shared) => shared.borrow().clone(),
        }
    };
    let metrics_config = if metrics {
        MetricsConfig::enabled()
    } else {
        MetricsConfig::disabled()
    };
    // Both models run through the same substrate-generic `System`; only the
    // process vector differs, so the run configuration and the `ScheduleRun`
    // assembly below are provably shared code.
    let sys = System::new(n)
        .scheduler(sched)
        .fault_plan(plan.clone())
        .metrics(metrics_config)
        .digest_mode(mode);
    // The deviation-aware kernel path is taken only under an active
    // policy: with `policy == None` the run goes through the exact
    // delivery path the crash-only checker always used, so crash
    // certifications stay byte-identical.
    let (outcome, digests) = if protocol.shared_memory() {
        let procs = sm_processes(protocol, inputs, t);
        let (outcome, digests, _) = if policy.is_some() {
            sys.run_digested_adv_in::<SmSubstrate<u64, u64>>(procs, arena)?
        } else {
            sys.run_digested_in::<SmSubstrate<u64, u64>>(procs, arena)?
        };
        (outcome, digests)
    } else {
        let procs = mp_processes(protocol, inputs, t);
        let (outcome, digests, _) = if policy.is_some() {
            sys.run_digested_adv_in::<MpSubstrate<u64, u64>>(procs, arena)?
        } else {
            sys.run_digested_in::<MpSubstrate<u64, u64>>(procs, arena)?
        };
        (outcome, digests)
    };
    Ok(ScheduleRun {
        log: take_log(log),
        digests,
        decisions: outcome.decisions,
        faulty: outcome.faulty,
        terminated: outcome.terminated,
        stats: outcome.stats,
        metrics: outcome.metrics,
    })
}

/// Checks one run against `SC(k, t, C)`; `Some(message)` on violation.
///
/// Judged through a borrowed [`kset_core::RunView`] over the run's own
/// buffers — both executors pay zero allocations per passing run, the
/// overwhelmingly common case.
fn violation_of(spec: &ProblemSpec, inputs: &[u64], run: &ScheduleRun) -> Option<String> {
    let report = spec.check(&ScheduleRunView { inputs, run });
    (!report.is_ok()).then(|| report.to_string())
}

/// Borrowed [`kset_core::RunView`] over a [`ScheduleRun`] (whose decision
/// map is keyed by process) plus the inputs it was run with.
struct ScheduleRunView<'a> {
    inputs: &'a [u64],
    run: &'a ScheduleRun,
}

impl kset_core::RunView<u64> for ScheduleRunView<'_> {
    fn n(&self) -> usize {
        self.inputs.len()
    }

    fn inputs(&self) -> &[u64] {
        self.inputs
    }

    fn is_faulty(&self, p: ProcessId) -> bool {
        self.run.faulty.contains(&p)
    }

    fn faulty_count(&self) -> usize {
        self.run.faulty.len()
    }

    fn decision_of(&self, p: ProcessId) -> Option<&u64> {
        self.run.decisions.get(&p)
    }

    fn terminated(&self) -> bool {
        self.run.terminated
    }

    fn all_decisions(&self, pred: &mut dyn FnMut(ProcessId, &u64) -> bool) -> bool {
        self.run.decisions.iter().all(|(&p, v)| pred(p, v))
    }
}

/// [`violation_of`] over the forking executor's dense in-place
/// observables, which never materialize a [`ScheduleRun`].
fn violation_of_dense(
    spec: &ProblemSpec,
    inputs: &[u64],
    decisions: &[Option<u64>],
    faulty: &[ProcessId],
    terminated: bool,
) -> Option<String> {
    let report = spec.check(&kset_core::DenseRun::new(inputs, decisions, faulty, terminated));
    (!report.is_ok()).then(|| report.to_string())
}

/// A violating schedule, shrunk and ready for emission/replay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// The crashed processes of the violating fault pattern.
    pub crashed: Vec<ProcessId>,
    /// The Byzantine processes of the violating fault pattern (empty for
    /// crash and lossy adversaries).
    pub byzantine: Vec<ProcessId>,
    /// The (shrunk) canonical choice prefix that reproduces it.
    pub choices: Vec<usize>,
    /// Every event id the violating run fires, in order, paired with the
    /// deviation applied to it — a
    /// [`kset_sim::ReplayScheduler::with_deviations`] script. Crash-only
    /// runs carry [`Deviation::Faithful`] throughout.
    pub fired: Vec<(EventId, Deviation)>,
    /// The specification violations of the run.
    pub violation: String,
}

/// Splits a fault plan into its crashed and Byzantine slots — the two
/// header lists of a counterexample script.
fn plan_slots(plan: &FaultPlan) -> (Vec<ProcessId>, Vec<ProcessId>) {
    let mut crashed = Vec::new();
    let mut byzantine = Vec::new();
    for p in 0..plan.n() {
        match plan.spec(p).kind() {
            FaultKind::Crash => crashed.push(p),
            FaultKind::Byzantine => byzantine.push(p),
            FaultKind::Correct => {}
        }
    }
    (crashed, byzantine)
}

/// Verdict of exploring one crash pattern's schedule tree.
#[derive(Clone, Debug)]
pub struct PatternVerdict {
    /// The planned faulty processes of the pattern — silently crashed
    /// slots and (under a Byzantine adversary) Byzantine slots alike.
    pub crashed: Vec<ProcessId>,
    /// Schedules executed.
    pub runs: u64,
    /// Sleep-set entries cached across every task's visited table.
    pub states: usize,
    /// Branches skipped because the alternative was asleep.
    pub sleep_skips: u64,
    /// Nodes cut off by state-digest deduplication.
    pub dedup_hits: u64,
    /// Whether the tree was explored exhaustively (no bound truncated it).
    /// Meaningless once a violation is found — the search stops early.
    pub complete: bool,
    /// Largest number of distinct correct decisions observed in any run.
    pub worst_agreement: usize,
    /// Exploration tasks the engine executed for this pattern: the
    /// canonical run, one per first deviation from it, and one per
    /// budget-split continuation (see the module docs).
    pub tasks: u64,
    /// The first violation found, already shrunk.
    pub violation: Option<Counterexample>,
}

/// The exploration *frontier* types shared with the campaign layer.
///
/// The checker keeps its machinery private, but a resumable campaign
/// (`crate::campaign`) must persist and restore exactly the frontier of an
/// exploration: the outstanding work items, the verdict so far, and the
/// sleep sets both carry. This module is the one sanctioned home for that
/// plumbing — everything here is either `pub` because the
/// [`crate::campaign::store::CampaignStore`] trait is public API
/// ([`SleepEntry`]), or `pub(crate)` for the campaign snapshot codec
/// ([`WorkItem`], [`PatternState`]) and the sleep-set subset rule the
/// disk-backed store re-implements ([`sleep_subset`]). Nothing else in the
/// checker is visible outside this file.
pub(crate) mod frontier {
    use super::{EventId, PatternVerdict, ProcessId};

    /// One sleeping event: put to sleep after its subtree was fully
    /// explored, woken (removed) by firing any *dependent* event — one
    /// with the same target process.
    ///
    /// Public because the campaign layer ([`crate::campaign`]) persists
    /// and queries sleep sets through the
    /// [`crate::campaign::store::CampaignStore`] trait; everything else
    /// about the sleep-set machinery stays internal.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct SleepEntry {
        /// The sleeping event.
        pub id: EventId,
        /// The event's target process (dependency key for wake-ups).
        pub target: ProcessId,
    }

    /// `a ⊆ b` by event id.
    pub fn sleep_subset(a: &[SleepEntry], b: &[SleepEntry]) -> bool {
        a.iter().all(|x| b.iter().any(|y| y.id == x.id))
    }

    /// One work item of the re-execution DFS: run `prefix`, then branch
    /// on the beyond-prefix decision points.
    ///
    /// Deliberately *execution-strategy free*: the forking executor pairs
    /// items with branch-point snapshots on its task-local stack, but
    /// spills, checkpoints and the campaign codec only ever see this
    /// replayable form.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct WorkItem {
        /// Canonical choice indices to replay before branching.
        pub prefix: Vec<usize>,
        /// Events asleep at the item's branch point.
        pub sleep: Vec<SleepEntry>,
        /// Preemptions already spent by the prefix.
        pub preemptions: usize,
    }

    /// The resumable state of one crash pattern's exploration at a wave
    /// boundary: the verdict accumulated so far and the outstanding task
    /// queue. Together with the shared visited store this is exactly what
    /// a campaign checkpoint persists — the drain is a pure function of
    /// `(verdict, queue, store)`, so restoring all three resumes the
    /// exploration bit-identically (see `CAMPAIGNS.md`).
    #[derive(Debug)]
    pub struct PatternState {
        /// Counters and (possible) violation accumulated so far.
        pub verdict: PatternVerdict,
        /// Outstanding task stacks, in claim order.
        pub queue: Vec<Vec<WorkItem>>,
    }
}

pub use frontier::SleepEntry;
pub(crate) use frontier::{sleep_subset, PatternState, WorkItem};

/// Runs one exploration task may execute before it spills the rest of its
/// DFS stack back to the scheduler as a single continuation task. The
/// budget is a constant of the algorithm — never derived from the thread
/// count — so the task decomposition is identical for every `threads`
/// value. It sets the engine's re-synchronization granularity twice over:
/// no worker can run ahead of the shared dedup table by more than this
/// many schedules, and no task is large enough to leave sibling workers
/// idle behind it. The continuation carries the *whole* stack (rather
/// than one task per stacked item) so adjacent sibling subtrees keep
/// exploring under one task-local table — splitting them apart would put
/// heavily-overlapping regions into the same wave, exactly where they
/// cannot share dedup state.
const TASK_BUDGET: u64 = 2048;

/// A visited table: node fingerprints already expanded, each with the
/// minimal antichain of sleep sets it was expanded under.
///
/// The subset rule needs *every* incomparable sleep set a fingerprint was
/// expanded with — but it never needs a superset of another entry: if
/// `small ⊆ big` are both stored, any query pruned by `big` (`big ⊆ q`)
/// is already pruned by `small`. [`Visited::insert`] therefore drops
/// stored supersets of each new entry, keeping buckets minimal — which is
/// also what keeps the per-visit subset scan from degrading into the
/// O(visits²) behaviour the original flat-list buckets had on cells whose
/// states are revisited under many incomparable sleep sets.
///
/// `Visited` is both the per-task table of the exploration engine and the
/// in-memory [`crate::campaign::store::CampaignStore`] — the zero-overhead
/// fast path the disk-backed campaign store is checked against.
///
/// Each fingerprint's antichain is stored *flat*: one contiguous
/// `Vec<SleepEntry>` holding every stored sleep set as a length-prefixed
/// group (the prefix entry's `id` carries the group length). A `covers`
/// probe — the single hottest operation of a certification, issued by the
/// walk's dedup rule and again by the forking executor's snapshot gate —
/// then touches exactly two cache lines' worth of pointer chasing (the
/// hash bucket, the flat buffer) instead of one heap box per stored set.
/// Buckets average a handful of small groups, so the compaction that
/// [`Visited::insert`] does to drop supersets is a short `memmove`, not a
/// structural rebuild.
#[derive(Default, Debug)]
pub struct Visited {
    map: HashMap<u64, Vec<SleepEntry>, BuildHasherDefault<FingerprintHasher>>,
    /// Cumulative insertions (the memoization budget `max_states` caps).
    inserted: usize,
}

/// Passes a 64-bit fingerprint key through unchanged instead of re-hashing
/// it.
///
/// [`Visited`] keys are [`kset_sim::Mix64`]-avalanched digests, already
/// uniformly distributed over `u64`, so feeding them through the standard
/// library's SipHash again costs a measurable slice of every certification
/// (`Visited::covers`/`merge_from` showed ≈18% of a profiled n=4 cell,
/// much of it hashing) and adds no dispersion. Only `u64` keys are ever
/// written; any other write is a logic error, not a fallback.
#[derive(Clone, Copy, Default)]
struct FingerprintHasher(u64);

impl std::hash::Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys hash as u64, never as raw bytes");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl Visited {
    /// The subset-rule check: was `fingerprint` expanded under a sleep set
    /// contained in `sleep`? (If so, that visit explored a superset of
    /// this node's successors and the node can be pruned.)
    pub fn covers(&self, fingerprint: u64, sleep: &[SleepEntry]) -> bool {
        self.map
            .get(&fingerprint)
            .is_some_and(|seen| Groups(seen).any(|s| sleep_subset(s, sleep)))
    }

    /// Records that `fingerprint` is being expanded under `sleep`,
    /// dropping stored supersets of `sleep` so the bucket stays a minimal
    /// antichain.
    pub fn insert(&mut self, fingerprint: u64, sleep: &[SleepEntry]) {
        bucket_insert(self.map.entry(fingerprint).or_default(), sleep);
        self.inserted += 1;
    }

    /// Folds another table into this one, keeping each bucket a minimal
    /// antichain. Entries already covered here are skipped, so the merged
    /// *set* of minimal elements — and with it every future
    /// [`Visited::covers`] answer — is independent of merge order (only
    /// the unobservable bucket layout varies).
    pub fn merge_from(&mut self, other: &Visited) {
        for (&fingerprint, bucket) in &other.map {
            for sleep in Groups(bucket) {
                if !self.covers(fingerprint, sleep) {
                    self.insert(fingerprint, sleep);
                }
            }
        }
    }

    /// Consuming [`Visited::merge_from`]: folds `other` in by *moving* its
    /// flat buckets wholesale for fingerprints this table has never seen,
    /// instead of re-copying each entry. A task bucket is itself a minimal
    /// antichain (its inserts maintain that), so the wholesale move equals
    /// feeding each group through [`Visited::insert`] in turn: same
    /// minimal sets, same `inserted` count, same every future
    /// [`Visited::covers`] answer. The wave barrier absorbs task tables
    /// through this; the tables are dead afterwards, so the per-bucket
    /// allocation+copy that [`Visited::merge_from`] would pay is pure
    /// waste.
    pub fn merge_move(&mut self, other: Visited) {
        use std::collections::hash_map::Entry;
        for (fingerprint, bucket) in other.map {
            match self.map.entry(fingerprint) {
                Entry::Vacant(slot) => {
                    self.inserted += Groups(&bucket).count();
                    slot.insert(bucket);
                }
                Entry::Occupied(mut slot) => {
                    let seen = slot.get_mut();
                    for sleep in Groups(&bucket) {
                        if Groups(seen).any(|s| sleep_subset(s, sleep)) {
                            continue;
                        }
                        bucket_insert(seen, sleep);
                        self.inserted += 1;
                    }
                }
            }
        }
    }

    /// Cumulative [`Visited::insert`] calls (distinct minimal entries ever
    /// recorded — the quantity `max_states` budgets).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Iterates the stored `(fingerprint, minimal sleep-set antichain)`
    /// pairs, in the table's (deterministic, but unspecified) bucket
    /// order. The campaign store absorbs task tables through this.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Groups<'_>)> {
        self.map.iter().map(|(&fp, bucket)| (fp, Groups(bucket)))
    }
}

/// Iterator over the sleep-set groups of one flat [`Visited`] bucket, in
/// storage order (see the [`Visited`] docs for the length-prefixed
/// layout).
#[derive(Clone, Copy, Debug)]
pub struct Groups<'a>(&'a [SleepEntry]);

impl<'a> Iterator for Groups<'a> {
    type Item = &'a [SleepEntry];

    fn next(&mut self) -> Option<&'a [SleepEntry]> {
        let (prefix, rest) = self.0.split_first()?;
        let (group, rest) = rest.split_at(prefix.id.as_u64() as usize);
        self.0 = rest;
        Some(group)
    }
}

/// Appends `sleep` to a flat bucket as a new length-prefixed group,
/// first compacting away every stored superset of it (the minimal
/// antichain rule of [`Visited::insert`]). The prefix entry's `target` is
/// meaningless and kept zero.
fn bucket_insert(bucket: &mut Vec<SleepEntry>, sleep: &[SleepEntry]) {
    let (mut read, mut write) = (0, 0);
    while read < bucket.len() {
        let len = bucket[read].id.as_u64() as usize + 1;
        if !sleep_subset(sleep, &bucket[read + 1..read + len]) {
            if write != read {
                bucket.copy_within(read..read + len, write);
            }
            write += len;
        }
        read += len;
    }
    bucket.truncate(write);
    bucket.push(SleepEntry {
        id: EventId::from_u64(sleep.len() as u64),
        target: 0,
    });
    bucket.extend_from_slice(sleep);
}

/// Counters and outcome of one exploration task (a subtree DFS), merged
/// by [`explore_pattern`] in task order.
struct TaskOutcome {
    runs: u64,
    states: usize,
    sleep_skips: u64,
    dedup_hits: u64,
    complete: bool,
    worst_agreement: usize,
    violation: Option<Counterexample>,
    /// The task's own insertions, folded into the shared snapshot at the
    /// wave barrier so later waves prune against them.
    visited: Visited,
    /// The remaining DFS stack when [`TASK_BUDGET`] ran out, re-enqueued
    /// verbatim as one continuation task; empty when the task finished.
    spill: Vec<WorkItem>,
}

impl TaskOutcome {
    fn new() -> Self {
        TaskOutcome {
            runs: 0,
            states: 0,
            sleep_skips: 0,
            dedup_hits: 0,
            complete: true,
            worst_agreement: 0,
            violation: None,
            visited: Visited::default(),
            spill: Vec::new(),
        }
    }
}

/// Reusable buffers for [`walk_run`], owned by one exploration task. The
/// walk's transient storage (taken indices, staged siblings, explored
/// entries) keeps its capacity across runs, and sleep vectors recycled
/// from completed work items back a free list that child items draw from —
/// in the steady state the walk allocates only for genuinely new child
/// prefixes.
#[derive(Default)]
struct WalkScratch {
    /// The current run's taken canonical indices (child-prefix source).
    taken: Vec<usize>,
    /// Entries already explored at the current point (sleep-set seeds).
    explored: Vec<SleepEntry>,
    /// Siblings staged at the current point, drained onto the stack in
    /// reverse canonical order.
    children: Vec<WorkItem>,
    /// Free list of sleep vectors recycled from completed work items.
    sleeps: Vec<Vec<SleepEntry>>,
}

/// Walks the beyond-prefix decision points of one executed run: dedup
/// bookkeeping against the task-local `visited`, sibling generation into
/// `push` (per point, in reverse canonical order, so the canonically
/// first sibling pops first under LIFO — the order the accumulated sleep
/// sets assume).
///
/// `push` receives each staged child in the order it should enter the
/// caller's DFS stack; the replay executor pushes the bare item, the
/// forking executor pairs it with the snapshot taken at its branch point.
///
/// `prefix_len`, `preemptions` and `sleep` are the executed work item's
/// fields; the prefix itself was consumed by [`execute_schedule_in`], and
/// only its length matters here (in-prefix points were already walked when
/// the prefix was recorded — the [`kset_sim::ChoiceScheduler`] does not
/// even log their options).
#[allow(clippy::too_many_arguments)]
fn walk_run<S: CampaignStore>(
    cfg: &CheckerConfig,
    prefix_len: usize,
    preemptions: usize,
    sleep: Vec<SleepEntry>,
    log: &ChoiceLog,
    digests: &[u64],
    verified_cut: Option<usize>,
    global: &S,
    out: &mut TaskOutcome,
    push: &mut impl FnMut(WorkItem),
    scratch: &mut WalkScratch,
) {
    let mut sleep = sleep;
    let WalkScratch {
        taken,
        explored,
        children,
        sleeps,
    } = scratch;
    taken.clear();
    taken.extend((0..log.len()).map(|i| log.taken(i)));
    for d in prefix_len..log.len() {
        let point = log.point(d);

        // Deduplicate on the state this point decides from (the state
        // after d fired events; the root state, d = 0, is unique per
        // pattern anyway). `global` is the frozen pre-wave snapshot; new
        // insertions go to the task-local table.
        if cfg.dedup && d > 0 {
            // The forking executor's gate may have proved this exact
            // point covered mid-execution ([`WalkGate`] records where it
            // closed). Visited stores only grow and the gate's sleep set
            // evolves exactly as this walk's, so its TRUE answer still
            // holds here — skip the (table-chasing) probe. A cut at an
            // earlier point just leaves the hint unused.
            if verified_cut == Some(d) {
                out.dedup_hits += 1;
                break;
            }
            let fingerprint = digests[d - 1];
            // Task-local table first: it is small and cache-hot, and `||`
            // makes the probe order invisible to the verdict.
            if out.visited.covers(fingerprint, &sleep) || global.covers(fingerprint, &sleep) {
                out.dedup_hits += 1;
                break;
            }
            if out.visited.inserted < cfg.max_states {
                out.visited.insert(fingerprint, &sleep);
                out.states += 1;
            }
        }

        let taken_meta = point.taken_meta();
        if !point.forced {
            if d >= cfg.depth {
                // Depth bound: drop this point's alternatives.
                let dropped = point.options.iter().enumerate().any(|(i, o)| {
                    i != point.taken
                        && !o.noop
                        && !sleep.iter().any(|s| s.id == o.meta.id)
                });
                if dropped {
                    out.complete = false;
                }
            } else {
                let prev_target =
                    (d > 0).then(|| log.point(d - 1).taken_meta().target);
                // Alternatives in canonical order; `explored` grows so
                // each later sibling sleeps on the earlier ones (their
                // subtrees complete first under LIFO scheduling).
                explored.clear();
                explored.push(SleepEntry {
                    id: taken_meta.id,
                    target: taken_meta.target,
                });
                for (i, opt) in point.options.iter().enumerate() {
                    if i == point.taken || opt.noop {
                        continue;
                    }
                    if sleep.iter().any(|s| s.id == opt.meta.id) {
                        out.sleep_skips += 1;
                        continue;
                    }
                    let mut preemptions = preemptions;
                    if let Some(bound) = cfg.preemptions {
                        let preempts = prev_target.is_some_and(|prev| {
                            opt.meta.target != prev
                                && point
                                    .options
                                    .iter()
                                    .any(|o| !o.noop && o.meta.target == prev)
                        });
                        if preempts {
                            preemptions += 1;
                        }
                        if preemptions > bound {
                            out.complete = false;
                            continue;
                        }
                    }
                    let mut prefix = Vec::with_capacity(d + 1);
                    prefix.extend_from_slice(&taken[..d]);
                    prefix.push(i);
                    let mut child_sleep = sleeps.pop().unwrap_or_default();
                    child_sleep.clear();
                    child_sleep.extend(
                        sleep
                            .iter()
                            .chain(explored.iter())
                            .filter(|s| s.target != opt.meta.target)
                            .copied(),
                    );
                    children.push(WorkItem {
                        prefix,
                        sleep: child_sleep,
                        preemptions,
                    });
                    explored.push(SleepEntry {
                        id: opt.meta.id,
                        target: opt.meta.target,
                    });
                }
                // Reverse so the canonically-first sibling pops first;
                // its whole subtree finishes before the next sibling,
                // which is what the accumulated sleep sets assume.
                for child in children.drain(..).rev() {
                    push(child);
                }
            }
        }
        // Firing the taken event wakes its dependents.
        sleep.retain(|s| s.target != taken_meta.target);
    }
    // The walked item's sleep vector feeds the free list.
    sleeps.push(sleep);
}

/// Runs one exploration task: a serial DFS over the stack segment
/// `stack`, pruning against the frozen `global` snapshot plus a
/// task-owned visited table. Stops at the task's first violation (in DFS
/// order), at the `max_runs` truncation bound (marking the verdict
/// incomplete), or at [`TASK_BUDGET`] — in which case the unexplored
/// stack is spilled back to the scheduler, not dropped.
///
/// Dispatches on [`CheckerConfig::fork`]: under [`ForkMode::Fork`] and
/// [`ForkMode::Auto`] the task runs on the forking executor
/// ([`explore_task_fork`]), which resumes each work item from the
/// snapshot taken at its branch point instead of replaying the prefix
/// from the initial state. If the protocol's processes are unforkable
/// (a [`kset_sim::SubstrateFork`] hook returning `None`) the task
/// silently degrades to replay — the two executors are pinned to
/// identical observables, so the mode is free to vary per task.
fn explore_task<S: CampaignStore>(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
    crashed: &[ProcessId],
    global: &S,
    stack: Vec<WorkItem>,
) -> TaskOutcome {
    // The forking executor resumes kernels from mid-run snapshots and
    // does not carry the deviation scratch a pattern with an active
    // policy needs, so such patterns always run on the replay executor.
    // Patterns without deviations (every crash pattern, and Byzantine
    // patterns with zero Byzantine slots) keep full fork eligibility.
    if cfg.fork != ForkMode::Replay && cfg.pattern_policy(plan).is_none() {
        if cfg.protocol.shared_memory() {
            if let Some(mut session) = ForkSession::<SmSubstrate<u64, u64>>::new(
                cfg.fork_config(),
                plan.clone(),
                sm_processes(cfg.protocol, inputs, cfg.t),
            ) {
                return explore_task_fork(cfg, inputs, spec, crashed, global, &mut session, stack);
            }
        } else if let Some(mut session) = ForkSession::<MpSubstrate<u64, u64>>::new(
            cfg.fork_config(),
            plan.clone(),
            mp_processes(cfg.protocol, inputs, cfg.t),
        ) {
            return explore_task_fork(cfg, inputs, spec, crashed, global, &mut session, stack);
        }
    }
    explore_task_replay(cfg, inputs, spec, plan, crashed, global, stack)
}

/// The stateless executor: every work item re-executes its prefix from
/// the initial state. Baseline for — and cross-checking oracle of — the
/// forking executor.
fn explore_task_replay<S: CampaignStore>(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
    crashed: &[ProcessId],
    global: &S,
    stack: Vec<WorkItem>,
) -> TaskOutcome {
    let mut out = TaskOutcome::new();
    let mut stack = stack;
    let policy = cfg.pattern_policy(plan);
    let (plan_crashed, plan_byzantine) = plan_slots(plan);
    // The arena and walk scratch live for the whole task: every run of the
    // task's (up to TASK_BUDGET-schedule) DFS reuses the same kernel
    // buffers, choice log, digest vectors and walk staging.
    let mut arena = RunArena::new();
    let mut scratch = WalkScratch::default();
    while let Some(item) = stack.pop() {
        if out.runs >= cfg.max_runs {
            out.complete = false;
            break;
        }
        if out.runs >= TASK_BUDGET {
            stack.push(item);
            out.spill = std::mem::take(&mut stack);
            break;
        }
        let WorkItem {
            prefix,
            sleep,
            preemptions,
        } = item;
        let prefix_len = prefix.len();
        let run = execute_schedule_in(
            cfg.protocol,
            inputs,
            cfg.t,
            plan,
            policy.as_ref(),
            prefix,
            cfg.por,
            false,
            cfg.digest_mode(),
            &mut arena,
        )
        .expect("checker-built system configurations are valid");
        out.runs += 1;
        progress_line(cfg, crashed, &out, stack.len());

        out.worst_agreement = out.worst_agreement.max(run.distinct_correct_decisions());
        if let Some(message) = violation_of(spec, inputs, &run) {
            out.violation = Some(Counterexample {
                crashed: plan_crashed.clone(),
                byzantine: plan_byzantine.clone(),
                choices: run.log.taken_indices(),
                fired: run.log.fired_script(),
                violation: message,
            });
            break;
        }
        walk_run(
            cfg,
            prefix_len,
            preemptions,
            sleep,
            &run.log,
            &run.digests,
            None,
            global,
            &mut out,
            &mut |child| stack.push(child),
            &mut scratch,
        );
        arena.put_log(run.log);
        arena.put_digests(run.digests);
    }
    out
}

/// The checker's [`ForkGate`]: a mirror of [`walk_run`]'s pruning that
/// runs *during* execution, so the forking executor only snapshots
/// decision points whose siblings the walk will actually visit.
///
/// `branches_beyond` answers false exactly when the walk's dedup rule
/// would cut the run off at (or before) that depth — the state was
/// already expanded under a subset sleep set — at which point no deeper
/// sibling of this run can ever be popped, so snapshots past it would be
/// pure waste. Because visited stores only grow, a cover observed here
/// still holds when the walk re-checks it. The sleep set evolves exactly
/// as the walk's: `on_fired` wakes dependents of each beyond-prefix
/// fired event.
///
/// A closing cover is remembered in `closed_at`: the decision-point
/// depth where the gate proved (fingerprint, sleep) covered. The walk
/// reuses that proof as its `verified_cut` and skips re-probing the
/// stores at that depth — sound because covers are monotone (stores
/// only grow between the gate's probe and the walk's).
struct WalkGate<'a, S: CampaignStore> {
    dedup: bool,
    global: &'a S,
    visited: &'a Visited,
    sleep: Vec<SleepEntry>,
    closed_at: Option<usize>,
}

impl<S: CampaignStore> ForkGate for WalkGate<'_, S> {
    fn branches_beyond(&mut self, depth: usize, fingerprint: u64) -> bool {
        if !self.dedup {
            return true;
        }
        if self.visited.covers(fingerprint, &self.sleep)
            || self.global.covers(fingerprint, &self.sleep)
        {
            self.closed_at = Some(depth);
            return false;
        }
        true
    }

    fn on_fired(&mut self, target: ProcessId) {
        self.sleep.retain(|s| s.target != target);
    }

    fn is_asleep(&self, id: EventId) -> bool {
        self.sleep.iter().any(|s| s.id == id)
    }
}

/// [`explore_task_replay`] on the forking executor: one [`ForkSession`]
/// owns the kernel, process and digest state for the whole task, each
/// work item resumes from the snapshot captured at its branch point (or
/// replays from the root when none was — gate-closed point, byte budget,
/// restored continuation), and the walk attaches the current run's
/// snapshots to the children it stages. All observables — verdicts,
/// counters, counterexample bytes — are identical to the replay executor
/// (`tests/fork_parity.rs` pins this).
fn explore_task_fork<Sub, S>(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    crashed: &[ProcessId],
    global: &S,
    session: &mut ForkSession<Sub>,
    stack: Vec<WorkItem>,
) -> TaskOutcome
where
    Sub: SubstrateFork<Output = u64>,
    S: CampaignStore,
{
    let mut out = TaskOutcome::new();
    // The DFS stack pairs each item with the snapshot to resume from.
    // LIFO order is what makes resumption sound: everything pushed above
    // an item branches at least as deep as the item's own branch point,
    // so the session's choice log always still carries the item's prefix
    // when its turn comes.
    let mut stack: Vec<(WorkItem, Option<Rc<RunSnapshot<Sub>>>)> =
        stack.into_iter().map(|item| (item, None)).collect();
    let mut scratch = WalkScratch::default();
    while let Some((item, snap)) = stack.pop() {
        if out.runs >= cfg.max_runs {
            out.complete = false;
            break;
        }
        if out.runs >= TASK_BUDGET {
            stack.push((item, snap));
            // Snapshots are a per-task acceleration, not search state:
            // spills shed them so WorkItem — and with it the campaign
            // checkpoint format — stays replayable everywhere.
            out.spill = stack.into_iter().map(|(item, _)| item).collect();
            break;
        }
        let WorkItem {
            prefix,
            sleep,
            preemptions,
        } = item;
        let prefix_len = prefix.len();
        let mut gate = WalkGate {
            dedup: cfg.dedup,
            global,
            visited: &out.visited,
            sleep: sleep.clone(),
            closed_at: None,
        };
        match snap {
            Some(snapshot) => session.resume_rc(snapshot, prefix, &mut gate),
            None => session.run_root(prefix, &mut gate),
        }
        .expect("checker-built system configurations are valid");
        let verified_cut = gate.closed_at;
        // Read the run's observables in place — no per-run export copies,
        // and `crashed` doubles as the (task-constant) faulty set.
        let decisions = session.decisions();
        out.runs += 1;
        progress_line(cfg, crashed, &out, stack.len());

        out.worst_agreement = out
            .worst_agreement
            .max(distinct_correct_decisions_dense(decisions, crashed));
        if let Some(message) =
            violation_of_dense(spec, inputs, decisions, crashed, session.terminated())
        {
            let log = session.log();
            // The fork executor only ever runs deviation-free patterns
            // (see [`explore_task`]), so the script is all-faithful and
            // there are no Byzantine slots to record.
            out.violation = Some(Counterexample {
                crashed: crashed.to_vec(),
                byzantine: Vec::new(),
                choices: log.taken_indices(),
                fired: log.fired_script(),
                violation: message,
            });
            break;
        }
        let log = session.log();
        walk_run(
            cfg,
            prefix_len,
            preemptions,
            sleep,
            &log,
            session.digests(),
            verified_cut,
            global,
            &mut out,
            &mut |child: WorkItem| {
                let snapshot = session.snapshot_at(child.prefix.len() - 1);
                stack.push((child, snapshot));
            },
            &mut scratch,
        );
        drop(log);
    }
    out
}

/// The shared per-run progress line of both executors.
fn progress_line(cfg: &CheckerConfig, crashed: &[ProcessId], out: &TaskOutcome, frontier: usize) {
    if let Some(every) = cfg.progress {
        if out.runs % every == 0 {
            eprintln!(
                "[model_check] {} crashed={:?}: task at {} runs, {} states, {} frontier, {} dedup hits, {} sleep skips",
                cfg.protocol.name(),
                crashed,
                out.runs,
                out.states,
                frontier,
                out.dedup_hits,
                out.sleep_skips,
            );
        }
    }
}

/// Phase 1 of a pattern's exploration: executes the canonical
/// (empty-prefix) run, seeds the first-deviation task queue, and returns
/// the root task's visited table (which the caller absorbs into the
/// shared store — exactly the serial explorer's view after run 1).
///
/// `seeded` comes back in claim order: the walk emits stack order, and
/// reversing it reproduces the serial explorer's pop order (deepest
/// deviation first), so violated cells exit after the same shallow wave
/// of small subtrees the serial search would have tried first.
pub(crate) fn seed_pattern(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
) -> (PatternState, Visited) {
    let crashed = plan.faulty_set();
    let policy = cfg.pattern_policy(plan);
    let mut root_out = TaskOutcome::new();
    let mut seeded: Vec<WorkItem> = Vec::new();
    let mut root_arena = RunArena::new();
    let root_run = execute_schedule_in(
        cfg.protocol,
        inputs,
        cfg.t,
        plan,
        policy.as_ref(),
        Vec::new(),
        cfg.por,
        false,
        cfg.digest_mode(),
        &mut root_arena,
    )
    .expect("checker-built system configurations are valid");
    root_out.runs = 1;
    root_out.worst_agreement = root_run.distinct_correct_decisions();
    if let Some(message) = violation_of(spec, inputs, &root_run) {
        let (plan_crashed, plan_byzantine) = plan_slots(plan);
        root_out.violation = Some(Counterexample {
            crashed: plan_crashed,
            byzantine: plan_byzantine,
            choices: root_run.log.taken_indices(),
            fired: root_run.log.fired_script(),
            violation: message,
        });
    } else {
        let empty = Visited::default();
        let mut scratch = WalkScratch::default();
        walk_run(
            cfg,
            0,
            0,
            Vec::new(),
            &root_run.log,
            &root_run.digests,
            None,
            &empty,
            &mut root_out,
            &mut |item| seeded.push(item),
            &mut scratch,
        );
    }
    seeded.reverse();
    let verdict = PatternVerdict {
        crashed,
        runs: root_out.runs,
        states: root_out.states,
        sleep_skips: root_out.sleep_skips,
        dedup_hits: root_out.dedup_hits,
        complete: root_out.complete,
        worst_agreement: root_out.worst_agreement,
        tasks: 1,
        violation: root_out.violation,
    };
    let queue: Vec<Vec<WorkItem>> = seeded.into_iter().map(|item| vec![item]).collect();
    (
        PatternState { verdict, queue },
        std::mem::take(&mut root_out.visited),
    )
}

/// Phase 2 of a pattern's exploration, generic over the shared visited
/// store and resumable at any wave boundary: drains the task queue in
/// waves, folding each task's visited table into `store` — and its
/// counters into the verdict — at the wave barrier, in claim order.
/// Tasks that exhaust [`TASK_BUDGET`] spill their remaining stack back
/// into the queue as fresh tasks.
///
/// `on_wave` runs between waves with the store, the verdict so far, and
/// the remaining queue; returning [`WaveControl::Pause`] ends the drain
/// with [`DrainExit::Paused`] (the campaign layer checkpoints there).
/// The observer never influences exploration, so verdicts and counters
/// are independent of when — or whether — it pauses.
pub(crate) fn drain_pattern<S: CampaignStore + Sync>(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
    store: &mut S,
    state: PatternState,
    mut on_wave: impl FnMut(&mut S, &PatternVerdict, &VecDeque<Vec<WorkItem>>) -> WaveControl,
) -> (PatternVerdict, DrainExit) {
    let PatternState { verdict, queue } = state;
    let crashed = verdict.crashed.clone();
    if verdict.violation.is_some() || queue.is_empty() {
        return (verdict, DrainExit::Drained);
    }
    let mut drain_state = (store, verdict);
    let exit = crate::engine::parallel_drain_watched(
        cfg.threads,
        queue,
        &mut drain_state,
        |_, (store, _), stack| {
            explore_task(cfg, inputs, spec, plan, &crashed, &**store, stack)
        },
        |(store, v), mut out, queue| {
            store.absorb(std::mem::take(&mut out.visited));
            v.runs += out.runs;
            v.states += out.states;
            v.sleep_skips += out.sleep_skips;
            v.dedup_hits += out.dedup_hits;
            v.complete &= out.complete;
            v.worst_agreement = v.worst_agreement.max(out.worst_agreement);
            v.tasks += 1;
            if !out.spill.is_empty() {
                queue.push(out.spill);
            }
            if v.violation.is_none() {
                v.violation = out.violation;
            }
            v.violation.is_some() || v.runs >= cfg.max_runs
        },
        |(store, v), queue| on_wave(store, v, queue),
    );
    let mut verdict = drain_state.1;
    if matches!(exit, DrainExit::Stopped { work_left: true }) && verdict.violation.is_none() {
        // The pattern-level run budget cut the drain short.
        verdict.complete = false;
    }
    (verdict, exit)
}

/// Explores every schedule of `protocol` under one crash pattern,
/// checking each completed run against `spec`, across
/// [`CheckerConfig::threads`] workers. Stops at the canonically first
/// violation (unshrunk; [`check_cell`] shrinks it) at the next task-chunk
/// boundary. Every field of the verdict is identical for every thread
/// count (see the module docs).
///
/// This is the in-memory fast path: the shared store is a plain
/// [`Visited`] table. The campaign layer (`crate::campaign`) runs the
/// same `seed_pattern`/`drain_pattern` machinery against a disk-backed
/// store with checkpoint hooks, and is pinned to produce bit-identical
/// verdicts.
///
/// # Panics
///
/// Panics on simulator configuration errors (the checker builds its own
/// systems, so these are bugs, not inputs).
pub fn explore_pattern(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
) -> PatternVerdict {
    let (state, root_visited) = seed_pattern(cfg, inputs, spec, plan);
    let mut store = root_visited;
    let (verdict, _) = drain_pattern(cfg, inputs, spec, plan, &mut store, state, |_, _, _| {
        WaveControl::Continue
    });
    verdict
}

/// Greedily shrinks a violating choice prefix: first each entry is driven
/// towards the canonical default `0`, then the tail is trimmed while the
/// violation persists. Every step re-executes the real kernel, so the
/// result is a genuine, minimal-ish witness — and the procedure is
/// deterministic, so the emitted script is stable across re-runs.
pub fn shrink_counterexample(
    cfg: &CheckerConfig,
    inputs: &[u64],
    spec: &ProblemSpec,
    plan: &FaultPlan,
    choices: Vec<usize>,
) -> Counterexample {
    let policy = cfg.pattern_policy(plan);
    let still_violates = |prefix: &[usize]| -> bool {
        execute_schedule(
            cfg.protocol,
            inputs,
            cfg.t,
            plan,
            policy.as_ref(),
            prefix,
            cfg.por,
            false,
        )
        .ok()
        .is_some_and(|run| violation_of(spec, inputs, &run).is_some())
    };
    let mut best = choices;
    for i in 0..best.len() {
        if best[i] != 0 {
            let mut candidate = best.clone();
            candidate[i] = 0;
            if still_violates(&candidate) {
                best = candidate;
            }
        }
    }
    while !best.is_empty() && still_violates(&best[..best.len() - 1]) {
        best.pop();
    }
    let run = execute_schedule(
        cfg.protocol,
        inputs,
        cfg.t,
        plan,
        policy.as_ref(),
        &best,
        cfg.por,
        false,
    )
    .expect("shrunk prefix replays");
    let violation = violation_of(spec, inputs, &run)
        .expect("shrinking preserves the violation");
    let (crashed, byzantine) = plan_slots(plan);
    Counterexample {
        crashed,
        byzantine,
        choices: best,
        fired: run.log.fired_script(),
        violation,
    }
}

/// Verdict of model-checking one cell across every crash pattern.
#[derive(Clone, Debug)]
pub struct CellVerdict {
    /// Per-pattern results, in [`CheckerConfig::fault_plans`] order. The
    /// search stops at the first violating pattern, so later patterns may
    /// be absent.
    pub patterns: Vec<PatternVerdict>,
    /// Worst agreement across all explored patterns and schedules.
    pub worst_agreement: usize,
    /// Whether every pattern was explored exhaustively.
    pub complete: bool,
    /// Total schedules executed.
    pub runs: u64,
    /// The first violation found (shrunk), if any.
    pub counterexample: Option<Counterexample>,
}

impl CellVerdict {
    /// Whether the protocol solves the cell as far as the exploration saw:
    /// no violating schedule in any explored pattern.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

impl fmt::Display for CellVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} over {} crash pattern(s): {} runs, worst agreement {}{}",
            if self.holds() { "HOLDS" } else { "VIOLATED" },
            self.patterns.len(),
            self.runs,
            self.worst_agreement,
            if self.complete { "" } else { " (bounded)" },
        )?;
        if let Some(ce) = &self.counterexample {
            write!(f, "; counterexample: crashed={:?}, ", ce.crashed)?;
            // Only Byzantine cells name their slots, so crash-adversary
            // verdict lines stay byte-identical to earlier recordings.
            if !ce.byzantine.is_empty() {
                write!(f, "byzantine={:?}, ", ce.byzantine)?;
            }
            write!(f, "{} choice(s), {}", ce.choices.len(), ce.violation)?;
        }
        Ok(())
    }
}

/// Model-checks `SC(k, t, C)` for the configured protocol and cell:
/// explores every schedule of every fault pattern of the configured
/// adversary ([`CheckerConfig::fault_plans`]), stopping at (and
/// shrinking) the first violation.
///
/// # Panics
///
/// Panics if the cell coordinates are rejected by [`ProblemSpec::new`],
/// or — the hard guard against certifying the wrong model — if the
/// configuration fails [`CheckerConfig::validate`].
pub fn check_cell(cfg: &CheckerConfig) -> CellVerdict {
    if let Err(message) = cfg.validate() {
        panic!("invalid checker configuration: {message}");
    }
    let inputs = cfg.cell_inputs();
    let spec = ProblemSpec::new(cfg.n, cfg.k, cfg.t, cfg.validity)
        .expect("checker cell coordinates are valid");
    let mut verdict = CellVerdict {
        patterns: Vec::new(),
        worst_agreement: 0,
        complete: true,
        runs: 0,
        counterexample: None,
    };
    for plan in cfg.fault_plans() {
        let mut pattern = explore_pattern(cfg, &inputs, &spec, &plan);
        verdict.worst_agreement = verdict.worst_agreement.max(pattern.worst_agreement);
        verdict.runs += pattern.runs;
        verdict.complete &= pattern.complete;
        if let Some(raw) = pattern.violation.take() {
            let shrunk = shrink_counterexample(cfg, &inputs, &spec, &plan, raw.choices);
            pattern.violation = Some(shrunk.clone());
            verdict.patterns.push(pattern);
            verdict.counterexample = Some(shrunk);
            break;
        }
        verdict.patterns.push(pattern);
    }
    verdict
}

/// Re-runs one representative schedule per explored pattern with metrics
/// enabled and packages each as a [`RunRecord`] for the JSONL pipeline
/// (`OBSERVABILITY.md`). The record's `seed` field carries the crash
/// pattern's index — the checker is seedless — and the protocol is tagged
/// `MC(<name>)` so checker records are distinguishable from seed sweeps.
pub fn to_run_records(cfg: &CheckerConfig, verdict: &CellVerdict) -> Vec<RunRecord> {
    let inputs = cfg.cell_inputs();
    // The explored patterns are a prefix of the cell's plan enumeration
    // (the search stops at the first violating pattern), so zipping
    // recovers each verdict's *exact* plan — including Byzantine slots,
    // which a reconstruction from the crashed list alone would silently
    // demote to crashes.
    verdict
        .patterns
        .iter()
        .zip(cfg.fault_plans())
        .enumerate()
        .map(|(index, (pattern, plan))| {
            debug_assert_eq!(pattern.crashed, plan.faulty_set());
            let prefix: Vec<usize> = pattern
                .violation
                .as_ref()
                .map(|ce| ce.choices.clone())
                .unwrap_or_default();
            let run = execute_schedule(
                cfg.protocol,
                &inputs,
                cfg.t,
                &plan,
                cfg.pattern_policy(&plan).as_ref(),
                &prefix,
                cfg.por,
                true,
            )
            .expect("explored patterns replay");
            let violation = pattern
                .violation
                .as_ref()
                .map(|ce| ce.violation.clone());
            RunRecord::new(
                cfg.model(),
                cfg.validity,
                cfg.n,
                cfg.k,
                cfg.t,
                index as u64,
                format!("MC({})", cfg.protocol.name()),
                RunOutcome {
                    terminated: run.terminated,
                    decided: run.decisions.len(),
                    distinct_decisions: run.distinct_correct_decisions(),
                    violation,
                },
                run.stats,
                run.metrics,
            )
        })
        .collect()
}

/// Cross-validates a [`check_cell`] verdict against the analytic
/// enumerator: both must agree, per crash pattern, on the worst-case
/// agreement and on whether `SC(k, t, C)` holds. Returns the
/// disagreements (empty = the two verification routes confirm each
/// other).
///
/// Only meaningful for complete (unbounded) explorations; bounded runs
/// can legitimately under-approximate `worst_agreement`.
pub fn cross_validate(cfg: &CheckerConfig, verdict: &CellVerdict) -> Vec<String> {
    let inputs = cfg.cell_inputs();
    let mut disagreements = Vec::new();
    if cfg.deviation_policy().is_some() {
        // The analytic enumerator models crash quorums only; there is no
        // second verification route for Byzantine or lossy behaviour
        // spaces (their oracle is the replay of the emitted script).
        disagreements.push(format!(
            "adversary model {} has no analytic enumeration oracle; comparison void",
            cfg.adversary,
        ));
        return disagreements;
    }
    if !verdict.complete {
        disagreements.push("exploration was bounded; comparison void".to_string());
        return disagreements;
    }
    let mut analytic_worst = 0;
    let mut analytic_violated = false;
    for plan in all_silent_crash_patterns(cfg.n, cfg.t) {
        let crashed = plan.faulty_set();
        let report = crate::exhaustive::verify(cfg.protocol, &inputs, cfg.t, &crashed, 1 << 40)
            .expect("small-n enumerations fit any budget");
        analytic_worst = analytic_worst.max(report.worst_agreement);
        analytic_violated |= !report.satisfies(cfg.k, cfg.validity);
        // The checker stops at the first violating pattern, so per-pattern
        // agreement is only comparable while both sides are clean.
        if let Some(pattern) = verdict
            .patterns
            .iter()
            .find(|p| p.crashed == crashed && p.violation.is_none())
        {
            if pattern.worst_agreement != report.worst_agreement {
                disagreements.push(format!(
                    "crashed={crashed:?}: checker worst agreement {} vs analytic {}",
                    pattern.worst_agreement, report.worst_agreement
                ));
            }
        }
    }
    if verdict.holds() == analytic_violated {
        disagreements.push(format!(
            "checker says SC({}, {}, {}) {}, analytic enumeration says {}",
            cfg.k,
            cfg.t,
            cfg.validity,
            if verdict.holds() { "holds" } else { "fails" },
            if analytic_violated { "fails" } else { "holds" },
        ));
    }
    disagreements
}

/// Parses a protocol name as accepted by the `model_check` binary:
/// the display name (case-insensitive, spaces optional) or the short
/// forms `floodmin`/`a`/`b`/`e`/`f`.
pub fn parse_protocol(arg: &str) -> Option<QuorumProtocol> {
    let norm: String = arg
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .to_ascii_lowercase();
    Some(match norm.as_str() {
        "floodmin" => QuorumProtocol::FloodMin,
        "a" | "protocola" => QuorumProtocol::ProtocolA,
        "b" | "protocolb" => QuorumProtocol::ProtocolB,
        "e" | "protocole" => QuorumProtocol::ProtocolE,
        "f" | "protocolf" => QuorumProtocol::ProtocolF,
        _ => return None,
    })
}

/// Parses a validity condition by its display name (case-insensitive).
pub fn parse_validity(arg: &str) -> Option<ValidityCondition> {
    ValidityCondition::ALL
        .into_iter()
        .find(|v| v.to_string().eq_ignore_ascii_case(arg.trim()))
}

/// A counterexample file read back from disk (see [`write_counterexample`]
/// for the format).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SavedCounterexample {
    /// Protocol the schedule violates.
    pub protocol: QuorumProtocol,
    /// System size.
    pub n: usize,
    /// Agreement bound.
    pub k: usize,
    /// Fault budget.
    pub t: usize,
    /// Validity condition.
    pub validity: ValidityCondition,
    /// Adversary the cell was certified against (v1 scripts default to
    /// the protocol substrate's crash adversary).
    pub adversary: AdversaryModel,
    /// Input override the cell ran with; `None` = canonical inputs.
    pub inputs: Option<Vec<u64>>,
    /// The Byzantine forged-value menu of the recording configuration.
    pub byz_menu: Vec<u64>,
    /// Whether selective silence was in the behaviour space.
    pub byz_silence: bool,
    /// The lossy adversary's per-run drop budget.
    pub loss_budget: u64,
    /// The violating fault pattern and schedule.
    pub counterexample: Counterexample,
}

impl SavedCounterexample {
    /// Reconstructs the fault plan of the recorded run: silent crashes
    /// plus the recorded Byzantine slots.
    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::silent_crashes(self.n, &self.counterexample.crashed);
        for &p in &self.counterexample.byzantine {
            plan.set(p, FaultSpec::Byzantine);
        }
        plan
    }

    /// The inputs of the recorded run.
    fn run_inputs(&self) -> Vec<u64> {
        self.inputs
            .clone()
            .unwrap_or_else(|| canonical_inputs(self.n))
    }

    /// Reconstructs the deviation policy of the recording configuration
    /// (`None` for crash scripts — the crash-only replay path).
    fn policy(&self) -> Option<DeviationPolicy> {
        let policy = if self.adversary.is_byzantine() {
            DeviationPolicy::byzantine(self.byz_menu.clone(), self.byz_silence)
        } else if self.adversary.is_lossy() {
            DeviationPolicy::lossy(self.loss_budget)
        } else {
            return None;
        };
        if !policy.is_active() {
            return None;
        }
        // Mirror [`CheckerConfig::pattern_policy`]: a Byzantine-adversary
        // script whose pattern has no Byzantine slot replays on the
        // crash-only path, exactly as it was recorded.
        if self.adversary.is_byzantine() && self.counterexample.byzantine.is_empty() {
            return None;
        }
        Some(policy)
    }
}

/// Writes a counterexample as a plain-text replay script:
///
/// ```text
/// # kset model_check counterexample v1
/// # protocol: FloodMin
/// # n: 4
/// # k: 2
/// # t: 2
/// # validity: RV1
/// # crashed:
/// # choices: 3 6
/// # violation: agreement violated: ...
/// 0
/// 4
/// ...
/// ```
///
/// Header lines carry the cell and the shrunk choice prefix; each body
/// line is one fired event id, in order — the exact
/// [`kset_sim::ReplayScheduler`] script of the violating run. The format
/// is deliberately line-based and deterministic: re-running the checker on
/// an unchanged workspace produces a byte-identical file, so these scripts
/// can be committed as regression pins.
///
/// A cell recorded under a non-crash adversary (or with explicit inputs)
/// is emitted as **v2**, which adds `# model:`, `# inputs:`,
/// `# byz-menu:`, `# byz-silence:`, `# loss-budget:` and `# byzantine:`
/// headers, and suffixes each deviating body line with the deviation in
/// its [`Deviation`] display syntax (`17 forge:0`, `23 drop`). Crash
/// cells keep emitting v1 bytes, so committed crash scripts never churn.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_counterexample(
    path: &Path,
    cfg: &CheckerConfig,
    ce: &Counterexample,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let v2 = cfg.adversary.is_byzantine() || cfg.adversary.is_lossy() || cfg.inputs.is_some();
    let mut out = Vec::new();
    writeln!(
        out,
        "# kset model_check counterexample v{}",
        if v2 { 2 } else { 1 }
    )?;
    writeln!(out, "# protocol: {}", cfg.protocol.name())?;
    writeln!(out, "# n: {}", cfg.n)?;
    writeln!(out, "# k: {}", cfg.k)?;
    writeln!(out, "# t: {}", cfg.t)?;
    writeln!(out, "# validity: {}", cfg.validity)?;
    if v2 {
        writeln!(out, "# model: {}", cfg.adversary)?;
        writeln!(
            out,
            "# inputs:{}",
            cfg.cell_inputs()
                .iter()
                .map(|v| format!(" {v}"))
                .collect::<String>()
        )?;
        writeln!(
            out,
            "# byz-menu:{}",
            cfg.byz_menu.iter().map(|v| format!(" {v}")).collect::<String>()
        )?;
        writeln!(out, "# byz-silence: {}", cfg.byz_silence)?;
        writeln!(out, "# loss-budget: {}", cfg.loss_budget)?;
        writeln!(
            out,
            "# byzantine:{}",
            ce.byzantine
                .iter()
                .map(|p| format!(" {p}"))
                .collect::<String>()
        )?;
    }
    writeln!(
        out,
        "# crashed:{}",
        ce.crashed
            .iter()
            .map(|p| format!(" {p}"))
            .collect::<String>()
    )?;
    writeln!(
        out,
        "# choices:{}",
        ce.choices.iter().map(|c| format!(" {c}")).collect::<String>()
    )?;
    writeln!(out, "# violation: {}", ce.violation.replace('\n', "; "))?;
    for (id, deviation) in &ce.fired {
        match deviation {
            Deviation::Faithful => writeln!(out, "{}", id.as_u64())?,
            other => writeln!(out, "{} {}", id.as_u64(), other)?,
        }
    }
    fs::write(path, out)
}

/// Parses the deviation suffix of a v2 body line (`forge:<v>` or `drop`);
/// `None` on anything else.
fn parse_deviation(token: &str) -> Option<Deviation> {
    if token == "drop" {
        return Some(Deviation::Drop);
    }
    token
        .strip_prefix("forge:")
        .and_then(|v| v.parse().ok())
        .map(Deviation::Forge)
}

/// Reads a counterexample script written by [`write_counterexample`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on malformed headers or body.
pub fn read_counterexample(path: &Path) -> io::Result<SavedCounterexample> {
    let text = fs::read_to_string(path)?;
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut fields: HashMap<&str, &str> = HashMap::new();
    let mut fired = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix('#') {
            if let Some((key, value)) = rest.split_once(':') {
                // `forge:0` in a byz-menu header would split wrong, but
                // headers always start with a known key, so the first ':'
                // is the separator for every header this format emits.
                fields.insert(key.trim(), value.trim());
            }
        } else if !line.trim().is_empty() {
            let mut tokens = line.split_whitespace();
            let id = tokens.next().expect("non-empty line has a token");
            let raw: u64 = id
                .parse()
                .map_err(|e| bad(format!("bad event id {line:?}: {e}")))?;
            let deviation = match tokens.next() {
                None => Deviation::Faithful,
                Some(token) => parse_deviation(token)
                    .ok_or_else(|| bad(format!("bad deviation in line {line:?}")))?,
            };
            fired.push((EventId::from_u64(raw), deviation));
        }
    }
    let field = |key: &str| {
        fields
            .get(key)
            .copied()
            .ok_or_else(|| bad(format!("missing header '# {key}: ...'")))
    };
    let num = |key: &str| -> io::Result<usize> {
        field(key)?
            .parse()
            .map_err(|e| bad(format!("bad {key}: {e}")))
    };
    let list = |key: &str| -> io::Result<Vec<usize>> {
        field(key)?
            .split_whitespace()
            .map(|w| w.parse().map_err(|e| bad(format!("bad {key}: {e}"))))
            .collect()
    };
    // The v2 headers are optional with crash-model defaults, so v1 files
    // (and hand-trimmed scripts) keep reading unchanged.
    let opt_list = |key: &str| -> io::Result<Vec<u64>> {
        match fields.get(key) {
            None => Ok(Vec::new()),
            Some(value) => value
                .split_whitespace()
                .map(|w| w.parse().map_err(|e| bad(format!("bad {key}: {e}"))))
                .collect(),
        }
    };
    let protocol = parse_protocol(field("protocol")?)
        .ok_or_else(|| bad(format!("unknown protocol {:?}", fields["protocol"])))?;
    let validity = parse_validity(field("validity")?)
        .ok_or_else(|| bad(format!("unknown validity {:?}", fields["validity"])))?;
    let adversary = match fields.get("model") {
        None => {
            if protocol.shared_memory() {
                AdversaryModel::SmCrash
            } else {
                AdversaryModel::MpCrash
            }
        }
        Some(value) => parse_adversary_model(value)
            .ok_or_else(|| bad(format!("unknown adversary model {value:?}")))?,
    };
    let inputs = match fields.get("inputs") {
        None => None,
        Some(value) => Some(
            value
                .split_whitespace()
                .map(|w| w.parse().map_err(|e| bad(format!("bad inputs: {e}"))))
                .collect::<io::Result<Vec<u64>>>()?,
        ),
    };
    let byz_silence = match fields.get("byz-silence") {
        None => false,
        Some(value) => value
            .parse()
            .map_err(|e| bad(format!("bad byz-silence: {e}")))?,
    };
    let loss_budget = match fields.get("loss-budget") {
        None => 0,
        Some(value) => value
            .parse()
            .map_err(|e| bad(format!("bad loss-budget: {e}")))?,
    };
    let byzantine = match fields.get("byzantine") {
        None => Vec::new(),
        Some(value) => value
            .split_whitespace()
            .map(|w| w.parse().map_err(|e| bad(format!("bad byzantine: {e}"))))
            .collect::<io::Result<Vec<usize>>>()?,
    };
    Ok(SavedCounterexample {
        protocol,
        n: num("n")?,
        k: num("k")?,
        t: num("t")?,
        validity,
        adversary,
        inputs,
        byz_menu: opt_list("byz-menu")?,
        byz_silence,
        loss_budget,
        counterexample: Counterexample {
            crashed: list("crashed")?,
            byzantine,
            choices: list("choices")?,
            fired,
            violation: field("violation")?.to_string(),
        },
    })
}

/// Replays a saved counterexample deterministically via its choice prefix
/// and re-checks the specification. Returns the replayed run and its
/// violation message (`None` means the script no longer violates — i.e.
/// the protocol or kernel changed since the script was recorded).
pub fn replay_counterexample(saved: &SavedCounterexample) -> (ScheduleRun, Option<String>) {
    let inputs = saved.run_inputs();
    let spec = ProblemSpec::new(saved.n, saved.k, saved.t, saved.validity)
        .expect("saved cell coordinates are valid");
    let plan = saved.plan();
    let policy = saved.policy();
    let run = execute_schedule(
        saved.protocol,
        &inputs,
        saved.t,
        &plan,
        policy.as_ref(),
        &saved.counterexample.choices,
        true,
        false,
    )
    .expect("saved schedules replay");
    let violation = violation_of(&spec, &inputs, &run);
    (run, violation)
}

/// Replays the *fired id* body of a saved counterexample through a
/// [`kset_sim::ReplayScheduler`] and re-checks the specification.
///
/// Returns the violation message (`None` if the script no longer
/// violates) and the scheduler's divergence count — `0` means every
/// scripted id was found pending when its turn came, i.e. the replay
/// reproduced the recorded run event-for-event.
pub fn replay_fired(saved: &SavedCounterexample) -> (Option<String>, u64) {
    use std::cell::RefCell;
    use std::rc::Rc;

    let inputs = saved.run_inputs();
    let spec = ProblemSpec::new(saved.n, saved.k, saved.t, saved.validity)
        .expect("saved cell coordinates are valid");
    let plan = saved.plan();
    let sched = Rc::new(RefCell::new(kset_sim::ReplayScheduler::with_deviations(
        saved.counterexample.fired.iter().copied(),
    )));
    let (n, t) = (saved.n, saved.t);
    let sys = System::new(n).scheduler(Rc::clone(&sched)).fault_plan(plan);
    // `run_adv` applies the scripted deviations through the same
    // deviation-aware delivery the checker recorded them with; for an
    // all-faithful (crash) script it is the faithful path, event for
    // event.
    let outcome = if saved.protocol.shared_memory() {
        sys.run_adv::<SmSubstrate<u64, u64>>(sm_processes(saved.protocol, &inputs, t))
            .expect("saved schedules replay")
    } else {
        sys.run_adv::<MpSubstrate<u64, u64>>(mp_processes(saved.protocol, &inputs, t))
            .expect("saved schedules replay")
    };
    let record = kset_core::RunRecord::new(inputs)
        .with_faulty(outcome.faulty.iter().copied())
        .with_decisions(outcome.decisions)
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    let violation = (!report.is_ok()).then(|| report.to_string());
    let divergences = sched.borrow().divergences();
    (violation, divergences)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(
        protocol: QuorumProtocol,
        n: usize,
        k: usize,
        t: usize,
        validity: ValidityCondition,
    ) -> CheckerConfig {
        CheckerConfig::new(protocol, n, k, t, validity)
    }

    #[test]
    fn floodmin_n3_t1_k2_holds_and_matches_exhaustive() {
        let cfg = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        let disagreements = cross_validate(&cfg, &check_cell(&cfg));
        assert!(disagreements.is_empty(), "{disagreements:?}");
    }

    #[test]
    fn floodmin_consensus_with_crashes_is_violated_and_shrinks() {
        // k = 1 (consensus) with t = 1 is unsolvable (t >= k); the checker
        // must find a schedule with two distinct decisions.
        let cfg = cfg(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
        let verdict = check_cell(&cfg);
        assert!(!verdict.holds());
        let ce = verdict.counterexample.expect("violation found");
        assert!(ce.violation.contains("greement"), "{}", ce.violation);
        // The shrunk prefix still reproduces, and replay is exact.
        let saved = SavedCounterexample {
            protocol: cfg.protocol,
            n: cfg.n,
            k: cfg.k,
            t: cfg.t,
            validity: cfg.validity,
            adversary: cfg.adversary,
            inputs: cfg.inputs.clone(),
            byz_menu: cfg.byz_menu.clone(),
            byz_silence: cfg.byz_silence,
            loss_budget: cfg.loss_budget,
            counterexample: ce,
        };
        let (_, violation) = replay_counterexample(&saved);
        assert!(violation.is_some());
        // The fired-id script replays exactly: zero divergences.
        let (violation, divergences) = replay_fired(&saved);
        assert!(violation.is_some());
        assert_eq!(divergences, 0);
    }

    #[test]
    fn protocol_a_n3_t1_k2_rv2_matches_exhaustive() {
        let cfg = cfg(QuorumProtocol::ProtocolA, 3, 2, 1, ValidityCondition::RV2);
        let disagreements = cross_validate(&cfg, &check_cell(&cfg));
        assert!(disagreements.is_empty(), "{disagreements:?}");
    }

    #[test]
    fn protocol_e_n3_t1_k2_rv2_matches_exhaustive() {
        // Shared-memory substrate: digests cover registers too.
        let cfg = cfg(QuorumProtocol::ProtocolE, 3, 2, 1, ValidityCondition::RV2);
        let disagreements = cross_validate(&cfg, &check_cell(&cfg));
        assert!(disagreements.is_empty(), "{disagreements:?}");
    }

    #[test]
    fn reductions_do_not_change_the_verdict() {
        // The reduced and the raw tree must agree on worst agreement —
        // the soundness smoke test for sleep sets + dedup.
        let mut reduced = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        let mut raw = reduced.clone();
        raw.por = false;
        raw.dedup = false;
        raw.max_runs = 300_000;
        reduced.max_runs = 300_000;
        let rv = check_cell(&reduced);
        let bv = check_cell(&raw);
        assert!(rv.complete && bv.complete, "raise max_runs");
        assert_eq!(rv.worst_agreement, bv.worst_agreement);
        assert_eq!(rv.holds(), bv.holds());
        // And the reductions actually reduce.
        assert!(rv.runs < bv.runs, "{} !< {}", rv.runs, bv.runs);
    }

    #[test]
    fn counterexample_files_roundtrip_and_are_byte_stable() {
        let cfg = cfg(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
        let verdict = check_cell(&cfg);
        let ce = verdict.counterexample.expect("violation found");
        let dir = std::env::temp_dir().join("kset_checker_test");
        let path = dir.join("ce.schedule");
        write_counterexample(&path, &cfg, &ce).unwrap();
        let bytes1 = fs::read(&path).unwrap();
        let saved = read_counterexample(&path).unwrap();
        assert_eq!(saved.counterexample, ce);
        assert_eq!(saved.protocol, cfg.protocol);
        // A second full run of the checker emits the identical file.
        let verdict2 = check_cell(&cfg);
        write_counterexample(&path, &cfg, verdict2.counterexample.as_ref().unwrap()).unwrap();
        let bytes2 = fs::read(&path).unwrap();
        assert_eq!(bytes1, bytes2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_records_cover_each_explored_pattern() {
        let cfg = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        let verdict = check_cell(&cfg);
        let records = to_run_records(&cfg, &verdict);
        // n = 3, t = 1: failure-free + one pattern per process.
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.protocol == "MC(FloodMin)"));
        assert!(records.iter().all(|r| r.outcome.clean()));
        assert!(records.iter().all(|r| r.metrics.is_some()));
    }

    #[test]
    fn depth_bound_marks_verdict_incomplete() {
        let mut shallow = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        shallow.depth = 1;
        let verdict = check_cell(&shallow);
        assert!(!verdict.complete);
    }

    #[test]
    fn preemption_bound_zero_explores_fewer_schedules() {
        let full = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        let mut bounded = full.clone();
        bounded.preemptions = Some(0);
        let fv = check_cell(&full);
        let bv = check_cell(&bounded);
        assert!(bv.runs <= fv.runs);
    }

    #[test]
    fn parsers_accept_the_documented_forms() {
        assert_eq!(parse_protocol("FloodMin"), Some(QuorumProtocol::FloodMin));
        assert_eq!(parse_protocol("protocol a"), Some(QuorumProtocol::ProtocolA));
        assert_eq!(parse_protocol("f"), Some(QuorumProtocol::ProtocolF));
        assert_eq!(parse_protocol("nonsense"), None);
        assert_eq!(parse_validity("rv1"), Some(ValidityCondition::RV1));
        assert_eq!(parse_validity("bogus"), None);
        assert_eq!(parse_adversary_model("mp_byz"), Some(AdversaryModel::MpByz));
        assert_eq!(parse_adversary_model("SM_BYZ"), Some(AdversaryModel::SmByz));
        assert_eq!(parse_adversary_model("mp_lossy"), Some(AdversaryModel::MpLossy));
        assert_eq!(parse_adversary_model("byzantine"), None);
    }

    /// The canonical MP/Byz violated cell: one Byzantine slot forging a 0
    /// into all-equal proposals of 1 breaks RV1 for FloodMin (Lemma
    /// 3.10), and the recorded deviation script replays exactly.
    fn mp_byz_violated_cfg() -> CheckerConfig {
        let mut cfg = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        cfg.adversary = AdversaryModel::MpByz;
        cfg.byz_menu = vec![0];
        cfg.byz_silence = true;
        cfg.inputs = Some(vec![1, 1, 1]);
        cfg
    }

    #[test]
    fn byzantine_mp_cell_is_violated_and_replays_with_deviations() {
        let cfg = mp_byz_violated_cfg();
        let verdict = check_cell(&cfg);
        assert!(!verdict.holds());
        let ce = verdict.counterexample.expect("violation found");
        assert!(!ce.byzantine.is_empty(), "a Byzantine slot must be blamed");
        assert!(
            ce.fired.iter().any(|(_, d)| *d != Deviation::Faithful),
            "the script must record the deviation that broke the run: {:?}",
            ce.fired,
        );
        // The v2 file format round-trips the deviations and is byte-stable.
        let dir = std::env::temp_dir().join("kset_checker_byz_test");
        let path = dir.join("ce.schedule");
        write_counterexample(&path, &cfg, &ce).unwrap();
        let bytes1 = fs::read(&path).unwrap();
        let saved = read_counterexample(&path).unwrap();
        assert_eq!(saved.counterexample, ce);
        assert_eq!(saved.adversary, AdversaryModel::MpByz);
        assert_eq!(saved.byz_menu, vec![0]);
        assert!(saved.byz_silence);
        assert_eq!(saved.inputs, Some(vec![1, 1, 1]));
        write_counterexample(&path, &cfg, &ce).unwrap();
        assert_eq!(bytes1, fs::read(&path).unwrap());
        let _ = fs::remove_dir_all(&dir);
        // Both the choice-replay and the fired-script replay reproduce.
        let (_, violation) = replay_counterexample(&saved);
        assert!(violation.is_some());
        let (violation, divergences) = replay_fired(&saved);
        assert!(violation.is_some());
        assert_eq!(divergences, 0);
    }

    #[test]
    fn byzantine_mp_weak_validity_cell_holds() {
        // Lemma 3.12: (k-1)(n-2t) >= n-t at (n,k,t) = (3,3,1), so
        // Protocol A solves SC(3, 1, WV2) against the same adversary that
        // breaks RV1 — the other side of the MP Byzantine frontier.
        let mut cfg = cfg(QuorumProtocol::ProtocolA, 3, 3, 1, ValidityCondition::WV2);
        cfg.adversary = AdversaryModel::MpByz;
        cfg.byz_menu = vec![0];
        cfg.byz_silence = true;
        cfg.inputs = Some(vec![1, 1, 1]);
        let verdict = check_cell(&cfg);
        assert!(verdict.complete, "exploration must exhaust the space");
        assert!(verdict.holds());
    }

    #[test]
    fn byzantine_sm_strong_validity_cell_is_violated() {
        // Lemma 4.9: 2t >= n and t >= k at (n,k,t) = (3,2,2) makes RV2
        // unsolvable in SM/Byz; a forged register read breaks Protocol E.
        let mut cfg = cfg(QuorumProtocol::ProtocolE, 3, 2, 2, ValidityCondition::RV2);
        cfg.adversary = AdversaryModel::SmByz;
        cfg.byz_menu = vec![0];
        cfg.inputs = Some(vec![1, 1, 1]);
        let verdict = check_cell(&cfg);
        assert!(!verdict.holds());
        let ce = verdict.counterexample.expect("violation found");
        assert!(!ce.byzantine.is_empty());
        let saved = SavedCounterexample {
            protocol: cfg.protocol,
            n: cfg.n,
            k: cfg.k,
            t: cfg.t,
            validity: cfg.validity,
            adversary: cfg.adversary,
            inputs: cfg.inputs.clone(),
            byz_menu: cfg.byz_menu.clone(),
            byz_silence: cfg.byz_silence,
            loss_budget: cfg.loss_budget,
            counterexample: ce,
        };
        let (violation, divergences) = replay_fired(&saved);
        assert!(violation.is_some());
        assert_eq!(divergences, 0);
    }

    #[test]
    fn lossy_adversary_quantifies_over_drops() {
        // One allowed drop starves FloodMin's t = 1 resilience: the
        // checker must find a schedule where a correct process never
        // decides, and the script must record the drop.
        let mut cfg = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        cfg.adversary = AdversaryModel::MpLossy;
        cfg.loss_budget = 1;
        let verdict = check_cell(&cfg);
        assert!(!verdict.holds());
        let ce = verdict.counterexample.expect("violation found");
        assert!(ce.byzantine.is_empty(), "lossy keeps the crash pattern space");
        assert!(
            ce.fired.iter().any(|(_, d)| *d == Deviation::Drop),
            "{:?}",
            ce.fired,
        );
    }

    #[test]
    fn empty_deviation_menu_is_inert() {
        // A Byzantine adversary with nothing to forge and no silence is
        // the crash checker: identical verdict, counters and
        // counterexample (satellite of the parity suite in
        // `tests/adversary_parity.rs`).
        let crash = cfg(QuorumProtocol::FloodMin, 3, 1, 1, ValidityCondition::RV1);
        let mut byz = crash.clone();
        byz.adversary = AdversaryModel::MpByz;
        let cv = check_cell(&crash);
        let bv = check_cell(&byz);
        assert_eq!(cv.runs, bv.runs);
        assert_eq!(cv.worst_agreement, bv.worst_agreement);
        assert_eq!(cv.counterexample, bv.counterexample);
    }

    #[test]
    fn validate_rejects_inconsistent_adversaries() {
        let base = cfg(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        // Substrate mismatch: an SM adversary on an MP protocol.
        let mut bad = base.clone();
        bad.adversary = AdversaryModel::SmByz;
        assert!(bad.validate().is_err());
        // Byzantine knobs under a crash adversary.
        let mut bad = base.clone();
        bad.byz_menu = vec![0];
        assert!(bad.validate().is_err());
        // A loss budget without the lossy adversary.
        let mut bad = base.clone();
        bad.loss_budget = 2;
        assert!(bad.validate().is_err());
        // An input vector of the wrong arity.
        let mut bad = base.clone();
        bad.inputs = Some(vec![1, 1]);
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid checker configuration")]
    fn check_cell_refuses_an_unsupported_model_combination() {
        // Satellite guard: an unsupported model must be a hard error at
        // the door, never a silently wrong-model certification.
        let mut cfg = cfg(QuorumProtocol::ProtocolE, 3, 2, 1, ValidityCondition::RV2);
        cfg.adversary = AdversaryModel::MpByz; // MP adversary, SM protocol
        let _ = check_cell(&cfg);
    }

    #[test]
    #[should_panic(expected = "no deviation policy")]
    fn byzantine_plan_without_policy_is_rejected() {
        // Satellite guard: a Byzantine fault plan fed through the
        // crash-only execution path would silently certify crash
        // semantics under a Byzantine label.
        let inputs = canonical_inputs(3);
        let plan = kset_adversary::plans::first_t_byzantine(3, 1);
        let _ = execute_schedule(
            QuorumProtocol::FloodMin,
            &inputs,
            1,
            &plan,
            None,
            &[],
            true,
            false,
        );
    }

    #[test]
    fn cross_validation_is_void_for_deviation_adversaries() {
        let cfg = mp_byz_violated_cfg();
        let verdict = check_cell(&cfg);
        let disagreements = cross_validate(&cfg, &verdict);
        assert_eq!(disagreements.len(), 1);
        assert!(disagreements[0].contains("comparison void"), "{disagreements:?}");
    }
}
