//! Work-stealing parallel execution of independent, deterministic tasks.
//!
//! Every parallel workload in this crate — the model checker's schedule
//! subtrees, the sweep binaries' `(t, k)` cells, the exhaustive
//! enumerator's protocol×input×t triples — has the same shape: a list of
//! **independent tasks is enumerated up front**, each task is a pure
//! function of its input (it builds its own simulator, explores its own
//! subtree), and the caller needs the results **in task order** so output
//! files and stdout tables stay byte-deterministic.
//!
//! [`parallel_map`] is that shape as a function. Tasks go into a
//! [`crossbeam::deque::Injector`] — the lock-free work-stealing queue —
//! and `threads` workers (spawned with [`std::thread::scope`], so borrowed
//! task inputs need no `'static` bound) repeatedly steal the next task
//! until the queue drains. Stealing whole tasks, rather than handing each
//! worker a pre-cut stripe, is what absorbs skew: schedule subtrees and
//! sweep cells differ in cost by orders of magnitude, and a striped split
//! would leave most workers idle behind the unluckiest one.
//!
//! # Determinism contract
//!
//! The scheduler never influences a result: a task's output depends only
//! on its input, results are written into per-task slots and returned in
//! task order, and nothing is shared between tasks. Consequently every
//! `threads` value — including 1 — produces the identical `Vec<R>`.
//!
//! [`parallel_drain_chunked`] extends the contract to workloads that
//! *want* sharing — the model checker's dedup table — and to searches
//! that want early exit or deterministic work splitting. It processes a
//! queue in fixed-size waves with a barrier between waves; every task in
//! a wave reads the same frozen snapshot of the shared state, results are
//! folded into the state in claim order at the barrier (optionally
//! enqueueing follow-up tasks), and no further waves are claimed once a
//! completed wave requests a stop. Because the wave boundaries are a
//! constant of the algorithm (not of the thread count or of timing), what
//! each task observes, the set of executed tasks, and the follow-ups they
//! spawn — and therefore every merged counter — are again identical for
//! every `threads` value. The model checker leans on exactly this: even
//! its *counters* (runs explored, states cached) are
//! thread-count-independent, because workers never race on the shared
//! table (see `checker` module docs for the time-vs-sharing trade).

use crossbeam::deque::{Injector, Steal};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Tasks per chunk in [`parallel_drain_chunked`]. A constant (never derived
/// from the thread count) so the set of explored tasks is identical for
/// every `threads` value; 32 keeps any wave wide enough for the core
/// counts this workspace targets while bounding the work done past an
/// early hit.
pub const CHUNK: usize = 32;

/// The number of worker threads to use when the user does not say:
/// the machine's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--threads` argument: a positive worker count, or `0`/`auto`
/// for [`available_threads`].
pub fn parse_threads(arg: &str) -> Option<usize> {
    if arg.trim().eq_ignore_ascii_case("auto") {
        return Some(available_threads());
    }
    match arg.trim().parse::<usize>() {
        Ok(0) => Some(available_threads()),
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

/// Runs every task across `threads` workers and returns the results in
/// task order. `f` is called as `f(index, task)`; it must be a pure
/// function of its arguments for the determinism contract (module docs)
/// to hold. `threads` is clamped to at least 1; with one worker (or one
/// task) everything runs inline on the caller's thread.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller after the workers join.
pub fn parallel_map<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads == 1 {
        return tasks.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let len = tasks.len();
    let queue: Injector<(usize, T)> = Injector::new();
    for entry in tasks.into_iter().enumerate() {
        queue.push(entry);
    }
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                match queue.steal() {
                    Steal::Success((index, task)) => {
                        let result = f(index, task);
                        *slots[index].lock().expect("result slot poisoned") = Some(result);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task produces a result")
        })
        .collect()
}

/// Drains a work queue in [`CHUNK`]-sized waves with a shared,
/// chunk-synchronized `state`:
///
/// * every task in a wave reads the same frozen `&S` — the state as of
///   the end of the *previous* wave;
/// * after a wave completes, `absorb(state, result, queue)` folds each
///   result into the state **in claim order**; it may push follow-up
///   tasks onto the back of the queue (deterministic task *splitting*),
///   and its `bool` return marks a stop request;
/// * once a completed wave requests a stop, no further waves are claimed
///   and the rest of the queue is dropped.
///
/// Returns whether a stop request ended the drain with work still queued.
///
/// Both the early exit and the state visibility are at chunk granularity
/// precisely so that what each task *sees*, *whether it runs at all*, and
/// which follow-up tasks exist depend only on the initial queue — the
/// module's determinism contract extended to shared state and dynamic
/// task lists. Tasks inside one wave cannot observe one another; sharing
/// that would depend on which worker finishes first is exactly what this
/// API rules out. `f` receives the task's claim index (its position in
/// the overall claim order).
pub fn parallel_drain_chunked<T, R, S, F>(
    threads: usize,
    initial: Vec<T>,
    state: &mut S,
    f: F,
    absorb: impl FnMut(&mut S, R, &mut Vec<T>) -> bool,
) -> bool
where
    T: Send,
    R: Send,
    S: Sync,
    F: Fn(usize, &S, T) -> R + Sync,
{
    match parallel_drain_watched(threads, initial, state, f, absorb, |_, _| {
        WaveControl::Continue
    }) {
        DrainExit::Stopped { work_left } => work_left,
        DrainExit::Drained => false,
        DrainExit::Paused => unreachable!("the no-op observer never pauses"),
    }
}

/// What a [`parallel_drain_watched`] wave observer asks the drain to do
/// next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaveControl {
    /// Claim the next wave.
    Continue,
    /// Stop claiming waves and return [`DrainExit::Paused`], leaving the
    /// remaining queue untouched (the observer is expected to have
    /// persisted it).
    Pause,
}

/// How a [`parallel_drain_watched`] call ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DrainExit {
    /// The queue drained completely.
    Drained,
    /// An `absorb` call requested a stop; `work_left` says whether tasks
    /// were still queued when the drain obeyed it.
    Stopped {
        /// Whether the queue was non-empty at the stop.
        work_left: bool,
    },
    /// The wave observer returned [`WaveControl::Pause`].
    Paused,
}

/// [`parallel_drain_chunked`] with a **wave observer**: after every wave's
/// results are absorbed (and its follow-up tasks queued), `on_wave` sees
/// the mutable state and the remaining queue, and may pause the drain.
///
/// This is the checkpointing seam of the campaign layer (`crate::campaign`):
/// a wave boundary is the only moment the shared state is both quiescent
/// and deterministic — a pure function of the initial queue, independent of
/// `threads` — so a snapshot of `(state, queue)` taken here can be resumed
/// bit-identically. The observer runs on the caller's thread between waves;
/// it never races with task execution. `on_wave` is *not* called after a
/// wave whose absorbs requested a stop (the drain is ending anyway), nor
/// after the final wave of a completed drain (the caller holds the state
/// and an empty queue at that point).
pub fn parallel_drain_watched<T, R, S, F>(
    threads: usize,
    initial: Vec<T>,
    state: &mut S,
    f: F,
    mut absorb: impl FnMut(&mut S, R, &mut Vec<T>) -> bool,
    mut on_wave: impl FnMut(&mut S, &VecDeque<T>) -> WaveControl,
) -> DrainExit
where
    T: Send,
    R: Send,
    S: Sync,
    F: Fn(usize, &S, T) -> R + Sync,
{
    let mut queue = VecDeque::from(initial);
    let mut claimed = 0;
    while !queue.is_empty() {
        let wave: Vec<T> = queue.drain(..CHUNK.min(queue.len())).collect();
        let base = claimed;
        claimed += wave.len();
        let frozen: &S = state;
        let wave_results = parallel_map(threads, wave, |i, t| f(base + i, frozen, t));
        let mut followups: Vec<T> = Vec::new();
        let mut stop = false;
        for result in wave_results {
            stop |= absorb(state, result, &mut followups);
        }
        queue.extend(followups);
        if stop {
            return DrainExit::Stopped {
                work_left: !queue.is_empty(),
            };
        }
        if !queue.is_empty() && on_wave(state, &queue) == WaveControl::Pause {
            return DrainExit::Paused;
        }
    }
    DrainExit::Drained
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order_for_every_thread_count() {
        let tasks: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = tasks.iter().map(|t| t * 3).collect();
        for threads in [1, 2, 4, 9] {
            let got = parallel_map(threads, tasks.clone(), |i, t| {
                assert_eq!(i, t);
                t * 3
            });
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = parallel_map(4, (0..257).collect::<Vec<usize>>(), |_, t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(results.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let results: Vec<u32> = parallel_map(8, Vec::<u32>::new(), |_, t| t);
        assert!(results.is_empty());
    }

    #[test]
    fn drain_stops_at_the_wave_containing_the_hit() {
        // Hit at index CHUNK + 3: wave 0 and wave 1 run, wave 2 doesn't.
        let tasks: Vec<usize> = (0..CHUNK * 3).collect();
        for threads in [1, 4] {
            let mut absorbed: Vec<usize> = Vec::new();
            let stopped_with_work_left = parallel_drain_chunked(
                threads,
                tasks.clone(),
                &mut absorbed,
                |_, _, t| t,
                |done, r, _| {
                    done.push(r);
                    r == CHUNK + 3
                },
            );
            assert!(stopped_with_work_left);
            assert_eq!(absorbed.len(), CHUNK * 2, "whole waves only");
            assert_eq!(absorbed, (0..CHUNK * 2).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn drain_without_stops_runs_everything() {
        let mut absorbed = 0usize;
        let stopped = parallel_drain_chunked(
            3,
            (0..75usize).collect::<Vec<usize>>(),
            &mut absorbed,
            |_, _, t| t,
            |count, _, _| {
                *count += 1;
                false
            },
        );
        assert!(!stopped);
        assert_eq!(absorbed, 75);
    }

    #[test]
    fn drain_state_is_frozen_within_a_wave_and_folded_between_waves() {
        // Each task reports the state it saw; the state counts absorbed
        // results. Every task in wave w must therefore see exactly
        // w * CHUNK regardless of thread count.
        let tasks: Vec<usize> = (0..CHUNK * 3).collect();
        for threads in [1, 4] {
            let mut state = (0usize, Vec::<usize>::new());
            let stopped = parallel_drain_chunked(
                threads,
                tasks.clone(),
                &mut state,
                |_, &(snapshot, _), _| snapshot,
                |(count, seen), r, _| {
                    *count += 1;
                    seen.push(r);
                    false
                },
            );
            assert!(!stopped);
            assert_eq!(state.0, CHUNK * 3);
            let expected: Vec<usize> =
                (0..CHUNK * 3).map(|i| (i / CHUNK) * CHUNK).collect();
            assert_eq!(state.1, expected);
        }
    }

    #[test]
    fn drain_followups_split_work_deterministically() {
        // Each task of size s > 1 splits into two halves instead of
        // "running"; leaves count themselves. The leaf count and absorb
        // order must be identical for every thread count.
        let run = |threads: usize| {
            let mut trace: Vec<usize> = Vec::new();
            let stopped = parallel_drain_chunked(
                threads,
                vec![37usize, 5, 1],
                &mut trace,
                |_, _, size| size,
                |trace, size, queue| {
                    trace.push(size);
                    if size > 1 {
                        queue.push(size / 2);
                        queue.push(size - size / 2);
                    }
                    false
                },
            );
            assert!(!stopped);
            trace
        };
        let serial = run(1);
        assert_eq!(serial.iter().filter(|&&s| s == 1).count(), 43);
        assert_eq!(run(4), serial);
        assert_eq!(run(9), serial);
    }

    #[test]
    fn parse_threads_accepts_auto_and_positive_counts() {
        assert_eq!(parse_threads("3"), Some(3));
        assert_eq!(parse_threads("auto"), Some(available_threads()));
        assert_eq!(parse_threads("0"), Some(available_threads()));
        assert_eq!(parse_threads("x"), None);
        assert!(available_threads() >= 1);
    }
}
