//! Empirically validates the solvable regions of all four atlases.
//!
//! For every solvable cell of every panel at a test-scale `n`, runs the
//! cell's designated protocol in the simulator across several seeds, fault
//! plans (crash budgets, silent and active Byzantine strategies), and
//! checks Termination / Agreement / Validity on each run.
//!
//! Usage: `empirical_atlas [n] [seeds]` (defaults: n = 8, seeds = 4).
//! Exits nonzero if any run violates its specification.

use crossbeam::thread;
use kset_core::ValidityCondition;
use kset_experiments::cells::{validate_cell, CellValidation};
use kset_experiments::report;
use kset_regions::Model;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n must be a number"))
        .unwrap_or(8);
    let seeds: u64 = args
        .next()
        .map(|a| a.parse().expect("seeds must be a number"))
        .unwrap_or(5);
    assert!(n >= 3, "n must be at least 3");

    // One worker per model: the cells inside a model are run sequentially
    // (each run is itself single-threaded and deterministic).
    let results: Vec<Vec<CellValidation>> = thread::scope(|scope| {
        let handles: Vec<_> = Model::ALL
            .iter()
            .map(|&model| {
                scope.spawn(move |_| {
                    let mut rows = Vec::new();
                    for validity in ValidityCondition::ALL {
                        for k in 2..n {
                            for t in 1..=n {
                                match validate_cell(model, validity, n, k, t, 0..seeds) {
                                    Ok(Some(row)) => rows.push(row),
                                    Ok(None) => {}
                                    Err(e) => panic!(
                                        "simulator failure at {model} {validity} k={k} t={t}: {e}"
                                    ),
                                }
                            }
                        }
                    }
                    rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("worker panicked");

    let rows: Vec<CellValidation> = results.into_iter().flatten().collect();
    let total_runs: usize = rows.iter().map(|r| r.runs).sum();
    let violations: usize = rows.iter().map(|r| r.violations).sum();

    println!("=== Empirical atlas validation (n = {n}, {seeds} seeds/cell) ===\n");
    println!("per-protocol rollup:");
    println!("protocol          cells  runs   violations");
    println!("----------------  -----  -----  ----------");
    for (protocol, cells, runs, viol) in report::rollup(&rows) {
        println!("{protocol:<16}  {cells:<5}  {runs:<5}  {viol}");
    }
    println!(
        "\ntotal: {} solvable cells, {} runs, {} violations",
        rows.len(),
        total_runs,
        violations
    );

    for r in rows.iter().filter(|r| !r.clean()) {
        println!(
            "VIOLATION: {} {} k={} t={}: {}",
            r.model,
            r.validity,
            r.k,
            r.t,
            r.first_violation.as_deref().unwrap_or("?")
        );
    }
    if violations > 0 {
        std::process::exit(1);
    }
    println!("all runs satisfied SC(k, t, C): OK");
}
