//! Empirically validates the solvable regions of all four atlases.
//!
//! For every solvable cell of every panel at a test-scale `n`, runs the
//! cell's designated protocol in the simulator across several seeds, fault
//! plans (crash budgets, silent and active Byzantine strategies), and
//! checks Termination / Agreement / Validity on each run.
//!
//! Usage: `empirical_atlas [n] [seeds] [--json PATH] [--threads N]`
//! (defaults: n = 8, seeds = 4, threads = available parallelism). With
//! `--json`, every run is emitted as a `RunRecord` JSON line with kernel
//! metrics (schema: `OBSERVABILITY.md`); cells run on a work-stealing
//! pool, but rows and records are merged in `(model, validity, k, t)`
//! order so all output is byte-identical for every thread count. Exits
//! nonzero if any run violates its specification.

use kset_core::ValidityCondition;
use kset_experiments::cells::{validate_cell_with, CellValidation};
use kset_experiments::engine;
use kset_experiments::record_sink::{JsonlSink, RunRecord};
use kset_experiments::report;
use kset_regions::Model;
use kset_sim::MetricsConfig;

fn main() {
    let mut n: Option<usize> = None;
    let mut seeds: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let mut threads = engine::available_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--threads" => {
                let raw = args.next().expect("--threads needs a value");
                threads = engine::parse_threads(&raw)
                    .unwrap_or_else(|| panic!("--threads wants a count, 0 or 'auto', got {raw:?}"));
            }
            other if n.is_none() => n = Some(other.parse().expect("n must be a number")),
            other if seeds.is_none() => {
                seeds = Some(other.parse().expect("seeds must be a number"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(8);
    let seeds = seeds.unwrap_or(5);
    assert!(n >= 3, "n must be at least 3");
    let metrics = if json_path.is_some() {
        MetricsConfig::enabled()
    } else {
        MetricsConfig::disabled()
    };

    // One task per (model, validity, k, t) cell on the work-stealing
    // pool. Each run is itself single-threaded and deterministic, and the
    // engine returns results in task order, so the merged rows and
    // records come out in the same order the old sequential sweep
    // produced.
    let mut cells: Vec<(Model, ValidityCondition, usize, usize)> = Vec::new();
    for model in Model::ALL {
        for validity in ValidityCondition::ALL {
            for k in 2..n {
                for t in 1..=n {
                    cells.push((model, validity, k, t));
                }
            }
        }
    }
    let results = engine::parallel_map(threads, cells, |_, (model, validity, k, t)| {
        let mut records = Vec::new();
        let cell = validate_cell_with(model, validity, n, k, t, 0..seeds, metrics, |r| {
            records.push(r)
        });
        match cell {
            Ok(row) => (row, records),
            Err(e) => panic!("simulator failure at {model} {validity} k={k} t={t}: {e}"),
        }
    });

    let mut rows: Vec<CellValidation> = Vec::new();
    let mut records: Vec<RunRecord> = Vec::new();
    for (row, cell_records) in results {
        rows.extend(row);
        records.extend(cell_records);
    }
    let total_runs: usize = rows.iter().map(|r| r.runs).sum();
    let violations: usize = rows.iter().map(|r| r.violations).sum();

    println!("=== Empirical atlas validation (n = {n}, {seeds} seeds/cell) ===\n");
    println!("per-protocol rollup:");
    println!("protocol          cells  runs   violations");
    println!("----------------  -----  -----  ----------");
    for (protocol, cells, runs, viol) in report::rollup(&rows) {
        println!("{protocol:<16}  {cells:<5}  {runs:<5}  {viol}");
    }
    println!(
        "\ntotal: {} solvable cells, {} runs, {} violations",
        rows.len(),
        total_runs,
        violations
    );

    if let Some(path) = &json_path {
        let mut sink = JsonlSink::create(path).expect("create --json sink");
        for record in &records {
            sink.write(record).expect("write run record");
        }
        let written = sink.finish().expect("flush --json sink");
        assert_eq!(written, total_runs, "one record per run");
        println!("\n{written} run records written to {path}");
        println!("\nper-protocol metrics rollup:");
        print!("{}", report::metrics_table(&records));
    }

    for r in rows.iter().filter(|r| !r.clean()) {
        println!(
            "VIOLATION: {} {} k={} t={}: {}",
            r.model,
            r.validity,
            r.k,
            r.t,
            r.first_violation.as_deref().unwrap_or("?")
        );
    }
    if violations > 0 {
        std::process::exit(1);
    }
    println!("all runs satisfied SC(k, t, C): OK");
}
