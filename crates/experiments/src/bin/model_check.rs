//! Systematic schedule-space model checking of the real simulator.
//!
//! Unlike `exhaustive_check` (analytic outcome enumeration) and
//! `boundary_scan` (seed sampling), this binary drives the actual
//! `MpSystem`/`SmSystem` kernels through *every* scheduler decision at
//! small `n`, with partial-order reduction and state-digest deduplication
//! (see `kset_experiments::checker`).
//!
//! Usage:
//!
//! ```text
//! model_check                      # the default small-n certification run
//! model_check --smoke              # bounded CI variant (seconds)
//! model_check --protocol f --n 3 --k 3 --t 1 --validity SV2
//! model_check --replay PATH        # re-execute a saved counterexample
//! ```
//!
//! Flags for explicit cells: `--protocol {floodmin|a|b|e|f}`, `--n N`,
//! `--k K`, `--t T`, `--validity {SV1|SV2|RV1|RV2|WV1|WV2}`. Adversary
//! (defaults to the substrate's crash model): `--model
//! {mp_crash|sm_crash|mp_byz|sm_byz|mp_lossy}`, `--byz-menu v1,v2,...`
//! (the forgeable-value menu of each Byzantine slot), `--byz-silence`
//! (Byzantine slots may also withhold deliveries), `--loss-budget N`
//! (drops per run under `mp_lossy`), `--inputs v0,v1,...` (explicit
//! proposal vector, e.g. an all-equal vector for validity frontiers).
//! Bounds:
//! `--depth D`, `--preemptions P`, `--max-runs R`, `--max-states S`.
//! Parallelism: `--threads N` (`0`/`auto` = available parallelism, the
//! default; every verdict, counter and counterexample byte is identical
//! for every `N`). Reductions: `--symmetry` deduplicates on fingerprints
//! canonicalized modulo process-id permutation (off by default — on the
//! canonical all-distinct inputs it merges nothing and measurably loses;
//! see `PERFORMANCE.md`), `--no-symmetry` forces it off explicitly.
//! Ablation: `--no-por`, `--no-dedup`. Execution strategy:
//! `--fork-mode {fork|replay|auto}` selects how work items reach their
//! branch points — `fork` resumes from branch-point snapshots, `replay`
//! re-executes prefixes from the root (the oracle), `auto` (default)
//! forks under a byte budget with replay fallback; verdicts, counters and
//! counterexample bytes are identical for every mode. Observability:
//! `--progress N` (stderr counters every N runs), `--json PATH` (one
//! `RunRecord` per explored crash pattern, schema in `OBSERVABILITY.md`),
//! `--bench-json PATH` (machine-readable wall-clock/throughput summary of
//! the checked cells — the format recorded in `BENCH_model_check.json`).
//! Counterexamples are written to `--counterexample PATH` (default
//! `target/model_check/<cell>.schedule`) and replayed with `--replay`.
//!
//! Campaigns (`CAMPAIGNS.md`): `--campaign-dir PATH` turns an explicit
//! cell into a checkpointed, resumable on-disk job; `--checkpoint-every N`
//! sets the snapshot cadence in runs (default 250000), `--campaign-shards
//! N` the visited-store shard count (default 16, fixed at creation), and
//! `--resume` continues a killed campaign from its last durable
//! checkpoint — with bit-identical verdicts, counters, and counterexample
//! bytes to an uninterrupted run. On `--resume` the cell and bounds may
//! be omitted (the campaign manifest restores them).
//! `--pause-after-checkpoints N` stops cleanly after N checkpoints of
//! this invocation (the kill/resume test hook).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use kset_core::ValidityCondition;
use kset_experiments::campaign::{
    manifest::read_manifest, resume_campaign, run_campaign, CampaignOptions, CampaignOutcome,
};
use kset_experiments::checker::{
    check_cell, cross_validate, parse_adversary_model, parse_protocol, parse_validity,
    read_counterexample, parse_fork_mode, replay_fired, to_run_records, write_counterexample,
    AdversaryModel, CellVerdict, CheckerConfig, ForkMode,
};
use kset_experiments::exhaustive::QuorumProtocol;
use kset_experiments::record_sink::JsonlSink;

struct Args {
    protocol: Option<QuorumProtocol>,
    n: Option<usize>,
    k: Option<usize>,
    t: Option<usize>,
    validity: Option<ValidityCondition>,
    model: Option<AdversaryModel>,
    byz_menu: Option<Vec<u64>>,
    byz_silence: bool,
    loss_budget: Option<u64>,
    inputs: Option<Vec<u64>>,
    depth: Option<usize>,
    preemptions: Option<usize>,
    max_runs: Option<u64>,
    max_states: Option<usize>,
    no_por: bool,
    no_dedup: bool,
    symmetry: bool,
    no_symmetry: bool,
    progress: Option<u64>,
    threads: Option<usize>,
    fork: Option<ForkMode>,
    counterexample: Option<PathBuf>,
    replay: Option<PathBuf>,
    json: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    smoke: bool,
    campaign_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    campaign_shards: Option<usize>,
    resume: bool,
    pause_after_checkpoints: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        protocol: None,
        n: None,
        k: None,
        t: None,
        validity: None,
        model: None,
        byz_menu: None,
        byz_silence: false,
        loss_budget: None,
        inputs: None,
        depth: None,
        preemptions: None,
        max_runs: None,
        max_states: None,
        no_por: false,
        no_dedup: false,
        symmetry: false,
        no_symmetry: false,
        progress: None,
        threads: None,
        fork: None,
        counterexample: None,
        replay: None,
        json: None,
        bench_json: None,
        smoke: false,
        campaign_dir: None,
        checkpoint_every: None,
        campaign_shards: None,
        resume: false,
        pause_after_checkpoints: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--protocol" => {
                let raw = value("--protocol");
                parsed.protocol =
                    Some(parse_protocol(&raw).unwrap_or_else(|| panic!("unknown protocol {raw:?}")));
            }
            "--n" => parsed.n = Some(value("--n").parse().expect("--n must be a number")),
            "--k" => parsed.k = Some(value("--k").parse().expect("--k must be a number")),
            "--t" => parsed.t = Some(value("--t").parse().expect("--t must be a number")),
            "--validity" => {
                let raw = value("--validity");
                parsed.validity =
                    Some(parse_validity(&raw).unwrap_or_else(|| panic!("unknown validity {raw:?}")));
            }
            "--model" => {
                let raw = value("--model");
                parsed.model = Some(parse_adversary_model(&raw).unwrap_or_else(|| {
                    panic!("--model wants mp_crash|sm_crash|mp_byz|sm_byz|mp_lossy, got {raw:?}")
                }));
            }
            "--byz-menu" => {
                parsed.byz_menu = Some(parse_u64_list(&value("--byz-menu"), "--byz-menu"))
            }
            "--byz-silence" => parsed.byz_silence = true,
            "--loss-budget" => {
                parsed.loss_budget = Some(value("--loss-budget").parse().expect("--loss-budget"))
            }
            "--inputs" => parsed.inputs = Some(parse_u64_list(&value("--inputs"), "--inputs")),
            "--depth" => parsed.depth = Some(value("--depth").parse().expect("--depth")),
            "--preemptions" => {
                parsed.preemptions = Some(value("--preemptions").parse().expect("--preemptions"))
            }
            "--max-runs" => parsed.max_runs = Some(value("--max-runs").parse().expect("--max-runs")),
            "--max-states" => {
                parsed.max_states = Some(value("--max-states").parse().expect("--max-states"))
            }
            "--no-por" => parsed.no_por = true,
            "--no-dedup" => parsed.no_dedup = true,
            "--symmetry" => parsed.symmetry = true,
            "--no-symmetry" => parsed.no_symmetry = true,
            "--progress" => parsed.progress = Some(value("--progress").parse().expect("--progress")),
            "--threads" => {
                let raw = value("--threads");
                parsed.threads = Some(
                    kset_experiments::engine::parse_threads(&raw)
                        .unwrap_or_else(|| panic!("--threads wants a count, 0 or 'auto', got {raw:?}")),
                );
            }
            "--fork-mode" => {
                let raw = value("--fork-mode");
                parsed.fork = Some(
                    parse_fork_mode(&raw)
                        .unwrap_or_else(|| panic!("--fork-mode wants fork|replay|auto, got {raw:?}")),
                );
            }
            "--counterexample" => parsed.counterexample = Some(value("--counterexample").into()),
            "--replay" => parsed.replay = Some(value("--replay").into()),
            "--json" => parsed.json = Some(value("--json").into()),
            "--bench-json" => parsed.bench_json = Some(value("--bench-json").into()),
            "--smoke" => parsed.smoke = true,
            "--campaign-dir" => parsed.campaign_dir = Some(value("--campaign-dir").into()),
            "--checkpoint-every" => {
                parsed.checkpoint_every =
                    Some(value("--checkpoint-every").parse().expect("--checkpoint-every"))
            }
            "--campaign-shards" => {
                parsed.campaign_shards =
                    Some(value("--campaign-shards").parse().expect("--campaign-shards"))
            }
            "--resume" => parsed.resume = true,
            "--pause-after-checkpoints" => {
                parsed.pause_after_checkpoints = Some(
                    value("--pause-after-checkpoints")
                        .parse()
                        .expect("--pause-after-checkpoints"),
                )
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn parse_u64_list(raw: &str, flag: &str) -> Vec<u64> {
    raw.split(',')
        .map(str::trim)
        .filter(|token| !token.is_empty())
        .map(|token| {
            token.parse().unwrap_or_else(|_| {
                panic!("{flag} wants a comma-separated list of numbers, got {raw:?}")
            })
        })
        .collect()
}

/// Applies the `--model`/`--byz-*`/`--loss-budget`/`--inputs` flags on
/// top of the substrate-default crash adversary, then rejects
/// inconsistent combinations (wrong substrate, Byzantine knobs under a
/// crash model, ...) before any exploration starts.
fn apply_adversary(cfg: &mut CheckerConfig, args: &Args) {
    if let Some(model) = args.model {
        cfg.adversary = model;
    }
    if let Some(menu) = &args.byz_menu {
        cfg.byz_menu = menu.clone();
    }
    if args.byz_silence {
        cfg.byz_silence = true;
    }
    if let Some(budget) = args.loss_budget {
        cfg.loss_budget = budget;
    }
    if let Some(inputs) = &args.inputs {
        cfg.inputs = Some(inputs.clone());
    }
    if let Err(message) = cfg.validate() {
        eprintln!("model_check: invalid configuration: {message}");
        std::process::exit(2);
    }
}

fn apply_bounds(cfg: &mut CheckerConfig, args: &Args) {
    if let Some(d) = args.depth {
        cfg.depth = d;
    }
    cfg.preemptions = args.preemptions.or(cfg.preemptions);
    if let Some(r) = args.max_runs {
        cfg.max_runs = r;
    }
    if let Some(s) = args.max_states {
        cfg.max_states = s;
    }
    cfg.por = !args.no_por;
    cfg.dedup = !args.no_dedup;
    // Off by default; `--symmetry` opts in, `--no-symmetry` pins the
    // default explicitly (and wins if both are given).
    cfg.symmetry = args.symmetry && !args.no_symmetry;
    cfg.progress = args.progress;
    if let Some(threads) = args.threads {
        cfg.threads = threads;
    }
    if let Some(fork) = args.fork {
        cfg.fork = fork;
    }
}

/// One timed cell for the `--bench-json` summary.
struct BenchCell {
    label: String,
    model: String,
    verdict: &'static str,
    /// `true` when the exploration hit `max_runs`/`max_states` before
    /// exhausting the schedule space: a bounded "holds" is *not* a
    /// certification, and the JSON says so explicitly so the row cannot
    /// be misread as one.
    bounded: bool,
    patterns: usize,
    runs: u64,
    states: usize,
    tasks: u64,
    wall_s: f64,
}

impl BenchCell {
    fn from_verdict(cfg: &CheckerConfig, verdict: &CellVerdict, wall_s: f64) -> Self {
        BenchCell {
            label: format!(
                "{} SC(k={},t={},{}) n={}",
                cfg.protocol.name(),
                cfg.k,
                cfg.t,
                cfg.validity,
                cfg.n
            ),
            model: cfg.adversary.to_string(),
            verdict: if verdict.holds() { "holds" } else { "violated" },
            bounded: !verdict.complete,
            patterns: verdict.patterns.len(),
            runs: verdict.runs,
            states: verdict.patterns.iter().map(|p| p.states).sum(),
            tasks: verdict.patterns.iter().map(|p| p.tasks).sum(),
            wall_s,
        }
    }
}

/// Writes the machine-readable timing summary. Hand-rolled JSON: every
/// value is a number or an escape-free string, and keeping `serde_json`
/// out of the hot binary's required path keeps the bench usable in
/// minimal build environments.
fn write_bench_json(
    path: &PathBuf,
    threads: usize,
    symmetry: bool,
    fork: ForkMode,
    cells: &[BenchCell],
) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let total_wall: f64 = cells.iter().map(|c| c.wall_s).sum();
    let total_runs: u64 = cells.iter().map(|c| c.runs).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"model_check_certification\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"symmetry\": {symmetry},\n"));
    out.push_str(&format!("  \"fork_mode\": \"{fork}\",\n"));
    out.push_str(&format!(
        "  \"host_logical_cpus\": {},\n",
        kset_experiments::engine::available_threads()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"model\": \"{}\", \"verdict\": \"{}\", \"bounded\": {}, \"patterns\": {}, \"runs\": {}, \"states\": {}, \"tasks\": {}, \"wall_s\": {:.3}, \"runs_per_s\": {:.0}}}{}\n",
            c.label,
            c.model,
            c.verdict,
            c.bounded,
            c.patterns,
            c.runs,
            c.states,
            c.tasks,
            c.wall_s,
            c.runs as f64 / c.wall_s.max(1e-9),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_runs\": {total_runs},\n"));
    out.push_str(&format!("  \"total_wall_s\": {total_wall:.3},\n"));
    out.push_str(&format!(
        "  \"runs_per_s\": {:.0}\n",
        total_runs as f64 / total_wall.max(1e-9)
    ));
    out.push_str("}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn default_counterexample_path(cfg: &CheckerConfig) -> PathBuf {
    // The lossy adversary shares `Model::MpCrash` for the figure-region
    // lookup but must not collide with crash schedules on disk; the
    // crash and Byzantine adversaries keep the historical region slugs.
    let slug: &str = if cfg.adversary.is_lossy() {
        cfg.adversary.slug()
    } else {
        kset_experiments::record_sink::model_slug(cfg.model())
    };
    PathBuf::from("target/model_check").join(format!(
        "{}_{}_n{}k{}t{}_{}.schedule",
        slug,
        cfg.validity,
        cfg.n,
        cfg.k,
        cfg.t,
        cfg.protocol.name().replace(' ', ""),
    ))
}

/// Checks one cell, printing the verdict; writes + replays a
/// counterexample when violated; emits run records when asked. Returns
/// whether the outcome matched `expect_holds` (`None` = any outcome is
/// fine).
fn run_cell(
    cfg: &CheckerConfig,
    args: &Args,
    expect_holds: Option<bool>,
    bench: &mut Vec<BenchCell>,
) -> (bool, CellVerdict) {
    let started = Instant::now();
    let verdict = check_cell(cfg);
    let ok = report_cell(
        cfg,
        args,
        expect_holds,
        bench,
        &verdict,
        started.elapsed().as_secs_f64(),
    );
    (ok, verdict)
}

/// The reporting half of [`run_cell`], shared with campaign mode (which
/// produces its verdict through the checkpointed driver instead of
/// [`check_cell`] but emits the identical output from it).
fn report_cell(
    cfg: &CheckerConfig,
    args: &Args,
    expect_holds: Option<bool>,
    bench: &mut Vec<BenchCell>,
    verdict: &CellVerdict,
    wall_s: f64,
) -> bool {
    bench.push(BenchCell::from_verdict(cfg, verdict, wall_s));
    println!(
        "SC(k={}, t={}, {}) for {} at n={}: {}",
        cfg.k,
        cfg.t,
        cfg.validity,
        cfg.protocol.name(),
        cfg.n,
        verdict
    );
    let mut ok = true;
    if let Some(ce) = &verdict.counterexample {
        let path = args
            .counterexample
            .clone()
            .unwrap_or_else(|| default_counterexample_path(cfg));
        write_counterexample(&path, cfg, ce).expect("write counterexample");
        let saved = read_counterexample(&path).expect("re-read counterexample");
        let (violation, divergences) = replay_fired(&saved);
        println!(
            "  counterexample written to {} ({} choices, {} events); replay: {} with {} divergence(s)",
            path.display(),
            ce.choices.len(),
            ce.fired.len(),
            if violation.is_some() {
                "still violates"
            } else {
                "NO LONGER VIOLATES"
            },
            divergences,
        );
        if violation.is_none() || divergences != 0 {
            ok = false;
        }
    }
    if let Some(json) = &args.json {
        let mut sink = JsonlSink::create(json).expect("create --json sink");
        for record in to_run_records(cfg, verdict) {
            sink.write(&record).expect("write run record");
        }
        let written = sink.finish().expect("flush --json sink");
        println!("  ({written} run records written to {})", json.display());
    }
    if let Some(expected) = expect_holds {
        if verdict.holds() != expected {
            println!(
                "  UNEXPECTED: this cell should {}",
                if expected { "hold" } else { "be violated" }
            );
            ok = false;
        }
    }
    ok
}

/// Cross-validates the checker against the analytic enumerator on a cell
/// where both are complete; prints and returns agreement.
fn run_cross_validation(cfg: &CheckerConfig, verdict: &CellVerdict) -> bool {
    let disagreements = cross_validate(cfg, verdict);
    if disagreements.is_empty() {
        println!(
            "  cross-validation vs exhaustive enumeration: agree on every crash pattern"
        );
        true
    } else {
        for d in &disagreements {
            println!("  DISAGREEMENT: {d}");
        }
        false
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(path) = &args.replay {
        let saved = read_counterexample(path).expect("read counterexample");
        let (violation, divergences) = replay_fired(&saved);
        println!(
            "replayed {} ({} at n={}, k={}, t={}, {}; model={}; crashed={:?}; byzantine={:?}): {} divergence(s)",
            path.display(),
            saved.protocol.name(),
            saved.n,
            saved.k,
            saved.t,
            saved.validity,
            saved.adversary,
            saved.counterexample.crashed,
            saved.counterexample.byzantine,
            divergences,
        );
        return match violation {
            Some(message) => {
                println!("violation reproduced: {message}");
                ExitCode::SUCCESS
            }
            None => {
                println!("violation NOT reproduced — protocol or kernel changed since recording");
                ExitCode::FAILURE
            }
        };
    }

    let mut bench: Vec<BenchCell> = Vec::new();
    let report_bench = |bench: &[BenchCell], threads: usize, fork: ForkMode| {
        if let Some(path) = &args.bench_json {
            write_bench_json(path, threads, args.symmetry && !args.no_symmetry, fork, bench)
                .expect("write --bench-json");
            println!("  (timing summary written to {})", path.display());
        }
    };

    if let Some(dir) = &args.campaign_dir {
        // Campaign mode: an explicit cell driven as a checkpointed,
        // resumable on-disk job (see CAMPAIGNS.md). On --resume the cell
        // may be omitted; the campaign manifest restores it.
        let cfg = if let Some(protocol) = args.protocol {
            let n = args.n.expect("--campaign-dir needs --n");
            let k = args.k.expect("--campaign-dir needs --k");
            let t = args.t.expect("--campaign-dir needs --t");
            let validity = args.validity.expect("--campaign-dir needs --validity");
            let mut cfg = CheckerConfig::new(protocol, n, k, t, validity);
            apply_adversary(&mut cfg, &args);
            apply_bounds(&mut cfg, &args);
            cfg
        } else if args.resume {
            let manifest = read_manifest(dir).unwrap_or_else(|e| {
                eprintln!("model_check: cannot resume: {e}");
                std::process::exit(2);
            });
            let mut cfg = manifest.checker_config();
            // Contract-covered knobs may still be set; the cell and
            // bounds come from the manifest.
            cfg.progress = args.progress;
            if let Some(threads) = args.threads {
                cfg.threads = threads;
            }
            if let Some(fork) = args.fork {
                cfg.fork = fork;
            }
            cfg
        } else {
            eprintln!(
                "model_check: --campaign-dir needs an explicit cell \
                 (--protocol/--n/--k/--t/--validity), or --resume"
            );
            std::process::exit(2);
        };
        let opts = CampaignOptions {
            shards: args.campaign_shards.unwrap_or(CampaignOptions::default().shards),
            checkpoint_every: args
                .checkpoint_every
                .unwrap_or(CampaignOptions::default().checkpoint_every),
            pause_after_checkpoints: args.pause_after_checkpoints,
        };
        let started = Instant::now();
        let outcome = if args.resume {
            resume_campaign(&cfg, dir, &opts)
        } else {
            run_campaign(&cfg, dir, &opts)
        }
        .unwrap_or_else(|e| {
            eprintln!("model_check: campaign error: {e}");
            std::process::exit(2);
        });
        return match outcome {
            CampaignOutcome::Paused { checkpoints, runs } => {
                println!(
                    "campaign paused at checkpoint {checkpoints} with {runs} run(s) recorded; \
                     continue with --resume"
                );
                ExitCode::SUCCESS
            }
            CampaignOutcome::Finished(verdict) => {
                let ok = report_cell(
                    &cfg,
                    &args,
                    None,
                    &mut bench,
                    &verdict,
                    started.elapsed().as_secs_f64(),
                );
                if let Ok(manifest) = read_manifest(dir) {
                    println!(
                        "  campaign manifest: {} (status {}, {} checkpoint(s), {} resume(s))",
                        dir.join("MANIFEST").display(),
                        manifest.status,
                        manifest.checkpoints,
                        manifest.resumes,
                    );
                }
                report_bench(&bench, cfg.threads, cfg.fork);
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
        };
    }

    if let Some(protocol) = args.protocol {
        // Explicit single-cell mode.
        let n = args.n.expect("--protocol needs --n");
        let k = args.k.expect("--protocol needs --k");
        let t = args.t.expect("--protocol needs --t");
        let validity = args.validity.expect("--protocol needs --validity");
        let mut cfg = CheckerConfig::new(protocol, n, k, t, validity);
        apply_adversary(&mut cfg, &args);
        apply_bounds(&mut cfg, &args);
        let (ok, _) = run_cell(&cfg, &args, None, &mut bench);
        report_bench(&bench, cfg.threads, cfg.fork);
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    // Certification runs: a solvable crash cell verified exhaustively and
    // cross-validated, a just-outside crash cell where a violating
    // schedule must exist, be shrunk, and replay deterministically, then
    // one cell on each side of a Byzantine frontier (MP and SM) with the
    // replay of the emitted deviation script as the oracle.
    let (n_holds, n_viol) = if args.smoke { (3, 3) } else { (4, 4) };
    let mut ok = true;

    println!("=== model_check: systematic schedule exploration of the real kernel ===\n");
    println!("[1/4] solvable crash cell (FloodMin, t < k — Lemma 3.1):");
    let mut holds_cfg = CheckerConfig::new(
        QuorumProtocol::FloodMin,
        n_holds,
        2,
        1,
        ValidityCondition::RV1,
    );
    apply_bounds(&mut holds_cfg, &args);
    let (cell_ok, verdict) = run_cell(&holds_cfg, &args, Some(true), &mut bench);
    ok &= cell_ok;
    ok &= run_cross_validation(&holds_cfg, &verdict);

    println!("\n[2/4] unsolvable crash cell (FloodMin, t >= k — outside Lemma 3.1):");
    let mut viol_cfg = CheckerConfig::new(
        QuorumProtocol::FloodMin,
        n_viol,
        if args.smoke { 1 } else { 2 },
        if args.smoke { 1 } else { 2 },
        ValidityCondition::RV1,
    );
    apply_bounds(&mut viol_cfg, &args);
    ok &= run_cell(&viol_cfg, &args, Some(false), &mut bench).0;

    // One Byzantine slot with a zero-forging menu against RV1 on
    // all-equal inputs: every correct process must decide the proposed 1,
    // but a forged 0 drags FloodMin's minimum down — SC(1-set consensus,
    // RV1) is violated for any t >= 1 in MP/Byz (Lemma 3.10).
    println!("\n[3/4] unsolvable Byzantine MP cell (FloodMin under mp_byz — Lemma 3.10):");
    let mut mp_byz_cfg =
        CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
    mp_byz_cfg.adversary = AdversaryModel::MpByz;
    mp_byz_cfg.byz_menu = vec![0];
    mp_byz_cfg.byz_silence = true;
    mp_byz_cfg.inputs = Some(vec![1, 1, 1]);
    apply_bounds(&mut mp_byz_cfg, &args);
    ok &= run_cell(&mp_byz_cfg, &args, Some(false), &mut bench).0;

    // Protocol E under weak validity tolerates any number of Byzantine
    // registers for k >= 2 (Lemma 4.10): WV2 only binds when *all*
    // processes are correct, so forged reads cannot manufacture a
    // violation.
    println!("\n[4/4] solvable Byzantine SM cell (Protocol E under sm_byz — Lemma 4.10):");
    let mut sm_byz_cfg =
        CheckerConfig::new(QuorumProtocol::ProtocolE, 3, 2, 2, ValidityCondition::WV2);
    sm_byz_cfg.adversary = AdversaryModel::SmByz;
    sm_byz_cfg.byz_menu = vec![0];
    sm_byz_cfg.inputs = Some(vec![1, 1, 1]);
    apply_bounds(&mut sm_byz_cfg, &args);
    ok &= run_cell(&sm_byz_cfg, &args, Some(true), &mut bench).0;
    report_bench(&bench, sm_byz_cfg.threads, sm_byz_cfg.fork);

    println!(
        "\n{}",
        if ok {
            "model_check: all certifications passed"
        } else {
            "model_check: FAILURES (see above)"
        }
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
