//! Regenerates Figure 6: the SM/Byz solvability atlas.
//!
//! Usage: `fig6_sm_byz [n] [--csv FILE]` (default n = 64, as in the paper).

use kset_experiments::figures::run_figure;
use kset_regions::Model;

fn main() {
    if let Err(msg) = run_figure(Model::SmByzantine, std::env::args().skip(1)) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
