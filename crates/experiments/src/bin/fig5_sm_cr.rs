//! Regenerates Figure 5: the SM/CR solvability atlas.
//!
//! Usage: `fig5_sm_cr [n] [--csv FILE]` (default n = 64, as in the paper).

use kset_experiments::figures::run_figure;
use kset_regions::Model;

fn main() {
    if let Err(msg) = run_figure(Model::SmCrash, std::env::args().skip(1)) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
