//! Regenerates Figure 2: the MP/CR solvability atlas.
//!
//! Usage: `fig2_mp_cr [n] [--csv FILE]` (default n = 64, as in the paper).

use kset_experiments::figures::run_figure;
use kset_regions::Model;

fn main() {
    if let Err(msg) = run_figure(Model::MpCrash, std::env::args().skip(1)) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
