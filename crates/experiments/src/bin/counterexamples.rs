//! Runs every impossibility re-enactment and prints the violating runs.
//!
//! Each construction stages the run described in one of the paper's
//! impossibility proofs (partition schedules, crash placements, Byzantine
//! mimicry) and demonstrates the predicted violation of Termination,
//! Agreement or Validity on a concrete execution.

fn main() {
    println!("=== Impossibility constructions, re-enacted ===\n");
    let list = match kset_experiments::counterexamples::all() {
        Ok(list) => list,
        Err(e) => {
            eprintln!("simulator failure: {e}");
            std::process::exit(1);
        }
    };
    let mut ok = true;
    for cx in &list {
        println!("{cx}\n");
        if cx.report == "ok" {
            eprintln!("ERROR: {} failed to produce a violation!", cx.lemma);
            ok = false;
        }
    }
    println!("{} constructions re-enacted", list.len());
    if !ok {
        std::process::exit(1);
    }
    println!("every construction violated exactly what its lemma predicts: OK");
}
