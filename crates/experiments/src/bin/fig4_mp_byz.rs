//! Regenerates Figure 4: the MP/Byz solvability atlas.
//!
//! Usage: `fig4_mp_byz [n] [--csv FILE]` (default n = 64, as in the paper).

use kset_experiments::figures::run_figure;
use kset_regions::Model;

fn main() {
    if let Err(msg) = run_figure(Model::MpByzantine, std::env::args().skip(1)) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
