//! One-shot reproduction driver: Figure 1, all four atlases at `n = 64`,
//! the empirical validation pass, and the impossibility re-enactments.
//!
//! Usage: `reproduce_all [--empirical-n N] [--seeds S] [--json PATH]
//! [--threads T]` (defaults: N = 8, S = 3, T = available parallelism).
//! Atlas CSVs are written to `target/figures/`. With `--json`, every
//! empirical run is additionally emitted as one `RunRecord` JSON line
//! (with kernel metrics enabled) to `PATH` — see `OBSERVABILITY.md` for
//! the schema — and a per-protocol metrics rollup is printed after the
//! validation table. Empirical cells run on a work-stealing pool; every
//! table, artifact and record file is merged in cell order and therefore
//! byte-identical for every thread count.

use std::fs;
use std::io::Write as _;

use kset_core::lattice::Lattice;
use kset_core::ValidityCondition;
use kset_experiments::cells::validate_cell_with;
use kset_experiments::engine;
use kset_experiments::record_sink::JsonlSink;
use kset_experiments::{counterexamples, report};
use kset_regions::{render, Atlas, Model};
use kset_sim::MetricsConfig;

fn main() {
    let mut empirical_n = 8usize;
    let mut seeds = 5u64;
    let mut json_path: Option<String> = None;
    let mut threads = engine::available_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--empirical-n" => {
                empirical_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--empirical-n needs a number")
            }
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number")
            }
            "--json" => {
                json_path = Some(args.next().expect("--json needs a path"));
            }
            "--threads" => {
                let raw = args.next().expect("--threads needs a value");
                threads = engine::parse_threads(&raw)
                    .unwrap_or_else(|| panic!("--threads wants a count, 0 or 'auto', got {raw:?}"));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    // Figure 1.
    println!("==================== FIGURE 1 ====================");
    assert_eq!(
        Lattice::derive(),
        Lattice::paper(),
        "derived lattice must equal the paper's Figure 1"
    );
    print!("{}", Lattice::paper().render_ascii());
    println!("derived == paper: OK\n");

    // Figures 2, 4, 5, 6 at the paper's n = 64.
    fs::create_dir_all("target/figures").expect("create target/figures");
    for model in Model::ALL {
        println!(
            "==================== FIGURE {} ({model}) ====================",
            model.figure()
        );
        let atlas = Atlas::compute(model, 64);
        print!("{}", render::atlas_ascii(&atlas));
        let path = format!("target/figures/fig{}_{}.csv", model.figure(), slug(model));
        let mut f = fs::File::create(&path).expect("create csv");
        f.write_all(render::atlas_csv(&atlas).as_bytes())
            .expect("write csv");
        println!("(csv written to {path})\n");
    }

    // Empirical validation. With --json, collect kernel metrics and stream
    // one RunRecord per run; the metrics make each run ~equally fast but
    // carry per-process attribution, so they are opt-in.
    println!("==================== EMPIRICAL VALIDATION ====================");
    let metrics = if json_path.is_some() {
        MetricsConfig::enabled()
    } else {
        MetricsConfig::disabled()
    };
    let mut sink = json_path
        .as_ref()
        .map(|p| JsonlSink::create(p).expect("create --json sink"));
    let mut cells: Vec<(Model, ValidityCondition, usize, usize)> = Vec::new();
    for model in Model::ALL {
        for validity in ValidityCondition::ALL {
            for k in 2..empirical_n {
                for t in 1..=empirical_n {
                    cells.push((model, validity, k, t));
                }
            }
        }
    }
    let results = engine::parallel_map(threads, cells, |_, (model, validity, k, t)| {
        let mut cell_records = Vec::new();
        let cell = validate_cell_with(
            model,
            validity,
            empirical_n,
            k,
            t,
            0..seeds,
            metrics,
            |record| cell_records.push(record),
        );
        match cell {
            Ok(row) => (row, cell_records),
            Err(e) => panic!("simulator failure: {e}"),
        }
    });
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (row, cell_records) in results {
        rows.extend(row);
        if let Some(sink) = sink.as_mut() {
            for record in &cell_records {
                sink.write(record).expect("write run record");
            }
        }
        records.extend(cell_records);
    }
    print!("{}", report::validation_table(&rows));
    let total_runs: usize = rows.iter().map(|r| r.runs).sum();
    assert_eq!(
        records.len(),
        total_runs,
        "one record per empirical run, table and JSONL must agree"
    );
    let violations: usize = rows.iter().map(|r| r.violations).sum();
    assert_eq!(violations, 0, "empirical validation found violations");
    let json = serde_json::to_string_pretty(&rows).expect("serialize validations");
    fs::write("target/figures/empirical_validation.json", json).expect("write json artifact");
    println!("(per-cell results written to target/figures/empirical_validation.json)");
    if let Some(sink) = sink {
        let written = sink.finish().expect("flush --json sink");
        println!(
            "({} run records written to {})",
            written,
            json_path.as_deref().unwrap_or_default()
        );
        println!("==================== METRICS ROLLUP ====================");
        print!("{}", report::metrics_table(&records));
    }
    println!("empirical validation: OK\n");

    // Counterexamples.
    println!("==================== IMPOSSIBILITY RE-ENACTMENTS ====================");
    let list = counterexamples::all().expect("constructions run");
    for cx in &list {
        println!("{cx}\n");
        assert_ne!(cx.report, "ok", "{} must violate its property", cx.lemma);
    }
    println!("{} constructions re-enacted: OK", list.len());
}

fn slug(model: Model) -> &'static str {
    match model {
        Model::MpCrash => "mp_cr",
        Model::MpByzantine => "mp_byz",
        Model::SmCrash => "sm_cr",
        Model::SmByzantine => "sm_byz",
    }
}
