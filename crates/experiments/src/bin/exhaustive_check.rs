//! Exhaustive small-model verification sweep: for FloodMin and Protocols
//! A and B at small `n`, enumerate EVERY asynchronous outcome (all
//! realizable per-process decision profiles) across `t` and report the
//! worst-case agreement — the finite, machine-checked form of Lemmas 3.1,
//! 3.7 and 3.8 and their tightness.
//!
//! Usage: `exhaustive_check [n] [--threads T]` (default n = 6, threads =
//! available parallelism; keep n small — the space is combinatorial). The
//! protocol × inputs × t triples run on a work-stealing pool and the
//! table is printed in enumeration order, byte-identical for every thread
//! count.

use kset_core::ValidityCondition;
use kset_experiments::engine;
use kset_experiments::exhaustive::{verify, QuorumProtocol};

fn main() {
    let mut n: Option<usize> = None;
    let mut threads = engine::available_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let raw = args.next().expect("--threads needs a value");
                threads = engine::parse_threads(&raw)
                    .unwrap_or_else(|| panic!("--threads wants a count, 0 or 'auto', got {raw:?}"));
            }
            other if n.is_none() => n = Some(other.parse().expect("n must be a number")),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(6);
    assert!((3..=9).contains(&n), "keep n in 3..=9 for exhaustive sweeps");

    println!("=== Exhaustive verification over ALL schedules (n = {n}) ===\n");
    println!("protocol    t   inputs        profiles  worst-k  validities violated");
    println!("----------  --  ------------  --------  -------  -------------------");

    let spread: Vec<u64> = (0..n as u64).collect();
    let two_blocks: Vec<u64> = (0..n).map(|p| (p * 2 / n) as u64).collect();

    let protocols = [
        (QuorumProtocol::FloodMin, "FloodMin"),
        (QuorumProtocol::ProtocolA, "Protocol A"),
        (QuorumProtocol::ProtocolB, "Protocol B"),
        (QuorumProtocol::ProtocolE, "Protocol E"),
        (QuorumProtocol::ProtocolF, "Protocol F"),
    ];
    let mut triples: Vec<(QuorumProtocol, &str, &Vec<u64>, usize)> = Vec::new();
    for (proto, label) in protocols {
        for inputs in [&spread, &two_blocks] {
            for t in 1..n {
                triples.push((proto, label, inputs, t));
            }
        }
    }
    let lines = engine::parallel_map(threads, triples, |_, (proto, label, inputs, t)| {
        let line = match verify(proto, inputs, t, &[], 50_000_000) {
            Ok(report) => {
                let viols: Vec<&str> = report
                    .violated_validities
                    .iter()
                    .map(|v| v.name())
                    .collect();
                format!(
                    "{label:<10}  {t:<2}  {:<12}  {:<8}  {:<7}  {}",
                    format!("{inputs:?}").chars().take(12).collect::<String>(),
                    report.profiles,
                    report.worst_agreement,
                    if viols.is_empty() {
                        "none".to_string()
                    } else {
                        viols.join(", ")
                    }
                )
            }
            Err(size) => {
                format!("{label:<10}  {t:<2}  (skipped: {size} profiles exceed limit)")
            }
        };
        (label, line)
    });
    let mut last_label = lines.first().map(|(label, _)| *label);
    for (label, line) in lines {
        if last_label != Some(label) {
            println!();
            last_label = Some(label);
        }
        println!("{line}");
    }
    println!();

    // The headline tightness claims, asserted.
    let inputs: Vec<u64> = (0..n as u64).collect();
    for t in 1..n.min(4) {
        let r = verify(QuorumProtocol::FloodMin, &inputs, t, &[], 50_000_000)
            .expect("small enough");
        assert_eq!(
            r.worst_agreement,
            t + 1,
            "FloodMin worst case must be exactly t+1"
        );
        assert!(r.satisfies(t + 1, ValidityCondition::RV1));
        assert!(!r.satisfies(t, ValidityCondition::RV1));
    }
    println!("FloodMin worst-case agreement == t + 1 for all checked t: Lemma 3.1/3.2 tight, OK");
}
