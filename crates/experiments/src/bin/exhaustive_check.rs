//! Exhaustive small-model verification sweep: for FloodMin and Protocols
//! A and B at small `n`, enumerate EVERY asynchronous outcome (all
//! realizable per-process decision profiles) across `t` and report the
//! worst-case agreement — the finite, machine-checked form of Lemmas 3.1,
//! 3.7 and 3.8 and their tightness.
//!
//! Usage: `exhaustive_check [n]` (default 6; keep it small — the space is
//! combinatorial).

use kset_core::ValidityCondition;
use kset_experiments::exhaustive::{verify, QuorumProtocol};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n must be a number"))
        .unwrap_or(6);
    assert!((3..=9).contains(&n), "keep n in 3..=9 for exhaustive sweeps");

    println!("=== Exhaustive verification over ALL schedules (n = {n}) ===\n");
    println!("protocol    t   inputs        profiles  worst-k  validities violated");
    println!("----------  --  ------------  --------  -------  -------------------");

    let spread: Vec<u64> = (0..n as u64).collect();
    let two_blocks: Vec<u64> = (0..n).map(|p| (p * 2 / n) as u64).collect();

    for (proto, label) in [
        (QuorumProtocol::FloodMin, "FloodMin"),
        (QuorumProtocol::ProtocolA, "Protocol A"),
        (QuorumProtocol::ProtocolB, "Protocol B"),
        (QuorumProtocol::ProtocolE, "Protocol E"),
        (QuorumProtocol::ProtocolF, "Protocol F"),
    ] {
        for inputs in [&spread, &two_blocks] {
            for t in 1..n {
                match verify(proto, inputs, t, &[], 50_000_000) {
                    Ok(report) => {
                        let viols: Vec<&str> = report
                            .violated_validities
                            .iter()
                            .map(|v| v.name())
                            .collect();
                        println!(
                            "{label:<10}  {t:<2}  {:<12}  {:<8}  {:<7}  {}",
                            format!("{inputs:?}").chars().take(12).collect::<String>(),
                            report.profiles,
                            report.worst_agreement,
                            if viols.is_empty() {
                                "none".to_string()
                            } else {
                                viols.join(", ")
                            }
                        );
                    }
                    Err(size) => {
                        println!("{label:<10}  {t:<2}  (skipped: {size} profiles exceed limit)");
                    }
                }
            }
        }
        println!();
    }

    // The headline tightness claims, asserted.
    let inputs: Vec<u64> = (0..n as u64).collect();
    for t in 1..n.min(4) {
        let r = verify(QuorumProtocol::FloodMin, &inputs, t, &[], 50_000_000)
            .expect("small enough");
        assert_eq!(
            r.worst_agreement,
            t + 1,
            "FloodMin worst case must be exactly t+1"
        );
        assert!(r.satisfies(t + 1, ValidityCondition::RV1));
        assert!(!r.satisfies(t, ValidityCondition::RV1));
    }
    println!("FloodMin worst-case agreement == t + 1 for all checked t: Lemma 3.1/3.2 tight, OK");
}
