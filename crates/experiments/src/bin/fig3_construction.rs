//! Regenerates Figure 3: the run construction of Lemma 3.3, as an
//! executable schedule with a per-process timeline.
//!
//! The paper's figure shows groups `g_1 .. g_k` isolated until they decide,
//! with `g_k` producing two decisions. This binary stages that exact run
//! against Protocol A just past its bound and renders the timeline: each
//! group communicates only internally until its members decide, then the
//! held messages flow.
//!
//! Usage: `fig3_construction` (fixed small scale for a readable timeline).

use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
use kset_net::MpSystem;
use kset_protocols::ProtocolA;
use kset_sim::DelayRule;

fn main() {
    // n = 6, t = 4, k = 2: k t = 8 > (k-1) n = 6 — inside Lemma 3.3's
    // impossible region. Three isolated unanimous pairs stand in for the
    // paper's groups (its g_k produces two values from an embedded
    // consensus-impossibility run; disjoint unanimous groups yield the same
    // k+1 decisions with a fully deterministic staging).
    let (n, k, t) = (6usize, 2usize, 4usize);
    let inputs = [1u64, 1, 2, 2, 3, 3];
    let groups = [vec![0usize, 1], vec![2, 3], vec![4, 5]];

    println!("=== Figure 3: the run of Lemma 3.3, executed ===\n");
    println!("SC(k={k}, t={t}, WV2) over n={n}; quorum n-t = {}", n - t);
    println!("inputs: {inputs:?}");
    for (i, g) in groups.iter().enumerate() {
        println!(
            "g{}: processes {:?}, unanimous on {}, isolated until it decides",
            i + 1,
            g,
            inputs[g[0]]
        );
    }

    let outcome = MpSystem::new(n)
        .seed(0)
        .trace_capacity(100_000)
        .delay_rules(groups.iter().cloned().map(DelayRule::isolate_until_decided))
        .run_with(|p| ProtocolA::boxed(n, t, inputs[p], u64::MAX))
        .expect("staged run completes");

    println!("\ntimeline (d<pX = delivery from pX; the partition phase is visible");
    println!("as purely intra-group deliveries until every pair decides):\n");
    print!("{}", outcome.trace.render_timeline(n));

    println!("\ndecisions:");
    for (p, v) in &outcome.decisions {
        println!("  p{p} decided {v}");
    }
    let spec = ProblemSpec::new(n, k, t, ValidityCondition::WV2).expect("valid spec");
    let record = RunRecord::new(inputs.to_vec())
        .with_decisions(outcome.decisions.clone())
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    println!("\nchecker: {report}");
    assert!(
        report.has_agreement_violation(),
        "the construction must violate agreement"
    );
    println!("\n{} distinct values decided against k = {k}: the Lemma 3.3 run, realized",
        record.correct_decision_set().len());
}
