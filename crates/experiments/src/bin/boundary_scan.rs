//! Scans the frontier of each panel: for cells just outside the solvable
//! region, throws the panel's protocol at them under partition and freeze
//! schedules, and reports how many runs violate `SC(k, t, C)`.
//!
//! A violation is a reproducible certificate (its seed is printed) that
//! the protocol genuinely fails there — tightness evidence complementing
//! the hand-staged constructions in the `counterexamples` binary.
//!
//! Usage: `boundary_scan [n] [seeds] [--json PATH] [--threads N]`
//! (defaults: n = 10, seeds = 12, threads = available parallelism). With
//! `--json`, every probe run is emitted as a `RunRecord` JSON line with
//! kernel metrics; violating runs carry the checker's message in
//! `outcome.violation` (schema: `OBSERVABILITY.md`). Probes run on a
//! work-stealing pool; the table and the record file are merged in cell
//! order, so they are byte-identical for every thread count.

use kset_core::ValidityCondition;
use kset_experiments::engine;
use kset_experiments::explorer::probe_cell_with;
use kset_experiments::record_sink::JsonlSink;
use kset_regions::{classify, CellClass, Model};
use kset_sim::MetricsConfig;

fn main() {
    let mut n: Option<usize> = None;
    let mut seeds: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let mut threads = engine::available_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--threads" => {
                let raw = args.next().expect("--threads needs a value");
                threads = engine::parse_threads(&raw)
                    .unwrap_or_else(|| panic!("--threads wants a count, 0 or 'auto', got {raw:?}"));
            }
            other if n.is_none() => n = Some(other.parse().expect("n must be a number")),
            other if seeds.is_none() => {
                seeds = Some(other.parse().expect("seeds must be a number"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(10);
    let seeds = seeds.unwrap_or(12);
    let metrics = if json_path.is_some() {
        MetricsConfig::enabled()
    } else {
        MetricsConfig::disabled()
    };

    // Enumerate the frontier first (classification is cheap and serial),
    // then probe every frontier cell on the work-stealing pool. Only
    // non-solvable cells within two steps of the solvable region are
    // probed.
    let mut frontier: Vec<(Model, ValidityCondition, usize, usize)> = Vec::new();
    for model in Model::ALL {
        for validity in ValidityCondition::ALL {
            for k in 2..n {
                for t in 1..=n {
                    let here = classify(model, validity, n, k, t);
                    if matches!(here, CellClass::Solvable(_)) {
                        continue;
                    }
                    let near = t == 1
                        || matches!(
                            classify(model, validity, n, k, t - 1),
                            CellClass::Solvable(_)
                        )
                        || (t >= 2
                            && matches!(
                                classify(model, validity, n, k, t - 2),
                                CellClass::Solvable(_)
                            ));
                    if near {
                        frontier.push((model, validity, k, t));
                    }
                }
            }
        }
    }
    let probes = engine::parallel_map(threads, frontier, |_, (model, validity, k, t)| {
        let mut records = Vec::new();
        let probe = probe_cell_with(model, validity, n, k, t, 0..seeds, metrics, |r| {
            records.push(r)
        });
        match probe {
            Ok(p) => (p, records),
            Err(e) => panic!("simulator failure at {model} {validity} k={k} t={t}: {e}"),
        }
    });

    println!("=== Boundary scan: protocols just outside their regions (n = {n}) ===\n");
    println!("model   validity  k   t   class       protocol    violations/runs  first seed");
    println!("------  --------  --  --  ----------  ----------  ---------------  ----------");

    let mut sink = json_path
        .as_ref()
        .map(|p| JsonlSink::create(p).expect("create --json sink"));
    let mut probed = 0;
    let mut with_violations = 0;
    for (probe, records) in probes {
        if let Some(sink) = sink.as_mut() {
            for r in &records {
                sink.write(r).expect("write run record");
            }
        }
        let Some(p) = probe else { continue };
        probed += 1;
        if p.violations > 0 {
            with_violations += 1;
        }
        println!(
            "{:<6}  {:<8}  {:<2}  {:<2}  {:<10}  {:<10}  {:>3}/{:<12}  {}",
            p.model.shorthand(),
            p.validity.name(),
            p.k,
            p.t,
            p.class,
            p.protocol,
            p.violations,
            p.runs,
            p.first_violating_seed
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("\n{probed} frontier cells probed; {with_violations} yielded violation certificates");
    println!("(violations are expected OUTSIDE the regions — they evidence tightness; a probe");
    println!(" finding none proves nothing, since impossibility quantifies over all protocols)");
    if let (Some(sink), Some(path)) = (sink, &json_path) {
        let written = sink.finish().expect("flush --json sink");
        println!("({written} probe run records written to {path})");
    }
}
