//! Scans the frontier of each panel: for cells just outside the solvable
//! region, throws the panel's protocol at them under partition and freeze
//! schedules, and reports how many runs violate `SC(k, t, C)`.
//!
//! A violation is a reproducible certificate (its seed is printed) that
//! the protocol genuinely fails there — tightness evidence complementing
//! the hand-staged constructions in the `counterexamples` binary.
//!
//! Usage: `boundary_scan [n] [seeds] [--json PATH]`
//! (defaults: n = 10, seeds = 12). With `--json`, every probe run is
//! emitted as a `RunRecord` JSON line with kernel metrics; violating runs
//! carry the checker's message in `outcome.violation` (schema:
//! `OBSERVABILITY.md`).

use kset_core::ValidityCondition;
use kset_experiments::explorer::probe_cell_with;
use kset_experiments::record_sink::JsonlSink;
use kset_regions::{classify, CellClass, Model};
use kset_sim::MetricsConfig;

fn main() {
    let mut n: Option<usize> = None;
    let mut seeds: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other if n.is_none() => n = Some(other.parse().expect("n must be a number")),
            other if seeds.is_none() => {
                seeds = Some(other.parse().expect("seeds must be a number"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(10);
    let seeds = seeds.unwrap_or(12);
    let metrics = if json_path.is_some() {
        MetricsConfig::enabled()
    } else {
        MetricsConfig::disabled()
    };
    let mut sink = json_path
        .as_ref()
        .map(|p| JsonlSink::create(p).expect("create --json sink"));

    println!("=== Boundary scan: protocols just outside their regions (n = {n}) ===\n");
    println!("model   validity  k   t   class       protocol    violations/runs  first seed");
    println!("------  --------  --  --  ----------  ----------  ---------------  ----------");

    let mut probed = 0;
    let mut with_violations = 0;
    for model in Model::ALL {
        for validity in ValidityCondition::ALL {
            for k in 2..n {
                // Probe only frontier cells: non-solvable cells whose
                // neighbour at t-1 is solvable, plus one deeper.
                for t in 1..=n {
                    let here = classify(model, validity, n, k, t);
                    if matches!(here, CellClass::Solvable(_)) {
                        continue;
                    }
                    let frontier = t == 1
                        || matches!(
                            classify(model, validity, n, k, t - 1),
                            CellClass::Solvable(_)
                        );
                    let deeper = t >= 2
                        && matches!(
                            classify(model, validity, n, k, t - 2),
                            CellClass::Solvable(_)
                        );
                    if !(frontier || deeper) {
                        continue;
                    }
                    let probe = probe_cell_with(model, validity, n, k, t, 0..seeds, metrics, |r| {
                        if let Some(sink) = sink.as_mut() {
                            sink.write(&r).expect("write run record");
                        }
                    });
                    match probe {
                        Ok(Some(p)) => {
                            probed += 1;
                            if p.violations > 0 {
                                with_violations += 1;
                            }
                            println!(
                                "{:<6}  {:<8}  {:<2}  {:<2}  {:<10}  {:<10}  {:>3}/{:<12}  {}",
                                p.model.shorthand(),
                                p.validity.name(),
                                p.k,
                                p.t,
                                p.class,
                                p.protocol,
                                p.violations,
                                p.runs,
                                p.first_violating_seed
                                    .map(|s| s.to_string())
                                    .unwrap_or_else(|| "-".into())
                            );
                        }
                        Ok(None) => {}
                        Err(e) => {
                            eprintln!("simulator failure at {model} {validity} k={k} t={t}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
    }
    println!("\n{probed} frontier cells probed; {with_violations} yielded violation certificates");
    println!("(violations are expected OUTSIDE the regions — they evidence tightness; a probe");
    println!(" finding none proves nothing, since impossibility quantifies over all protocols)");
    if let (Some(sink), Some(path)) = (sink, &json_path) {
        let written = sink.finish().expect("flush --json sink");
        println!("({written} probe run records written to {path})");
    }
}
