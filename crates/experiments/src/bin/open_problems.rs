//! Prints the open problems of the paper as concrete cell inventories:
//! for every panel of every figure, the cells between the best known
//! protocol and the best known impossibility bound.
//!
//! Usage: `open_problems [n]` (default n = 64, as in the paper).

use kset_core::ValidityCondition;
use kset_regions::gaps::GapReport;
use kset_regions::{Atlas, Model};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n must be a number"))
        .unwrap_or(64);
    assert!(n >= 3, "n must be at least 3");

    println!("=== Open problems (gaps between protocols and bounds), n = {n} ===\n");
    let mut total = 0;
    for model in Model::ALL {
        let atlas = Atlas::compute(model, n);
        println!("--- Figure {} ({model}) ---", model.figure());
        for v in ValidityCondition::ALL {
            let gaps = GapReport::of(atlas.panel(v));
            if gaps.closed() {
                println!("{model} {v}: fully characterized, no open cells");
            } else {
                print!("{}", gaps.render());
                if let Some(w) = gaps.widest() {
                    println!(
                        "  widest gap: k = {} open across {} values of t",
                        w.k,
                        w.width()
                    );
                }
            }
            total += gaps.open_cells();
        }
        println!();
    }
    println!("total open cells across all 24 panels: {total}");
    println!("(cf. paper §5: \"in a few cases there is still a gap to be filled\")");
}
