//! Regenerates Figure 1: the "weaker-than" lattice of validity conditions.
//!
//! The lattice is *derived* by exhaustive enumeration of abstract runs and
//! compared against the transcription of the paper's figure; the binary
//! fails loudly if they ever diverge.

use kset_core::lattice::Lattice;
use kset_core::ValidityCondition;

fn main() {
    println!("=== Figure 1: validity conditions, weaker-than lattice ===\n");
    let derived = Lattice::derive();
    let paper = Lattice::paper();
    if derived != paper {
        eprintln!("DERIVED LATTICE DIFFERS FROM THE PAPER'S FIGURE 1!");
        std::process::exit(1);
    }
    print!("{}", derived.render_ascii());
    println!("\nHasse edges (stronger -> weaker), derived by enumeration:");
    for (s, w) in derived.hasse_edges() {
        println!("  {s} -> {w}");
    }
    println!("\nFull implication closure:");
    for c in ValidityCondition::ALL {
        let implied: Vec<&str> = ValidityCondition::ALL
            .iter()
            .filter(|&&d| derived.implies(c, d))
            .map(|d| d.name())
            .collect();
        println!("  {c} implies {{{}}}", implied.join(", "));
    }
    println!("\nderived lattice == paper Figure 1: OK");
}
