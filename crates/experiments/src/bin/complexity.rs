//! Message / operation complexity of every protocol across system sizes —
//! the quantitative face of the paper's qualitative hierarchy (plain
//! quorum protocols are O(n²) messages, the Byzantine echo machinery is
//! O(n³), shared-memory protocols are O(n) operations per scan, and the
//! register emulations pay O(n) messages per emulated operation).
//!
//! Usage: `complexity [max_n] [--json PATH]`
//! (default 32; sweeps n in powers of two). With `--json`, each measured
//! run is emitted as a `RunRecord` JSON line with kernel metrics (schema:
//! `OBSERVABILITY.md`); the record's cell is the protocol's canonical
//! lemma cell, with `k` the smallest agreement bound the atlas grants the
//! protocol at that `(n, t)`.

use kset_adversary::plans;
use kset_core::ValidityCondition;
use kset_experiments::record_sink::{JsonlSink, RunOutcome, RunRecord};
use kset_net::MpSystem;
use kset_protocols::{
    Emulated, FloodMin, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ProtocolE, ProtocolF,
};
use kset_regions::{classify, CellClass, Model};
use kset_shmem::SmSystem;
use kset_sim::{MetricsConfig, Outcome};

const DEFAULT: u64 = u64::MAX;
const SEED: u64 = 1;

/// The smallest `k` for which the protocol's canonical cell is solvable at
/// `(n, t)` — the agreement guarantee the run is operating under.
fn guarantee_k(model: Model, validity: ValidityCondition, n: usize, t: usize) -> usize {
    (2..=n)
        .find(|&k| matches!(classify(model, validity, n, k, t), CellClass::Solvable(_)))
        .unwrap_or(n)
}

struct Recorder {
    sink: Option<JsonlSink>,
    metrics: MetricsConfig,
}

impl Recorder {
    fn new(json_path: Option<&str>) -> Self {
        Recorder {
            sink: json_path.map(|p| JsonlSink::create(p).expect("create --json sink")),
            metrics: if json_path.is_some() {
                MetricsConfig::enabled()
            } else {
                MetricsConfig::disabled()
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        protocol: &str,
        model: Model,
        validity: ValidityCondition,
        n: usize,
        t: usize,
        outcome: RunOutcome,
        stats: kset_sim::RunStats,
        metrics: Option<kset_sim::RunMetrics>,
    ) {
        if let Some(sink) = self.sink.as_mut() {
            let k = guarantee_k(model, validity, n, t);
            let record =
                RunRecord::new(model, validity, n, k, t, SEED, protocol, outcome, stats, metrics);
            sink.write(&record).expect("write run record");
        }
    }

    /// Substrate-agnostic recording: MP runs pass their outcome directly;
    /// SM runs shed the register snapshot first via `SmOutcome::into_run`.
    fn record_run(
        &mut self,
        protocol: &str,
        model: Model,
        validity: ValidityCondition,
        n: usize,
        t: usize,
        outcome: Outcome<u64>,
    ) {
        let run = RunOutcome {
            terminated: outcome.terminated,
            decided: outcome.decisions.len(),
            distinct_decisions: outcome.correct_decision_set().len(),
            violation: None,
        };
        self.record(protocol, model, validity, n, t, run, outcome.stats, outcome.metrics);
    }
}

fn main() {
    let mut max_n: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other if max_n.is_none() => {
                max_n = Some(other.parse().expect("max_n must be a number"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let max_n = max_n.unwrap_or(32);
    assert!(max_n >= 4, "max_n must be at least 4");
    let mut rec = Recorder::new(json_path.as_deref());

    let sizes: Vec<usize> = std::iter::successors(Some(4usize), |&n| Some(n * 2))
        .take_while(|&n| n <= max_n)
        .collect();

    println!("=== Message / operation complexity per full consensus run ===\n");
    println!("(messages delivered for MP protocols; register ops for SM; t = n/4, seed {SEED})\n");
    print!("{:<16}", "protocol");
    for &n in &sizes {
        print!("{:>10}", format!("n={n}"));
    }
    println!();
    print!("{:<16}", "-".repeat(16));
    for _ in &sizes {
        print!("{:>10}", "-".repeat(8));
    }
    println!();

    let row = |name: &str, counts: &[u64]| {
        print!("{name:<16}");
        for c in counts {
            print!("{c:>10}");
        }
        println!();
    };

    let mut counts = Vec::new();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| FloodMin::boxed(n, t, p as u64))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run("FloodMin", Model::MpCrash, ValidityCondition::RV1, n, t, o);
    }
    row("FloodMin", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| ProtocolA::boxed(n, t, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run("Protocol A", Model::MpCrash, ValidityCondition::RV2, n, t, o);
    }
    row("Protocol A", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| ProtocolB::boxed(n, t, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run("Protocol B", Model::MpCrash, ValidityCondition::SV2, n, t, o);
    }
    row("Protocol B", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 8).max(1);
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .run_with(|_| ProtocolC::boxed(n, t, 1, 5u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run(
            "Protocol C(1)",
            Model::MpByzantine,
            ValidityCondition::SV2,
            n,
            t,
            o,
        );
    }
    row("Protocol C(1)", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 8).max(1);
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .run_with(|p| ProtocolD::boxed(n, t, p as u64))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run(
            "Protocol D",
            Model::MpByzantine,
            ValidityCondition::WV1,
            n,
            t,
            o,
        );
    }
    row("Protocol D", &counts);

    counts.clear();
    for &n in &sizes {
        let o = SmSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .run_with(|p| ProtocolE::boxed(n, n - 1, p as u64, DEFAULT))
            .unwrap()
            .into_run();
        counts.push(o.stats.ops_completed);
        rec.record_run(
            "Protocol E",
            Model::SmCrash,
            ValidityCondition::RV2,
            n,
            n - 1,
            o,
        );
    }
    row("Protocol E*", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = SmSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .run_with(|p| ProtocolF::boxed(n, t, p as u64, DEFAULT))
            .unwrap()
            .into_run();
        counts.push(o.stats.ops_completed);
        rec.record_run("Protocol F", Model::SmCrash, ValidityCondition::SV2, n, t, o);
    }
    row("Protocol F*", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 4).min((n - 1) / 2);
        let o = MpSystem::new(n)
            .seed(SEED)
            .metrics(rec.metrics)
            .run_with(|p| Emulated::boxed(n, t, ProtocolE::new(n, t, p as u64, DEFAULT)))
            .unwrap();
        counts.push(o.stats.messages_delivered);
        rec.record_run(
            "ABD(Protocol E)",
            Model::MpCrash,
            ValidityCondition::RV2,
            n,
            t,
            o,
        );
    }
    row("ABD(Protocol E)", &counts);

    println!("\n* register operations rather than messages");
    println!("shapes: quorum protocols ~ n^2 messages; echo protocols ~ n^3;");
    println!("Protocol E ~ n ops/process; the ABD emulation pays ~ n messages per op");
    if let (Some(sink), Some(path)) = (rec.sink, &json_path) {
        let written = sink.finish().expect("flush --json sink");
        println!("({written} run records written to {path})");
    }
}
