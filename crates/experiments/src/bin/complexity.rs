//! Message / operation complexity of every protocol across system sizes —
//! the quantitative face of the paper's qualitative hierarchy (plain
//! quorum protocols are O(n²) messages, the Byzantine echo machinery is
//! O(n³), shared-memory protocols are O(n) operations per scan, and the
//! register emulations pay O(n) messages per emulated operation).
//!
//! Usage: `complexity [max_n]` (default 32; sweeps n in powers of two).

use kset_adversary::plans;
use kset_net::MpSystem;
use kset_protocols::{
    Emulated, FloodMin, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ProtocolE, ProtocolF,
};
use kset_shmem::SmSystem;

const DEFAULT: u64 = u64::MAX;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("max_n must be a number"))
        .unwrap_or(32);
    assert!(max_n >= 4, "max_n must be at least 4");

    let sizes: Vec<usize> = std::iter::successors(Some(4usize), |&n| Some(n * 2))
        .take_while(|&n| n <= max_n)
        .collect();

    println!("=== Message / operation complexity per full consensus run ===\n");
    println!("(messages delivered for MP protocols; register ops for SM; t = n/4, seed 1)\n");
    print!("{:<16}", "protocol");
    for &n in &sizes {
        print!("{:>10}", format!("n={n}"));
    }
    println!();
    print!("{:<16}", "-".repeat(16));
    for _ in &sizes {
        print!("{:>10}", "-".repeat(8));
    }
    println!();

    let row = |name: &str, counts: &[u64]| {
        print!("{name:<16}");
        for c in counts {
            print!("{c:>10}");
        }
        println!();
    };

    let mut counts = Vec::new();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(1)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| FloodMin::boxed(n, t, p as u64))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("FloodMin", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(1)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| ProtocolA::boxed(n, t, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("Protocol A", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = MpSystem::new(n)
            .seed(1)
            .fault_plan(plans::last_t_silent(n, t))
            .run_with(|p| ProtocolB::boxed(n, t, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("Protocol B", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 8).max(1);
        let o = MpSystem::new(n)
            .seed(1)
            .run_with(|_| ProtocolC::boxed(n, t, 1, 5u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("Protocol C(1)", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 8).max(1);
        let o = MpSystem::new(n)
            .seed(1)
            .run_with(|p| ProtocolD::boxed(n, t, p as u64))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("Protocol D", &counts);

    counts.clear();
    for &n in &sizes {
        let o = SmSystem::new(n)
            .seed(1)
            .run_with(|p| ProtocolE::boxed(n, n - 1, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.ops_completed);
    }
    row("Protocol E*", &counts);

    counts.clear();
    for &n in &sizes {
        let t = n / 4;
        let o = SmSystem::new(n)
            .seed(1)
            .run_with(|p| ProtocolF::boxed(n, t, p as u64, DEFAULT))
            .unwrap();
        counts.push(o.stats.ops_completed);
    }
    row("Protocol F*", &counts);

    counts.clear();
    for &n in &sizes {
        let t = (n / 4).min((n - 1) / 2);
        let o = MpSystem::new(n)
            .seed(1)
            .run_with(|p| Emulated::boxed(n, t, ProtocolE::new(n, t, p as u64, DEFAULT)))
            .unwrap();
        counts.push(o.stats.messages_delivered);
    }
    row("ABD(Protocol E)", &counts);

    println!("\n* register operations rather than messages");
    println!("shapes: quorum protocols ~ n^2 messages; echo protocols ~ n^3;");
    println!("Protocol E ~ n ops/process; the ABD emulation pays ~ n messages per op");
}
