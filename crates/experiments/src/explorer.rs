//! Boundary exploration: hunt for violating schedules just *outside* the
//! proven regions.
//!
//! Empirical validation (see [`crate::cells`]) shows the protocols clean
//! inside their regions; this module provides the complementary evidence
//! that the bounds are *tight* in practice. For a cell classified
//! impossible (or open), [`probe_cell`] runs the panel's protocol anyway —
//! configured for the probed `t` — across seeds that include the
//! partition- and freeze-style schedules of the impossibility proofs, and
//! counts how many runs violate `SC(k, t, C)`.
//!
//! A violation found is a *certificate of failure* for that protocol at
//! that cell (with the schedule reproducible from its seed). Finding none
//! proves nothing — impossibility proofs quantify over all protocols — but
//! across the frontier the counts paint the picture: clean inside,
//! violations immediately outside.

use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
use kset_net::MpSystem;
use kset_protocols::{FloodMin, ProtocolA, ProtocolB, ProtocolE, ProtocolF};
use kset_regions::{classify, CellClass, Model};
use kset_shmem::SmSystem;
use kset_sim::{DelayRule, MetricsConfig, Outcome, RunMetrics, RunStats, SimError, Until};

use crate::cells::DEFAULT_VALUE;
use crate::record_sink::RunOutcome;

/// Result of probing one non-solvable cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundaryProbe {
    /// Model of the probed cell.
    pub model: Model,
    /// Validity condition.
    pub validity: ValidityCondition,
    /// System size.
    pub n: usize,
    /// Agreement bound.
    pub k: usize,
    /// Fault budget.
    pub t: usize,
    /// Classification of the cell (never `Solvable`).
    pub class: &'static str,
    /// Protocol that was thrown at the cell.
    pub protocol: &'static str,
    /// Total runs.
    pub runs: usize,
    /// Runs violating the specification.
    pub violations: usize,
    /// Seed of the first violating run, for replay.
    pub first_violating_seed: Option<u64>,
}

/// Which protocol to throw at a non-solvable cell of each panel.
fn panel_protocol(model: Model, validity: ValidityCondition) -> Option<&'static str> {
    use ValidityCondition as VC;
    Some(match (model.is_shared_memory(), validity) {
        (false, VC::RV1 | VC::WV1 | VC::SV1) => "FloodMin",
        (false, VC::RV2 | VC::WV2) => "Protocol A",
        (false, VC::SV2) => "Protocol B",
        (true, VC::RV2 | VC::WV2) => "Protocol E",
        (true, VC::SV2) => "Protocol F",
        // SM RV1/WV1/SV1 probing would need SIM runs; the MP probes
        // already cover those validities' frontiers.
        (true, _) => return None,
    })
}

/// Partition schedule used by the probes: `groups` isolated groups, each
/// allowed to hear the (crash-faulty are silent anyway) first `t` slots.
fn probe_rules_mp(n: usize, groups: usize) -> Vec<DelayRule> {
    (0..groups)
        .map(|g| {
            let members: Vec<usize> = (0..n).filter(|p| p % groups == g).collect();
            DelayRule::isolate_until_decided(members)
        })
        .collect()
}

fn probe_rules_sm(n: usize, active: usize) -> Vec<DelayRule> {
    let first: Vec<usize> = (0..active.min(n)).collect();
    (active.min(n)..n)
        .map(|p| DelayRule::freeze_process(p, Until::AllDecided(first.clone())).expires_at(5_000))
        .collect()
}

/// One probe run distilled for counting and recording.
struct ProbeRun {
    violated: bool,
    outcome: RunOutcome,
    stats: RunStats,
    metrics: Option<RunMetrics>,
}

/// Substrate-agnostic: MP runs pass their outcome straight through, SM
/// runs shed the register snapshot first via
/// [`kset_shmem::SmOutcome::into_run`].
fn probe_report(spec: &ProblemSpec, inputs: &[u64], outcome: Outcome<u64>) -> ProbeRun {
    let distinct_decisions = outcome.correct_decision_set().len();
    let decided = outcome.decisions.len();
    let record = RunRecord::new(inputs.to_vec())
        .with_decisions(outcome.decisions)
        .with_terminated(outcome.terminated);
    let report = spec.check(&record);
    let violation = (!report.is_ok()).then(|| report.to_string());
    ProbeRun {
        violated: violation.is_some(),
        outcome: RunOutcome {
            terminated: outcome.terminated,
            decided,
            distinct_decisions,
            violation,
        },
        stats: outcome.stats,
        metrics: outcome.metrics,
    }
}

/// Probes one cell with `seeds` runs. Returns `None` for solvable cells
/// (probe the frontier, not the interior) and for panels without a probe
/// protocol.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn probe_cell(
    model: Model,
    validity: ValidityCondition,
    n: usize,
    k: usize,
    t: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Option<BoundaryProbe>, SimError> {
    probe_cell_with(model, validity, n, k, t, seeds, MetricsConfig::disabled(), |_| {})
}

/// [`probe_cell`] with per-run observability: collects kernel metrics
/// according to `metrics` and hands every run to `on_record` as a
/// [`crate::record_sink::RunRecord`] (in seed order).
///
/// # Errors
///
/// See [`probe_cell`].
#[allow(clippy::too_many_arguments)]
pub fn probe_cell_with(
    model: Model,
    validity: ValidityCondition,
    n: usize,
    k: usize,
    t: usize,
    seeds: std::ops::Range<u64>,
    metrics: MetricsConfig,
    mut on_record: impl FnMut(crate::record_sink::RunRecord),
) -> Result<Option<BoundaryProbe>, SimError> {
    let class = match classify(model, validity, n, k, t) {
        CellClass::Solvable(_) => return Ok(None),
        CellClass::Impossible(_) => "impossible",
        CellClass::Open => "open",
    };
    let Some(protocol) = panel_protocol(model, validity) else {
        return Ok(None);
    };
    // Quorum-waiting protocols need t < n to be instantiable at all; the
    // t = n column is vacuous to probe (every process may be faulty).
    if t >= n && protocol != "Protocol E" {
        return Ok(None);
    }
    let spec = ProblemSpec::new(n, k, t, validity).expect("domain-checked");

    let mut runs = 0;
    let mut violations = 0;
    let mut first_violating_seed = None;
    for seed in seeds {
        // The Lemma 3.3 shape: a few groups, each internally unanimous, so
        // that an isolating schedule can push each group to its own value.
        let groups = ((k + 1) + (seed as usize % 2)).clamp(2, n);
        let inputs: Vec<u64> = (0..n).map(|p| (p % groups) as u64).collect();
        let run = match protocol {
            "FloodMin" => {
                let outcome = MpSystem::new(n)
                    .seed(seed)
                    .metrics(metrics)
                    .delay_rules(probe_rules_mp(n, groups))
                    .run_with(|p| FloodMin::boxed(n, t, inputs[p]))?;
                probe_report(&spec, &inputs, outcome)
            }
            "Protocol A" => {
                let outcome = MpSystem::new(n)
                    .seed(seed)
                    .metrics(metrics)
                    .delay_rules(probe_rules_mp(n, groups))
                    .run_with(|p| ProtocolA::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
                probe_report(&spec, &inputs, outcome)
            }
            "Protocol B" => {
                let outcome = MpSystem::new(n)
                    .seed(seed)
                    .metrics(metrics)
                    .delay_rules(probe_rules_mp(n, groups))
                    .run_with(|p| ProtocolB::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
                probe_report(&spec, &inputs, outcome)
            }
            "Protocol E" => {
                let outcome = SmSystem::new(n)
                    .seed(seed)
                    .metrics(metrics)
                    .delay_rules(probe_rules_sm(n, t.min(n - 1).max(1)))
                    .run_with(|p| ProtocolE::boxed(n, t.min(n), inputs[p], DEFAULT_VALUE))?;
                probe_report(&spec, &inputs, outcome.into_run())
            }
            "Protocol F" => {
                let outcome = SmSystem::new(n)
                    .seed(seed)
                    .metrics(metrics)
                    .delay_rules(probe_rules_sm(n, (t + 1).min(n)))
                    .run_with(|p| ProtocolF::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
                probe_report(&spec, &inputs, outcome.into_run())
            }
            other => unreachable!("no probe runner for {other}"),
        };
        runs += 1;
        if run.violated {
            violations += 1;
            if first_violating_seed.is_none() {
                first_violating_seed = Some(seed);
            }
        }
        on_record(crate::record_sink::RunRecord::new(
            model,
            validity,
            n,
            k,
            t,
            seed,
            protocol,
            run.outcome,
            run.stats,
            run.metrics,
        ));
    }
    Ok(Some(BoundaryProbe {
        model,
        validity,
        n,
        k,
        t,
        class,
        protocol,
        runs,
        violations,
        first_violating_seed,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvable_cells_are_not_probed() {
        let p = probe_cell(Model::MpCrash, ValidityCondition::RV1, 8, 4, 3, 0..2).unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn floodmin_breaks_just_past_t_equals_k() {
        // RV1 at t = k: the partition schedules find agreement violations.
        let p = probe_cell(Model::MpCrash, ValidityCondition::RV1, 8, 2, 4, 0..12)
            .unwrap()
            .expect("impossible cell");
        assert_eq!(p.class, "impossible");
        assert!(
            p.violations > 0,
            "expected FloodMin to break past its bound"
        );
        assert!(p.first_violating_seed.is_some());
    }

    #[test]
    fn protocol_a_breaks_past_lemma_3_3() {
        // n = 8, k = 2: impossible for kt > (k-1)n, i.e. t > 4.
        let p = probe_cell(Model::MpCrash, ValidityCondition::RV2, 8, 2, 6, 0..12)
            .unwrap()
            .expect("impossible cell");
        assert!(p.violations > 0, "{p:?}");
    }

    #[test]
    fn protocol_f_breaks_in_the_frozen_majority_regime() {
        // n = 8, t = 4 >= n/2, k = 3 <= t: Lemma 4.3 region.
        let p = probe_cell(Model::SmCrash, ValidityCondition::SV2, 8, 3, 4, 0..12)
            .unwrap()
            .expect("impossible cell");
        assert!(p.violations > 0, "{p:?}");
    }

    #[test]
    fn protocol_e_never_breaks_because_its_region_is_total() {
        // SM RV2 has no non-solvable cells in-domain; nothing to probe.
        for t in 1..=8 {
            let p = probe_cell(Model::SmCrash, ValidityCondition::RV2, 8, 2, t, 0..2).unwrap();
            assert!(p.is_none(), "t={t}");
        }
    }
}
