//! The shared visited-state store behind the checker's wave barrier —
//! abstract, with an in-memory fast path and a disk-backed campaign
//! implementation.
//!
//! [`drain_pattern`](crate::checker) folds every task's visited table
//! into one shared store at each wave barrier and lets later waves prune
//! against it. The checker only ever needs two operations — the
//! subset-rule query ([`CampaignStore::covers`]) and the wave-barrier
//! merge ([`CampaignStore::absorb`]) — so the store is a trait:
//!
//! * [`kset-experiments`' `Visited`](crate::checker::Visited) implements
//!   it directly. This is the pre-campaign behavior, bit for bit: the
//!   in-memory path pays no indirection (the drain is generic, not
//!   dynamic) and no persistence cost.
//! * [`DiskStore`] shards entries across hash-partitioned append-logs
//!   with a compacted open-addressing table per shard
//!   ([`super::shard`]), making the store durable and the campaign
//!   resumable.
//!
//! Both implementations maintain the same *minimal antichain* per
//! fingerprint (insertions drop stored supersets), and minimal-set
//! semantics are merge-order independent — so `covers` answers, and with
//! them every verdict and counter, are identical across stores. The
//! `campaign_resume` integration suite pins that equivalence.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checker::{SleepEntry, Visited};

use super::shard::Shard;

/// The shared visited-state store of one crash pattern's exploration.
///
/// Implementations must preserve minimal-antichain semantics: after any
/// sequence of [`CampaignStore::absorb`] calls, [`CampaignStore::covers`]
/// answers exactly as a [`Visited`] table fed the same sequence through
/// [`Visited::merge_from`] would. The checker's determinism contract
/// (byte-identical verdicts, counters and counterexamples for every
/// thread count *and every store*) rests on that equivalence.
pub trait CampaignStore {
    /// The subset-rule query: was `fingerprint` expanded under a sleep
    /// set contained in `sleep`?
    fn covers(&self, fingerprint: u64, sleep: &[SleepEntry]) -> bool;

    /// Folds one task's visited table in at the wave barrier. Entries
    /// already covered are skipped; new entries drop their stored
    /// supersets, keeping each fingerprint's antichain minimal. Takes the
    /// table by value — it is dead after the barrier, so the in-memory
    /// store can steal its allocations ([`Visited::merge_move`]).
    fn absorb(&mut self, tasks: Visited);

    /// Minimal entries currently stored (occupancy, for reporting).
    fn entries(&self) -> u64;
}

impl CampaignStore for Visited {
    fn covers(&self, fingerprint: u64, sleep: &[SleepEntry]) -> bool {
        Visited::covers(self, fingerprint, sleep)
    }

    fn absorb(&mut self, tasks: Visited) {
        self.merge_move(tasks);
    }

    fn entries(&self) -> u64 {
        self.iter().map(|(_, bucket)| bucket.count() as u64).sum()
    }
}

/// FNV-1a over `bytes` — the checksum/config-digest hash of the campaign
/// file formats. Deliberately byte-wise and dependency-free; these are
/// integrity checks, not dedup keys, so the avalanche quality debate of
/// `PERFORMANCE.md` does not apply.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a little-endian `u64` to a byte buffer (the wire helper every
/// campaign file format shares).
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads the little-endian `u64` at `*at`, advancing it; `None` past the
/// end (truncation shows up as a decode error, never a panic).
pub(crate) fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let chunk = bytes.get(*at..end)?;
    *at = end;
    Some(u64::from_le_bytes(chunk.try_into().expect("8-byte slice")))
}

/// Occupancy summary of a [`DiskStore`], for manifests and progress
/// output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreOccupancy {
    /// Minimal entries live across all shard tables.
    pub entries: u64,
    /// Durable log bytes across all shards (excludes unflushed appends).
    pub log_bytes: u64,
    /// Log records across all shards, including superseded ones
    /// compaction would drop.
    pub log_records: u64,
}

/// The disk-backed campaign store: `shards` hash-partitioned
/// [`Shard`]s, each an append-log file plus an in-memory compacted
/// open-addressing table over the already-avalanched 64-bit fingerprints
/// (identity hashing carries over from the checker's visited table —
/// see `PERFORMANCE.md`).
///
/// Durability protocol (see `CAMPAIGNS.md` for the full story):
///
/// * [`CampaignStore::absorb`] updates the in-memory tables and buffers
///   serialized records; nothing touches disk between checkpoints.
/// * [`DiskStore::flush`] appends the buffers to the current
///   **generation** of log files and returns the `(generation,
///   watermarks)` a snapshot must record. Compaction and the per-pattern
///   reset write a *new* generation instead of mutating the old one, so
///   a crash at any byte leaves the previously-snapshotted generation
///   intact.
/// * [`DiskStore::open`] truncates each log to its snapshotted watermark
///   (discarding post-snapshot appends) and deletes stray generations.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    generation: u64,
    shards: Vec<Shard>,
}

impl DiskStore {
    /// Creates a fresh store of `shards` shards (generation 0, empty
    /// logs) under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects a zero shard count.
    pub fn create(dir: &Path, shards: usize) -> io::Result<Self> {
        if shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a campaign needs at least one shard",
            ));
        }
        fs::create_dir_all(dir)?;
        let store = DiskStore {
            dir: dir.to_path_buf(),
            generation: 0,
            shards: (0..shards).map(|_| Shard::new()).collect(),
        };
        for index in 0..shards {
            fs::write(store.log_path(index, 0), [])?;
        }
        Ok(store)
    }

    /// Opens the store a snapshot describes: truncates each
    /// `generation`-generation log to its watermark, loads the surviving
    /// records into the shard tables, and deletes logs of any other
    /// generation (leftovers of a crash between a generation switch and
    /// its snapshot, or between a snapshot and its cleanup).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails with [`io::ErrorKind::InvalidData`]
    /// if a log is shorter than its watermark or ends in a torn record
    /// below it (the snapshot then describes data that does not exist).
    pub fn open(dir: &Path, generation: u64, watermarks: &[u64]) -> io::Result<Self> {
        let mut store = DiskStore {
            dir: dir.to_path_buf(),
            generation,
            shards: (0..watermarks.len()).map(|_| Shard::new()).collect(),
        };
        for (index, &watermark) in watermarks.iter().enumerate() {
            let path = store.log_path(index, generation);
            let bytes = fs::read(&path).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("shard log {} unreadable: {e}", path.display()),
                )
            })?;
            if (bytes.len() as u64) < watermark {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard log {} is {} bytes, below its snapshot watermark {}",
                        path.display(),
                        bytes.len(),
                        watermark
                    ),
                ));
            }
            if (bytes.len() as u64) > watermark {
                // Appends that post-date the snapshot: discard them so the
                // resumed exploration re-derives them deterministically.
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(watermark)?;
            }
            store.shards[index].load(&bytes[..watermark as usize], &path)?;
        }
        store.delete_other_generations()?;
        Ok(store)
    }

    /// Appends every shard's buffered records to the current generation's
    /// logs — compacting into a fresh generation instead when a log has
    /// grown well past its live contents — and returns the
    /// `(generation, watermarks)` pair the caller's snapshot must record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&mut self) -> io::Result<(u64, Vec<u64>)> {
        if self.shards.iter().any(Shard::wants_compaction) {
            self.rewrite_generation()?;
        } else {
            for index in 0..self.shards.len() {
                let path = self.log_path(index, self.generation);
                self.shards[index].flush_to(&path)?;
            }
        }
        Ok((
            self.generation,
            self.shards.iter().map(Shard::log_bytes).collect(),
        ))
    }

    /// Compacts every shard: rewrites the logs as a fresh generation
    /// containing only the live minimal entries. Returns the new
    /// `(generation, watermarks)`; the caller must write a snapshot
    /// recording them before [`DiskStore::cleanup`] may delete the old
    /// generation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn compact(&mut self) -> io::Result<(u64, Vec<u64>)> {
        self.rewrite_generation()?;
        Ok((
            self.generation,
            self.shards.iter().map(Shard::log_bytes).collect(),
        ))
    }

    /// Clears the store for the next crash pattern: empties every shard
    /// table and starts a fresh (empty) log generation. The old
    /// generation stays on disk until [`DiskStore::cleanup`] runs after
    /// the pattern-boundary snapshot is durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn reset(&mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.rewrite_generation()
    }

    /// Deletes log files of every generation other than the current one.
    /// Call only after a snapshot recording the current generation has
    /// been durably renamed into place.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn cleanup(&self) -> io::Result<()> {
        self.delete_other_generations()
    }

    /// Occupancy counters for manifests and progress reporting.
    pub fn occupancy(&self) -> StoreOccupancy {
        StoreOccupancy {
            entries: self.shards.iter().map(Shard::live_entries).sum(),
            log_bytes: self.shards.iter().map(Shard::log_bytes).sum(),
            log_records: self.shards.iter().map(Shard::log_records).sum(),
        }
    }

    /// Number of shards (fixed at campaign creation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint lives in. Uses high bits so the partition
    /// is independent of the low bits the open-addressing probe consumes;
    /// fingerprints are already avalanched, so any disjoint bit range is
    /// uniform.
    fn shard_of(&self, fingerprint: u64) -> usize {
        ((fingerprint >> 32) % self.shards.len() as u64) as usize
    }

    fn log_path(&self, index: usize, generation: u64) -> PathBuf {
        self.dir
            .join(format!("shard-{index:03}.gen-{generation}.log"))
    }

    /// Writes every shard's live entries as generation `current + 1`
    /// (write-temp-then-rename per shard), then switches to it. Buffers
    /// are implicitly flushed: live tables already contain them.
    fn rewrite_generation(&mut self) -> io::Result<()> {
        let next = self.generation + 1;
        for index in 0..self.shards.len() {
            let path = self.log_path(index, next);
            self.shards[index].rewrite_to(&path)?;
        }
        self.generation = next;
        Ok(())
    }

    fn delete_other_generations(&self) -> io::Result<()> {
        let keep: Vec<PathBuf> = (0..self.shards.len())
            .map(|i| self.log_path(i, self.generation))
            .collect();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("shard-") && name.ends_with(".log") {
                let path = entry.path();
                if !keep.contains(&path) {
                    fs::remove_file(&path)?;
                }
            }
        }
        Ok(())
    }
}

impl CampaignStore for DiskStore {
    fn covers(&self, fingerprint: u64, sleep: &[SleepEntry]) -> bool {
        self.shards[self.shard_of(fingerprint)].covers(fingerprint, sleep)
    }

    fn absorb(&mut self, tasks: Visited) {
        for (fingerprint, bucket) in tasks.iter() {
            let shard = self.shard_of(fingerprint);
            for sleep in bucket {
                self.shards[shard].absorb(fingerprint, sleep);
            }
        }
    }

    fn entries(&self) -> u64 {
        self.occupancy().entries
    }
}
