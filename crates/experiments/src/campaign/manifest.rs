//! The campaign manifest: a human-readable, versioned summary of what a
//! campaign is checking and how far it has come.
//!
//! The manifest is the campaign's audit surface (`OBSERVABILITY.md`
//! documents the schema): the cell and bounds it was created with, the
//! shard layout, the lifecycle status, and cumulative counters (runs,
//! states, dedup hits, checkpoints, resume lineage). It is rewritten
//! atomically at every checkpoint, and CI uploads it as an artifact next
//! to the bench JSONs.
//!
//! Unlike the snapshot, the manifest is *advisory*: resuming validates
//! only its [`config digest`](config_digest) and status, and every
//! counter in it is recomputed from the authoritative snapshot on resume.
//! The format is line-based `key: value` text in the same family as the
//! counterexample scripts — diffable, greppable, committable.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use std::collections::HashMap;

use crate::checker::{
    parse_adversary_model, parse_protocol, parse_validity, AdversaryModel, CheckerConfig,
};
use crate::exhaustive::QuorumProtocol;
use kset_core::ValidityCondition;

use super::store::fnv1a;

/// File name of the manifest inside a campaign directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Current manifest schema version (the `# kset campaign manifest vN`
/// header line). Bump on any field change; readers reject other versions.
pub const MANIFEST_VERSION: u64 = 1;

/// Lifecycle status of a campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CampaignStatus {
    /// Created or resumed, not yet finished; `--resume` continues it.
    Running,
    /// Finished with no violation in any crash pattern.
    Holds,
    /// Finished at a violation; the counterexample is in the snapshot and
    /// (if requested) the emitted script.
    Violated,
}

impl fmt::Display for CampaignStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CampaignStatus::Running => "running",
            CampaignStatus::Holds => "holds",
            CampaignStatus::Violated => "violated",
        })
    }
}

impl CampaignStatus {
    fn parse(s: &str) -> Option<Self> {
        Some(match s.trim() {
            "running" => CampaignStatus::Running,
            "holds" => CampaignStatus::Holds,
            "violated" => CampaignStatus::Violated,
            _ => return None,
        })
    }
}

/// The manifest contents (see the module docs and `OBSERVABILITY.md` for
/// field-by-field semantics).
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Protocol under test.
    pub protocol: QuorumProtocol,
    /// System size.
    pub n: usize,
    /// Agreement bound.
    pub k: usize,
    /// Fault budget.
    pub t: usize,
    /// Validity condition.
    pub validity: ValidityCondition,
    /// Whether symmetry reduction (canonical digests) is on.
    pub symmetry: bool,
    /// Depth bound (`usize::MAX` = unbounded).
    pub depth: usize,
    /// Preemption bound (`None` = unbounded).
    pub preemptions: Option<usize>,
    /// Per-pattern run budget.
    pub max_runs: u64,
    /// Per-task memoization budget.
    pub max_states: usize,
    /// Partial-order reduction switch.
    pub por: bool,
    /// State-digest deduplication switch.
    pub dedup: bool,
    /// Shard count of the visited store, fixed at creation.
    pub shards: usize,
    /// Adversary model of the cell.
    pub adversary: AdversaryModel,
    /// Byzantine forged-value menu (empty for crash/lossy adversaries).
    pub byz_menu: Vec<u64>,
    /// Whether selective silence is in the Byzantine behaviour space.
    pub byz_silence: bool,
    /// Per-run drop budget of the lossy adversary.
    pub loss_budget: u64,
    /// Input override (`None` = canonical inputs).
    pub inputs: Option<Vec<u64>>,
    /// FNV-1a digest of the exploration-relevant configuration
    /// ([`config_digest`]); resume refuses a mismatch.
    pub config_digest: u64,
    /// Lifecycle status.
    pub status: CampaignStatus,
    /// Times this campaign has been resumed (lineage).
    pub resumes: u64,
    /// Checkpoints written over the campaign's whole life.
    pub checkpoints: u64,
    /// Cumulative schedules executed (done patterns + in-progress).
    pub runs: u64,
    /// Cumulative sleep-set entries cached across all task tables.
    pub states: u64,
    /// Cumulative dedup hits.
    pub dedup_hits: u64,
    /// Cumulative sleep-set skips.
    pub sleep_skips: u64,
    /// Crash patterns fully explored so far.
    pub patterns_done: u64,
    /// Live minimal entries in the visited store at the last checkpoint
    /// (the in-progress pattern's table; zero at pattern boundaries).
    pub store_entries: u64,
    /// Durable shard-log bytes at the last checkpoint.
    pub store_log_bytes: u64,
}

/// Digest of every configuration field that can change verdicts,
/// counters, or counterexample bytes: the cell coordinates, the digest
/// mode, and all exploration bounds and reduction switches.
///
/// Deliberately **excluded**: `threads` (the determinism contract already
/// covers every thread count), `fork` (execution strategy, not search
/// state — fork, replay and auto produce byte-identical verdicts,
/// counters and counterexamples, pinned by `tests/fork_parity.rs`),
/// `progress` (stderr only), and the checkpoint cadence (checkpoints
/// observe, never steer — see `CAMPAIGNS.md`). A campaign may therefore
/// be resumed with a different `--threads`, `--fork-mode`, `--progress`,
/// or `--checkpoint-every` and still produce bit-identical results.
pub fn config_digest(cfg: &CheckerConfig) -> u64 {
    let mut text = format!(
        "protocol={};n={};k={};t={};validity={};symmetry={};depth={};preemptions={};max_runs={};max_states={};por={};dedup={}",
        cfg.protocol.name(),
        cfg.n,
        cfg.k,
        cfg.t,
        cfg.validity,
        cfg.symmetry,
        cfg.depth,
        cfg.preemptions.map_or(-1i64, |p| p as i64),
        cfg.max_runs,
        cfg.max_states,
        cfg.por,
        cfg.dedup,
    );
    // The adversary space widens the digest *append-only and only when it
    // differs from the substrate-default crash adversary*: a crash-model
    // campaign's digest string — and with it every checkpoint recorded
    // before adversary models existed — is bit-for-bit unchanged.
    if adversary_is_non_default(cfg) {
        text.push_str(&format!(
            ";model={};byz_menu={:?};byz_silence={};loss_budget={}",
            cfg.adversary, cfg.byz_menu, cfg.byz_silence, cfg.loss_budget,
        ));
    }
    if let Some(inputs) = &cfg.inputs {
        text.push_str(&format!(";inputs={inputs:?}"));
    }
    fnv1a(text.as_bytes())
}

/// Whether `cfg`'s adversary differs from the protocol substrate's
/// default crash adversary (the pre-adversary-model behaviour).
fn adversary_is_non_default(cfg: &CheckerConfig) -> bool {
    cfg.adversary
        != if cfg.protocol.shared_memory() {
            AdversaryModel::SmCrash
        } else {
            AdversaryModel::MpCrash
        }
}

impl Manifest {
    /// A fresh manifest for a campaign just created from `cfg` with
    /// `shards` shards: status running, all counters zero.
    pub fn new(cfg: &CheckerConfig, shards: usize) -> Self {
        Manifest {
            protocol: cfg.protocol,
            n: cfg.n,
            k: cfg.k,
            t: cfg.t,
            validity: cfg.validity,
            symmetry: cfg.symmetry,
            depth: cfg.depth,
            preemptions: cfg.preemptions,
            max_runs: cfg.max_runs,
            max_states: cfg.max_states,
            por: cfg.por,
            dedup: cfg.dedup,
            shards,
            adversary: cfg.adversary,
            byz_menu: cfg.byz_menu.clone(),
            byz_silence: cfg.byz_silence,
            loss_budget: cfg.loss_budget,
            inputs: cfg.inputs.clone(),
            config_digest: config_digest(cfg),
            status: CampaignStatus::Running,
            resumes: 0,
            checkpoints: 0,
            runs: 0,
            states: 0,
            dedup_hits: 0,
            sleep_skips: 0,
            patterns_done: 0,
            store_entries: 0,
            store_log_bytes: 0,
        }
    }
}

impl Manifest {
    /// Reconstructs the checker configuration the campaign was created
    /// with (exploration-relevant fields only; `threads`/`progress` take
    /// their defaults — the caller sets them freely, they are outside the
    /// determinism contract's inputs). `model_check --resume` uses this
    /// so a resume does not have to restate the cell and bounds.
    pub fn checker_config(&self) -> CheckerConfig {
        let mut cfg = CheckerConfig::new(self.protocol, self.n, self.k, self.t, self.validity);
        cfg.symmetry = self.symmetry;
        cfg.depth = self.depth;
        cfg.preemptions = self.preemptions;
        cfg.max_runs = self.max_runs;
        cfg.max_states = self.max_states;
        cfg.por = self.por;
        cfg.dedup = self.dedup;
        cfg.adversary = self.adversary;
        cfg.byz_menu = self.byz_menu.clone();
        cfg.byz_silence = self.byz_silence;
        cfg.loss_budget = self.loss_budget;
        cfg.inputs = self.inputs.clone();
        cfg
    }
}

/// `path` of the manifest inside campaign directory `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Writes `manifest` as `dir/MANIFEST` (write-temp-then-rename, so a
/// crash mid-checkpoint never leaves a half-written manifest).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> io::Result<()> {
    let mut out = Vec::new();
    writeln!(out, "# kset campaign manifest v{MANIFEST_VERSION}")?;
    writeln!(out, "protocol: {}", manifest.protocol.name())?;
    writeln!(out, "n: {}", manifest.n)?;
    writeln!(out, "k: {}", manifest.k)?;
    writeln!(out, "t: {}", manifest.t)?;
    writeln!(out, "validity: {}", manifest.validity)?;
    writeln!(out, "symmetry: {}", manifest.symmetry)?;
    if manifest.depth == usize::MAX {
        writeln!(out, "depth: unbounded")?;
    } else {
        writeln!(out, "depth: {}", manifest.depth)?;
    }
    match manifest.preemptions {
        None => writeln!(out, "preemptions: unbounded")?,
        Some(p) => writeln!(out, "preemptions: {p}")?,
    }
    writeln!(out, "max_runs: {}", manifest.max_runs)?;
    writeln!(out, "max_states: {}", manifest.max_states)?;
    writeln!(out, "por: {}", manifest.por)?;
    writeln!(out, "dedup: {}", manifest.dedup)?;
    writeln!(out, "shards: {}", manifest.shards)?;
    // Adversary-space fields are written only when they deviate from the
    // crash-model defaults, so crash-campaign manifests keep the exact
    // field set (and bytes) earlier builds wrote; readers default the
    // absent keys. The manifest version therefore stays at v1.
    let default_crash = matches!(
        manifest.adversary,
        AdversaryModel::MpCrash | AdversaryModel::SmCrash
    );
    if !default_crash {
        writeln!(out, "model: {}", manifest.adversary)?;
    }
    if !manifest.byz_menu.is_empty() {
        writeln!(
            out,
            "byz_menu:{}",
            manifest
                .byz_menu
                .iter()
                .map(|v| format!(" {v}"))
                .collect::<String>()
        )?;
    }
    if manifest.byz_silence {
        writeln!(out, "byz_silence: true")?;
    }
    if manifest.loss_budget != 0 {
        writeln!(out, "loss_budget: {}", manifest.loss_budget)?;
    }
    if let Some(inputs) = &manifest.inputs {
        writeln!(
            out,
            "inputs:{}",
            inputs.iter().map(|v| format!(" {v}")).collect::<String>()
        )?;
    }
    writeln!(out, "config_digest: {:016x}", manifest.config_digest)?;
    writeln!(out, "status: {}", manifest.status)?;
    writeln!(out, "resumes: {}", manifest.resumes)?;
    writeln!(out, "checkpoints: {}", manifest.checkpoints)?;
    writeln!(out, "runs: {}", manifest.runs)?;
    writeln!(out, "states: {}", manifest.states)?;
    writeln!(out, "dedup_hits: {}", manifest.dedup_hits)?;
    writeln!(out, "sleep_skips: {}", manifest.sleep_skips)?;
    writeln!(out, "patterns_done: {}", manifest.patterns_done)?;
    writeln!(out, "store_entries: {}", manifest.store_entries)?;
    writeln!(out, "store_log_bytes: {}", manifest.store_log_bytes)?;
    let tmp = dir.join("MANIFEST.tmp");
    fs::write(&tmp, &out)?;
    fs::rename(&tmp, manifest_path(dir))
}

/// Reads `dir/MANIFEST`.
///
/// # Errors
///
/// [`io::ErrorKind::NotFound`] when no manifest exists (not a campaign
/// directory); [`io::ErrorKind::InvalidData`] on an unsupported version
/// or malformed fields.
pub fn read_manifest(dir: &Path) -> io::Result<Manifest> {
    let path = manifest_path(dir);
    let text = fs::read_to_string(&path)?;
    let bad = |msg: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("manifest {}: {msg}", path.display()),
        )
    };
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let version: u64 = header
        .strip_prefix("# kset campaign manifest v")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| bad(format!("bad header line {header:?}")))?;
    if version != MANIFEST_VERSION {
        return Err(bad(format!(
            "unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"
        )));
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for line in lines {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed line {line:?}")))?;
        fields.insert(key.trim(), value.trim());
    }
    let field = |key: &str| {
        fields
            .get(key)
            .copied()
            .ok_or_else(|| bad(format!("missing field '{key}'")))
    };
    let num = |key: &str| -> io::Result<u64> {
        field(key)?
            .parse()
            .map_err(|e| bad(format!("bad {key}: {e}")))
    };
    let flag = |key: &str| -> io::Result<bool> {
        match field(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(bad(format!("bad {key}: {other:?}"))),
        }
    };
    let protocol = parse_protocol(field("protocol")?)
        .ok_or_else(|| bad(format!("unknown protocol {:?}", fields["protocol"])))?;
    let validity = parse_validity(field("validity")?)
        .ok_or_else(|| bad(format!("unknown validity {:?}", fields["validity"])))?;
    let depth = match field("depth")? {
        "unbounded" => usize::MAX,
        other => other
            .parse()
            .map_err(|e| bad(format!("bad depth: {e}")))?,
    };
    let preemptions = match field("preemptions")? {
        "unbounded" => None,
        other => Some(
            other
                .parse()
                .map_err(|e| bad(format!("bad preemptions: {e}")))?,
        ),
    };
    let config_digest = u64::from_str_radix(field("config_digest")?, 16)
        .map_err(|e| bad(format!("bad config_digest: {e}")))?;
    let status = CampaignStatus::parse(field("status")?)
        .ok_or_else(|| bad(format!("unknown status {:?}", fields["status"])))?;
    // Optional adversary-space fields (absent in crash-model manifests).
    let adversary = match fields.get("model") {
        None => {
            if protocol.shared_memory() {
                AdversaryModel::SmCrash
            } else {
                AdversaryModel::MpCrash
            }
        }
        Some(value) => parse_adversary_model(value)
            .ok_or_else(|| bad(format!("unknown adversary model {value:?}")))?,
    };
    let byz_menu = match fields.get("byz_menu") {
        None => Vec::new(),
        Some(value) => value
            .split_whitespace()
            .map(|w| w.parse().map_err(|e| bad(format!("bad byz_menu: {e}"))))
            .collect::<io::Result<Vec<u64>>>()?,
    };
    let byz_silence = match fields.get("byz_silence") {
        None => false,
        Some(value) => value
            .parse()
            .map_err(|e| bad(format!("bad byz_silence: {e}")))?,
    };
    let loss_budget = match fields.get("loss_budget") {
        None => 0,
        Some(value) => value
            .parse()
            .map_err(|e| bad(format!("bad loss_budget: {e}")))?,
    };
    let inputs = match fields.get("inputs") {
        None => None,
        Some(value) => Some(
            value
                .split_whitespace()
                .map(|w| w.parse().map_err(|e| bad(format!("bad inputs: {e}"))))
                .collect::<io::Result<Vec<u64>>>()?,
        ),
    };
    Ok(Manifest {
        protocol,
        n: num("n")? as usize,
        k: num("k")? as usize,
        t: num("t")? as usize,
        validity,
        symmetry: flag("symmetry")?,
        depth,
        preemptions,
        max_runs: num("max_runs")?,
        max_states: num("max_states")? as usize,
        por: flag("por")?,
        dedup: flag("dedup")?,
        shards: num("shards")? as usize,
        adversary,
        byz_menu,
        byz_silence,
        loss_budget,
        inputs,
        config_digest,
        status,
        resumes: num("resumes")?,
        checkpoints: num("checkpoints")?,
        runs: num("runs")?,
        states: num("states")?,
        dedup_hits: num("dedup_hits")?,
        sleep_skips: num("sleep_skips")?,
        patterns_done: num("patterns_done")?,
        store_entries: num("store_entries")?,
        store_log_bytes: num("store_log_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> CheckerConfig {
        let mut cfg = CheckerConfig::new(
            QuorumProtocol::FloodMin,
            4,
            2,
            1,
            ValidityCondition::RV1,
        );
        cfg.preemptions = Some(3);
        cfg.max_runs = 123_456;
        cfg
    }

    #[test]
    fn manifest_round_trips() {
        let dir = std::env::temp_dir().join(format!("kset_manifest_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let cfg = sample_config();
        let mut manifest = Manifest::new(&cfg, 8);
        manifest.status = CampaignStatus::Running;
        manifest.resumes = 2;
        manifest.checkpoints = 7;
        manifest.runs = 1_000_000;
        manifest.store_entries = 42;
        write_manifest(&dir, &manifest).unwrap();
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back.protocol, manifest.protocol);
        assert_eq!(back.n, manifest.n);
        assert_eq!(back.validity, manifest.validity);
        assert_eq!(back.depth, usize::MAX);
        assert_eq!(back.preemptions, Some(3));
        assert_eq!(back.max_runs, 123_456);
        assert_eq!(back.shards, 8);
        assert_eq!(back.config_digest, manifest.config_digest);
        assert_eq!(back.status, CampaignStatus::Running);
        assert_eq!(back.resumes, 2);
        assert_eq!(back.checkpoints, 7);
        assert_eq!(back.runs, 1_000_000);
        assert_eq!(back.store_entries, 42);
        // The reconstructed configuration digests back to the original —
        // the property `--resume` without restated flags relies on.
        assert_eq!(config_digest(&back.checker_config()), manifest.config_digest);
        assert!(!dir.join("MANIFEST.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_digest_tracks_exploration_relevant_fields_only() {
        let base = sample_config();
        let d0 = config_digest(&base);

        // threads and progress are contract-covered; cadence isn't even a
        // checker field. Digest must not move.
        let mut threads = base.clone();
        threads.threads = 1 + base.threads;
        threads.progress = Some(1000);
        assert_eq!(config_digest(&threads), d0);

        // Every exploration-relevant knob must move it.
        let mut other = base.clone();
        other.k = 3;
        assert_ne!(config_digest(&other), d0);
        let mut other = base.clone();
        other.max_runs += 1;
        assert_ne!(config_digest(&other), d0);
        let mut other = base.clone();
        other.symmetry = true;
        assert_ne!(config_digest(&other), d0);
        let mut other = base.clone();
        other.preemptions = None;
        assert_ne!(config_digest(&other), d0);
        let mut other = base.clone();
        other.protocol = QuorumProtocol::ProtocolA;
        assert_ne!(config_digest(&other), d0);
    }

    #[test]
    fn byzantine_manifest_round_trips_and_widens_the_digest() {
        let mut cfg = CheckerConfig::new(
            QuorumProtocol::FloodMin,
            3,
            2,
            1,
            ValidityCondition::RV1,
        );
        let crash_digest = config_digest(&cfg);
        cfg.adversary = AdversaryModel::MpByz;
        cfg.byz_menu = vec![0];
        cfg.byz_silence = true;
        cfg.inputs = Some(vec![1, 1, 1]);
        // The adversary space is exploration-relevant: the digest moves.
        assert_ne!(config_digest(&cfg), crash_digest);
        let mut menu = cfg.clone();
        menu.byz_menu = vec![0, 2];
        assert_ne!(config_digest(&menu), config_digest(&cfg));

        let dir = std::env::temp_dir()
            .join(format!("kset_manifest_byz_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest::new(&cfg, 4);
        write_manifest(&dir, &manifest).unwrap();
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back.adversary, AdversaryModel::MpByz);
        assert_eq!(back.byz_menu, vec![0]);
        assert!(back.byz_silence);
        assert_eq!(back.inputs, Some(vec![1, 1, 1]));
        // `--resume` reconstruction carries the adversary space.
        assert_eq!(config_digest(&back.checker_config()), manifest.config_digest);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_refused() {
        let dir =
            std::env::temp_dir().join(format!("kset_manifest_skew_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        write_manifest(&dir, &Manifest::new(&sample_config(), 4)).unwrap();
        let path = manifest_path(&dir);
        let text = fs::read_to_string(&path).unwrap();
        let skewed = text.replace(
            &format!("manifest v{MANIFEST_VERSION}"),
            &format!("manifest v{}", MANIFEST_VERSION + 1),
        );
        fs::write(&path, skewed).unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
