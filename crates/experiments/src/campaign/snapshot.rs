//! Atomic campaign checkpoints: the snapshot file format.
//!
//! A snapshot captures a campaign at a wave boundary — the only moment
//! the exploration state is both quiescent and a pure function of the
//! initial task queue (see [`crate::engine::parallel_drain_watched`]):
//! the verdicts of every finished crash pattern, the partial verdict and
//! outstanding task queue of the in-progress pattern, and the visited
//! store's `(generation, watermarks)` coordinates. Restoring all three
//! resumes the campaign bit-identically.
//!
//! The format is little-endian `u64` records behind a magic/version
//! header carrying the campaign's config digest, with a trailing FNV-1a
//! checksum over everything before it. Durability is write-temp-then-
//! rename: a crash mid-write leaves at worst a stale `.tmp` next to the
//! previous intact snapshot, never a half-written `snapshot.bin`; a torn
//! or bit-flipped file fails the checksum and reads as
//! [`std::io::ErrorKind::InvalidData`] instead of resuming from garbage.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use kset_sim::{Deviation, EventId};

use crate::checker::{Counterexample, PatternState, PatternVerdict, SleepEntry, WorkItem};

use super::store::{fnv1a, put_u64, take_u64};

/// First 8 bytes of every snapshot file.
const MAGIC: &[u8; 8] = b"KSETCKPT";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions rather than guessing. v2 added the Byzantine
/// slot list and per-fired-event deviations to serialized
/// counterexamples (the adversary-model work).
pub(crate) const SNAPSHOT_VERSION: u64 = 2;

/// File name of the current snapshot inside a campaign directory.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The resumable state of a campaign at one wave boundary.
#[derive(Debug)]
pub(crate) struct Snapshot {
    /// Digest of the exploration-relevant checker configuration
    /// ([`super::manifest::config_digest`]); a resume under a different
    /// configuration is refused.
    pub(crate) config_digest: u64,
    /// Log generation of the visited store this snapshot describes.
    pub(crate) generation: u64,
    /// Durable byte count of each shard's current-generation log. The
    /// vector length is the campaign's shard count.
    pub(crate) watermarks: Vec<u64>,
    /// Verdicts of the fault patterns finished so far, in
    /// [`crate::checker::CheckerConfig::fault_plans`] order.
    pub(crate) patterns_done: Vec<PatternVerdict>,
    /// The in-progress pattern's accumulated verdict and outstanding task
    /// queue; `None` at a pattern boundary (the next pattern re-seeds).
    pub(crate) in_progress: Option<PatternState>,
}

/// `path` of the snapshot inside campaign directory `dir`.
pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Serializes and durably writes `snapshot` as `dir/snapshot.bin`
/// (write-temp-then-rename, checksummed).
///
/// # Errors
///
/// Propagates I/O errors.
pub(crate) fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> io::Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, snapshot.config_digest);
    put_u64(&mut out, snapshot.generation);
    put_u64(&mut out, snapshot.watermarks.len() as u64);
    for &w in &snapshot.watermarks {
        put_u64(&mut out, w);
    }
    put_u64(&mut out, snapshot.patterns_done.len() as u64);
    for verdict in &snapshot.patterns_done {
        encode_verdict(&mut out, verdict);
    }
    match &snapshot.in_progress {
        None => put_u64(&mut out, 0),
        Some(state) => {
            put_u64(&mut out, 1);
            encode_verdict(&mut out, &state.verdict);
            put_u64(&mut out, state.queue.len() as u64);
            for stack in &state.queue {
                put_u64(&mut out, stack.len() as u64);
                for item in stack {
                    encode_work_item(&mut out, item);
                }
            }
        }
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);

    let path = snapshot_path(dir);
    let tmp = dir.join("snapshot.bin.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, &path)
}

/// Reads and validates `dir/snapshot.bin`.
///
/// # Errors
///
/// [`io::ErrorKind::NotFound`] when no snapshot exists (nothing to
/// resume); [`io::ErrorKind::InvalidData`] on a bad magic, an unsupported
/// version, a checksum mismatch (truncation or corruption), or a decode
/// overrun.
pub(crate) fn read_snapshot(dir: &Path) -> io::Result<Snapshot> {
    let path = snapshot_path(dir);
    let bytes = fs::read(&path)?;
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot {}: {msg}", path.display()),
        )
    };
    if bytes.len() < MAGIC.len() + 16 {
        return Err(bad("file too short for header and checksum"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(bad("bad magic (not a campaign snapshot)"));
    }
    let body = &bytes[..bytes.len() - 8];
    let mut tail = bytes.len() - 8;
    let stored = take_u64(&bytes, &mut tail).expect("8 trailing bytes");
    if fnv1a(body) != stored {
        return Err(bad("checksum mismatch (truncated or corrupt)"));
    }
    let mut at = MAGIC.len();
    let next = |at: &mut usize| take_u64(body, at).ok_or_else(|| bad("decode ran past checksum"));
    let version = next(&mut at)?;
    if version != SNAPSHOT_VERSION {
        return Err(bad(&format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let config_digest = next(&mut at)?;
    let generation = next(&mut at)?;
    let shard_count = next(&mut at)? as usize;
    let mut watermarks = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        watermarks.push(next(&mut at)?);
    }
    let done = next(&mut at)? as usize;
    let mut patterns_done = Vec::with_capacity(done);
    for _ in 0..done {
        patterns_done.push(decode_verdict(body, &mut at).ok_or_else(|| bad("bad verdict"))?);
    }
    let in_progress = match next(&mut at)? {
        0 => None,
        1 => {
            let verdict =
                decode_verdict(body, &mut at).ok_or_else(|| bad("bad partial verdict"))?;
            let stacks = next(&mut at)? as usize;
            let mut queue = Vec::with_capacity(stacks);
            for _ in 0..stacks {
                let len = next(&mut at)? as usize;
                let mut stack = Vec::with_capacity(len);
                for _ in 0..len {
                    stack.push(
                        decode_work_item(body, &mut at).ok_or_else(|| bad("bad work item"))?,
                    );
                }
                queue.push(stack);
            }
            Some(PatternState { verdict, queue })
        }
        other => return Err(bad(&format!("bad in-progress flag {other}"))),
    };
    if at != body.len() {
        return Err(bad("trailing bytes after the decoded snapshot"));
    }
    Ok(Snapshot {
        config_digest,
        generation,
        watermarks,
        patterns_done,
        in_progress,
    })
}

fn put_usize_list(out: &mut Vec<u8>, list: &[usize]) {
    put_u64(out, list.len() as u64);
    for &v in list {
        put_u64(out, v as u64);
    }
}

fn take_usize_list(bytes: &[u8], at: &mut usize) -> Option<Vec<usize>> {
    let len = take_u64(bytes, at)? as usize;
    let mut list = Vec::with_capacity(len);
    for _ in 0..len {
        list.push(take_u64(bytes, at)? as usize);
    }
    Some(list)
}

fn encode_verdict(out: &mut Vec<u8>, verdict: &PatternVerdict) {
    put_usize_list(out, &verdict.crashed);
    put_u64(out, verdict.runs);
    put_u64(out, verdict.states as u64);
    put_u64(out, verdict.sleep_skips);
    put_u64(out, verdict.dedup_hits);
    put_u64(out, u64::from(verdict.complete));
    put_u64(out, verdict.worst_agreement as u64);
    put_u64(out, verdict.tasks);
    match &verdict.violation {
        None => put_u64(out, 0),
        Some(ce) => {
            put_u64(out, 1);
            put_usize_list(out, &ce.crashed);
            put_usize_list(out, &ce.byzantine);
            put_usize_list(out, &ce.choices);
            put_u64(out, ce.fired.len() as u64);
            for (id, deviation) in &ce.fired {
                put_u64(out, id.as_u64());
                let (tag, payload) = match deviation {
                    Deviation::Faithful => (0, 0),
                    Deviation::Forge(v) => (1, *v),
                    Deviation::Drop => (2, 0),
                };
                put_u64(out, tag);
                put_u64(out, payload);
            }
            let msg = ce.violation.as_bytes();
            put_u64(out, msg.len() as u64);
            out.extend_from_slice(msg);
        }
    }
}

fn decode_verdict(bytes: &[u8], at: &mut usize) -> Option<PatternVerdict> {
    let crashed = take_usize_list(bytes, at)?;
    let runs = take_u64(bytes, at)?;
    let states = take_u64(bytes, at)? as usize;
    let sleep_skips = take_u64(bytes, at)?;
    let dedup_hits = take_u64(bytes, at)?;
    let complete = take_u64(bytes, at)? != 0;
    let worst_agreement = take_u64(bytes, at)? as usize;
    let tasks = take_u64(bytes, at)?;
    let violation = match take_u64(bytes, at)? {
        0 => None,
        _ => {
            let ce_crashed = take_usize_list(bytes, at)?;
            let ce_byzantine = take_usize_list(bytes, at)?;
            let choices = take_usize_list(bytes, at)?;
            let fired_len = take_u64(bytes, at)? as usize;
            let mut fired = Vec::with_capacity(fired_len);
            for _ in 0..fired_len {
                let id = EventId::from_u64(take_u64(bytes, at)?);
                let tag = take_u64(bytes, at)?;
                let payload = take_u64(bytes, at)?;
                let deviation = match tag {
                    0 => Deviation::Faithful,
                    1 => Deviation::Forge(payload),
                    2 => Deviation::Drop,
                    _ => return None,
                };
                fired.push((id, deviation));
            }
            let msg_len = take_u64(bytes, at)? as usize;
            let end = at.checked_add(msg_len)?;
            let msg = bytes.get(*at..end)?;
            *at = end;
            Some(Counterexample {
                crashed: ce_crashed,
                byzantine: ce_byzantine,
                choices,
                fired,
                violation: String::from_utf8(msg.to_vec()).ok()?,
            })
        }
    };
    Some(PatternVerdict {
        crashed,
        runs,
        states,
        sleep_skips,
        dedup_hits,
        complete,
        worst_agreement,
        tasks,
        violation,
    })
}

fn encode_work_item(out: &mut Vec<u8>, item: &WorkItem) {
    put_usize_list(out, &item.prefix);
    put_u64(out, item.sleep.len() as u64);
    for entry in &item.sleep {
        put_u64(out, entry.id.as_u64());
        put_u64(out, entry.target as u64);
    }
    put_u64(out, item.preemptions as u64);
}

fn decode_work_item(bytes: &[u8], at: &mut usize) -> Option<WorkItem> {
    let prefix = take_usize_list(bytes, at)?;
    let sleep_len = take_u64(bytes, at)? as usize;
    let mut sleep = Vec::with_capacity(sleep_len);
    for _ in 0..sleep_len {
        let id = take_u64(bytes, at)?;
        let target = take_u64(bytes, at)? as usize;
        sleep.push(SleepEntry {
            id: EventId::from_u64(id),
            target,
        });
    }
    let preemptions = take_u64(bytes, at)? as usize;
    Some(WorkItem {
        prefix,
        sleep,
        preemptions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let violated = PatternVerdict {
            crashed: vec![0, 2],
            runs: 17,
            states: 5,
            sleep_skips: 3,
            dedup_hits: 2,
            complete: false,
            worst_agreement: 3,
            tasks: 4,
            violation: Some(Counterexample {
                crashed: vec![0, 2],
                byzantine: vec![1],
                choices: vec![3, 0, 1],
                fired: vec![
                    (EventId::from_u64(9), Deviation::Forge(7)),
                    (EventId::from_u64(4), Deviation::Faithful),
                    (EventId::from_u64(2), Deviation::Drop),
                ],
                violation: "agreement violated: 3 > 2 distinct values".to_string(),
            }),
        };
        let clean = PatternVerdict {
            crashed: vec![],
            runs: 1200,
            states: 450,
            sleep_skips: 80,
            dedup_hits: 33,
            complete: true,
            worst_agreement: 2,
            tasks: 21,
            violation: None,
        };
        let partial = PatternVerdict {
            crashed: vec![1],
            runs: 64,
            states: 12,
            sleep_skips: 0,
            dedup_hits: 1,
            complete: true,
            worst_agreement: 1,
            tasks: 3,
            violation: None,
        };
        Snapshot {
            config_digest: 0xdead_beef_cafe_f00d,
            generation: 3,
            watermarks: vec![128, 0, 4096, 24],
            patterns_done: vec![clean, violated],
            in_progress: Some(PatternState {
                verdict: partial,
                queue: vec![
                    vec![WorkItem {
                        prefix: vec![0, 2, 1],
                        sleep: vec![SleepEntry {
                            id: EventId::from_u64(7),
                            target: 2,
                        }],
                        preemptions: 1,
                    }],
                    vec![
                        WorkItem {
                            prefix: vec![4],
                            sleep: vec![],
                            preemptions: 0,
                        },
                        WorkItem {
                            prefix: vec![],
                            sleep: vec![
                                SleepEntry {
                                    id: EventId::from_u64(1),
                                    target: 0,
                                },
                                SleepEntry {
                                    id: EventId::from_u64(2),
                                    target: 1,
                                },
                            ],
                            preemptions: 2,
                        },
                    ],
                ],
            }),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kset_snapshot_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_verdicts_eq(a: &PatternVerdict, b: &PatternVerdict) {
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.states, b.states);
        assert_eq!(a.sleep_skips, b.sleep_skips);
        assert_eq!(a.dedup_hits, b.dedup_hits);
        assert_eq!(a.complete, b.complete);
        assert_eq!(a.worst_agreement, b.worst_agreement);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("roundtrip");
        let snapshot = sample();
        write_snapshot(&dir, &snapshot).unwrap();
        let back = read_snapshot(&dir).unwrap();
        assert_eq!(back.config_digest, snapshot.config_digest);
        assert_eq!(back.generation, snapshot.generation);
        assert_eq!(back.watermarks, snapshot.watermarks);
        assert_eq!(back.patterns_done.len(), 2);
        for (a, b) in back.patterns_done.iter().zip(&snapshot.patterns_done) {
            assert_verdicts_eq(a, b);
        }
        let got = back.in_progress.unwrap();
        let want = snapshot.in_progress.unwrap();
        assert_verdicts_eq(&got.verdict, &want.verdict);
        assert_eq!(got.queue, want.queue);
        // No stray temp file survives a successful write.
        assert!(!dir.join("snapshot.bin.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_is_detected() {
        let dir = tmp_dir("truncate");
        write_snapshot(&dir, &sample()).unwrap();
        let path = snapshot_path(&dir);
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 5, 8, 16, 24, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = read_snapshot(&dir).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut={cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_version_skew_are_detected() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = snapshot_path(&dir);
        let good = fs::read(&path).unwrap();
        // A flipped bit anywhere in the body fails the checksum.
        for &pos in &[9, 40, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert_eq!(
                read_snapshot(&dir).unwrap_err().kind(),
                io::ErrorKind::InvalidData,
                "pos={pos}"
            );
        }
        // A future version is refused even with a valid checksum.
        let mut future = good.clone();
        let mut body = future[..future.len() - 8].to_vec();
        body[8..16].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let sum = fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        future = body;
        fs::write(&path, &future).unwrap();
        let err = read_snapshot(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_reads_as_not_found() {
        let dir = tmp_dir("missing");
        assert_eq!(
            read_snapshot(&dir).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
