//! Checkpointed, resumable certification campaigns.
//!
//! A *campaign* is a [`crate::checker::check_cell`] run turned into a
//! restartable production job (ROADMAP item 3): the exploration state
//! lives in a campaign directory on disk, is checkpointed atomically at
//! wave boundaries, and a killed campaign resumed via `model_check
//! --resume` produces **bit-identical verdicts, counters, and
//! counterexample bytes** to an uninterrupted run — the same determinism
//! contract PR 3 established for `--threads`, extended across process
//! lifetimes. `CAMPAIGNS.md` is the operator's guide; this module is the
//! mechanism.
//!
//! # On-disk layout
//!
//! ```text
//! <campaign-dir>/
//!   MANIFEST                   # human-readable summary + lifecycle (manifest.rs)
//!   snapshot.bin               # checksummed resume point (snapshot.rs)
//!   shard-000.gen-3.log        # visited-store append logs, one per shard,
//!   shard-001.gen-3.log        #   tagged with the current log generation
//!   ...                        #   (shard.rs + store.rs)
//! ```
//!
//! # Why resume is exact
//!
//! The parallel drain processes tasks in fixed waves; at a wave boundary
//! the triple `(pattern verdict so far, outstanding task queue, shared
//! visited store)` is a pure function of the pattern's initial queue —
//! independent of thread count, wall-clock, and of whether any checkpoint
//! was taken ([`crate::engine::parallel_drain_watched`]). A checkpoint
//! durably persists exactly that triple (plus the finished patterns'
//! verdicts); resuming restores it and re-enters the drain at the same
//! boundary. Work done after the last checkpoint is simply re-executed —
//! re-execution is deterministic, so the campaign converges to the same
//! bytes either way.

pub mod manifest;
pub(crate) mod snapshot;
pub mod shard;
pub mod store;

use std::fs;
use std::io;
use std::path::Path;

use kset_core::ProblemSpec;

use crate::checker::{
    shrink_counterexample, CellVerdict, CheckerConfig, PatternState, PatternVerdict,
};
use crate::checker::{drain_pattern, seed_pattern};
use crate::engine::{DrainExit, WaveControl};

use manifest::{
    config_digest, manifest_path, read_manifest, write_manifest, CampaignStatus, Manifest,
};
use snapshot::{read_snapshot, write_snapshot, Snapshot};
use store::{CampaignStore, DiskStore};

/// Campaign-layer knobs (the checker knobs stay in [`CheckerConfig`]).
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Shard count of the visited store. Fixed at creation; ignored on
    /// resume (the manifest's layout wins).
    pub shards: usize,
    /// Checkpoint once at least this many runs have accumulated since the
    /// last checkpoint (checked at wave boundaries, so the actual spacing
    /// overshoots by up to one wave). `0` checkpoints at every boundary.
    pub checkpoint_every: u64,
    /// Testing hook: stop the campaign (exit cleanly, resumable) after
    /// this many checkpoints have been written *in this invocation*. This
    /// is how the kill/resume suites abort deterministically at a chosen
    /// snapshot; production campaigns leave it `None`.
    pub pause_after_checkpoints: Option<u64>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            shards: 16,
            checkpoint_every: 250_000,
            pause_after_checkpoints: None,
        }
    }
}

/// How a campaign invocation ended.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// Every crash pattern is explored (or a violation was found and
    /// shrunk): the final verdict, byte-identical to
    /// [`crate::checker::check_cell`] on the same configuration.
    Finished(Box<CellVerdict>),
    /// [`CampaignOptions::pause_after_checkpoints`] stopped the
    /// invocation; the directory resumes from the last checkpoint.
    Paused {
        /// Checkpoints written over the campaign's whole life so far.
        checkpoints: u64,
        /// Cumulative runs recorded at the last checkpoint.
        runs: u64,
    },
}

/// Creates a fresh campaign in `dir` and drives it (to completion, or to
/// a [`CampaignOutcome::Paused`] stop).
///
/// # Errors
///
/// [`io::ErrorKind::AlreadyExists`] if `dir` already holds a campaign
/// (resume it instead); otherwise propagates I/O errors.
///
/// # Panics
///
/// Panics if the cell coordinates are rejected by [`ProblemSpec::new`]
/// (same contract as [`crate::checker::check_cell`]).
pub fn run_campaign(
    cfg: &CheckerConfig,
    dir: &Path,
    opts: &CampaignOptions,
) -> io::Result<CampaignOutcome> {
    if let Err(message) = cfg.validate() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid checker configuration: {message}"),
        ));
    }
    if manifest_path(dir).exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "{} already holds a campaign manifest; pass --resume to continue it",
                dir.display()
            ),
        ));
    }
    fs::create_dir_all(dir)?;
    let store = DiskStore::create(dir, opts.shards)?;
    let manifest = Manifest::new(cfg, opts.shards);
    write_manifest(dir, &manifest)?;
    drive(cfg, dir, opts, store, manifest, Vec::new(), None, 0)
}

/// Resumes the campaign in `dir` from its last durable checkpoint.
///
/// The exploration-relevant configuration must match the campaign's
/// (config digest); `--threads`, `--progress` and the checkpoint cadence
/// may differ freely — they are outside the determinism contract's
/// inputs. A campaign killed before its first checkpoint resumes from
/// the beginning.
///
/// # Errors
///
/// [`io::ErrorKind::NotFound`] if `dir` has no manifest;
/// [`io::ErrorKind::InvalidData`] on a configuration mismatch, an
/// already-finished campaign, or corrupt campaign files.
///
/// # Panics
///
/// Panics if the cell coordinates are rejected by [`ProblemSpec::new`].
pub fn resume_campaign(
    cfg: &CheckerConfig,
    dir: &Path,
    opts: &CampaignOptions,
) -> io::Result<CampaignOutcome> {
    if let Err(message) = cfg.validate() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid checker configuration: {message}"),
        ));
    }
    let mut manifest = read_manifest(dir)?;
    let digest = config_digest(cfg);
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if manifest.config_digest != digest {
        return Err(bad(format!(
            "campaign in {} was created with a different configuration \
             (digest {:016x}, this invocation {:016x}); rerun with the original cell and bounds",
            dir.display(),
            manifest.config_digest,
            digest
        )));
    }
    if manifest.status != CampaignStatus::Running {
        return Err(bad(format!(
            "campaign in {} already finished ({}); nothing to resume",
            dir.display(),
            manifest.status
        )));
    }
    let (store, patterns_done, in_progress) = match read_snapshot(dir) {
        Ok(snap) => {
            if snap.config_digest != digest {
                return Err(bad(format!(
                    "snapshot in {} disagrees with the manifest's configuration digest",
                    dir.display()
                )));
            }
            if snap.watermarks.len() != manifest.shards {
                return Err(bad(format!(
                    "snapshot in {} records {} shard(s), manifest says {}",
                    dir.display(),
                    snap.watermarks.len(),
                    manifest.shards
                )));
            }
            let store = DiskStore::open(dir, snap.generation, &snap.watermarks)?;
            (store, snap.patterns_done, snap.in_progress)
        }
        // Killed before the first checkpoint: the campaign starts over.
        // Generation 0 with zero watermarks truncates any partial appends
        // and discards stray generations a mid-flush crash left behind.
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let store = DiskStore::open(dir, 0, &vec![0; manifest.shards])?;
            (store, Vec::new(), None)
        }
        Err(e) => return Err(e),
    };
    manifest.resumes += 1;
    write_manifest(dir, &manifest)?;
    let resumed_runs = cumulative_runs(&patterns_done, in_progress.as_ref());
    drive(
        cfg,
        dir,
        opts,
        store,
        manifest,
        patterns_done,
        in_progress,
        resumed_runs,
    )
}

/// Runs recorded so far: finished patterns plus the in-progress partial.
fn cumulative_runs(done: &[PatternVerdict], partial: Option<&PatternState>) -> u64 {
    done.iter().map(|p| p.runs).sum::<u64>() + partial.map_or(0, |s| s.verdict.runs)
}

/// Refreshes the manifest's cumulative counters from the authoritative
/// exploration state.
fn refresh_counters(
    manifest: &mut Manifest,
    store: &DiskStore,
    done: &[PatternVerdict],
    partial: Option<&PatternVerdict>,
) {
    let verdicts = done.iter().chain(partial);
    let mut runs = 0;
    let mut states = 0u64;
    let mut dedup_hits = 0;
    let mut sleep_skips = 0;
    for v in verdicts {
        runs += v.runs;
        states += v.states as u64;
        dedup_hits += v.dedup_hits;
        sleep_skips += v.sleep_skips;
    }
    manifest.runs = runs;
    manifest.states = states;
    manifest.dedup_hits = dedup_hits;
    manifest.sleep_skips = sleep_skips;
    manifest.patterns_done = done.len() as u64;
    let occ = store.occupancy();
    manifest.store_entries = occ.entries;
    manifest.store_log_bytes = occ.log_bytes;
}

/// Writes one durable checkpoint: flushes the store, snapshots
/// `(finished patterns, in-progress state, store coordinates)`, deletes
/// superseded log generations, and rewrites the manifest.
fn write_checkpoint(
    dir: &Path,
    store: &mut DiskStore,
    digest: u64,
    patterns_done: &[PatternVerdict],
    in_progress: Option<PatternState>,
    manifest: &mut Manifest,
) -> io::Result<()> {
    let (generation, watermarks) = store.flush()?;
    let snapshot = Snapshot {
        config_digest: digest,
        generation,
        watermarks,
        patterns_done: patterns_done.to_vec(),
        in_progress,
    };
    write_snapshot(dir, &snapshot)?;
    // Only now is it safe to drop generations the old snapshot needed.
    store.cleanup()?;
    manifest.checkpoints += 1;
    refresh_counters(
        manifest,
        store,
        patterns_done,
        snapshot.in_progress.as_ref().map(|s| &s.verdict),
    );
    write_manifest(dir, manifest)?;
    Ok(())
}

/// Aggregates finished pattern verdicts exactly as
/// [`crate::checker::check_cell`] does.
fn cell_verdict(patterns: Vec<PatternVerdict>) -> CellVerdict {
    let mut verdict = CellVerdict {
        patterns: Vec::new(),
        worst_agreement: 0,
        complete: true,
        runs: 0,
        counterexample: None,
    };
    for pattern in patterns {
        verdict.worst_agreement = verdict.worst_agreement.max(pattern.worst_agreement);
        verdict.runs += pattern.runs;
        verdict.complete &= pattern.complete;
        if let Some(ce) = &pattern.violation {
            verdict.counterexample = Some(ce.clone());
        }
        verdict.patterns.push(pattern);
    }
    verdict
}

/// The campaign main loop: explores the remaining crash patterns,
/// checkpointing at the configured cadence and at every pattern boundary.
#[allow(clippy::too_many_arguments)]
fn drive(
    cfg: &CheckerConfig,
    dir: &Path,
    opts: &CampaignOptions,
    mut store: DiskStore,
    mut manifest: Manifest,
    mut patterns_done: Vec<PatternVerdict>,
    mut in_progress: Option<PatternState>,
    mut last_checkpoint_runs: u64,
) -> io::Result<CampaignOutcome> {
    let inputs = cfg.cell_inputs();
    let spec = ProblemSpec::new(cfg.n, cfg.k, cfg.t, cfg.validity)
        .expect("campaign cell coordinates are valid");
    // The adversary's own pattern enumeration: Byzantine assignments when
    // the behaviour space is active, silent-crash subsets otherwise —
    // seed/drain/shrink derive each pattern's deviation policy from
    // `cfg` internally, so the campaign loop is adversary-agnostic.
    let plans = cfg.fault_plans();
    let digest = manifest.config_digest;
    let mut session_checkpoints = 0u64;

    let start = patterns_done.len();
    for (index, plan) in plans.iter().enumerate().skip(start) {
        let state = match in_progress.take() {
            // Restored mid-pattern: the store already holds this
            // pattern's visited set.
            Some(state) => state,
            None => {
                let (state, root_visited) = seed_pattern(cfg, &inputs, &spec, plan);
                store.absorb(root_visited);
                state
            }
        };
        let done_runs: u64 = patterns_done.iter().map(|p| p.runs).sum();
        let mut checkpoint_error: Option<io::Error> = None;
        let (verdict, exit) = {
            let manifest = &mut manifest;
            let patterns_done = &patterns_done;
            let last_checkpoint_runs = &mut last_checkpoint_runs;
            let session_checkpoints = &mut session_checkpoints;
            let checkpoint_error = &mut checkpoint_error;
            drain_pattern(
                cfg,
                &inputs,
                &spec,
                plan,
                &mut store,
                state,
                |store, verdict, queue| {
                    let total = done_runs + verdict.runs;
                    if total.saturating_sub(*last_checkpoint_runs) < opts.checkpoint_every {
                        return WaveControl::Continue;
                    }
                    let partial = PatternState {
                        verdict: verdict.clone(),
                        queue: queue.iter().cloned().collect(),
                    };
                    match write_checkpoint(
                        dir,
                        store,
                        digest,
                        patterns_done,
                        Some(partial),
                        manifest,
                    ) {
                        Ok(()) => {
                            *last_checkpoint_runs = total;
                            *session_checkpoints += 1;
                            if opts
                                .pause_after_checkpoints
                                .is_some_and(|p| *session_checkpoints >= p)
                            {
                                WaveControl::Pause
                            } else {
                                WaveControl::Continue
                            }
                        }
                        Err(e) => {
                            *checkpoint_error = Some(e);
                            WaveControl::Pause
                        }
                    }
                },
            )
        };
        if let Some(e) = checkpoint_error {
            return Err(e);
        }
        if matches!(exit, DrainExit::Paused) {
            return Ok(CampaignOutcome::Paused {
                checkpoints: manifest.checkpoints,
                runs: manifest.runs,
            });
        }

        let mut pattern = verdict;
        if let Some(raw) = pattern.violation.take() {
            let shrunk = shrink_counterexample(cfg, &inputs, &spec, plan, raw.choices);
            pattern.violation = Some(shrunk);
            patterns_done.push(pattern);
            manifest.status = CampaignStatus::Violated;
            write_checkpoint(dir, &mut store, digest, &patterns_done, None, &mut manifest)?;
            return Ok(CampaignOutcome::Finished(Box::new(cell_verdict(
                patterns_done,
            ))));
        }
        patterns_done.push(pattern);

        // Pattern boundary: the visited set is per-pattern, so clear the
        // store into a fresh log generation and checkpoint the boundary.
        let finished = index + 1 == plans.len();
        if finished {
            manifest.status = CampaignStatus::Holds;
        }
        store.reset()?;
        write_checkpoint(dir, &mut store, digest, &patterns_done, None, &mut manifest)?;
        last_checkpoint_runs = patterns_done.iter().map(|p| p.runs).sum();
        session_checkpoints += 1;
        if !finished
            && opts
                .pause_after_checkpoints
                .is_some_and(|p| session_checkpoints >= p)
        {
            return Ok(CampaignOutcome::Paused {
                checkpoints: manifest.checkpoints,
                runs: manifest.runs,
            });
        }
    }
    Ok(CampaignOutcome::Finished(Box::new(cell_verdict(
        patterns_done,
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_cell;
    use crate::exhaustive::QuorumProtocol;
    use kset_core::ValidityCondition;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kset_campaign_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n3_cfg() -> CheckerConfig {
        let mut cfg =
            CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1);
        cfg.threads = 1;
        cfg
    }

    fn assert_same_verdict(a: &CellVerdict, b: &CellVerdict) {
        assert_eq!(a.holds(), b.holds());
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.complete, b.complete);
        assert_eq!(a.worst_agreement, b.worst_agreement);
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.crashed, y.crashed);
            assert_eq!(x.runs, y.runs);
            assert_eq!(x.states, y.states);
            assert_eq!(x.dedup_hits, y.dedup_hits);
            assert_eq!(x.sleep_skips, y.sleep_skips);
            assert_eq!(x.violation, y.violation);
        }
        assert_eq!(a.counterexample, b.counterexample);
    }

    #[test]
    fn uninterrupted_campaign_matches_check_cell() {
        let dir = tmp_dir("uninterrupted");
        let cfg = n3_cfg();
        let outcome = run_campaign(&cfg, &dir, &CampaignOptions::default()).unwrap();
        let CampaignOutcome::Finished(verdict) = outcome else {
            panic!("no pause requested");
        };
        assert_same_verdict(&verdict, &check_cell(&cfg));
        // Finished campaigns refuse both re-creation and resumption.
        let again = run_campaign(&cfg, &dir, &CampaignOptions::default()).unwrap_err();
        assert_eq!(again.kind(), io::ErrorKind::AlreadyExists);
        let resumed = resume_campaign(&cfg, &dir, &CampaignOptions::default()).unwrap_err();
        assert_eq!(resumed.kind(), io::ErrorKind::InvalidData);
        assert!(resumed.to_string().contains("finished"), "{resumed}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paused_campaign_resumes_to_the_identical_verdict() {
        let dir = tmp_dir("paused");
        let cfg = n3_cfg();
        let opts = CampaignOptions {
            shards: 4,
            checkpoint_every: 0, // every wave and every pattern boundary
            pause_after_checkpoints: Some(1),
        };
        let mut outcome = run_campaign(&cfg, &dir, &opts).unwrap();
        let mut pauses = 0;
        let verdict = loop {
            match outcome {
                CampaignOutcome::Finished(v) => break v,
                CampaignOutcome::Paused { .. } => {
                    pauses += 1;
                    assert!(pauses < 10_000, "campaign does not converge");
                    outcome = resume_campaign(&cfg, &dir, &opts).unwrap();
                }
            }
        };
        assert!(pauses > 0, "the pause hook never fired");
        assert_same_verdict(&verdict, &check_cell(&cfg));
        let manifest = read_manifest(&dir).unwrap();
        assert_eq!(manifest.status, CampaignStatus::Holds);
        assert_eq!(manifest.resumes, pauses);
        assert_eq!(manifest.runs, verdict.runs);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_different_configuration() {
        let dir = tmp_dir("config_mismatch");
        let cfg = n3_cfg();
        let opts = CampaignOptions {
            shards: 2,
            checkpoint_every: 0,
            pause_after_checkpoints: Some(1),
        };
        let outcome = run_campaign(&cfg, &dir, &opts).unwrap();
        assert!(matches!(outcome, CampaignOutcome::Paused { .. }));
        let mut other = cfg.clone();
        other.k = 1;
        let err = resume_campaign(&other, &dir, &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different configuration"), "{err}");
        // The original configuration still resumes fine (threads may vary).
        let mut rethreaded = cfg.clone();
        rethreaded.threads = 2;
        let opts = CampaignOptions {
            pause_after_checkpoints: None,
            ..opts
        };
        let outcome = resume_campaign(&rethreaded, &dir, &opts).unwrap();
        let CampaignOutcome::Finished(verdict) = outcome else {
            panic!("no pause requested");
        };
        assert_same_verdict(&verdict, &check_cell(&cfg));
        let _ = fs::remove_dir_all(&dir);
    }
}
