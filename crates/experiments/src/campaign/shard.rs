//! One hash partition of the disk-backed visited store: an append-log
//! file mirrored by an in-memory compacted open-addressing table.
//!
//! The table maps a 64-bit state fingerprint to the minimal antichain of
//! sleep sets it was expanded under — the same data the checker's
//! [`Visited`](crate::checker::Visited) keeps, laid out for identity
//! hashing: fingerprints are already avalanched (`PERFORMANCE.md`), so
//! the probe sequence starts at the fingerprint's low bits directly and
//! linear probing stays clustered-free without re-hashing. (The shard
//! *partition* uses high bits — [`super::store::DiskStore`] — so the two
//! never correlate.)
//!
//! The log is append-only between checkpoints: an insertion that
//! supersedes earlier entries (a subset arriving after its supersets)
//! only edits the in-memory antichain; the stale records stay in the log
//! and are re-minimized on load. That is sound because extra supersets
//! can never change a `covers` answer — any query a superset covers, its
//! subset covers too — and it keeps the durable write path a pure append.
//! Compaction ([`Shard::rewrite_to`]) rewrites the log from the live
//! table when the stale fraction grows, as part of a generation switch.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use kset_sim::EventId;

use crate::checker::{sleep_subset, SleepEntry};

use super::store::{put_u64, take_u64};

/// Grow the slot array when distinct fingerprints exceed 3/4 of it.
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 4;

/// Compact once a log holds this many records *and* more than four times
/// the live entry count (i.e. is at least 3/4 stale).
const COMPACT_MIN_RECORDS: u64 = 1 << 14;

/// One fingerprint's bucket: the minimal antichain of sleep sets it was
/// expanded under.
#[derive(Debug)]
struct Bucket {
    fingerprint: u64,
    antichain: Vec<Box<[SleepEntry]>>,
}

/// One shard: the in-memory open-addressing table plus the bookkeeping
/// of its on-disk append log (the file itself is owned by
/// [`super::store::DiskStore`], which hands paths in).
#[derive(Debug, Default)]
pub struct Shard {
    /// Open-addressing slot array (power-of-two length): `0` = empty,
    /// else an index+1 into `buckets`.
    slots: Vec<u32>,
    buckets: Vec<Bucket>,
    /// Live minimal entries across all buckets.
    live: u64,
    /// Serialized records absorbed since the last flush.
    pending: Vec<u8>,
    pending_records: u64,
    /// Durable bytes in the current log file (the snapshot watermark).
    log_bytes: u64,
    /// Records in the current log file, including superseded ones.
    log_records: u64,
}

impl Shard {
    /// An empty shard with no log bookkeeping.
    pub fn new() -> Self {
        Shard::default()
    }

    /// The subset-rule query, identical in semantics to
    /// [`Visited::covers`](crate::checker::Visited::covers).
    pub fn covers(&self, fingerprint: u64, sleep: &[SleepEntry]) -> bool {
        self.find(fingerprint).is_some_and(|idx| {
            self.buckets[idx]
                .antichain
                .iter()
                .any(|s| sleep_subset(s, sleep))
        })
    }

    /// Absorbs one entry: skipped if covered, otherwise inserted (stored
    /// supersets dropped, keeping the antichain minimal) and buffered for
    /// the next log flush. Returns whether the entry was new.
    pub fn absorb(&mut self, fingerprint: u64, sleep: &[SleepEntry]) -> bool {
        if self.covers(fingerprint, sleep) {
            return false;
        }
        self.insert_minimal(fingerprint, sleep);
        encode_record(&mut self.pending, fingerprint, sleep);
        self.pending_records += 1;
        true
    }

    /// Live minimal entries in the table.
    pub fn live_entries(&self) -> u64 {
        self.live
    }

    /// Durable log bytes (the watermark a snapshot records). Unflushed
    /// pending records are *not* counted — they are not durable.
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Records written to the current log, including superseded ones.
    pub fn log_records(&self) -> u64 {
        self.log_records
    }

    /// Whether the log is mostly stale records a compaction would drop.
    pub fn wants_compaction(&self) -> bool {
        let total = self.log_records + self.pending_records;
        total >= COMPACT_MIN_RECORDS && total > 4 * self.live
    }

    /// Empties the table and forgets the log (the caller starts a fresh
    /// generation).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.buckets.clear();
        self.live = 0;
        self.pending.clear();
        self.pending_records = 0;
        self.log_bytes = 0;
        self.log_records = 0;
    }

    /// Appends the pending records to `path` (the current generation's
    /// log) and advances the durable watermark.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush_to(&mut self, path: &Path) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(&self.pending)?;
        file.sync_data()?;
        self.log_bytes += self.pending.len() as u64;
        self.log_records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Rewrites the shard as a fresh log at `path` containing exactly the
    /// live minimal entries (write-temp-then-rename), resetting the log
    /// bookkeeping to the compacted contents. Pending records are part of
    /// the live table, so they are implicitly flushed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn rewrite_to(&mut self, path: &Path) -> io::Result<()> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            for sleep in &bucket.antichain {
                encode_record(&mut out, bucket.fingerprint, sleep);
            }
        }
        let tmp = path.with_extension("log.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&out)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        self.log_bytes = out.len() as u64;
        self.log_records = self.live;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Loads `bytes` (a log truncated to its snapshot watermark) into the
    /// table, re-minimizing as it goes — stale supersets the append-only
    /// log kept are dropped again here. `path` is for error messages.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a torn record below the
    /// watermark (the snapshot then references data that was never fully
    /// written — a corrupt campaign directory).
    pub fn load(&mut self, bytes: &[u8], path: &Path) -> io::Result<()> {
        let mut at = 0;
        let mut records = 0u64;
        while at < bytes.len() {
            let record_start = at;
            let torn = move || {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard log {} has a torn record at byte {record_start} below the watermark",
                        path.display()
                    ),
                )
            };
            let fingerprint = take_u64(bytes, &mut at).ok_or_else(torn)?;
            let len = take_u64(bytes, &mut at).ok_or_else(torn)? as usize;
            let mut sleep = Vec::with_capacity(len);
            for _ in 0..len {
                let id = take_u64(bytes, &mut at).ok_or_else(torn)?;
                let target = take_u64(bytes, &mut at).ok_or_else(torn)? as usize;
                sleep.push(SleepEntry {
                    id: EventId::from_u64(id),
                    target,
                });
            }
            if !self.covers(fingerprint, &sleep) {
                self.insert_minimal(fingerprint, &sleep);
            }
            records += 1;
        }
        self.log_bytes = bytes.len() as u64;
        self.log_records = records;
        Ok(())
    }

    /// Index of `fingerprint`'s bucket, if present.
    fn find(&self, fingerprint: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (fingerprint as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                slot => {
                    let idx = (slot - 1) as usize;
                    if self.buckets[idx].fingerprint == fingerprint {
                        return Some(idx);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts without the covers check (callers have already done it),
    /// dropping stored supersets of `sleep`.
    fn insert_minimal(&mut self, fingerprint: u64, sleep: &[SleepEntry]) {
        let idx = match self.find(fingerprint) {
            Some(idx) => idx,
            None => {
                self.grow_if_needed();
                let idx = self.buckets.len();
                self.buckets.push(Bucket {
                    fingerprint,
                    antichain: Vec::new(),
                });
                let mask = self.slots.len() - 1;
                let mut i = (fingerprint as usize) & mask;
                while self.slots[i] != 0 {
                    i = (i + 1) & mask;
                }
                self.slots[i] =
                    u32::try_from(idx + 1).expect("shard bucket count fits u32");
                idx
            }
        };
        let antichain = &mut self.buckets[idx].antichain;
        let before = antichain.len();
        antichain.retain(|s| !sleep_subset(sleep, s));
        self.live -= (before - antichain.len()) as u64;
        antichain.push(sleep.to_vec().into_boxed_slice());
        self.live += 1;
    }

    fn grow_if_needed(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![0; 1024];
            return;
        }
        if (self.buckets.len() + 1) * MAX_LOAD_DEN <= self.slots.len() * MAX_LOAD_NUM {
            return;
        }
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len];
        let mask = new_len - 1;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let mut i = (bucket.fingerprint as usize) & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = u32::try_from(idx + 1).expect("shard bucket count fits u32");
        }
        self.slots = slots;
    }
}

/// Serializes one `(fingerprint, sleep set)` log record.
fn encode_record(out: &mut Vec<u8>, fingerprint: u64, sleep: &[SleepEntry]) {
    put_u64(out, fingerprint);
    put_u64(out, sleep.len() as u64);
    for entry in sleep {
        put_u64(out, entry.id.as_u64());
        put_u64(out, entry.target as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Visited;

    fn entry(id: u64, target: usize) -> SleepEntry {
        SleepEntry {
            id: EventId::from_u64(id),
            target,
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kset_shard_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_matches_visited_semantics() {
        // Feed the same entry sequence into a shard and a Visited table;
        // covers answers must coincide, including superset dropping.
        let mut shard = Shard::new();
        let mut visited = Visited::default();
        let sequences: Vec<(u64, Vec<SleepEntry>)> = vec![
            (7, vec![entry(1, 0), entry(2, 1)]),
            (7, vec![entry(1, 0)]), // subset supersedes the first
            (7, vec![entry(3, 2)]),
            (9, vec![]),
            (u64::MAX, vec![entry(4, 0)]),
        ];
        for (fp, sleep) in &sequences {
            if !visited.covers(*fp, sleep) {
                visited.insert(*fp, sleep);
            }
            shard.absorb(*fp, sleep);
        }
        let queries: Vec<(u64, Vec<SleepEntry>)> = vec![
            (7, vec![entry(1, 0), entry(2, 1), entry(3, 2)]),
            (7, vec![entry(2, 1)]),
            (7, vec![entry(1, 0)]),
            (9, vec![entry(99, 3)]),
            (8, vec![]),
            (u64::MAX, vec![entry(4, 0)]),
        ];
        for (fp, sleep) in &queries {
            assert_eq!(
                shard.covers(*fp, sleep),
                visited.covers(*fp, sleep),
                "fp={fp} sleep={sleep:?}"
            );
        }
        // The subset insert dropped its superset: 7 has {1},{3}; 9 has {};
        // MAX has {4}.
        assert_eq!(shard.live_entries(), 4);
    }

    #[test]
    fn many_fingerprints_survive_table_growth() {
        let mut shard = Shard::new();
        for fp in 0..5000u64 {
            // Low bits collide heavily with a 1024-slot table; growth and
            // probing must keep every entry findable.
            assert!(shard.absorb(fp.wrapping_mul(0x9e37_79b9_7f4a_7c15), &[entry(fp, 0)]));
        }
        for fp in 0..5000u64 {
            let key = fp.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert!(shard.covers(key, &[entry(fp, 0), entry(fp + 1, 1)]));
            assert!(!shard.covers(key, &[entry(fp + 1, 1)]));
        }
        assert_eq!(shard.live_entries(), 5000);
    }

    #[test]
    fn flush_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let log = dir.join("shard.log");
        fs::write(&log, []).unwrap();
        let mut shard = Shard::new();
        for fp in 0..200u64 {
            shard.absorb(fp << 40 | fp, &[entry(fp, (fp % 5) as usize)]);
        }
        shard.absorb(1 << 40 | 1, &[]); // empty set supersedes fp=1's entry
        shard.flush_to(&log).unwrap();
        let watermark = shard.log_bytes();
        assert_eq!(watermark, fs::metadata(&log).unwrap().len());

        let mut reloaded = Shard::new();
        reloaded.load(&fs::read(&log).unwrap(), &log).unwrap();
        assert_eq!(reloaded.live_entries(), shard.live_entries());
        for fp in 0..200u64 {
            let key = fp << 40 | fp;
            assert_eq!(
                reloaded.covers(key, &[entry(fp, 0)]),
                shard.covers(key, &[entry(fp, 0)]),
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_round_trips_and_shrinks() {
        let dir = tmp_dir("compact");
        let log = dir.join("shard.log");
        fs::write(&log, []).unwrap();
        let mut shard = Shard::new();
        // Append supersets first, then the subsets that supersede them:
        // the log keeps both, the table only the minimal set.
        for fp in 0..100u64 {
            shard.absorb(fp, &[entry(1, 0), entry(2, 1), entry(3, 2)]);
            shard.absorb(fp, &[entry(1, 0), entry(2, 1)]);
            shard.absorb(fp, &[entry(1, 0)]);
        }
        shard.flush_to(&log).unwrap();
        let appended = shard.log_bytes();
        assert_eq!(shard.log_records(), 300);
        assert_eq!(shard.live_entries(), 100);

        let compacted = dir.join("shard-compacted.log");
        shard.rewrite_to(&compacted).unwrap();
        assert!(shard.log_bytes() < appended);
        assert_eq!(shard.log_records(), 100);

        // The compacted log loads back to an equivalent table.
        let mut reloaded = Shard::new();
        reloaded
            .load(&fs::read(&compacted).unwrap(), &compacted)
            .unwrap();
        assert_eq!(reloaded.live_entries(), 100);
        for fp in 0..100u64 {
            assert!(reloaded.covers(fp, &[entry(1, 0), entry(9, 9)]));
            assert!(!reloaded.covers(fp, &[entry(2, 1), entry(3, 2)]));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_record_below_watermark_is_invalid_data() {
        let dir = tmp_dir("torn");
        let log = dir.join("shard.log");
        let mut shard = Shard::new();
        shard.absorb(42, &[entry(1, 0), entry(2, 1)]);
        fs::write(&log, []).unwrap();
        shard.flush_to(&log).unwrap();
        let bytes = fs::read(&log).unwrap();
        for cut in [bytes.len() - 3, bytes.len() - 8, 7, 17] {
            let mut torn = Shard::new();
            let err = torn.load(&bytes[..cut], &log).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut={cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_trigger_tracks_staleness() {
        let mut shard = Shard::new();
        assert!(!shard.wants_compaction());
        // One live entry superseding a pile of stale ones.
        for round in 0..(COMPACT_MIN_RECORDS + 8) {
            let sleep: Vec<SleepEntry> =
                (0..2).map(|i| entry(round * 2 + i, 0)).collect();
            shard.absorb(5, &sleep);
        }
        shard.absorb(5, &[]);
        assert!(shard.wants_compaction());
    }
}
