//! Per-cell empirical validation: run the designated protocol of a
//! solvable atlas cell and check all three `SC` conditions.
//!
//! For every cell the analytic atlas classifies as solvable, the citation
//! names the protocol (Protocol A, FloodMin, C(ℓ), ...). This module maps
//! the citation back to an executable configuration, runs it across a mix
//! of fault plans and schedules, and checks each completed run against
//! `SC(k, t, C)` with the `kset-core` checker.

use kset_adversary::{plans, EchoSplitter, GroupMimic, Scribbler, Silent, SmSilent};
use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
use kset_net::{DynMpProcess, MpSystem};
use kset_protocols::{
    CMsg, FloodMin, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ProtocolE, ProtocolF, SimSlot,
    Simulated,
};
use kset_regions::{classify, math, CellClass, Model};
use kset_shmem::{DynSmProcess, SmSystem};
use kset_sim::{
    DelayRule, FaultPlan, MetricsConfig, Outcome, RunMetrics, RunStats, SimError, Until,
};

use crate::record_sink::RunOutcome;

/// The default decision value used by the default-deciding protocols.
/// Drawn far outside the input domain `0..n` used by the sweeps.
pub const DEFAULT_VALUE: u64 = u64::MAX;

/// Result of empirically validating one cell.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize)]
pub struct CellValidation {
    /// The model of the cell.
    pub model: Model,
    /// The validity condition.
    pub validity: ValidityCondition,
    /// System size.
    pub n: usize,
    /// Agreement bound.
    pub k: usize,
    /// Fault budget.
    pub t: usize,
    /// Which protocol ran, e.g. `"Protocol A"`.
    pub protocol: &'static str,
    /// Completed runs.
    pub runs: usize,
    /// Runs violating any `SC` condition (should be 0).
    pub violations: usize,
    /// First violation message, if any.
    pub first_violation: Option<String>,
}

impl CellValidation {
    /// True when every run satisfied the specification.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Fault-plan variants cycled through per seed, crash models.
fn crash_plan(n: usize, t: usize, seed: u64) -> FaultPlan {
    match seed % 3 {
        0 => plans::all_correct(n),
        1 => plans::last_t_silent(n, t),
        _ => {
            // Crash the first t processes with staggered budgets so that
            // partial broadcasts occur.
            let mut plan = plans::all_correct(n);
            for (i, pid) in (0..t).enumerate() {
                plan.set(
                    pid,
                    kset_sim::FaultSpec::Crash {
                        after_actions: 1 + (seed + i as u64) % (n as u64 + 2),
                    },
                );
            }
            plan
        }
    }
}

/// Fault-plan variants for Byzantine models (strategies chosen by caller).
fn byz_plan(n: usize, t: usize, seed: u64) -> FaultPlan {
    match seed % 2 {
        0 => plans::all_correct(n),
        _ => plans::first_t_byzantine(n, t),
    }
}

/// Partition-style delay rules for a message-passing run: on every fifth
/// seed, split the processes into groups, each isolated (except from the
/// faulty set) until it decides — legal asynchronous behaviour that mirrors
/// the paper's proof schedules. Other seeds run unshaped.
fn mp_schedule_rules(n: usize, seed: u64, faulty: &[usize]) -> Vec<DelayRule> {
    if seed % 5 != 4 {
        return Vec::new();
    }
    let groups = 2 + (seed as usize / 5) % 2;
    let mut rules = Vec::new();
    for g in 0..groups {
        let members: Vec<usize> = (0..n).filter(|p| p % groups == g).collect();
        if !members.is_empty() {
            rules.push(DelayRule::isolate_with_allies(members, faulty.to_vec()));
        }
    }
    rules
}

/// Freeze-style delay rules for a shared-memory run: on every fifth seed,
/// the top half of the processes is frozen until the bottom half decided
/// (the Lemma 4.3 / 4.9 shape). The rules carry an expiry deadline because
/// shared-memory protocols busy-wait: when the bottom half *cannot* decide
/// alone (e.g. it is below a quorum), its polling keeps the run "live"
/// forever and only a finite delay bound lets the frozen half proceed.
fn sm_schedule_rules(n: usize, seed: u64) -> Vec<DelayRule> {
    if seed % 5 != 4 || n < 2 {
        return Vec::new();
    }
    let first: Vec<usize> = (0..n / 2).collect();
    (n / 2..n)
        .map(|p| {
            DelayRule::freeze_process(p, Until::AllDecided(first.clone())).expires_at(5_000)
        })
        .collect()
}

fn check_outcome(
    spec: &ProblemSpec,
    inputs: &[u64],
    decisions: std::collections::BTreeMap<usize, u64>,
    faulty: &[usize],
    terminated: bool,
) -> Result<(), String> {
    let record = RunRecord::new(inputs.to_vec())
        .with_faulty(faulty.iter().copied())
        .with_decisions(decisions)
        .with_terminated(terminated);
    let report = spec.check(&record);
    if report.is_ok() {
        Ok(())
    } else {
        Err(report.to_string())
    }
}

/// Everything observed about one run of a cell's protocol: the checker's
/// verdict (folded into `outcome.violation`), the kernel counters, and the
/// optional metrics. This is what `validate_cell_with` turns into a
/// [`crate::record_sink::RunRecord`].
struct RunReport {
    outcome: RunOutcome,
    stats: RunStats,
    metrics: Option<RunMetrics>,
}

/// Substrate-agnostic: MP call sites pass `&MpOutcome<u64>` directly (an
/// alias of the generic outcome); SM call sites coerce through
/// [`kset_shmem::SmOutcome`]'s `Deref` impl, shedding the register
/// snapshot.
fn report(spec: &ProblemSpec, inputs: &[u64], outcome: &Outcome<u64>) -> RunReport {
    RunReport {
        outcome: RunOutcome {
            terminated: outcome.terminated,
            decided: outcome.decisions.len(),
            distinct_decisions: outcome.correct_decision_set().len(),
            violation: check_outcome(
                spec,
                inputs,
                outcome.decisions.clone(),
                &outcome.faulty,
                outcome.terminated,
            )
            .err(),
        },
        stats: outcome.stats,
        metrics: outcome.metrics.clone(),
    }
}

/// Inputs for a run: unanimous on even seeds (exercising the V2-style
/// premises), spread otherwise.
fn inputs_for(n: usize, seed: u64) -> Vec<u64> {
    if seed % 2 == 0 {
        vec![seed % 7; n]
    } else {
        (0..n).map(|p| (p as u64 + seed) % (n as u64)).collect()
    }
}

/// Validates one solvable cell with `seeds` randomized runs.
///
/// Returns `None` when the cell is not classified solvable, or when its
/// citation has no executable runner (the trivial fringes).
///
/// # Errors
///
/// Propagates simulator errors (event-limit exhaustion etc.) — these are
/// harness failures, distinct from specification violations, which are
/// *counted* in the returned [`CellValidation`].
pub fn validate_cell(
    model: Model,
    validity: ValidityCondition,
    n: usize,
    k: usize,
    t: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Option<CellValidation>, SimError> {
    validate_cell_with(model, validity, n, k, t, seeds, MetricsConfig::disabled(), |_| {})
}

/// [`validate_cell`] with per-run observability: collects kernel metrics
/// according to `metrics` and hands every run to `on_record` as a
/// [`crate::record_sink::RunRecord`] (in seed order), ready for JSONL
/// emission.
///
/// # Errors
///
/// See [`validate_cell`].
#[allow(clippy::too_many_arguments)]
pub fn validate_cell_with(
    model: Model,
    validity: ValidityCondition,
    n: usize,
    k: usize,
    t: usize,
    seeds: std::ops::Range<u64>,
    metrics: MetricsConfig,
    mut on_record: impl FnMut(crate::record_sink::RunRecord),
) -> Result<Option<CellValidation>, SimError> {
    let CellClass::Solvable(citation) = classify(model, validity, n, k, t) else {
        return Ok(None);
    };
    let spec = ProblemSpec::new(n, k, t, validity).expect("domain-checked parameters");

    let protocol = protocol_name(citation.lemma);
    let Some(protocol) = protocol else {
        return Ok(None); // fringe citations have no single runner
    };

    let mut runs = 0;
    let mut violations = 0;
    let mut first_violation = None;
    for seed in seeds {
        let inputs = inputs_for(n, seed);
        let report = run_cell(model, protocol, &spec, &inputs, n, k, t, seed, metrics)?;
        runs += 1;
        if let Some(msg) = &report.outcome.violation {
            violations += 1;
            if first_violation.is_none() {
                first_violation = Some(format!("seed {seed}: {msg}"));
            }
        }
        on_record(crate::record_sink::RunRecord::new(
            model,
            validity,
            n,
            k,
            t,
            seed,
            protocol,
            report.outcome,
            report.stats,
            report.metrics,
        ));
    }
    Ok(Some(CellValidation {
        model,
        validity,
        n,
        k,
        t,
        protocol,
        runs,
        violations,
        first_violation,
    }))
}

/// Maps a lemma citation to the protocol it names.
fn protocol_name(lemma: &str) -> Option<&'static str> {
    Some(match lemma {
        "Lemma 3.1" => "FloodMin",
        "Lemma 4.4" => "SIM(FloodMin)",
        "Lemma 3.7" | "Lemma 3.12" | "Lemma 3.13" => "Protocol A",
        "Lemma 3.8" => "Protocol B",
        "Lemma 4.6" => "SIM(Protocol B)",
        "Lemma 3.15" => "Protocol C",
        "Lemma 4.11" => "SIM(Protocol C)",
        "Lemma 3.16" => "Protocol D",
        "Lemma 4.13" => "SIM(Protocol D)",
        "Lemma 4.5" | "Lemma 4.10" => "Protocol E",
        "Lemma 4.7" | "Lemma 4.12" => "Protocol F",
        _ => return None,
    })
}

/// Event limit for SIMULATION runs (polling-heavy).
const SIM_EVENT_LIMIT: u64 = 20_000_000;

#[allow(clippy::too_many_arguments)]
fn run_cell(
    model: Model,
    protocol: &'static str,
    spec: &ProblemSpec,
    inputs: &[u64],
    n: usize,
    _k: usize,
    t: usize,
    seed: u64,
    metrics: MetricsConfig,
) -> Result<RunReport, SimError> {
    let byz = model.is_byzantine();
    let plan = if byz {
        byz_plan(n, t, seed)
    } else {
        crash_plan(n, t, seed)
    };
    let faulty = plan.faulty_set();
    let is_byz_slot = |p: usize| faulty.contains(&p) && byz;

    match protocol {
        "FloodMin" => {
            let outcome = MpSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(mp_schedule_rules(n, seed, &faulty))
                .run_with(|p| FloodMin::boxed(n, t, inputs[p]))?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol A" => {
            let outcome = MpSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(mp_schedule_rules(n, seed, &faulty))
                .run_with(|p| -> DynMpProcess<u64, u64> {
                    if is_byz_slot(p) {
                        // Alternate silent and group-mimicking adversaries.
                        if seed % 4 < 2 {
                            Box::new(Silent::new())
                        } else {
                            Box::new(GroupMimic::from_assignment(
                                (0..n).map(|q| (q as u64 + seed) % 5).collect(),
                            ))
                        }
                    } else {
                        ProtocolA::boxed(n, t, inputs[p], DEFAULT_VALUE)
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol B" => {
            let outcome = MpSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(mp_schedule_rules(n, seed, &faulty))
                .run_with(|p| ProtocolB::boxed(n, t, inputs[p], DEFAULT_VALUE))?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol C" => {
            let l = math::protocol_c_witness(n, spec.k(), t)
                .expect("cell classified solvable by Lemma 3.15");
            let outcome = MpSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(mp_schedule_rules(n, seed, &faulty))
                .run_with(|p| -> DynMpProcess<CMsg<u64>, u64> {
                    if is_byz_slot(p) {
                        if seed % 4 < 2 {
                            Box::new(Silent::new())
                        } else {
                            Box::new(EchoSplitter::new(vec![seed, seed + 1]))
                        }
                    } else {
                        ProtocolC::boxed(n, t, l, inputs[p], DEFAULT_VALUE)
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol D" => {
            let outcome = MpSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(mp_schedule_rules(n, seed, &faulty))
                .run_with(|p| -> DynMpProcess<kset_protocols::DMsg<u64>, u64> {
                    if is_byz_slot(p) {
                        Box::new(Silent::new())
                    } else {
                        ProtocolD::boxed(n, t, inputs[p])
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol E" => {
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| -> DynSmProcess<u64, u64> {
                    if is_byz_slot(p) {
                        if seed % 4 < 2 {
                            Box::new(SmSilent::new())
                        } else {
                            Box::new(Scribbler::new(vec![seed, seed + 1, seed + 2]))
                        }
                    } else {
                        ProtocolE::boxed(n, t, inputs[p], DEFAULT_VALUE)
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "Protocol F" => {
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| -> DynSmProcess<u64, u64> {
                    if is_byz_slot(p) {
                        if seed % 4 < 2 {
                            Box::new(SmSilent::new())
                        } else {
                            Box::new(Scribbler::new(vec![seed, seed + 1]))
                        }
                    } else {
                        ProtocolF::boxed(n, t, inputs[p], DEFAULT_VALUE)
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "SIM(FloodMin)" => {
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .event_limit(SIM_EVENT_LIMIT)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| Simulated::boxed(n, FloodMin::new(n, t, inputs[p])))?;
            Ok(report(spec, inputs, &outcome))
        }
        "SIM(Protocol B)" => {
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .event_limit(SIM_EVENT_LIMIT)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| {
                    Simulated::boxed(n, ProtocolB::new(n, t, inputs[p], DEFAULT_VALUE))
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "SIM(Protocol C)" => {
            let l = math::protocol_c_witness(n, spec.k(), t)
                .expect("cell classified solvable by Lemma 4.11");
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .event_limit(SIM_EVENT_LIMIT)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| -> DynSmProcess<SimSlot<CMsg<u64>>, u64> {
                    if is_byz_slot(p) {
                        Box::new(SmSilent::new())
                    } else {
                        Simulated::boxed(n, ProtocolC::new(n, t, l, inputs[p], DEFAULT_VALUE))
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        "SIM(Protocol D)" => {
            let outcome = SmSystem::new(n)
                .seed(seed)
                .metrics(metrics)
                .event_limit(SIM_EVENT_LIMIT)
                .fault_plan(plan)
                .delay_rules(sm_schedule_rules(n, seed))
                .run_with(|p| -> DynSmProcess<SimSlot<kset_protocols::DMsg<u64>>, u64> {
                    if is_byz_slot(p) {
                        Box::new(SmSilent::new())
                    } else {
                        Simulated::boxed(n, ProtocolD::new(n, t, inputs[p]))
                    }
                })?;
            Ok(report(spec, inputs, &outcome))
        }
        other => unreachable!("no runner for {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floodmin_cell_validates_cleanly() {
        let v = validate_cell(Model::MpCrash, ValidityCondition::RV1, 8, 4, 3, 0..6)
            .unwrap()
            .expect("cell is solvable");
        assert_eq!(v.protocol, "FloodMin");
        assert_eq!(v.runs, 6);
        assert!(v.clean(), "{:?}", v.first_violation);
    }

    #[test]
    fn impossible_cell_returns_none() {
        let v = validate_cell(Model::MpCrash, ValidityCondition::RV1, 8, 4, 4, 0..2).unwrap();
        assert!(v.is_none());
    }

    #[test]
    fn protocol_e_cell_validates_at_huge_t() {
        let v = validate_cell(Model::SmCrash, ValidityCondition::RV2, 8, 2, 7, 0..6)
            .unwrap()
            .expect("Protocol E cell");
        assert_eq!(v.protocol, "Protocol E");
        assert!(v.clean(), "{:?}", v.first_violation);
    }

    #[test]
    fn byzantine_wv2_cell_validates() {
        // MP/Byz WV2 via Protocol A: n = 8, t = 2 (2t < n), need
        // (k-1)(n-2t) >= n-t: (k-1)*4 >= 6 -> k >= 3.
        let v = validate_cell(Model::MpByzantine, ValidityCondition::WV2, 8, 3, 2, 0..6)
            .unwrap()
            .expect("Protocol A byz cell");
        assert_eq!(v.protocol, "Protocol A");
        assert!(v.clean(), "{:?}", v.first_violation);
    }

    #[test]
    fn simulated_cell_validates() {
        let v = validate_cell(Model::SmCrash, ValidityCondition::RV1, 6, 3, 2, 0..3)
            .unwrap()
            .expect("SIM(FloodMin) cell");
        assert_eq!(v.protocol, "SIM(FloodMin)");
        assert!(v.clean(), "{:?}", v.first_violation);
    }
}
