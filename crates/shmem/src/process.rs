//! The shared-memory process trait and its effect context.

use std::ops::Deref;

use kset_sim::{CallInfo, ContextCore, ProcessId};

use crate::register::RegisterId;

/// Buffered effect produced by a shared-memory process callback.
///
/// Public so that *custom runtimes* — most importantly the ABD register
/// emulation in `kset-protocols`, which executes shared-memory protocols
/// over message passing — can build an [`SmContext`], run a callback, and
/// translate the buffered effects into their own substrate's operations.
#[derive(Clone, Debug)]
pub enum RawSmAction<Val, Out> {
    /// Read a register (any owner's).
    Read(RegisterId),
    /// Write a value to the caller's own register at the given slot.
    Write(usize, Val),
    /// Irreversibly decide a value.
    Decide(Out),
    /// Request a spontaneous `on_step` callback.
    ScheduleStep,
}

/// The effect interface handed to every [`SmProcess`] callback.
///
/// As in the message-passing model, effects are buffered and applied after
/// the callback returns, each costing one atomic action against the
/// process's crash budget.
#[derive(Debug)]
pub struct SmContext<'a, Val, Out> {
    core: ContextCore<'a, RawSmAction<Val, Out>>,
}

/// The identity accessors (`me`, `n`, `now`, `has_decided`) are provided by
/// the shared [`ContextCore`].
impl<'a, Val, Out> Deref for SmContext<'a, Val, Out> {
    type Target = ContextCore<'a, RawSmAction<Val, Out>>;

    fn deref(&self) -> &Self::Target {
        &self.core
    }
}

impl<'a, Val: Clone, Out> SmContext<'a, Val, Out> {
    /// Builds a context over a caller-owned action buffer.
    ///
    /// Normally only the [`crate::SmSystem`] runtime does this; custom
    /// runtimes (the ABD emulation) may construct contexts to drive an
    /// [`SmProcess`] over a different substrate, applying the buffered
    /// [`RawSmAction`]s themselves afterwards.
    pub fn new(
        me: ProcessId,
        n: usize,
        now: u64,
        decided: bool,
        actions: &'a mut Vec<RawSmAction<Val, Out>>,
    ) -> Self {
        let info = CallInfo {
            me,
            n,
            now,
            decided,
        };
        SmContext {
            core: ContextCore::new(info, actions),
        }
    }

    /// Issues an asynchronous read of `reg`; the result arrives via
    /// [`SmProcess::on_read`] whenever the scheduler fires the response.
    pub fn read(&mut self, reg: RegisterId) {
        self.core.push(RawSmAction::Read(reg));
    }

    /// Issues a read of every process's register at `slot` — one *scan* in
    /// the paper's sense. Responses arrive individually and unordered.
    pub fn read_all(&mut self, slot: usize) {
        for owner in 0..self.core.n() {
            self.core.push(RawSmAction::Read(RegisterId::new(owner, slot)));
        }
    }

    /// Writes `value` into this process's own register at `slot`.
    ///
    /// The value becomes visible immediately (the write's linearization
    /// point); [`SmProcess::on_write_ack`] fires later when the operation
    /// response is scheduled. Only the caller's own registers are reachable
    /// through this API — single-writer by construction.
    pub fn write(&mut self, slot: usize, value: Val) {
        self.core.push(RawSmAction::Write(slot, value));
    }

    /// Irreversibly decides `value` (first decision wins).
    pub fn decide(&mut self, value: Out) {
        self.core.mark_decided();
        self.core.push(RawSmAction::Decide(value));
    }

    /// Requests another spontaneous [`SmProcess::on_step`] callback.
    pub fn schedule_step(&mut self) {
        self.core.push(RawSmAction::ScheduleStep);
    }
}

/// A process of the asynchronous shared-memory model.
///
/// The runtime guarantees: [`SmProcess::on_start`] exactly once and first;
/// one [`SmProcess::on_read`] per issued read, carrying the register content
/// at the response's firing time (`None` = never written); one
/// [`SmProcess::on_write_ack`] per issued write, after the value is visible.
pub trait SmProcess {
    /// The type stored in registers.
    type Val: Clone;
    /// The decision value type.
    type Output;

    /// The process's first step.
    fn on_start(&mut self, ctx: &mut SmContext<'_, Self::Val, Self::Output>);

    /// Completion of a read of `reg` returning `value`.
    fn on_read(
        &mut self,
        reg: RegisterId,
        value: Option<Self::Val>,
        ctx: &mut SmContext<'_, Self::Val, Self::Output>,
    );

    /// Completion of this process's write to its own register `slot`.
    /// Default: do nothing.
    fn on_write_ack(&mut self, slot: usize, ctx: &mut SmContext<'_, Self::Val, Self::Output>) {
        let _ = (slot, ctx);
    }

    /// A spontaneous local step (only if requested). Default: do nothing.
    fn on_step(&mut self, ctx: &mut SmContext<'_, Self::Val, Self::Output>) {
        let _ = ctx;
    }

    /// A stable fingerprint of this process's protocol state, used by the
    /// model checker to deduplicate explored system states (see
    /// `kset_sim::StateDigest` and `SmSystem::run_digested`).
    ///
    /// Two system states whose digests agree are treated as interchangeable
    /// by the checker, so an override must hash *every* state field that
    /// influences future behaviour. The default (a constant) makes distinct
    /// internal states collide and is only safe when state-digest
    /// deduplication is disabled — every protocol in this workspace
    /// overrides it.
    fn state_digest(&self) -> u64 {
        0
    }

    /// A boxed copy of this process in its *current* state, used by the
    /// model checker's forking executor to snapshot a run mid-execution.
    ///
    /// The default (`None`) marks the process as unforkable, which silently
    /// degrades the checker to replay-from-root execution — always sound,
    /// just slower. Protocols with `Clone` state machines should override
    /// this with `Some(Box::new(self.clone()))`.
    fn fork(&self) -> Option<DynSmProcess<Self::Val, Self::Output>> {
        None
    }
}

/// Boxed process with erased concrete type, the unit the runtime stores.
pub type DynSmProcess<Val, Out> = Box<dyn SmProcess<Val = Val, Output = Out>>;

impl<Val: Clone, Out> SmProcess for DynSmProcess<Val, Out> {
    type Val = Val;
    type Output = Out;

    fn on_start(&mut self, ctx: &mut SmContext<'_, Val, Out>) {
        (**self).on_start(ctx)
    }

    fn on_read(&mut self, reg: RegisterId, value: Option<Val>, ctx: &mut SmContext<'_, Val, Out>) {
        (**self).on_read(reg, value, ctx)
    }

    fn on_write_ack(&mut self, slot: usize, ctx: &mut SmContext<'_, Val, Out>) {
        (**self).on_write_ack(slot, ctx)
    }

    fn on_step(&mut self, ctx: &mut SmContext<'_, Val, Out>) {
        (**self).on_step(ctx)
    }

    fn state_digest(&self) -> u64 {
        (**self).state_digest()
    }

    fn fork(&self) -> Option<DynSmProcess<Val, Out>> {
        (**self).fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_all_scans_every_owner_at_slot() {
        let mut buf: Vec<RawSmAction<u8, u8>> = Vec::new();
        let mut ctx = SmContext::new(1, 3, 0, false, &mut buf);
        ctx.read_all(2);
        let regs: Vec<RegisterId> = buf
            .iter()
            .map(|a| match a {
                RawSmAction::Read(r) => *r,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(
            regs,
            vec![
                RegisterId::new(0, 2),
                RegisterId::new(1, 2),
                RegisterId::new(2, 2)
            ]
        );
    }

    #[test]
    fn write_buffers_own_slot_only() {
        let mut buf: Vec<RawSmAction<u8, u8>> = Vec::new();
        let mut ctx = SmContext::new(2, 3, 0, false, &mut buf);
        ctx.write(1, 9);
        assert!(matches!(buf[0], RawSmAction::Write(1, 9)));
    }

    #[test]
    fn decide_updates_view() {
        let mut buf: Vec<RawSmAction<u8, u8>> = Vec::new();
        let mut ctx = SmContext::new(0, 1, 0, false, &mut buf);
        assert!(!ctx.has_decided());
        ctx.decide(4);
        assert!(ctx.has_decided());
    }

    #[test]
    fn identity_accessors() {
        let mut buf: Vec<RawSmAction<u8, u8>> = Vec::new();
        let ctx = SmContext::new(2, 7, 42, false, &mut buf);
        assert_eq!(ctx.me(), 2);
        assert_eq!(ctx.n(), 7);
        assert_eq!(ctx.now(), 42);
    }
}
