//! The shared-memory runtime: the [`SmSubstrate`] implementation plus the
//! [`SmSystem`] facade over the substrate-generic [`kset_sim::System`].

use std::marker::PhantomData;

use kset_sim::{
    CallInfo, DelayRule, Effect, EventKind, FaultPlan, Fnv64, MetricsConfig, ProcessId, Scheduler,
    Session, SimError, StateDigest, Substrate, SubstrateAdv, SubstrateDigest, SubstrateFork,
    System,
};

use crate::outcome::SmOutcome;
use crate::process::{DynSmProcess, RawSmAction, SmContext, SmProcess};
use crate::register::{Memory, RegisterId};

/// Substrate payloads of the shared-memory model: pending operation
/// responses.
#[derive(Clone, Copy, Debug)]
pub enum SmOp {
    /// Response to a read of the named register (content resolved when the
    /// response fires — its linearization point).
    ReadResp(RegisterId),
    /// Response to a write to the named own-register slot.
    WriteAck(usize),
}

/// The shared-memory substrate: single-writer multi-reader atomic registers.
///
/// Plugged into [`kset_sim::System`], this drives [`crate::SmProcess`]
/// state machines: the run's shared state is the register store
/// ([`Memory`]), a `Write` action linearizes at apply time, and a pending
/// read resolves its value when the response event fires. [`SmSystem`] is
/// the ready-made facade; use `SmSubstrate` directly only in
/// substrate-generic tooling.
pub struct SmSubstrate<Val, Out>(PhantomData<fn() -> (Val, Out)>);

impl<Val, Out> std::fmt::Debug for SmSubstrate<Val, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SmSubstrate")
    }
}

impl<Val: Clone, Out> Substrate for SmSubstrate<Val, Out> {
    type Payload = SmOp;
    type Process = DynSmProcess<Val, Out>;
    type Action = RawSmAction<Val, Out>;
    type Output = Out;
    type Shared = Memory<Val>;

    fn new_shared(_n: usize) -> Self::Shared {
        Memory::new()
    }

    fn on_start(
        proc: &mut Self::Process,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = SmContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_start(&mut ctx);
    }

    fn on_step(
        proc: &mut Self::Process,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = SmContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_step(&mut ctx);
    }

    fn on_payload(
        proc: &mut Self::Process,
        op: SmOp,
        _source: Option<ProcessId>,
        shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = SmContext::new(info.me, info.n, info.now, info.decided, out);
        match op {
            SmOp::ReadResp(reg) => {
                // Linearization point of the read: right now.
                let value = shared.read(reg);
                proc.on_read(reg, value, &mut ctx)
            }
            SmOp::WriteAck(slot) => proc.on_write_ack(slot, &mut ctx),
        }
    }

    fn apply(
        action: Self::Action,
        me: ProcessId,
        _n: usize,
        shared: &mut Self::Shared,
    ) -> Result<Effect<SmOp, Out>, SimError> {
        Ok(match action {
            RawSmAction::Read(reg) => Effect::Post {
                kind: EventKind::OpResponse,
                target: me,
                source: reg.owner,
                payload: SmOp::ReadResp(reg),
            },
            RawSmAction::Write(slot, value) => {
                // Linearization point of the write: right now.
                shared.write(RegisterId::new(me, slot), value);
                Effect::Post {
                    kind: EventKind::OpResponse,
                    target: me,
                    source: me,
                    payload: SmOp::WriteAck(slot),
                }
            }
            RawSmAction::Decide(v) => Effect::Decide(v),
            RawSmAction::ScheduleStep => Effect::Step,
        })
    }
}

/// Byzantine in-transit corruption for `u64`-valued registers: a forged
/// read response resolves to the adversary's value instead of the register
/// content, at the same linearization point. This models a Byzantine
/// register *owner* presenting inconsistent values to different readers —
/// single-writer registers make the owner the only process whose deviation
/// a read can expose. Write acknowledgements carry no corruptible value and
/// deliver faithfully.
impl<Out> SubstrateAdv for SmSubstrate<u64, Out> {
    fn on_forged(
        proc: &mut Self::Process,
        op: SmOp,
        forged: u64,
        _source: Option<ProcessId>,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = SmContext::new(info.me, info.n, info.now, info.decided, out);
        match op {
            SmOp::ReadResp(reg) => proc.on_read(reg, Some(forged), &mut ctx),
            SmOp::WriteAck(slot) => proc.on_write_ack(slot, &mut ctx),
        }
    }
}

impl<Val, Out> SubstrateDigest for SmSubstrate<Val, Out>
where
    Val: Clone + StateDigest,
    Out: StateDigest,
{
    fn digest_process(proc: &Self::Process) -> u64 {
        proc.state_digest()
    }

    fn digest_payload(op: &SmOp, h: &mut Fnv64) {
        match op {
            SmOp::ReadResp(reg) => {
                h.write_u8(2);
                h.write_usize(reg.owner);
                h.write_usize(reg.slot);
            }
            SmOp::WriteAck(slot) => {
                h.write_u8(3);
                h.write_usize(*slot);
            }
        }
    }

    fn digest_shared(memory: &Self::Shared, h: &mut Fnv64) {
        // Register store: BTreeMap iteration order is deterministic.
        for (reg, value) in memory.cells() {
            h.write_usize(reg.owner);
            h.write_usize(reg.slot);
            value.digest_into(h);
        }
    }

    fn digest_shared_of(memory: &Self::Shared, owner: ProcessId, h: &mut Fnv64) {
        // The single-writer model partitions the store by owner, so a
        // process's id-free component is its own registers as (slot, value)
        // pairs — the owner id is exactly what the canonical digest strips.
        for (reg, value) in memory.cells_of(owner) {
            h.write_usize(reg.slot);
            value.digest_into(h);
        }
    }

    fn digest_payload_symm(op: &SmOp, h: &mut Fnv64) {
        match op {
            SmOp::ReadResp(reg) => {
                // `reg.owner` is always the event's source process (see
                // `apply`), which the canonical digest re-keys by its
                // id-free component; only the slot stays in the payload.
                h.write_u8(2);
                h.write_usize(reg.slot);
            }
            SmOp::WriteAck(slot) => {
                h.write_u8(3);
                h.write_usize(*slot);
            }
        }
    }
}

impl<Val, Out> SubstrateFork for SmSubstrate<Val, Out>
where
    Val: Clone + StateDigest,
    Out: StateDigest,
{
    fn fork_process(proc: &Self::Process) -> Option<Self::Process> {
        proc.fork()
    }

    fn fork_shared(shared: &Self::Shared) -> Self::Shared {
        shared.clone()
    }
}

/// Builder/runtime for one run of a shared-memory system.
///
/// A thin facade binding [`kset_sim::System`] to the [`SmSubstrate`],
/// mirroring `kset_net::MpSystem` in configuration style; see the
/// crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct SmSystem(System);

impl SmSystem {
    /// A system of `n` processes, all correct, randomly scheduled (seed 0).
    pub fn new(n: usize) -> Self {
        SmSystem(System::new(n))
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.0.n()
    }

    /// Sets the fault plan (size must equal `n`, checked at run time).
    pub fn fault_plan(self, plan: FaultPlan) -> Self {
        SmSystem(self.0.fault_plan(plan))
    }

    /// Uses an explicit scheduler (adversary).
    pub fn scheduler(self, scheduler: impl Scheduler + 'static) -> Self {
        SmSystem(self.0.scheduler(scheduler))
    }

    /// Shorthand for a [`kset_sim::RandomScheduler`] with the given seed.
    pub fn seed(self, seed: u64) -> Self {
        SmSystem(self.0.seed(seed))
    }

    /// Adds a delay rule.
    pub fn delay_rule(self, rule: DelayRule) -> Self {
        SmSystem(self.0.delay_rule(rule))
    }

    /// Adds several delay rules at once.
    pub fn delay_rules(self, rules: impl IntoIterator<Item = DelayRule>) -> Self {
        SmSystem(self.0.delay_rules(rules))
    }

    /// Overrides the kernel event limit.
    pub fn event_limit(self, limit: u64) -> Self {
        SmSystem(self.0.event_limit(limit))
    }

    /// Enables trace recording with the given capacity.
    pub fn trace_capacity(self, capacity: usize) -> Self {
        SmSystem(self.0.trace_capacity(capacity))
    }

    /// Configures metrics collection; the outcome's
    /// [`metrics`](kset_sim::Outcome::metrics) field is populated when
    /// enabled.
    pub fn metrics(self, config: MetricsConfig) -> Self {
        SmSystem(self.0.metrics(config))
    }

    /// Runs the system, building each process from a factory closure.
    ///
    /// # Errors
    ///
    /// See [`SmSystem::run`].
    pub fn run_with<Val: Clone, Out>(
        self,
        mut factory: impl FnMut(ProcessId) -> DynSmProcess<Val, Out>,
    ) -> Result<SmOutcome<Val, Out>, SimError> {
        let procs = (0..self.0.n()).map(&mut factory).collect();
        self.run(procs)
    }

    /// Runs the system to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] for size mismatches or `n == 0`.
    /// * [`SimError::EventLimitExceeded`] if the protocol livelocks.
    pub fn run<Val: Clone, Out>(
        self,
        procs: Vec<DynSmProcess<Val, Out>>,
    ) -> Result<SmOutcome<Val, Out>, SimError> {
        let (run, memory) = self.0.run_shared::<SmSubstrate<Val, Out>>(procs)?;
        Ok(SmOutcome {
            memory: memory.snapshot(),
            run,
        })
    }

    /// Runs the system like [`SmSystem::run`], additionally computing a
    /// stable digest of the whole system state after every fired event.
    ///
    /// `digests[i]` fingerprints the state reached after the `i`-th event:
    /// every process's [`crate::SmProcess::state_digest`], its crashed flag and
    /// decision, the register store contents, plus an order-insensitive
    /// multiset hash of the pending event pool. Event ids are excluded —
    /// see [`kset_sim::System::run_digested`] for the rationale. Digests
    /// are maintained incrementally (only the dispatched process
    /// re-hashes; the pool hash is a running sum), with values identical
    /// to a from-scratch recomputation.
    ///
    /// # Errors
    ///
    /// See [`SmSystem::run`].
    pub fn run_digested<Val, Out>(
        self,
        procs: Vec<DynSmProcess<Val, Out>>,
    ) -> Result<(SmOutcome<Val, Out>, Vec<u64>), SimError>
    where
        Val: Clone + StateDigest,
        Out: StateDigest,
    {
        let (run, digests, memory) = self.0.run_digested_shared::<SmSubstrate<Val, Out>>(procs)?;
        Ok((
            SmOutcome {
                memory: memory.snapshot(),
                run,
            },
            digests,
        ))
    }

    /// Builds a steppable [`SmSession`] instead of running to completion:
    /// drive it with [`kset_sim::Session::step`] until it reports
    /// [`kset_sim::Poll::Decided`] or [`kset_sim::Poll::Idle`], then
    /// collect the outcome with [`kset_sim::Session::finish`] (the final
    /// register store is the session's shared state).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] as for [`SmSystem::run`]; run-time
    /// errors surface from `step` instead.
    pub fn session<Val: Clone, Out>(
        self,
        procs: Vec<DynSmProcess<Val, Out>>,
    ) -> Result<SmSession<Val, Out>, SimError> {
        self.0.session::<SmSubstrate<Val, Out>>(procs)
    }
}

/// A steppable shared-memory run: [`kset_sim::Session`] bound to the
/// [`SmSubstrate`], as built by [`SmSystem::session`].
pub type SmSession<Val, Out> = Session<SmSubstrate<Val, Out>>;
#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SmProcess;
    use kset_sim::FaultSpec;

    /// Writes its input to slot 0, scans everyone's slot 0 once, and decides
    /// the smallest value it managed to read.
    struct ScanOnceMin {
        input: u64,
        pending: usize,
        best: Option<u64>,
    }

    impl ScanOnceMin {
        fn boxed(input: u64) -> DynSmProcess<u64, u64> {
            Box::new(ScanOnceMin {
                input,
                pending: 0,
                best: None,
            })
        }
    }

    impl SmProcess for ScanOnceMin {
        type Val = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
            ctx.write(0, self.input);
            self.pending = ctx.n();
            ctx.read_all(0);
        }

        fn on_read(&mut self, _reg: RegisterId, value: Option<u64>, ctx: &mut SmContext<'_, u64, u64>) {
            if let Some(v) = value {
                self.best = Some(self.best.map_or(v, |b| b.min(v)));
            }
            self.pending -= 1;
            if self.pending == 0 {
                // Own write precedes the scan, so best is never empty.
                ctx.decide(self.best.expect("scan saw at least own value"));
            }
        }
    }

    #[test]
    fn failure_free_scan_terminates_and_sees_own_write() {
        let outcome = SmSystem::new(4)
            .seed(8)
            .run_with(|p| ScanOnceMin::boxed(100 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions.len(), 4);
        // Every decision is one of the written inputs.
        for v in outcome.decisions.values() {
            assert!((100..104).contains(v));
        }
        // All four registers hold their writers' inputs at the end.
        for p in 0..4 {
            assert_eq!(outcome.memory[&RegisterId::new(p, 0)], 100 + p as u64);
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            SmSystem::new(5)
                .seed(seed)
                .run_with(|p| ScanOnceMin::boxed(p as u64))
                .unwrap()
        };
        assert_eq!(run(3).decisions, run(3).decisions);
    }

    #[test]
    fn silent_crash_leaves_register_unwritten() {
        let outcome = SmSystem::new(3)
            .seed(1)
            .fault_plan(FaultPlan::silent_crashes(3, &[1]))
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert!(!outcome.memory.contains_key(&RegisterId::new(1, 0)));
        assert!(!outcome.decisions.contains_key(&1));
    }

    #[test]
    fn crash_after_write_leaves_value_visible() {
        // Budget 2: start handler (1) + the write invocation (1). The
        // process crashes before issuing its scan, but the write landed.
        let mut plan = FaultPlan::all_correct(3);
        plan.set(0, FaultSpec::Crash { after_actions: 2 });
        let outcome = SmSystem::new(3)
            .seed(2)
            .fault_plan(plan)
            .run_with(|p| ScanOnceMin::boxed(10 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.memory[&RegisterId::new(0, 0)], 10);
        assert!(!outcome.decisions.contains_key(&0));
    }

    #[test]
    fn reads_linearize_at_response_time() {
        use kset_sim::{FifoScheduler, Until};
        // Freeze process 1 until process 0 decided: by the time 1's reads
        // fire, 0's write is visible, so 1 must read 0's value.
        let outcome = SmSystem::new(2)
            .scheduler(FifoScheduler::new())
            .delay_rule(DelayRule::freeze_process(1, Until::AllDecided(vec![0])))
            .run_with(|p| ScanOnceMin::boxed(if p == 0 { 1 } else { 2 }))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions[&1], 1);
    }

    #[test]
    fn sequential_reads_by_one_process_never_go_backwards() {
        /// Writer bumps its register through 0..WRITES; the reader issues
        /// strictly sequential reads (next read only after the previous
        /// response) and asserts the observed values are non-decreasing —
        /// the single-reader face of register atomicity.
        const WRITES: u64 = 8;
        struct Bumper {
            next: u64,
        }
        impl SmProcess for Bumper {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.write(0, 0);
                self.next = 1;
            }
            fn on_read(&mut self, _r: RegisterId, _v: Option<u64>, _c: &mut SmContext<'_, u64, u64>) {}
            fn on_write_ack(&mut self, _s: usize, ctx: &mut SmContext<'_, u64, u64>) {
                if self.next < WRITES {
                    ctx.write(0, self.next);
                    self.next += 1;
                } else {
                    ctx.decide(self.next);
                }
            }
        }
        struct MonotoneReader {
            last: Option<u64>,
            reads_left: u32,
        }
        impl SmProcess for MonotoneReader {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.read(RegisterId::new(0, 0));
            }
            fn on_read(&mut self, reg: RegisterId, v: Option<u64>, ctx: &mut SmContext<'_, u64, u64>) {
                if let Some(v) = v {
                    if let Some(last) = self.last {
                        assert!(v >= last, "read went backwards: {last} then {v}");
                    }
                    self.last = Some(v);
                }
                self.reads_left -= 1;
                if self.reads_left == 0 {
                    ctx.decide(self.last.unwrap_or(0));
                } else {
                    ctx.read(reg);
                }
            }
        }
        for seed in 0..20 {
            let outcome = SmSystem::new(2)
                .seed(seed)
                .run(vec![
                    Box::new(Bumper { next: 0 }) as DynSmProcess<u64, u64>,
                    Box::new(MonotoneReader {
                        last: None,
                        reads_left: 12,
                    }),
                ])
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
        }
    }

    #[test]
    fn size_mismatches_are_rejected() {
        let err = SmSystem::new(2)
            .run(vec![ScanOnceMin::boxed(0)])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = SmSystem::new(0)
            .run(Vec::<DynSmProcess<u64, u64>>::new())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = SmSystem::new(2)
            .fault_plan(FaultPlan::all_correct(3))
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn event_limit_surfaces_as_error() {
        /// Reads its own register forever without deciding.
        struct Reader;
        impl SmProcess for Reader {
            type Val = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut SmContext<'_, (), ()>) {
                ctx.read(RegisterId::new(0, 0));
            }
            fn on_read(&mut self, reg: RegisterId, _v: Option<()>, ctx: &mut SmContext<'_, (), ()>) {
                ctx.read(reg);
            }
        }
        let err = SmSystem::new(1)
            .event_limit(50)
            .run(vec![Box::new(Reader) as DynSmProcess<(), ()>])
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 50 });
    }

    #[test]
    fn metrics_attribute_operations_to_their_issuer() {
        let outcome = SmSystem::new(3)
            .seed(8)
            .metrics(MetricsConfig::enabled())
            .run_with(|p| ScanOnceMin::boxed(100 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        let m = outcome.metrics.as_ref().expect("metrics enabled");
        // Each process issues 1 write + 3 reads = 4 operations.
        for p in &m.per_process {
            assert_eq!(p.ops_issued, 4);
            assert!(p.ops_completed <= p.ops_issued);
            assert!(p.decided_at.is_some());
            assert_eq!(p.messages_sent, 0);
        }
        assert_eq!(
            m.per_process.iter().map(|p| p.ops_completed).sum::<u64>(),
            outcome.stats.ops_completed
        );
        assert_eq!(m.decisions(), 3);
        assert!(m.op_latency.count() > 0);
        assert!(m.delivery_latency.is_empty());
    }

    #[test]
    fn stats_count_operations() {
        let outcome = SmSystem::new(2)
            .seed(5)
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap();
        // Each process: 1 write ack + 2 read responses (some acks may be
        // skipped if the run stops at the decision point, so use bounds).
        assert!(outcome.stats.ops_completed >= 4);
        assert_eq!(outcome.stats.local_steps, 2);
    }
}
