//! The shared-memory runtime: builder and run loop.

use std::collections::BTreeMap;

use kset_sim::{
    DelayRule, EventKind, EventMeta, FaultPlan, Fnv64, GatedScheduler, Kernel, MetricsConfig,
    ProcessId, RandomScheduler, Scheduler, SimError, StateDigest,
};

use crate::outcome::SmOutcome;
use crate::process::{DynSmProcess, RawSmAction, SmContext};
use crate::register::{Memory, RegisterId};

/// Kernel payloads of the shared-memory model.
#[derive(Clone, Copy, Debug)]
enum Payload {
    /// The process's initial step.
    Start,
    /// A requested spontaneous step.
    Step,
    /// Response to a read of the named register (content resolved when the
    /// response fires — its linearization point).
    ReadResp(RegisterId),
    /// Response to a write to the named own-register slot.
    WriteAck(usize),
}

/// Builder/runtime for one run of a shared-memory system.
///
/// Mirrors [`kset_net::MpSystem`](https://docs.rs) in configuration style;
/// see the crate-level documentation for an end-to-end example.
pub struct SmSystem {
    n: usize,
    plan: FaultPlan,
    scheduler: Option<Box<dyn Scheduler>>,
    rules: Vec<DelayRule>,
    event_limit: Option<u64>,
    trace_capacity: usize,
    metrics: MetricsConfig,
}

impl std::fmt::Debug for SmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmSystem")
            .field("n", &self.n)
            .field("plan", &self.plan)
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl SmSystem {
    /// A system of `n` processes, all correct, randomly scheduled (seed 0).
    pub fn new(n: usize) -> Self {
        SmSystem {
            n,
            plan: FaultPlan::all_correct(n),
            scheduler: None,
            rules: Vec::new(),
            event_limit: None,
            trace_capacity: 0,
            metrics: MetricsConfig::disabled(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets the fault plan (size must equal `n`, checked at run time).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Uses an explicit scheduler (adversary).
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Some(Box::new(scheduler));
        self
    }

    /// Shorthand for a [`RandomScheduler`] with the given seed.
    pub fn seed(self, seed: u64) -> Self {
        self.scheduler(RandomScheduler::from_seed(seed))
    }

    /// Adds a delay rule.
    pub fn delay_rule(mut self, rule: DelayRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds several delay rules at once.
    pub fn delay_rules(mut self, rules: impl IntoIterator<Item = DelayRule>) -> Self {
        self.rules.extend(rules);
        self
    }

    /// Overrides the kernel event limit.
    pub fn event_limit(mut self, limit: u64) -> Self {
        self.event_limit = Some(limit);
        self
    }

    /// Enables trace recording with the given capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Configures metrics collection; the outcome's
    /// [`metrics`](SmOutcome::metrics) field is populated when enabled.
    pub fn metrics(mut self, config: MetricsConfig) -> Self {
        self.metrics = config;
        self
    }

    /// Runs the system, building each process from a factory closure.
    ///
    /// # Errors
    ///
    /// See [`SmSystem::run`].
    pub fn run_with<Val: Clone, Out>(
        self,
        mut factory: impl FnMut(ProcessId) -> DynSmProcess<Val, Out>,
    ) -> Result<SmOutcome<Val, Out>, SimError> {
        let procs = (0..self.n).map(&mut factory).collect();
        self.run(procs)
    }

    /// Runs the system to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] for size mismatches or `n == 0`.
    /// * [`SimError::EventLimitExceeded`] if the protocol livelocks.
    pub fn run<Val: Clone, Out>(
        self,
        procs: Vec<DynSmProcess<Val, Out>>,
    ) -> Result<SmOutcome<Val, Out>, SimError> {
        self.run_core(procs, |_, _, _, _| {})
    }

    /// Runs the system like [`SmSystem::run`], additionally computing a
    /// stable digest of the whole system state after every fired event.
    ///
    /// `digests[i]` fingerprints the state reached after the `i`-th event:
    /// every process's [`crate::SmProcess::state_digest`], its crashed flag and
    /// decision, the register store contents, plus an order-insensitive
    /// multiset hash of the pending event pool. Event ids are excluded —
    /// see `MpSystem::run_digested` in `kset-net` for the rationale.
    ///
    /// # Errors
    ///
    /// See [`SmSystem::run`].
    pub fn run_digested<Val, Out>(
        self,
        procs: Vec<DynSmProcess<Val, Out>>,
    ) -> Result<(SmOutcome<Val, Out>, Vec<u64>), SimError>
    where
        Val: Clone + StateDigest,
        Out: StateDigest,
    {
        let mut digests = Vec::new();
        let outcome = self.run_core(procs, |kernel, procs, decisions, memory| {
            digests.push(sm_state_digest(kernel, procs, decisions, memory));
        })?;
        Ok((outcome, digests))
    }

    /// The shared run loop: `observe` is called once after every fired
    /// event with the kernel, the processes, the decision table and the
    /// register store.
    fn run_core<Val: Clone, Out>(
        self,
        mut procs: Vec<DynSmProcess<Val, Out>>,
        mut observe: impl FnMut(
            &Kernel<Payload>,
            &[DynSmProcess<Val, Out>],
            &[Option<Out>],
            &Memory<Val>,
        ),
    ) -> Result<SmOutcome<Val, Out>, SimError> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig("n must be positive".into()));
        }
        if procs.len() != self.n {
            return Err(SimError::InvalidConfig(format!(
                "expected {} processes, got {}",
                self.n,
                procs.len()
            )));
        }
        if self.plan.n() != self.n {
            return Err(SimError::InvalidConfig(format!(
                "fault plan covers {} processes, system has {}",
                self.plan.n(),
                self.n
            )));
        }

        let n = self.n;
        let plan = self.plan;
        let inner: Box<dyn Scheduler> = self
            .scheduler
            .unwrap_or_else(|| Box::new(RandomScheduler::from_seed(0)));
        let mut kernel: Kernel<Payload> = if self.rules.is_empty() {
            Kernel::with_processes(inner, n)
        } else {
            Kernel::with_processes(GatedScheduler::new(inner, self.rules), n)
        };
        if let Some(limit) = self.event_limit {
            kernel = kernel.event_limit(limit);
        }
        if self.trace_capacity > 0 {
            kernel = kernel.trace_capacity(self.trace_capacity);
        }
        if self.metrics.enabled {
            kernel = kernel.collect_metrics(self.metrics);
        }

        for pid in 0..n {
            if plan.spec(pid).kind() == kset_sim::FaultKind::Byzantine {
                kernel.state_mut().mark_byzantine(pid);
            }
        }
        for pid in 0..n {
            kernel.post(EventMeta::new(EventKind::LocalStep, pid), Payload::Start);
        }

        let mut memory: Memory<Val> = Memory::new();
        let mut decisions: Vec<Option<Out>> = (0..n).map(|_| None).collect();
        let mut buf: Vec<RawSmAction<Val, Out>> = Vec::new();

        loop {
            if kernel.state().all_correct_decided() {
                break;
            }
            let Some((meta, payload)) = kernel.next_checked()? else {
                break;
            };
            'event: {
                let pid = meta.target;
                if kernel.state().has_crashed(pid) {
                    break 'event;
                }
                let done = kernel.state().actions_of(pid);
                if plan.remaining_budget(pid, done) == Some(0) {
                    crash(&mut kernel, pid);
                    break 'event;
                }
                kernel.state_mut().charge_action(pid);

                buf.clear();
                {
                    let mut ctx = SmContext::new(
                        pid,
                        n,
                        kernel.now(),
                        decisions[pid].is_some(),
                        &mut buf,
                    );
                    match payload {
                        Payload::Start => procs[pid].on_start(&mut ctx),
                        Payload::Step => procs[pid].on_step(&mut ctx),
                        Payload::ReadResp(reg) => {
                            // Linearization point of the read: right now.
                            let value = memory.read(reg);
                            procs[pid].on_read(reg, value, &mut ctx)
                        }
                        Payload::WriteAck(slot) => procs[pid].on_write_ack(slot, &mut ctx),
                    }
                }

                for action in buf.drain(..) {
                    let done = kernel.state().actions_of(pid);
                    if plan.remaining_budget(pid, done) == Some(0) {
                        crash(&mut kernel, pid);
                        break;
                    }
                    kernel.state_mut().charge_action(pid);
                    match action {
                        RawSmAction::Read(reg) => {
                            kernel.post(
                                EventMeta::new(EventKind::OpResponse, pid).from_process(reg.owner),
                                Payload::ReadResp(reg),
                            );
                        }
                        RawSmAction::Write(slot, value) => {
                            // Linearization point of the write: right now.
                            memory.write(RegisterId::new(pid, slot), value);
                            kernel.post(
                                EventMeta::new(EventKind::OpResponse, pid).from_process(pid),
                                Payload::WriteAck(slot),
                            );
                        }
                        RawSmAction::Decide(v) => {
                            if decisions[pid].is_none() {
                                decisions[pid] = Some(v);
                                kernel.note_decision(pid);
                            }
                        }
                        RawSmAction::ScheduleStep => {
                            kernel.post(EventMeta::new(EventKind::LocalStep, pid), Payload::Step);
                        }
                    }
                }
            }
            observe(&kernel, &procs, &decisions, &memory);
        }

        let terminated = kernel.state().all_correct_decided();
        let decisions: BTreeMap<ProcessId, Out> = decisions
            .into_iter()
            .enumerate()
            .filter_map(|(p, d)| d.map(|v| (p, v)))
            .collect();
        Ok(SmOutcome {
            decisions,
            correct: plan.correct_set(),
            faulty: plan.faulty_set(),
            terminated,
            memory: memory.snapshot(),
            stats: *kernel.stats(),
            trace: kernel.trace().clone(),
            metrics: kernel.metrics().cloned(),
        })
    }
}

fn crash(kernel: &mut Kernel<Payload>, pid: ProcessId) {
    kernel.state_mut().mark_crashed(pid);
    kernel.cancel_where(|m| m.target == pid);
}

/// Digest of the full system state: per-process protocol state, crash and
/// decision status, the register store, plus the pending pool as an
/// id-insensitive multiset.
fn sm_state_digest<Val, Out>(
    kernel: &Kernel<Payload>,
    procs: &[DynSmProcess<Val, Out>],
    decisions: &[Option<Out>],
    memory: &Memory<Val>,
) -> u64
where
    Val: Clone + StateDigest,
    Out: StateDigest,
{
    let mut h = Fnv64::new();
    for (pid, proc) in procs.iter().enumerate() {
        h.write_u64(proc.state_digest());
        h.write_u8(u8::from(kernel.state().has_crashed(pid)));
        decisions[pid].as_ref().digest_into(&mut h);
    }
    // Register store: BTreeMap iteration order is deterministic.
    for (reg, value) in memory.cells() {
        h.write_usize(reg.owner);
        h.write_usize(reg.slot);
        value.digest_into(&mut h);
    }
    // Pending pool as an order- and id-insensitive multiset.
    let mut pool = 0u64;
    kernel.for_each_pending(|meta, payload| {
        let mut eh = Fnv64::new();
        eh.write_usize(meta.target);
        meta.source.digest_into(&mut eh);
        match payload {
            Payload::Start => eh.write_u8(0),
            Payload::Step => eh.write_u8(1),
            Payload::ReadResp(reg) => {
                eh.write_u8(2);
                eh.write_usize(reg.owner);
                eh.write_usize(reg.slot);
            }
            Payload::WriteAck(slot) => {
                eh.write_u8(3);
                eh.write_usize(*slot);
            }
        }
        pool = pool.wrapping_add(eh.finish());
    });
    h.write_u64(pool);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SmProcess;
    use kset_sim::FaultSpec;

    /// Writes its input to slot 0, scans everyone's slot 0 once, and decides
    /// the smallest value it managed to read.
    struct ScanOnceMin {
        input: u64,
        pending: usize,
        best: Option<u64>,
    }

    impl ScanOnceMin {
        fn boxed(input: u64) -> DynSmProcess<u64, u64> {
            Box::new(ScanOnceMin {
                input,
                pending: 0,
                best: None,
            })
        }
    }

    impl SmProcess for ScanOnceMin {
        type Val = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
            ctx.write(0, self.input);
            self.pending = ctx.n();
            ctx.read_all(0);
        }

        fn on_read(&mut self, _reg: RegisterId, value: Option<u64>, ctx: &mut SmContext<'_, u64, u64>) {
            if let Some(v) = value {
                self.best = Some(self.best.map_or(v, |b| b.min(v)));
            }
            self.pending -= 1;
            if self.pending == 0 {
                // Own write precedes the scan, so best is never empty.
                ctx.decide(self.best.expect("scan saw at least own value"));
            }
        }
    }

    #[test]
    fn failure_free_scan_terminates_and_sees_own_write() {
        let outcome = SmSystem::new(4)
            .seed(8)
            .run_with(|p| ScanOnceMin::boxed(100 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions.len(), 4);
        // Every decision is one of the written inputs.
        for v in outcome.decisions.values() {
            assert!((100..104).contains(v));
        }
        // All four registers hold their writers' inputs at the end.
        for p in 0..4 {
            assert_eq!(outcome.memory[&RegisterId::new(p, 0)], 100 + p as u64);
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            SmSystem::new(5)
                .seed(seed)
                .run_with(|p| ScanOnceMin::boxed(p as u64))
                .unwrap()
        };
        assert_eq!(run(3).decisions, run(3).decisions);
    }

    #[test]
    fn silent_crash_leaves_register_unwritten() {
        let outcome = SmSystem::new(3)
            .seed(1)
            .fault_plan(FaultPlan::silent_crashes(3, &[1]))
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert!(!outcome.memory.contains_key(&RegisterId::new(1, 0)));
        assert!(!outcome.decisions.contains_key(&1));
    }

    #[test]
    fn crash_after_write_leaves_value_visible() {
        // Budget 2: start handler (1) + the write invocation (1). The
        // process crashes before issuing its scan, but the write landed.
        let mut plan = FaultPlan::all_correct(3);
        plan.set(0, FaultSpec::Crash { after_actions: 2 });
        let outcome = SmSystem::new(3)
            .seed(2)
            .fault_plan(plan)
            .run_with(|p| ScanOnceMin::boxed(10 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.memory[&RegisterId::new(0, 0)], 10);
        assert!(!outcome.decisions.contains_key(&0));
    }

    #[test]
    fn reads_linearize_at_response_time() {
        use kset_sim::{FifoScheduler, Until};
        // Freeze process 1 until process 0 decided: by the time 1's reads
        // fire, 0's write is visible, so 1 must read 0's value.
        let outcome = SmSystem::new(2)
            .scheduler(FifoScheduler::new())
            .delay_rule(DelayRule::freeze_process(1, Until::AllDecided(vec![0])))
            .run_with(|p| ScanOnceMin::boxed(if p == 0 { 1 } else { 2 }))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions[&1], 1);
    }

    #[test]
    fn sequential_reads_by_one_process_never_go_backwards() {
        /// Writer bumps its register through 0..WRITES; the reader issues
        /// strictly sequential reads (next read only after the previous
        /// response) and asserts the observed values are non-decreasing —
        /// the single-reader face of register atomicity.
        const WRITES: u64 = 8;
        struct Bumper {
            next: u64,
        }
        impl SmProcess for Bumper {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.write(0, 0);
                self.next = 1;
            }
            fn on_read(&mut self, _r: RegisterId, _v: Option<u64>, _c: &mut SmContext<'_, u64, u64>) {}
            fn on_write_ack(&mut self, _s: usize, ctx: &mut SmContext<'_, u64, u64>) {
                if self.next < WRITES {
                    ctx.write(0, self.next);
                    self.next += 1;
                } else {
                    ctx.decide(self.next);
                }
            }
        }
        struct MonotoneReader {
            last: Option<u64>,
            reads_left: u32,
        }
        impl SmProcess for MonotoneReader {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.read(RegisterId::new(0, 0));
            }
            fn on_read(&mut self, reg: RegisterId, v: Option<u64>, ctx: &mut SmContext<'_, u64, u64>) {
                if let Some(v) = v {
                    if let Some(last) = self.last {
                        assert!(v >= last, "read went backwards: {last} then {v}");
                    }
                    self.last = Some(v);
                }
                self.reads_left -= 1;
                if self.reads_left == 0 {
                    ctx.decide(self.last.unwrap_or(0));
                } else {
                    ctx.read(reg);
                }
            }
        }
        for seed in 0..20 {
            let outcome = SmSystem::new(2)
                .seed(seed)
                .run(vec![
                    Box::new(Bumper { next: 0 }) as DynSmProcess<u64, u64>,
                    Box::new(MonotoneReader {
                        last: None,
                        reads_left: 12,
                    }),
                ])
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
        }
    }

    #[test]
    fn size_mismatches_are_rejected() {
        let err = SmSystem::new(2)
            .run(vec![ScanOnceMin::boxed(0)])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = SmSystem::new(0)
            .run(Vec::<DynSmProcess<u64, u64>>::new())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = SmSystem::new(2)
            .fault_plan(FaultPlan::all_correct(3))
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn event_limit_surfaces_as_error() {
        /// Reads its own register forever without deciding.
        struct Reader;
        impl SmProcess for Reader {
            type Val = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut SmContext<'_, (), ()>) {
                ctx.read(RegisterId::new(0, 0));
            }
            fn on_read(&mut self, reg: RegisterId, _v: Option<()>, ctx: &mut SmContext<'_, (), ()>) {
                ctx.read(reg);
            }
        }
        let err = SmSystem::new(1)
            .event_limit(50)
            .run(vec![Box::new(Reader) as DynSmProcess<(), ()>])
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 50 });
    }

    #[test]
    fn metrics_attribute_operations_to_their_issuer() {
        let outcome = SmSystem::new(3)
            .seed(8)
            .metrics(MetricsConfig::enabled())
            .run_with(|p| ScanOnceMin::boxed(100 + p as u64))
            .unwrap();
        assert!(outcome.terminated);
        let m = outcome.metrics.as_ref().expect("metrics enabled");
        // Each process issues 1 write + 3 reads = 4 operations.
        for p in &m.per_process {
            assert_eq!(p.ops_issued, 4);
            assert!(p.ops_completed <= p.ops_issued);
            assert!(p.decided_at.is_some());
            assert_eq!(p.messages_sent, 0);
        }
        assert_eq!(
            m.per_process.iter().map(|p| p.ops_completed).sum::<u64>(),
            outcome.stats.ops_completed
        );
        assert_eq!(m.decisions(), 3);
        assert!(m.op_latency.count() > 0);
        assert!(m.delivery_latency.is_empty());
    }

    #[test]
    fn stats_count_operations() {
        let outcome = SmSystem::new(2)
            .seed(5)
            .run_with(|p| ScanOnceMin::boxed(p as u64))
            .unwrap();
        // Each process: 1 write ack + 2 read responses (some acks may be
        // skipped if the run stops at the decision point, so use bounds).
        assert!(outcome.stats.ops_completed >= 4);
        assert_eq!(outcome.stats.local_steps, 2);
    }
}
