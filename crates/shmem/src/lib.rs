//! # kset-shmem — single-writer multi-reader atomic registers over `kset-sim`
//!
//! The shared-memory model of the paper (Section 4): processes communicate
//! through single-writer multi-reader (SWMR) *atomic* registers [Lamport 86].
//! The memory itself never fails; processes accessing it may crash or behave
//! Byzantine — but even a Byzantine process can only write **its own**
//! registers, the integrity guarantee the paper motivates with replicated
//! middleware.
//!
//! ## How atomicity and asynchrony are realized
//!
//! Operations are split into invocation and response, as in the standard
//! model:
//!
//! * A **write** takes effect at its invocation (when the buffered effect is
//!   drained) and completes when the `WriteAck` response fires. Its
//!   linearization point is the invocation, so a process that crashes right
//!   after issuing its last write leaves the value visible — exactly the
//!   situation the proof of Lemma 4.2 constructs.
//! * A **read** returns the register content at the moment its response
//!   event fires; that firing is its linearization point. Because the
//!   scheduler chooses when responses fire, the asynchronous adversary fully
//!   controls which (legal) value every read observes.
//!
//! Both points lie between invocation and response, so every execution is
//! linearizable — the kernel *is* the linearization order.
//!
//! Single-writer is enforced **statically**: [`SmContext::write`] takes only
//! a slot index and always targets a register owned by the calling process.
//! There is no API through which any process, Byzantine or not, can write a
//! register it does not own.
//!
//! Like `kset-net`, this crate is a thin face of the substrate-generic
//! runtime in `kset-sim`: it contributes [`SmSubstrate`] (an implementation
//! of [`kset_sim::Substrate`] describing register linearization), while the
//! builder, run loop, and fault/metrics plumbing live in
//! [`kset_sim::System`]. See `ARCHITECTURE.md` ("The substrate layer").
//!
//! ```
//! use kset_shmem::{RegisterId, SmContext, SmProcess, SmSystem};
//!
//! /// Writes its input to its register, reads process 0's register, and
//! /// decides whatever it finds there (retrying until the write landed).
//! struct FollowZero {
//!     input: u32,
//! }
//!
//! impl SmProcess for FollowZero {
//!     type Val = u32;
//!     type Output = u32;
//!
//!     fn on_start(&mut self, ctx: &mut SmContext<'_, u32, u32>) {
//!         ctx.write(0, self.input);
//!         ctx.read(RegisterId::new(0, 0));
//!     }
//!
//!     fn on_read(
//!         &mut self,
//!         reg: RegisterId,
//!         value: Option<u32>,
//!         ctx: &mut SmContext<'_, u32, u32>,
//!     ) {
//!         match value {
//!             Some(v) => ctx.decide(v),
//!             None => ctx.read(reg), // not written yet: retry
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), kset_sim::SimError> {
//! let outcome = SmSystem::new(3).seed(11).run_with(|p| {
//!     Box::new(FollowZero { input: p as u32 * 10 })
//!         as Box<dyn SmProcess<Val = u32, Output = u32>>
//! })?;
//! assert!(outcome.terminated);
//! assert!(outcome.decisions.values().all(|&v| v == 0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

mod outcome;
mod process;
mod register;
mod system;

pub use outcome::SmOutcome;
pub use process::{DynSmProcess, RawSmAction, SmContext, SmProcess};
pub use register::{Memory, RegisterId};
pub use system::{SmOp, SmSession, SmSubstrate, SmSystem};
