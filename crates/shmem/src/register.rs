//! Register naming and the shared store.

use std::collections::BTreeMap;
use std::fmt;

use kset_sim::ProcessId;

/// Name of a single-writer multi-reader register.
///
/// Every register is owned by exactly one process; the owner addresses its
/// own registers by `slot`, readers address them by `(owner, slot)`.
/// Protocols typically use slot `0` for "my input" and higher slots for
/// later rounds or simulated message sequence numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegisterId {
    /// The process allowed to write this register.
    pub owner: ProcessId,
    /// Owner-local index of the register.
    pub slot: usize,
}

impl RegisterId {
    /// The register `slot` owned by `owner`.
    pub fn new(owner: ProcessId, slot: usize) -> Self {
        RegisterId { owner, slot }
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r[{}.{}]", self.owner, self.slot)
    }
}

/// The shared register store.
///
/// Unwritten registers read as `None` (the conventional `⊥`). The store
/// itself never fails, matching the paper's model where only processes fail.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Memory<V> {
    cells: BTreeMap<RegisterId, V>,
    writes: u64,
}

impl<V: Clone> Memory<V> {
    /// An empty memory.
    pub fn new() -> Self {
        Memory {
            cells: BTreeMap::new(),
            writes: 0,
        }
    }

    /// Stores `value` into `reg`, overwriting any previous value.
    pub fn write(&mut self, reg: RegisterId, value: V) {
        self.writes += 1;
        self.cells.insert(reg, value);
    }

    /// Current content of `reg`, or `None` if never written.
    pub fn read(&self, reg: RegisterId) -> Option<V> {
        self.cells.get(&reg).cloned()
    }

    /// Total number of writes ever applied (for statistics).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Snapshot of all written registers, for post-run inspection.
    pub fn snapshot(&self) -> BTreeMap<RegisterId, V> {
        self.cells.clone()
    }

    /// Iterates over all written registers in `RegisterId` order, without
    /// cloning. The deterministic order makes this usable for state
    /// digests (see `SmSystem::run_digested`).
    pub fn cells(&self) -> impl Iterator<Item = (&RegisterId, &V)> {
        self.cells.iter()
    }

    /// Iterates over the written registers owned by `owner`, in slot
    /// order. Because `RegisterId` orders by `(owner, slot)`, this is a
    /// contiguous range of the store; the symmetry-canonical digest hashes
    /// it as `owner`'s id-free shared-state component.
    pub fn cells_of(&self, owner: ProcessId) -> impl Iterator<Item = (&RegisterId, &V)> {
        self.cells
            .range(RegisterId::new(owner, 0)..=RegisterId::new(owner, usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_registers_read_bottom() {
        let mem: Memory<u8> = Memory::new();
        assert_eq!(mem.read(RegisterId::new(0, 0)), None);
    }

    #[test]
    fn writes_overwrite_and_count() {
        let mut mem = Memory::new();
        let r = RegisterId::new(1, 2);
        mem.write(r, 5u8);
        assert_eq!(mem.read(r), Some(5));
        mem.write(r, 6);
        assert_eq!(mem.read(r), Some(6));
        assert_eq!(mem.write_count(), 2);
    }

    #[test]
    fn registers_are_independent() {
        let mut mem = Memory::new();
        mem.write(RegisterId::new(0, 0), 'a');
        mem.write(RegisterId::new(0, 1), 'b');
        mem.write(RegisterId::new(1, 0), 'c');
        assert_eq!(mem.read(RegisterId::new(0, 0)), Some('a'));
        assert_eq!(mem.read(RegisterId::new(0, 1)), Some('b'));
        assert_eq!(mem.read(RegisterId::new(1, 0)), Some('c'));
        assert_eq!(mem.snapshot().len(), 3);
    }

    #[test]
    fn register_id_display_and_order() {
        assert_eq!(RegisterId::new(2, 3).to_string(), "r[2.3]");
        assert!(RegisterId::new(0, 5) < RegisterId::new(1, 0));
        assert!(RegisterId::new(1, 0) < RegisterId::new(1, 1));
    }
}
