//! Result of a shared-memory run.

use std::collections::BTreeMap;

use kset_sim::{ProcessId, RunMetrics, RunStats, Trace};

use crate::register::RegisterId;

/// Everything observable at the end of a shared-memory run.
///
/// Mirrors [`kset_net::MpOutcome`](https://docs.rs) for the message-passing
/// model, with the final register contents added for inspection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SmOutcome<Val, Out> {
    /// Decision of each process that decided, keyed by process id.
    pub decisions: BTreeMap<ProcessId, Out>,
    /// Processes that followed the protocol to the end of the run.
    pub correct: Vec<ProcessId>,
    /// Processes planned faulty (crash or Byzantine), ascending.
    pub faulty: Vec<ProcessId>,
    /// Whether every correct process decided before events ran out.
    pub terminated: bool,
    /// Final contents of every written register.
    pub memory: BTreeMap<RegisterId, Val>,
    /// Kernel counters (operations completed, steps, ...).
    pub stats: RunStats,
    /// Recorded schedule, if tracing was enabled.
    pub trace: Trace,
    /// Per-process counters and latency histograms, if metrics collection
    /// was enabled via [`SmSystem::metrics`](crate::SmSystem::metrics).
    pub metrics: Option<RunMetrics>,
}

impl<Val, Out: Clone + Ord> SmOutcome<Val, Out> {
    /// The set of distinct values decided by correct processes.
    pub fn correct_decision_set(&self) -> Vec<Out> {
        let mut vals: Vec<Out> = self
            .correct
            .iter()
            .filter_map(|p| self.decisions.get(p).cloned())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// The set of distinct values decided by *any* process.
    pub fn decision_set(&self) -> Vec<Out> {
        let mut vals: Vec<Out> = self.decisions.values().cloned().collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Restriction of the decision map to correct processes.
    pub fn correct_decisions(&self) -> BTreeMap<ProcessId, Out> {
        self.correct
            .iter()
            .filter_map(|p| self.decisions.get(p).map(|v| (*p, v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> SmOutcome<u8, u32> {
        let mut decisions = BTreeMap::new();
        decisions.insert(0, 1);
        decisions.insert(1, 2);
        decisions.insert(2, 2);
        let mut memory = BTreeMap::new();
        memory.insert(RegisterId::new(0, 0), 9u8);
        SmOutcome {
            decisions,
            correct: vec![0, 1],
            faulty: vec![2],
            terminated: true,
            memory,
            stats: RunStats::default(),
            trace: Trace::disabled(),
            metrics: None,
        }
    }

    #[test]
    fn correct_decision_set_excludes_faulty() {
        assert_eq!(outcome().correct_decision_set(), vec![1, 2]);
    }

    #[test]
    fn decision_set_covers_everyone() {
        assert_eq!(outcome().decision_set(), vec![1, 2]);
    }

    #[test]
    fn memory_snapshot_is_preserved() {
        assert_eq!(outcome().memory[&RegisterId::new(0, 0)], 9);
    }

    #[test]
    fn correct_decisions_restricts_map() {
        let m = outcome().correct_decisions();
        assert_eq!(m.len(), 2);
        assert!(!m.contains_key(&2));
    }
}
