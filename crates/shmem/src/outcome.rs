//! Result of a shared-memory run.

use std::collections::BTreeMap;
use std::ops::Deref;

use kset_sim::Outcome;

use crate::register::RegisterId;

/// Everything observable at the end of a shared-memory run.
///
/// Wraps the substrate-generic [`kset_sim::Outcome`] (to which it derefs,
/// so `decisions`, `correct_decision_set()` and friends are used exactly as
/// on [`kset_net::MpOutcome`](Outcome)), adding the final register contents
/// for inspection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SmOutcome<Val, Out> {
    pub(crate) run: Outcome<Out>,
    /// Final contents of every written register.
    pub memory: BTreeMap<RegisterId, Val>,
}

impl<Val, Out> Deref for SmOutcome<Val, Out> {
    type Target = Outcome<Out>;

    fn deref(&self) -> &Outcome<Out> {
        &self.run
    }
}

impl<Val, Out> SmOutcome<Val, Out> {
    /// Consumes the outcome, returning the substrate-generic part and
    /// discarding the memory snapshot — for code paths generic over both
    /// communication models.
    pub fn into_run(self) -> Outcome<Out> {
        self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::{RunStats, Trace};

    fn outcome() -> SmOutcome<u8, u32> {
        let mut decisions = BTreeMap::new();
        decisions.insert(0, 1);
        decisions.insert(1, 2);
        decisions.insert(2, 2);
        let mut memory = BTreeMap::new();
        memory.insert(RegisterId::new(0, 0), 9u8);
        SmOutcome {
            run: Outcome {
                decisions,
                correct: vec![0, 1],
                faulty: vec![2],
                terminated: true,
                stats: RunStats::default(),
                trace: Trace::disabled(),
                metrics: None,
            },
            memory,
        }
    }

    #[test]
    fn correct_decision_set_excludes_faulty() {
        assert_eq!(outcome().correct_decision_set(), vec![1, 2]);
    }

    #[test]
    fn decision_set_covers_everyone() {
        assert_eq!(outcome().decision_set(), vec![1, 2]);
    }

    #[test]
    fn memory_snapshot_is_preserved() {
        assert_eq!(outcome().memory[&RegisterId::new(0, 0)], 9);
    }

    #[test]
    fn correct_decisions_restricts_map() {
        let m = outcome().correct_decisions();
        assert_eq!(m.len(), 2);
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn into_run_keeps_the_generic_outcome() {
        let run = outcome().into_run();
        assert!(run.terminated);
        assert_eq!(run.decisions.len(), 3);
    }
}
