//! Worker pool: shards instances across threads, steps them in waves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use kset_sim::SimError;

use crate::instance::{Decision, Instance, Propose, Workload};

/// Tuning knobs for a [`Server`].
///
/// The defaults are sized for the common case — millions of tiny
/// failure-free runs — and can be overridden field-by-field with struct
/// update syntax: `ServeConfig { threads: 4, ..ServeConfig::new(w) }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// The protocol/problem shape every instance runs (see [`Workload`]).
    pub workload: Workload,
    /// Worker threads; instance `id` is handled by worker `id % threads`.
    pub threads: usize,
    /// Kernel events each live instance may fire per scheduling wave.
    /// Small batches interleave instances more fairly; large batches
    /// amortise the scheduling overhead.
    pub batch: u32,
    /// Cap on concurrently live instances per worker. Bounds worker memory
    /// at `max_live` sessions regardless of how many proposals are queued.
    pub max_live: usize,
    /// Depth of each worker's bounded proposal queue. A submitter that
    /// outruns the workers blocks in [`ServeClient::propose`] instead of
    /// growing the queue without bound.
    pub queue_depth: usize,
}

impl ServeConfig {
    /// Default configuration for `workload`: one worker, waves of 16
    /// events, at most 256 live instances and 4096 queued proposals per
    /// worker.
    pub fn new(workload: Workload) -> Self {
        ServeConfig { workload, threads: 1, batch: 16, max_live: 256, queue_depth: 4096 }
    }
}

/// Totals reported by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Decisions produced across all workers over the server's lifetime
    /// (including refusals of malformed proposals).
    pub decided: u64,
    /// Worker threads that served them.
    pub threads: usize,
}

/// What flows down a worker's proposal queue.
enum WorkerMsg {
    Propose(Propose),
    /// Shutdown sentinel: finish the live set, then exit. Lets
    /// [`Server::shutdown`] terminate workers even while [`ServeClient`]
    /// clones are still alive somewhere.
    Stop,
}

/// Cloneable submission handle for a running [`Server`].
///
/// Handles can be cloned freely and moved to other threads; all clones
/// share the instance-id counter. After [`Server::shutdown`] every clone's
/// [`propose`](ServeClient::propose) fails with `InvalidConfig`.
#[derive(Debug, Clone)]
pub struct ServeClient {
    workload: Workload,
    queues: Arc<Vec<SyncSender<WorkerMsg>>>,
    next_id: Arc<AtomicU64>,
}

impl ServeClient {
    /// Submits one instance (`inputs[p]` is process `p`'s initial value)
    /// and returns its assigned id.
    ///
    /// Blocks while the target worker's queue is full (backpressure).
    /// Fails with [`SimError::InvalidConfig`] if the input arity does not
    /// match the workload or the server has shut down.
    pub fn propose(&self, inputs: Vec<u64>) -> Result<u64, SimError> {
        if inputs.len() != self.workload.n {
            return Err(SimError::InvalidConfig(format!(
                "expected {} inputs, got {}",
                self.workload.n,
                inputs.len()
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = (id % self.queues.len() as u64) as usize;
        let propose = Propose { id, inputs, submitted: Instant::now() };
        self.queues[shard]
            .send(WorkerMsg::Propose(propose))
            .map_err(|_| SimError::InvalidConfig("server is shut down".into()))?;
        Ok(id)
    }
}

/// A pool of worker threads multiplexing consensus instances.
///
/// Proposals flow in through [`ServeClient`] handles, sharded by instance
/// id onto per-worker bounded queues. Each worker keeps up to
/// [`ServeConfig::max_live`] sessions in flight and advances every one of
/// them by a wave of at most [`ServeConfig::batch`] kernel events per
/// round; finished instances are converted to [`Decision`]s and pushed to
/// the shared outbound channel drained by [`Server::recv_decision`].
pub struct Server {
    client: ServeClient,
    decisions: Receiver<Decision>,
    workers: Vec<JoinHandle<u64>>,
    threads: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("threads", &self.threads)
            .field("workload", &self.client.workload)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Spawns the worker pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.workload.n`, `config.threads`, `config.batch`,
    /// `config.max_live` or `config.queue_depth` is zero.
    pub fn start(config: ServeConfig) -> Server {
        assert!(config.workload.n > 0, "workload needs at least one process");
        assert!(config.threads > 0, "server needs at least one worker");
        assert!(config.batch > 0, "wave batch must be positive");
        assert!(config.max_live > 0, "max_live must be positive");
        assert!(config.queue_depth > 0, "queue_depth must be positive");

        let (decision_tx, decisions) = mpsc::channel();
        let mut queues = Vec::with_capacity(config.threads);
        let mut workers = Vec::with_capacity(config.threads);
        for worker_idx in 0..config.threads {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth);
            queues.push(tx);
            let out = decision_tx.clone();
            let cfg = config;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kset-serve-{worker_idx}"))
                    .spawn(move || worker_loop(rx, out, cfg))
                    .expect("failed to spawn worker thread"),
            );
        }
        let client = ServeClient {
            workload: config.workload,
            queues: Arc::new(queues),
            next_id: Arc::new(AtomicU64::new(0)),
        };
        Server { client, decisions, workers, threads: config.threads }
    }

    /// A new submission handle for this server.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Blocks until the next decision is available. Returns `None` only
    /// after every worker has exited (i.e. post-shutdown drain).
    pub fn recv_decision(&self) -> Option<Decision> {
        self.decisions.recv().ok()
    }

    /// Non-blocking variant of [`recv_decision`](Server::recv_decision).
    pub fn try_recv_decision(&self) -> Option<Decision> {
        self.decisions.try_recv().ok()
    }

    /// Stops the workers (each finishes its in-flight instances first) and
    /// returns lifetime totals. Undelivered decisions still sitting in the
    /// outbound channel are discarded, so drain with
    /// [`recv_decision`](Server::recv_decision) first if you want them.
    /// Proposals racing the shutdown from other [`ServeClient`] clones may
    /// be dropped without a decision.
    pub fn shutdown(self) -> ServeStats {
        let Server { client, decisions, workers, threads } = self;
        for queue in client.queues.iter() {
            // A full queue still delivers the sentinel eventually: send
            // blocks until the worker drains ahead of it. A send error
            // means the worker is already gone, which is fine too.
            let _ = queue.send(WorkerMsg::Stop);
        }
        drop(client);
        let decided = workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .sum();
        drop(decisions);
        ServeStats { decided, threads }
    }
}

/// Admits one proposal into the live set (or refuses it immediately).
fn admit(
    propose: Propose,
    live: &mut Vec<Instance>,
    out: &Sender<Decision>,
    workload: &Workload,
    decided: &mut u64,
) -> Result<(), ()> {
    match Instance::new(propose, workload) {
        Ok(instance) => {
            live.push(instance);
            Ok(())
        }
        Err((_, propose)) => {
            *decided += 1;
            out.send(Instance::refuse(propose)).map_err(|_| ())
        }
    }
}

/// One worker: ingest proposals up to `max_live`, advance every live
/// instance by one wave, ship finished instances, repeat until the
/// proposal queue disconnects and the live set drains.
fn worker_loop(rx: Receiver<WorkerMsg>, out: Sender<Decision>, config: ServeConfig) -> u64 {
    let mut live: Vec<Instance> = Vec::new();
    let mut decided: u64 = 0;
    let mut open = true;
    while open || !live.is_empty() {
        if live.is_empty() {
            // Nothing in flight: block until work arrives or the queue closes.
            match rx.recv() {
                Ok(WorkerMsg::Propose(p)) => {
                    if admit(p, &mut live, &out, &config.workload, &mut decided).is_err() {
                        return decided;
                    }
                }
                Ok(WorkerMsg::Stop) | Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        while open && live.len() < config.max_live {
            match rx.try_recv() {
                Ok(WorkerMsg::Propose(p)) => {
                    if admit(p, &mut live, &out, &config.workload, &mut decided).is_err() {
                        return decided;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Ok(WorkerMsg::Stop) | Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        let mut i = 0;
        while i < live.len() {
            // A kernel error (e.g. event-limit exhaustion) ends the
            // instance too; `finish` reports it as non-terminated.
            let done = live[i].step_wave(config.batch).unwrap_or(true);
            if done {
                let instance = live.swap_remove(i);
                decided += 1;
                if out.send(instance.finish()).is_err() {
                    // Receiver gone: the server is being torn down.
                    return decided;
                }
            } else {
                i += 1;
            }
        }
    }
    decided
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_and_shuts_down() {
        let server = Server::start(ServeConfig {
            threads: 2,
            max_live: 8,
            ..ServeConfig::new(Workload::flood_min(3, 1))
        });
        let client = server.client();
        let mut ids = Vec::new();
        for i in 0..100u64 {
            ids.push(client.propose(vec![i, i + 1, i + 2]).unwrap());
        }
        drop(client);
        let mut got = Vec::new();
        for _ in 0..100 {
            let d = server.recv_decision().expect("decision");
            assert!(d.record.terminated(), "instance {} did not terminate", d.id);
            assert!(d.events > 0);
            assert!(!d.record.decisions().is_empty());
            got.push(d.id);
        }
        got.sort_unstable();
        assert_eq!(got, ids);
        let stats = server.shutdown();
        assert_eq!(stats.decided, 100);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn decisions_match_direct_runs() {
        use kset_net::MpSystem;
        use kset_protocols::FloodMin;

        let workload = Workload::flood_min(3, 1);
        let server = Server::start(ServeConfig::new(workload));
        let client = server.client();
        let id = client.propose(vec![9, 4, 7]).unwrap();
        let decision = server.recv_decision().expect("decision");
        assert_eq!(decision.id, id);

        // The same instance replayed through the ordinary run entry point
        // must produce the same decisions: the service is just another
        // driver over the deterministic kernel.
        let procs = [9u64, 4, 7]
            .iter()
            .map(|&v| FloodMin::boxed(workload.n, workload.t, v))
            .collect();
        let outcome = MpSystem::new(workload.n)
            .seed(workload.seed ^ id)
            .run(procs)
            .unwrap();
        assert_eq!(
            decision.record.decisions().iter().map(|(&p, &v)| (p, v)).collect::<Vec<_>>(),
            outcome.decisions.iter().map(|(&p, &v)| (p, v)).collect::<Vec<_>>(),
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn wrong_arity_is_rejected_at_the_client() {
        let server = Server::start(ServeConfig::new(Workload::flood_min(3, 1)));
        let client = server.client();
        assert!(matches!(
            client.propose(vec![1, 2]),
            Err(SimError::InvalidConfig(_))
        ));
        drop(client);
        assert_eq!(server.shutdown().decided, 0);
    }
}
