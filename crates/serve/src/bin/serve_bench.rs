//! `serve_bench` — closed-loop load generator for the consensus service.
//!
//! Pushes `--instances` proposals through a [`Server`] at full speed (a
//! dedicated proposer thread submits, the main thread drains decisions)
//! and records throughput and latency per thread count into a hand-rolled
//! JSON report (`--out`, default `BENCH_serve.json`).
//!
//! Latency here is submit-to-decide under saturation: with the bounded
//! proposal queues full, it is dominated by queueing, which is exactly
//! what a service-level benchmark should show. Every decision is checked
//! (`terminated`, non-empty decision map) before it is counted.

use std::process::ExitCode;
use std::time::Instant;

use kset_serve::{ServeConfig, Server, Workload};

struct BenchRow {
    threads: usize,
    instances: u64,
    wall_s: f64,
    decisions_per_s: f64,
    p50_us: u64,
    p95_us: u64,
    max_us: u64,
    events_total: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench [--instances N] [--threads LIST] [--n N] [--t N] \
         [--batch EVENTS] [--max-live N] [--queue-depth N] [--seed SEED] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("serve_bench: {flag} needs a valid value");
            usage()
        })
}

/// Deterministic per-instance inputs: varied enough to exercise different
/// decision values, reproducible from the instance id alone.
fn inputs_for(id: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|p| (id.wrapping_mul(31) + p * 7) % 97).collect()
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as u64 - 1) * pct) / 100;
    sorted[idx as usize]
}

fn run_one(config: ServeConfig, instances: u64) -> Result<BenchRow, String> {
    let server = Server::start(config);
    let client = server.client();
    let n = config.workload.n;
    let start = Instant::now();
    let proposer = std::thread::spawn(move || {
        for id in 0..instances {
            // Ids are assigned in submission order, so this proposes the
            // inputs the drain below will verify against.
            if client.propose(inputs_for(id, n)).is_err() {
                return Err(id);
            }
        }
        Ok(())
    });

    let mut latencies_us: Vec<u64> = Vec::with_capacity(instances as usize);
    let mut events_total: u64 = 0;
    for drained in 0..instances {
        let decision = server
            .recv_decision()
            .ok_or_else(|| format!("workers exited after {drained} decisions"))?;
        if !decision.record.terminated() {
            return Err(format!("instance {} did not terminate", decision.id));
        }
        if decision.record.decisions().is_empty() {
            return Err(format!("instance {} decided nothing", decision.id));
        }
        events_total += decision.events;
        latencies_us.push(decision.latency.as_micros() as u64);
        if (drained + 1) % 250_000 == 0 {
            eprintln!(
                "serve_bench: threads={} {}/{} decided",
                config.threads,
                drained + 1,
                instances
            );
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    proposer
        .join()
        .map_err(|_| "proposer thread panicked".to_string())?
        .map_err(|id| format!("propose {id} failed"))?;
    let stats = server.shutdown();
    if stats.decided != instances {
        return Err(format!("decided {} of {instances}", stats.decided));
    }
    latencies_us.sort_unstable();
    Ok(BenchRow {
        threads: config.threads,
        instances,
        wall_s,
        decisions_per_s: instances as f64 / wall_s,
        p50_us: percentile(&latencies_us, 50),
        p95_us: percentile(&latencies_us, 95),
        max_us: *latencies_us.last().unwrap_or(&0),
        events_total,
    })
}

fn write_report(
    path: &str,
    workload: &Workload,
    config: &ServeConfig,
    rows: &[BenchRow],
) -> std::io::Result<()> {
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve_throughput\",\n");
    out.push_str(
        "  \"description\": \"Closed-loop load test of kset-serve: a proposer thread \
         submits failure-free FloodMin instances as fast as backpressure allows while \
         the main thread drains and verifies every decision (terminated, non-empty \
         decision map). decisions_per_s is end-to-end service throughput; latencies \
         are submit-to-decide under saturation, so they are dominated by time spent \
         in the bounded per-worker queues (queue_depth entries deep) — divide wall_s \
         by instances for the per-instance service time instead. Recorded from \
         `serve_bench --instances N --threads LIST`.\",\n",
    );
    out.push_str(&format!("  \"host_logical_cpus\": {cpus},\n"));
    out.push_str(
        "  \"host_note\": \"Recorded on a single-core container: thread counts above 1 \
         time-slice one CPU, so threads=2 measures multiplexing overhead, not speedup. \
         Re-record on a multi-core host to see sharded scaling.\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"protocol\": \"FloodMin\", \"n\": {}, \"t\": {}, \"seed\": {}, \
         \"fault_plan\": \"all correct\"}},\n",
        workload.n, workload.t, workload.seed
    ));
    out.push_str(&format!(
        "  \"config\": {{\"batch\": {}, \"max_live\": {}, \"queue_depth\": {}}},\n",
        config.batch, config.max_live, config.queue_depth
    ));
    out.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"instances\": {}, \"wall_s\": {:.3}, \
             \"decisions_per_s\": {:.0}, \"p50_latency_us\": {}, \"p95_latency_us\": {}, \
             \"max_latency_us\": {}, \"events_total\": {}, \"events_per_instance\": {:.2}}}{}\n",
            row.threads,
            row.instances,
            row.wall_s,
            row.decisions_per_s,
            row.p50_us,
            row.p95_us,
            row.max_us,
            row.events_total,
            row.events_total as f64 / row.instances as f64,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let mut instances: u64 = 1_000_000;
    let mut thread_counts: Vec<usize> = vec![1, 2];
    let mut workload = Workload::flood_min(3, 1);
    let mut config = ServeConfig::new(workload);
    let mut out_path = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instances" => instances = parse("--instances", args.next()),
            "--threads" => {
                let list: String = parse("--threads", args.next());
                match list.split(',').map(|s| s.trim().parse()).collect() {
                    Ok(parsed) => thread_counts = parsed,
                    Err(_) => usage(),
                }
            }
            "--n" => workload.n = parse("--n", args.next()),
            "--t" => workload.t = parse("--t", args.next()),
            "--batch" => config.batch = parse("--batch", args.next()),
            "--max-live" => config.max_live = parse("--max-live", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--seed" => workload.seed = parse("--seed", args.next()),
            "--out" => out_path = parse("--out", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve_bench: unknown flag {other}");
                usage()
            }
        }
    }
    config.workload = workload;

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let run_config = ServeConfig { threads, ..config };
        eprintln!(
            "serve_bench: {instances} instances of FloodMin(n={}, t={}) on {threads} worker(s)",
            workload.n, workload.t
        );
        match run_one(run_config, instances) {
            Ok(row) => {
                println!(
                    "threads={} wall_s={:.3} decisions_per_s={:.0} p50_us={} p95_us={} \
                     events_per_instance={:.2}",
                    row.threads,
                    row.wall_s,
                    row.decisions_per_s,
                    row.p50_us,
                    row.p95_us,
                    row.events_total as f64 / row.instances as f64,
                );
                rows.push(row);
            }
            Err(err) => {
                eprintln!("serve_bench: threads={threads} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(err) = write_report(&out_path, &workload, &config, &rows) {
        eprintln!("serve_bench: cannot write {out_path}: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve_bench: wrote {out_path}");
    ExitCode::SUCCESS
}
