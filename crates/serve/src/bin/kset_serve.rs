//! `kset-serve` — consensus as a service over TCP.
//!
//! Binds a TCP listener and serves the [`kset_serve::wire`] line protocol,
//! one connection at a time (the decision channel has a single consumer;
//! see the wire module docs). Try it with netcat:
//!
//! ```text
//! $ kset-serve --addr 127.0.0.1:4790 --threads 2 &
//! $ printf 'RUN 5,6,7\nFLUSH\nQUIT\n' | nc 127.0.0.1:4790
//! ID 0
//! DECIDED 0 terminated=true 0:5 1:5 2:5
//! OK 1
//! ```

use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;

use kset_serve::{wire, ServeConfig, Server, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: kset-serve [--addr HOST:PORT] [--threads N] [--n N] [--t N] \
         [--batch EVENTS] [--max-live N] [--seed SEED]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("kset-serve: {flag} needs a valid value");
            usage()
        })
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:4790".to_string();
    let mut workload = Workload::flood_min(3, 1);
    let mut config = ServeConfig::new(workload);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--threads" => config.threads = parse("--threads", args.next()),
            "--n" => workload.n = parse("--n", args.next()),
            "--t" => workload.t = parse("--t", args.next()),
            "--batch" => config.batch = parse("--batch", args.next()),
            "--max-live" => config.max_live = parse("--max-live", args.next()),
            "--seed" => workload.seed = parse("--seed", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("kset-serve: unknown flag {other}");
                usage()
            }
        }
    }
    config.workload = workload;

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(err) => {
            eprintln!("kset-serve: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::start(config);
    let client = server.client();
    eprintln!(
        "kset-serve: listening on {addr} ({} workers, FloodMin n={} t={})",
        config.threads, workload.n, workload.t
    );

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(err) => {
                eprintln!("kset-serve: accept failed: {err}");
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let reader = match stream.try_clone() {
            Ok(r) => BufReader::new(r),
            Err(err) => {
                eprintln!("kset-serve: cannot clone stream for {peer}: {err}");
                continue;
            }
        };
        match wire::serve_connection(&server, &client, reader, stream) {
            Ok(stats) => eprintln!(
                "kset-serve: {peer} done (proposed={} flushed={})",
                stats.proposed, stats.flushed
            ),
            Err(err) => eprintln!("kset-serve: {peer} errored: {err}"),
        }
    }
    drop(client);
    let stats = server.shutdown();
    eprintln!("kset-serve: served {} decisions", stats.decided);
    ExitCode::SUCCESS
}
