//! Minimal line protocol for driving a [`Server`] over a byte stream.
//!
//! One text command per line:
//!
//! | command              | effect                                            |
//! |----------------------|---------------------------------------------------|
//! | `RUN v0,v1,...`      | propose an instance, reply `ID <id>`              |
//! | `FLUSH`              | wait for every outstanding decision of this       |
//! |                      | connection; reply one `DECIDED` line per instance |
//! |                      | (ascending id) then `OK <count>`                  |
//! | `STATS`              | reply `STATS proposed=<p> flushed=<f>`            |
//! | `QUIT` (or EOF)      | close the connection                              |
//!
//! A decision line looks like `DECIDED 17 terminated=true 0:4 1:4 2:4` —
//! instance id, termination flag, then `process:value` pairs. Malformed or
//! unknown input earns an `ERR <reason>` line and the connection stays up.
//!
//! The protocol is synchronous and single-tenant by design: the server's
//! decision channel has one consumer, so the `kset-serve` binary serves
//! one connection at a time. The interesting concurrency — millions of
//! in-flight instances — lives behind [`Server`], not in the framing.

use std::io::{self, BufRead, Write};

use crate::instance::Decision;
use crate::server::{ServeClient, Server};

/// Per-connection totals returned by [`serve_connection`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Instances proposed over this connection.
    pub proposed: u64,
    /// Decisions delivered back over this connection.
    pub flushed: u64,
}

/// Parses a `v0,v1,...` comma-separated input vector.
pub fn parse_inputs(csv: &str) -> Option<Vec<u64>> {
    csv.split(',').map(|part| part.trim().parse::<u64>().ok()).collect()
}

/// Formats one decision as its `DECIDED` wire line (without newline).
pub fn decision_line(decision: &Decision) -> String {
    let mut line = format!(
        "DECIDED {} terminated={}",
        decision.id,
        decision.record.terminated()
    );
    for (&pid, &value) in decision.record.decisions() {
        line.push_str(&format!(" {pid}:{value}"));
    }
    line
}

/// Serves one connection: reads commands from `input`, writes replies to
/// `output`, until `QUIT` or EOF. Returns the connection's totals.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    client: &ServeClient,
    input: R,
    mut output: W,
) -> io::Result<ConnStats> {
    let mut stats = ConnStats::default();
    let mut outstanding: u64 = 0;
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (command, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match command {
            "RUN" => match parse_inputs(rest) {
                Some(inputs) => match client.propose(inputs) {
                    Ok(id) => {
                        stats.proposed += 1;
                        outstanding += 1;
                        writeln!(output, "ID {id}")?;
                    }
                    Err(err) => writeln!(output, "ERR {err}")?,
                },
                None => writeln!(output, "ERR expected RUN v0,v1,...")?,
            },
            "FLUSH" => {
                let mut batch = Vec::with_capacity(outstanding as usize);
                while outstanding > 0 {
                    match server.recv_decision() {
                        Some(decision) => {
                            outstanding -= 1;
                            batch.push(decision);
                        }
                        None => break, // workers gone; report what we have
                    }
                }
                batch.sort_by_key(|d| d.id);
                stats.flushed += batch.len() as u64;
                for decision in &batch {
                    writeln!(output, "{}", decision_line(decision))?;
                }
                writeln!(output, "OK {}", batch.len())?;
            }
            "STATS" => {
                writeln!(
                    output,
                    "STATS proposed={} flushed={}",
                    stats.proposed, stats.flushed
                )?;
            }
            "QUIT" => break,
            _ => writeln!(output, "ERR unknown command {command}")?,
        }
        output.flush()?;
    }
    output.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Workload;
    use crate::server::{ServeConfig, Server};

    #[test]
    fn run_flush_round_trip() {
        let server = Server::start(ServeConfig::new(Workload::flood_min(3, 1)));
        let client = server.client();
        let script = "RUN 5,6,7\nRUN 1,1,1\nFLUSH\nSTATS\nQUIT\n";
        let mut reply = Vec::new();
        let stats =
            serve_connection(&server, &client, script.as_bytes(), &mut reply).unwrap();
        assert_eq!(stats, ConnStats { proposed: 2, flushed: 2 });
        let reply = String::from_utf8(reply).unwrap();
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "ID 0");
        assert_eq!(lines[1], "ID 1");
        assert!(lines[2].starts_with("DECIDED 0 terminated=true "));
        assert!(lines[3].starts_with("DECIDED 1 terminated=true "));
        assert_eq!(lines[4], "OK 2");
        assert_eq!(lines[5], "STATS proposed=2 flushed=2");
        drop(client);
        assert_eq!(server.shutdown().decided, 2);
    }

    #[test]
    fn malformed_lines_get_err_replies() {
        let server = Server::start(ServeConfig::new(Workload::flood_min(3, 1)));
        let client = server.client();
        let script = "RUN nope\nRUN 1,2\nPING\nQUIT\n";
        let mut reply = Vec::new();
        serve_connection(&server, &client, script.as_bytes(), &mut reply).unwrap();
        let reply = String::from_utf8(reply).unwrap();
        for line in reply.lines() {
            assert!(line.starts_with("ERR "), "unexpected reply: {line}");
        }
        drop(client);
        server.shutdown();
    }
}
