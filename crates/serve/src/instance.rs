//! One consensus instance: a proposal, a live steppable session, a decision.

use std::time::{Duration, Instant};

use kset_core::RunRecord;
use kset_net::{MpSession, MpSystem};
use kset_protocols::FloodMin;
use kset_sim::{Poll, SimError};

/// Shape of the consensus runs the service executes.
///
/// Every instance solves the same problem with the same protocol; only the
/// inputs (and the derived schedule seed) vary per instance. The service
/// runs `FloodMin(n, t)` — the paper's Section 3 crash-tolerant protocol —
/// under a failure-free plan, which is the common case for a consensus
/// service: failures are injected by the *checking* pipelines, not the
/// serving one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of processes per instance (and expected input arity).
    pub n: usize,
    /// Fault tolerance parameter handed to the protocol.
    pub t: usize,
    /// Base seed; instance `id` runs under seed `seed ^ id`, so the whole
    /// workload is deterministic yet no two instances share a schedule.
    pub seed: u64,
}

impl Workload {
    /// A `FloodMin(n, t)` workload with the default base seed.
    pub fn flood_min(n: usize, t: usize) -> Self {
        Workload { n, t, seed: 0x6b73_6574 }
    }
}

/// A submitted proposal: `inputs[p]` is process `p`'s initial value.
#[derive(Debug, Clone)]
pub struct Propose {
    /// Service-assigned instance id (also the sharding and seeding key).
    pub id: u64,
    /// One initial value per process; length must equal [`Workload::n`].
    pub inputs: Vec<u64>,
    /// When the proposal was accepted by the client handle.
    pub submitted: Instant,
}

/// A finished instance, as reported back to the submitter.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Instance id this decision answers.
    pub id: u64,
    /// Inputs, decisions, fault set and termination flag of the run, in
    /// the same [`RunRecord`] shape the experiment pipelines consume.
    pub record: RunRecord<u64>,
    /// Kernel events the run consumed before every process decided.
    pub events: u64,
    /// Submit-to-decide latency as observed inside the server.
    pub latency: Duration,
}

/// A live instance: the proposal plus its in-flight [`MpSession`].
///
/// Workers advance instances in bounded *waves* via [`step_wave`] so that
/// thousands of instances can share one thread without any of them
/// monopolising it.
///
/// [`step_wave`]: Instance::step_wave
#[derive(Debug)]
pub struct Instance {
    id: u64,
    inputs: Vec<u64>,
    submitted: Instant,
    session: MpSession<u64, u64>,
}

impl Instance {
    /// Builds the session for `propose` under `workload`.
    ///
    /// Fails with [`SimError::InvalidConfig`] if the input arity does not
    /// match `workload.n`; the proposal is handed back alongside the error
    /// so the caller can still answer it (see [`Instance::refuse`]). The
    /// [`crate::ServeClient`] checks arity before enqueueing, so workers
    /// treat this path as unreachable-but-handled.
    pub fn new(propose: Propose, workload: &Workload) -> Result<Self, (SimError, Propose)> {
        let procs = propose
            .inputs
            .iter()
            .map(|&input| FloodMin::boxed(workload.n, workload.t, input))
            .collect();
        match MpSystem::new(workload.n)
            .seed(workload.seed ^ propose.id)
            .session(procs)
        {
            Ok(session) => {
                let Propose { id, inputs, submitted } = propose;
                Ok(Instance { id, inputs, submitted, session })
            }
            Err(err) => Err((err, propose)),
        }
    }

    /// Instance id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Fires up to `budget` kernel events. Returns `true` once the run is
    /// over (all correct processes decided, or the kernel went idle) and
    /// `false` if the instance still has work after the wave.
    pub fn step_wave(&mut self, budget: u32) -> Result<bool, SimError> {
        for _ in 0..budget {
            match self.session.step()? {
                Poll::Pending => {}
                Poll::Decided | Poll::Idle => return Ok(true),
            }
        }
        Ok(false)
    }

    /// Consumes the finished session into a [`Decision`].
    pub fn finish(self) -> Decision {
        let Instance { id, inputs, submitted, session } = self;
        let events = session.stats().events_fired;
        let (outcome, ()) = session.finish();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.iter().map(|(&p, &v)| (p, v)))
            .with_terminated(outcome.terminated);
        Decision { id, record, events, latency: submitted.elapsed() }
    }

    /// Turns a proposal that could not even start (bad arity reaching a
    /// worker) into a non-terminated decision, so the submitter still gets
    /// an answer for every accepted id.
    pub fn refuse(propose: Propose) -> Decision {
        let Propose { id, inputs, submitted } = propose;
        Decision {
            id,
            record: RunRecord::new(inputs).with_terminated(false),
            events: 0,
            latency: submitted.elapsed(),
        }
    }
}
