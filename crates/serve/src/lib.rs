//! # kset-serve — consensus as a service
//!
//! The simulation stack in this workspace was built to *check* k-set
//! consensus protocols: one run at a time, driven to completion, inspected
//! for violations. This crate turns the same machinery inside out and runs
//! it as a *service*: millions of short-lived consensus instances
//! multiplexed over a small pool of worker threads, each instance advanced
//! a few events at a time through the steppable [`Session`] API from
//! `kset-sim`.
//!
//! The shape mirrors how k-set consensus is actually consumed in systems
//! (one instance per slot/decree, vast numbers of tiny instances, latency
//! and throughput as the service-level metrics) rather than how it is
//! proved (one adversarial run under a microscope):
//!
//! * [`Server`] owns the worker pool. Each worker keeps a bounded set of
//!   live instances and advances every one of them by a bounded *wave* of
//!   events per scheduling round, so a slow instance cannot starve its
//!   neighbours and memory stays proportional to the live set, not the
//!   total workload.
//! * [`ServeClient`] is the cloneable submission handle: [`propose`] hands
//!   a vector of inputs (one per process) to a worker, sharded by instance
//!   id; backpressure is a bounded queue, so a producer that outruns the
//!   workers blocks instead of ballooning memory.
//! * Each finished instance comes back as a [`Decision`] carrying a
//!   [`RunRecord`] (the same record type the experiment pipelines consume),
//!   the number of kernel events the run took, and the submit-to-decide
//!   latency.
//! * [`wire`] adds a deliberately minimal line protocol (`RUN` / `FLUSH` /
//!   `STATS`) so the `kset-serve` binary can expose the whole thing over a
//!   TCP socket.
//!
//! Every run is still the deterministic kernel underneath: instance `id`
//! with seed `s` replays bit-for-bit through the ordinary
//! [`run`](kset_net::MpSystem::run) entry points, which is what the
//! `session_parity` integration test pins.
//!
//! ## Example
//!
//! ```
//! use kset_serve::{ServeConfig, Server, Workload};
//!
//! let server = Server::start(ServeConfig {
//!     threads: 2,
//!     ..ServeConfig::new(Workload::flood_min(3, 1))
//! });
//! let client = server.client();
//! for i in 0..64u64 {
//!     client.propose(vec![i, i + 1, i + 2]).unwrap();
//! }
//! let mut decided = 0;
//! while decided < 64 {
//!     let decision = server.recv_decision().unwrap();
//!     assert!(decision.record.terminated());
//!     decided += 1;
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.decided, 64);
//! ```
//!
//! [`Session`]: kset_sim::Session
//! [`RunRecord`]: kset_core::RunRecord
//! [`propose`]: ServeClient::propose

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

mod instance;
mod server;
pub mod wire;

pub use instance::{Decision, Instance, Propose, Workload};
pub use server::{ServeClient, ServeConfig, ServeStats, Server};
