//! `SC(k, t, C)` problem instances and the run checker.

use std::error::Error;
use std::fmt;

use crate::record::{ProcessId, RunView};
use crate::validity::ValidityCondition;

/// A validated `SC(k, t, C)` problem instance over `n` processes.
///
/// The constructor enforces the domain the paper studies: `n ≥ 1`,
/// `1 ≤ k ≤ n`, `0 ≤ t ≤ n`. (`k = n` and `t = 0` are the trivially
/// solvable fringes; `k = 1` is classical consensus, impossible for any
/// nontrivial validity with `t ≥ 1`.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProblemSpec {
    n: usize,
    k: usize,
    t: usize,
    validity: ValidityCondition,
}

impl ProblemSpec {
    /// Creates `SC(k, t, C)` over `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the parameters leave the paper's domain
    /// (`n == 0`, `k == 0`, `k > n`, or `t > n`).
    pub fn new(
        n: usize,
        k: usize,
        t: usize,
        validity: ValidityCondition,
    ) -> Result<Self, SpecError> {
        if n == 0 {
            return Err(SpecError::new("n must be positive"));
        }
        if k == 0 || k > n {
            return Err(SpecError::new(format!("k must be in 1..=n, got k={k}, n={n}")));
        }
        if t > n {
            return Err(SpecError::new(format!("t must be in 0..=n, got t={t}, n={n}")));
        }
        Ok(ProblemSpec { n, k, t, validity })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum cardinality of the correct decision set.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of faulty processes tolerated.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The validity condition.
    pub fn validity(&self) -> ValidityCondition {
        self.validity
    }

    /// True for the fringes the paper dismisses as uninteresting:
    /// `k = n` (decide your own input), `k = 1` (classical consensus,
    /// impossible), or `t = 0` (no failures to tolerate). The atlases of
    /// Figures 2/4/5/6 cover `2 ≤ k ≤ n-1`, `t ≥ 1`.
    pub fn is_fringe(&self) -> bool {
        self.k == self.n || self.k == 1 || self.t == 0
    }

    /// Checks a completed run against all three conditions.
    ///
    /// The record's planned-faulty set must be consistent with `t`; a run
    /// with more planned failures than `t` is not a run of this system and
    /// yields [`Violation::FaultBudgetExceeded`].
    ///
    /// Generic over [`RunView`]: pass a [`crate::RunRecord`] for the
    /// ergonomic owned path, or a [`crate::DenseRun`] over raw buffers on
    /// hot paths — a passing run is then judged without a single
    /// allocation (the distinct-decision count scans rather than sorts;
    /// `n` is single digits everywhere the paper looks).
    pub fn check<V: Clone + Eq + Ord>(&self, record: &impl RunView<V>) -> CheckReport {
        let mut violations = Vec::new();

        if record.n() != self.n {
            violations.push(Violation::WrongSystemSize {
                expected: self.n,
                actual: record.n(),
            });
            return CheckReport { violations };
        }
        if record.faulty_count() > self.t {
            violations.push(Violation::FaultBudgetExceeded {
                t: self.t,
                actual: record.faulty_count(),
            });
        }

        // Termination: every correct process decided. (An empty collect
        // never allocates, so clean runs skip the Vec entirely.)
        let undecided: Vec<ProcessId> = (0..record.n())
            .filter(|&p| !record.is_faulty(p) && record.decision_of(p).is_none())
            .collect();
        if !record.terminated() || !undecided.is_empty() {
            violations.push(Violation::Termination { undecided });
        }

        // Agreement: at most k distinct correct decisions, counted by
        // first occurrence.
        let mut decided = 0;
        for p in (0..record.n()).filter(|&p| !record.is_faulty(p)) {
            if let Some(d) = record.decision_of(p) {
                let seen = (0..p)
                    .any(|q| !record.is_faulty(q) && record.decision_of(q) == Some(d));
                if !seen {
                    decided += 1;
                }
            }
        }
        if decided > self.k {
            violations.push(Violation::Agreement {
                k: self.k,
                decided,
            });
        }

        // Validity.
        if !self.validity.satisfied_by(record) {
            violations.push(Violation::Validity {
                condition: self.validity,
            });
        }

        CheckReport { violations }
    }
}

impl fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SC(k={}, t={}, {}) over n={}",
            self.k, self.t, self.validity, self.n
        )
    }
}

/// Rejected `SC(k, t, C)` parameters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid problem specification: {}", self.msg)
    }
}

impl Error for SpecError {}

/// One way a run failed its specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// The record describes a different number of processes than the spec.
    WrongSystemSize {
        /// Processes in the spec.
        expected: usize,
        /// Processes in the record.
        actual: usize,
    },
    /// More processes were planned faulty than the spec tolerates.
    FaultBudgetExceeded {
        /// Allowed failures.
        t: usize,
        /// Planned failures in the record.
        actual: usize,
    },
    /// Some correct process never decided.
    Termination {
        /// The correct processes without a decision.
        undecided: Vec<ProcessId>,
    },
    /// More than `k` distinct values were decided by correct processes.
    Agreement {
        /// The bound.
        k: usize,
        /// The observed cardinality.
        decided: usize,
    },
    /// The validity condition was violated.
    Validity {
        /// Which condition.
        condition: ValidityCondition,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongSystemSize { expected, actual } => {
                write!(f, "record has {actual} processes, spec expects {expected}")
            }
            Violation::FaultBudgetExceeded { t, actual } => {
                write!(f, "{actual} planned failures exceed the budget t={t}")
            }
            Violation::Termination { undecided } => {
                write!(f, "correct processes {undecided:?} never decided")
            }
            Violation::Agreement { k, decided } => {
                write!(f, "{decided} distinct values decided, agreement allows {k}")
            }
            Violation::Validity { condition } => {
                write!(f, "validity {condition} violated: {}", condition.statement())
            }
        }
    }
}

/// The verdict of [`ProblemSpec::check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    violations: Vec<Violation>,
}

impl CheckReport {
    /// True when the run satisfied termination, agreement and validity.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, in check order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True if a violation of the given discriminant is present.
    pub fn has_termination_violation(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Termination { .. }))
    }

    /// True if agreement was violated.
    pub fn has_agreement_violation(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Agreement { .. }))
    }

    /// True if validity was violated.
    pub fn has_validity_violation(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Validity { .. }))
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return f.write_str("ok");
        }
        let mut first = true;
        for v in &self.violations {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;

    fn spec(k: usize, t: usize, c: ValidityCondition) -> ProblemSpec {
        ProblemSpec::new(4, k, t, c).unwrap()
    }

    #[test]
    fn constructor_validates_domain() {
        assert!(ProblemSpec::new(0, 1, 0, ValidityCondition::RV1).is_err());
        assert!(ProblemSpec::new(4, 0, 1, ValidityCondition::RV1).is_err());
        assert!(ProblemSpec::new(4, 5, 1, ValidityCondition::RV1).is_err());
        assert!(ProblemSpec::new(4, 2, 5, ValidityCondition::RV1).is_err());
        assert!(ProblemSpec::new(4, 2, 4, ValidityCondition::RV1).is_ok());
    }

    #[test]
    fn fringe_detection() {
        assert!(spec(4, 1, ValidityCondition::RV1).is_fringe()); // k = n
        assert!(spec(1, 1, ValidityCondition::RV1).is_fringe()); // k = 1
        assert!(spec(2, 0, ValidityCondition::RV1).is_fringe()); // t = 0
        assert!(!spec(2, 1, ValidityCondition::RV1).is_fringe());
    }

    #[test]
    fn clean_run_passes() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4])
            .with_faulty([3])
            .with_decisions([(0, 1), (1, 1), (2, 2)]);
        let report = s.check(&r);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.to_string(), "ok");
    }

    #[test]
    fn termination_violation_lists_undecided() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4]).with_decisions([(0, 1)]);
        let report = s.check(&r);
        assert!(report.has_termination_violation());
        assert!(report.to_string().contains("never decided"));
    }

    #[test]
    fn explicit_nontermination_is_flagged_even_with_decisions() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4])
            .with_decisions([(0, 1), (1, 1), (2, 1), (3, 1)])
            .with_terminated(false);
        assert!(s.check(&r).has_termination_violation());
    }

    #[test]
    fn agreement_violation_counts_distinct_values() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4])
            .with_decisions([(0, 1), (1, 2), (2, 3), (3, 4)]);
        let report = s.check(&r);
        assert!(report.has_agreement_violation());
        assert!(!report.is_ok());
    }

    #[test]
    fn validity_violation_reports_condition() {
        let s = spec(3, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4])
            .with_decisions([(0, 9), (1, 9), (2, 9), (3, 9)]);
        let report = s.check(&r);
        assert!(report.has_validity_violation());
        assert!(report.to_string().contains("RV1"));
    }

    #[test]
    fn fault_budget_violation() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2, 3, 4])
            .with_faulty([0, 1])
            .with_decisions([(2, 3), (3, 3)]);
        let report = s.check(&r);
        assert!(!report.is_ok());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::FaultBudgetExceeded { .. })));
    }

    #[test]
    fn wrong_size_short_circuits() {
        let s = spec(2, 1, ValidityCondition::RV1);
        let r = RunRecord::new(vec![1, 2]);
        let report = s.check(&r);
        assert_eq!(report.violations().len(), 1);
        assert!(matches!(
            report.violations()[0],
            Violation::WrongSystemSize { expected: 4, actual: 2 }
        ));
    }

    #[test]
    fn display_formats() {
        let s = spec(2, 1, ValidityCondition::SV2);
        assert_eq!(s.to_string(), "SC(k=2, t=1, SV2) over n=4");
        let e = ProblemSpec::new(0, 1, 0, ValidityCondition::RV1).unwrap_err();
        assert!(e.to_string().contains("n must be positive"));
    }
}
