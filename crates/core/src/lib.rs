//! # kset-core — the k-set consensus problem, precisely
//!
//! Problem definitions from *"On k-Set Consensus Problems in Asynchronous
//! Systems"* (De Prisco, Malkhi, Reiter — PODC'99 / TPDS'01), Section 2.
//!
//! The `SC(k, t, C)` problem: each of `n` processes starts with an input;
//! every correct process must irreversibly decide a value such that
//!
//! * **Termination** — every correct process eventually decides;
//! * **Agreement** — the set of values decided by correct processes has
//!   size at most `k`;
//! * **Validity** — one of the six conditions of [`ValidityCondition`].
//!
//! This crate provides:
//!
//! * [`ValidityCondition`] — SV1, SV2, RV1, RV2, WV1, WV2 as executable
//!   predicates over a completed run ([`RunRecord`]);
//! * [`ProblemSpec`] — a validated `SC(k, t, C)` instance and its
//!   [`ProblemSpec::check`] verdict over a run;
//! * [`lattice`] — the "weaker-than" relation of the paper's Figure 1,
//!   *derived* by exhaustive enumeration rather than transcribed, plus the
//!   transcription to compare against.
//!
//! ```
//! use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
//!
//! // SC(2, 1, RV1) among 4 processes.
//! let spec = ProblemSpec::new(4, 2, 1, ValidityCondition::RV1)?;
//!
//! // A run: inputs 10,20,30,40; process 3 crashed; the rest decided 10 or 20.
//! let record = RunRecord::new(vec![10, 20, 30, 40])
//!     .with_faulty([3])
//!     .with_decisions([(0, 10), (1, 20), (2, 10)]);
//!
//! let report = spec.check(&record);
//! assert!(report.is_ok());
//! # Ok::<(), kset_core::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

pub mod lattice;
mod record;
mod spec;
mod validity;

pub use record::{DenseRun, RunRecord, RunView};
pub use spec::{CheckReport, ProblemSpec, SpecError, Violation};
pub use validity::ValidityCondition;

/// Marker alias for types usable as consensus input/decision values.
///
/// Everything in the workspace is generic over this bound; experiments use
/// `u64`, tests also exercise strings and tuples.
pub trait Value: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug {}

impl<T: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> Value for T {}
