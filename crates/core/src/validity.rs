//! The six validity conditions, as executable predicates (paper §2).

use serde::{Deserialize, Serialize};

use crate::record::RunView;

/// A validity condition of the `SC(k, t, C)` problem.
///
/// Quoting the paper's definitions verbatim:
///
/// * **SV1** (strong V1): *the decision of any correct process is equal to
///   the input of some correct process.*
/// * **SV2** (strong V2): *if all correct processes start with `v` then
///   correct processes decide `v`.*
/// * **RV1** (regular V1): *the decision of any correct process is equal to
///   the input of some process.* (The condition of Chaudhuri's original
///   k-set consensus.)
/// * **RV2** (regular V2): *if all processes start with `v` then correct
///   processes decide `v`.*
/// * **WV1** (weak V1): *if there are no failures, then the decision of any
///   process is equal to the input of some process.*
/// * **WV2** (weak V2): *if there are no failures and all processes start
///   with `v`, then the decision of any process is equal to `v`.*
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ValidityCondition {
    /// Strong V1: correct decisions come from correct inputs.
    SV1,
    /// Strong V2: unanimous correct inputs force that decision.
    SV2,
    /// Regular V1: correct decisions come from some process's input.
    RV1,
    /// Regular V2: unanimous inputs force that decision.
    RV2,
    /// Weak V1: in failure-free runs, decisions come from inputs.
    WV1,
    /// Weak V2: in failure-free unanimous runs, that value is decided.
    WV2,
}

impl ValidityCondition {
    /// All six conditions, in the paper's order of introduction.
    pub const ALL: [ValidityCondition; 6] = [
        ValidityCondition::SV1,
        ValidityCondition::SV2,
        ValidityCondition::RV1,
        ValidityCondition::RV2,
        ValidityCondition::WV1,
        ValidityCondition::WV2,
    ];

    /// The paper's name for the condition.
    pub fn name(self) -> &'static str {
        match self {
            ValidityCondition::SV1 => "SV1",
            ValidityCondition::SV2 => "SV2",
            ValidityCondition::RV1 => "RV1",
            ValidityCondition::RV2 => "RV2",
            ValidityCondition::WV1 => "WV1",
            ValidityCondition::WV2 => "WV2",
        }
    }

    /// One-line statement of the requirement, quoting the paper.
    pub fn statement(self) -> &'static str {
        match self {
            ValidityCondition::SV1 => {
                "the decision of any correct process is equal to the input of some correct process"
            }
            ValidityCondition::SV2 => {
                "if all correct processes start with v then correct processes decide v"
            }
            ValidityCondition::RV1 => {
                "the decision of any correct process is equal to the input of some process"
            }
            ValidityCondition::RV2 => "if all processes start with v then correct processes decide v",
            ValidityCondition::WV1 => {
                "if there are no failures, then the decision of any process is equal to the input of some process"
            }
            ValidityCondition::WV2 => {
                "if there are no failures and all processes start with v, then the decision of any process is equal to v"
            }
        }
    }

    /// Evaluates the condition over a completed run.
    ///
    /// The predicate quantifies only over decisions actually present in the
    /// record — missing decisions are a *termination* failure, judged
    /// separately by [`crate::ProblemSpec::check`].
    ///
    /// Generic over [`RunView`] so the model checker's hot loops can judge
    /// a run straight from borrowed buffers; the predicates themselves
    /// allocate nothing (the quantifier sets are small — at most `n`
    /// processes — so membership is tested by scan, not by set).
    pub fn satisfied_by<V: Clone + Eq + Ord>(self, record: &impl RunView<V>) -> bool {
        match self {
            ValidityCondition::SV1 => all_correct_decisions(record, |d| {
                (0..record.n()).any(|q| !record.is_faulty(q) && record.inputs()[q] == *d)
            }),
            ValidityCondition::SV2 => match unanimous_correct_input(record) {
                Some(v) => all_correct_decisions(record, |d| d == v),
                None => true,
            },
            ValidityCondition::RV1 => {
                all_correct_decisions(record, |d| record.inputs().contains(d))
            }
            ValidityCondition::RV2 => match unanimous_input(record) {
                Some(v) => all_correct_decisions(record, |d| d == v),
                None => true,
            },
            ValidityCondition::WV1 => {
                if !record.failure_free() {
                    return true;
                }
                record.all_decisions(&mut |_, d| record.inputs().contains(d))
            }
            ValidityCondition::WV2 => {
                if !record.failure_free() {
                    return true;
                }
                match unanimous_input(record) {
                    Some(v) => record.all_decisions(&mut |_, d| d == v),
                    None => true,
                }
            }
        }
    }
}

/// ∀ correct deciders p: `pred(decision_of(p))` — the quantifier shared by
/// the four strong/regular conditions.
fn all_correct_decisions<V>(record: &impl RunView<V>, mut pred: impl FnMut(&V) -> bool) -> bool {
    (0..record.n()).all(|p| {
        record.is_faulty(p) || record.decision_of(p).map_or(true, &mut pred)
    })
}

/// The common input value, if all `n` processes started with the same.
fn unanimous_input<V: Eq>(record: &impl RunView<V>) -> Option<&V> {
    let first = record.inputs().first()?;
    record.inputs().iter().all(|v| v == first).then_some(first)
}

/// The common input of correct processes, if they all agree (and at least
/// one process is correct).
fn unanimous_correct_input<V: Eq>(record: &impl RunView<V>) -> Option<&V> {
    let mut first: Option<&V> = None;
    for p in (0..record.n()).filter(|&p| !record.is_faulty(p)) {
        let v = &record.inputs()[p];
        match first {
            None => first = Some(v),
            Some(f) if f != v => return None,
            Some(_) => {}
        }
    }
    first
}

impl std::fmt::Display for ValidityCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;

    type R = RunRecord<u32>;

    #[test]
    fn sv1_requires_correct_inputs() {
        // Faulty process 0 has input 1; correct ones have 2 and 3.
        let base = R::new(vec![1, 2, 3]).with_faulty([0]);
        let ok = base.clone().with_decisions([(1, 2), (2, 3)]);
        assert!(ValidityCondition::SV1.satisfied_by(&ok));
        // Deciding the faulty process's input violates SV1 but not RV1.
        let bad = base.with_decisions([(1, 1), (2, 3)]);
        assert!(!ValidityCondition::SV1.satisfied_by(&bad));
        assert!(ValidityCondition::RV1.satisfied_by(&bad));
    }

    #[test]
    fn rv1_requires_some_input() {
        let r = R::new(vec![1, 2, 3]).with_decisions([(0, 4)]);
        assert!(!ValidityCondition::RV1.satisfied_by(&r));
        let r = R::new(vec![1, 2, 3]).with_decisions([(0, 3)]);
        assert!(ValidityCondition::RV1.satisfied_by(&r));
    }

    #[test]
    fn rv1_ignores_decisions_of_faulty_processes() {
        // Byzantine process 0 "decides" garbage; correct ones are fine.
        let r = R::new(vec![1, 2, 3])
            .with_faulty([0])
            .with_decisions([(0, 99), (1, 2), (2, 3)]);
        assert!(ValidityCondition::RV1.satisfied_by(&r));
    }

    #[test]
    fn sv2_binds_only_on_unanimous_correct_inputs() {
        // All correct processes start with 7 (faulty 0 starts with 1):
        // SV2 forces 7, RV2 does not bind (inputs not all equal).
        let base = R::new(vec![1, 7, 7]).with_faulty([0]);
        let bad = base.clone().with_decisions([(1, 1), (2, 7)]);
        assert!(!ValidityCondition::SV2.satisfied_by(&bad));
        assert!(ValidityCondition::RV2.satisfied_by(&bad));
        let ok = base.with_decisions([(1, 7), (2, 7)]);
        assert!(ValidityCondition::SV2.satisfied_by(&ok));
    }

    #[test]
    fn rv2_binds_on_unanimous_inputs() {
        let bad = R::new(vec![7, 7, 7])
            .with_faulty([0])
            .with_decisions([(1, 7), (2, 8)]);
        assert!(!ValidityCondition::RV2.satisfied_by(&bad));
        // A default decision is fine when inputs differ.
        let ok = R::new(vec![7, 7, 8]).with_decisions([(0, 0), (1, 0), (2, 0)]);
        assert!(ValidityCondition::RV2.satisfied_by(&ok));
    }

    #[test]
    fn wv1_only_binds_without_failures() {
        let bad = R::new(vec![1, 2]).with_decisions([(0, 9), (1, 1)]);
        assert!(!ValidityCondition::WV1.satisfied_by(&bad));
        // Same decisions with a planned failure: WV1 is vacuous.
        let vac = R::new(vec![1, 2])
            .with_faulty([1])
            .with_decisions([(0, 9)]);
        assert!(ValidityCondition::WV1.satisfied_by(&vac));
    }

    #[test]
    fn wv2_needs_failure_free_and_unanimous() {
        let bad = R::new(vec![4, 4]).with_decisions([(0, 4), (1, 5)]);
        assert!(!ValidityCondition::WV2.satisfied_by(&bad));
        let vac_inputs = R::new(vec![4, 5]).with_decisions([(0, 9), (1, 9)]);
        assert!(ValidityCondition::WV2.satisfied_by(&vac_inputs));
        let vac_fault = R::new(vec![4, 4])
            .with_faulty([0])
            .with_decisions([(1, 5)]);
        assert!(ValidityCondition::WV2.satisfied_by(&vac_fault));
    }

    #[test]
    fn wv1_checks_decisions_of_all_processes_in_failure_free_runs() {
        // In a failure-free run every process is correct, so a single bad
        // decision anywhere violates WV1 ("the decision of any process").
        let bad = R::new(vec![1, 2, 3]).with_decisions([(2, 0)]);
        assert!(!ValidityCondition::WV1.satisfied_by(&bad));
    }

    #[test]
    fn all_conditions_hold_vacuously_with_no_decisions() {
        let r = R::new(vec![1, 2, 3]).with_faulty([2]);
        for c in ValidityCondition::ALL {
            assert!(c.satisfied_by(&r), "{c} should be vacuous");
        }
    }

    #[test]
    fn names_and_statements_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            ValidityCondition::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 6);
        let stmts: std::collections::BTreeSet<_> =
            ValidityCondition::ALL.iter().map(|c| c.statement()).collect();
        assert_eq!(stmts.len(), 6);
        assert_eq!(ValidityCondition::SV1.to_string(), "SV1");
    }
}
