//! The abstract record of a completed run, as the checker sees it.

use std::collections::{BTreeMap, BTreeSet};

/// Index of a process, mirroring `kset_sim::ProcessId` without the
/// dependency (this crate is substrate-agnostic).
pub type ProcessId = usize;

/// A borrowed, read-only view of one run's observables.
///
/// [`crate::ProblemSpec::check`] and
/// [`crate::ValidityCondition::satisfied_by`] are generic over this trait,
/// so callers on a hot path — the model checker judges millions of runs per
/// cell — can hand them raw buffers without materializing an owned
/// [`RunRecord`] (a `Vec` + `BTreeMap` + `BTreeSet` per run). [`RunRecord`]
/// implements the trait, so the owned record remains the ergonomic default;
/// [`DenseRun`] is the allocation-free alternative.
pub trait RunView<V> {
    /// Number of processes.
    fn n(&self) -> usize;

    /// All inputs, indexed by process.
    fn inputs(&self) -> &[V];

    /// Whether `p` is planned faulty.
    fn is_faulty(&self, p: ProcessId) -> bool;

    /// Number of planned-faulty processes.
    fn faulty_count(&self) -> usize;

    /// Decision of `p`, if it decided.
    fn decision_of(&self, p: ProcessId) -> Option<&V>;

    /// Whether the run's event supply ended with every correct process
    /// having decided.
    fn terminated(&self) -> bool;

    /// Short-circuiting ∀ over every recorded decision — faulty deciders
    /// included, matching [`RunRecord::decisions`] (the weak validity
    /// conditions quantify over "any process" in failure-free runs).
    fn all_decisions(&self, pred: &mut dyn FnMut(ProcessId, &V) -> bool) -> bool;

    /// True if the run had no planned failures.
    fn failure_free(&self) -> bool {
        self.faulty_count() == 0
    }
}

/// The allocation-free [`RunView`]: borrowed inputs, a dense
/// process-indexed decision table, and the planned-faulty list as a slice.
///
/// `decisions` must have one slot per process (`decisions[p]` is `p`'s
/// decision, if any) and `faulty` must be duplicate-free — it is counted by
/// length. This is the shape the model checker's executors already hold
/// their per-run observables in, so checking a run costs no allocation.
#[derive(Clone, Copy, Debug)]
pub struct DenseRun<'a, V> {
    inputs: &'a [V],
    decisions: &'a [Option<V>],
    faulty: &'a [ProcessId],
    terminated: bool,
}

impl<'a, V> DenseRun<'a, V> {
    /// Wraps borrowed run observables; see the type docs for the invariants
    /// (`decisions.len() == inputs.len()`, `faulty` duplicate-free).
    pub fn new(
        inputs: &'a [V],
        decisions: &'a [Option<V>],
        faulty: &'a [ProcessId],
        terminated: bool,
    ) -> Self {
        debug_assert_eq!(inputs.len(), decisions.len());
        DenseRun {
            inputs,
            decisions,
            faulty,
            terminated,
        }
    }
}

impl<V> RunView<V> for DenseRun<'_, V> {
    fn n(&self) -> usize {
        self.inputs.len()
    }

    fn inputs(&self) -> &[V] {
        self.inputs
    }

    fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty.contains(&p)
    }

    fn faulty_count(&self) -> usize {
        self.faulty.len()
    }

    fn decision_of(&self, p: ProcessId) -> Option<&V> {
        self.decisions.get(p)?.as_ref()
    }

    fn terminated(&self) -> bool {
        self.terminated
    }

    fn all_decisions(&self, pred: &mut dyn FnMut(ProcessId, &V) -> bool) -> bool {
        self.decisions
            .iter()
            .enumerate()
            .filter_map(|(p, d)| d.as_ref().map(|v| (p, v)))
            .all(|(p, v)| pred(p, v))
    }
}

impl<V> RunView<V> for RunRecord<V> {
    fn n(&self) -> usize {
        self.inputs.len()
    }

    fn inputs(&self) -> &[V] {
        &self.inputs
    }

    fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty.contains(&p)
    }

    fn faulty_count(&self) -> usize {
        self.faulty.len()
    }

    fn decision_of(&self, p: ProcessId) -> Option<&V> {
        self.decisions.get(&p)
    }

    fn terminated(&self) -> bool {
        self.terminated
    }

    fn all_decisions(&self, pred: &mut dyn FnMut(ProcessId, &V) -> bool) -> bool {
        self.decisions.iter().all(|(&p, v)| pred(p, v))
    }
}

/// An abstract run: inputs, the planned fault pattern, and decisions.
///
/// `faulty` is the *planned* fault set of the run — the processes the
/// adversary was allowed to corrupt. The weak validity conditions WV1/WV2
/// apply exactly when this set is empty ("if there are no failures ...").
/// `decisions` may include decisions by faulty processes (a crashed process
/// may have decided before crashing; a Byzantine process may claim
/// anything); the checker quantifies over correct processes only, except
/// where a condition explicitly says "any process" in failure-free runs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunRecord<V> {
    inputs: Vec<V>,
    decisions: BTreeMap<ProcessId, V>,
    faulty: BTreeSet<ProcessId>,
    terminated: bool,
}

impl<V: Clone + Eq + Ord> RunRecord<V> {
    /// A failure-free, fully-terminated record with the given inputs and no
    /// decisions yet; refine with the `with_*` builders.
    pub fn new(inputs: Vec<V>) -> Self {
        RunRecord {
            inputs,
            decisions: BTreeMap::new(),
            faulty: BTreeSet::new(),
            terminated: true,
        }
    }

    /// Declares the planned-faulty processes.
    pub fn with_faulty(mut self, faulty: impl IntoIterator<Item = ProcessId>) -> Self {
        self.faulty = faulty.into_iter().collect();
        self
    }

    /// Records decisions (process, value).
    pub fn with_decisions(
        mut self,
        decisions: impl IntoIterator<Item = (ProcessId, V)>,
    ) -> Self {
        self.decisions.extend(decisions);
        self
    }

    /// Marks whether the run's event supply ended with every correct
    /// process having decided (`true`) or not (`false`).
    pub fn with_terminated(mut self, terminated: bool) -> Self {
        self.terminated = terminated;
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// All inputs, indexed by process.
    pub fn inputs(&self) -> &[V] {
        &self.inputs
    }

    /// The decision map (all deciders, correct or not).
    pub fn decisions(&self) -> &BTreeMap<ProcessId, V> {
        &self.decisions
    }

    /// The planned-faulty set.
    pub fn faulty(&self) -> &BTreeSet<ProcessId> {
        &self.faulty
    }

    /// Whether the run terminated (see [`RunRecord::with_terminated`]).
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// True if the run had no planned failures.
    pub fn failure_free(&self) -> bool {
        self.faulty.is_empty()
    }

    /// Processes not planned faulty, ascending.
    pub fn correct(&self) -> Vec<ProcessId> {
        (0..self.n()).filter(|p| !self.faulty.contains(p)).collect()
    }

    /// Decision of `p`, if it decided.
    pub fn decision_of(&self, p: ProcessId) -> Option<&V> {
        self.decisions.get(&p)
    }

    /// Distinct values decided by correct processes (the agreement set).
    pub fn correct_decision_set(&self) -> Vec<V> {
        let mut vals: Vec<V> = self
            .correct()
            .into_iter()
            .filter_map(|p| self.decisions.get(&p).cloned())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Distinct inputs of correct processes.
    pub fn correct_input_set(&self) -> Vec<V> {
        let mut vals: Vec<V> = self
            .correct()
            .into_iter()
            .map(|p| self.inputs[p].clone())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// The common input value, if all `n` processes started with the same.
    pub fn unanimous_input(&self) -> Option<&V> {
        let first = self.inputs.first()?;
        self.inputs.iter().all(|v| v == first).then_some(first)
    }

    /// The common input of correct processes, if they all agree (and at
    /// least one process is correct).
    pub fn unanimous_correct_input(&self) -> Option<V> {
        let correct = self.correct();
        let first = self.inputs.get(*correct.first()?)?.clone();
        correct
            .iter()
            .all(|&p| self.inputs[p] == first)
            .then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord<u32> {
        RunRecord::new(vec![1, 2, 2, 3])
            .with_faulty([0])
            .with_decisions([(1, 2), (2, 2), (3, 9), (0, 7)])
    }

    #[test]
    fn correct_excludes_faulty() {
        assert_eq!(record().correct(), vec![1, 2, 3]);
        assert!(!record().failure_free());
    }

    #[test]
    fn correct_decision_set_dedups() {
        assert_eq!(record().correct_decision_set(), vec![2, 9]);
    }

    #[test]
    fn correct_input_set_covers_correct_only() {
        assert_eq!(record().correct_input_set(), vec![2, 3]);
    }

    #[test]
    fn unanimity_detection() {
        let r = RunRecord::new(vec![5, 5, 5]);
        assert_eq!(r.unanimous_input(), Some(&5));
        assert_eq!(r.unanimous_correct_input(), Some(5));

        let r = RunRecord::new(vec![5, 6, 5]).with_faulty([1]);
        assert_eq!(r.unanimous_input(), None);
        assert_eq!(r.unanimous_correct_input(), Some(5));

        // All processes faulty: no unanimous correct input.
        let r = RunRecord::new(vec![5]).with_faulty([0]);
        assert_eq!(r.unanimous_correct_input(), None);
    }

    #[test]
    fn default_record_is_terminated_and_failure_free() {
        let r = RunRecord::new(vec![0u8; 3]);
        assert!(r.terminated());
        assert!(r.failure_free());
        assert!(r.correct_decision_set().is_empty());
        let r = r.with_terminated(false);
        assert!(!r.terminated());
    }

    #[test]
    fn decision_lookup() {
        let r = record();
        assert_eq!(r.decision_of(1), Some(&2));
        assert_eq!(r.decision_of(0), Some(&7)); // faulty deciders are visible
        let r2 = RunRecord::<u32>::new(vec![1]);
        assert_eq!(r2.decision_of(0), None);
    }
}
