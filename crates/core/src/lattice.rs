//! The "weaker-than" lattice of validity conditions (paper Figure 1) —
//! derived, not transcribed.
//!
//! The paper orders the `SC` problems by logical implication of their
//! validity conditions: `SC(C)` is *weaker* than `SC(D)` when every run
//! satisfying `D` also satisfies `C`. [`Lattice::derive`] computes that
//! relation by brute force: it enumerates every abstract run over a small
//! universe (4 processes, 4 values, every fault pattern, every decision
//! assignment) and checks each pair of conditions for implication.
//! [`Lattice::paper`] is the transcription of Figure 1; the test suite (and
//! the `fig1_lattice` experiment binary) assert the two are identical, which
//! *machine-checks* Figure 1.
//!
//! Why a small universe suffices: each validity condition is a universally
//! quantified statement whose atoms only compare decision values with input
//! values and test set equalities. A counterexample to any implication
//! among these six conditions needs at most two distinct input values, one
//! deviating decision, and one faulty process — all expressible with 4
//! processes and 4 values. (The enumeration is still vastly redundant; it
//! is cheap enough not to care.)

use crate::record::RunRecord;
use crate::validity::ValidityCondition;

use ValidityCondition as VC;

/// Number of validity conditions.
const N_COND: usize = 6;

fn idx(c: VC) -> usize {
    VC::ALL.iter().position(|&x| x == c).expect("condition in ALL")
}

/// The implication relation between validity conditions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lattice {
    implies: [[bool; N_COND]; N_COND],
}

impl Lattice {
    /// Derives the relation by exhaustive enumeration of abstract runs.
    pub fn derive() -> Self {
        Self::derive_over(4, 4)
    }

    /// Derivation over a configurable universe: `n` processes, inputs and
    /// decisions drawn from `vals` values.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `vals == 0`.
    pub fn derive_over(n: usize, vals: usize) -> Self {
        assert!(n > 0 && vals > 0, "universe must be non-empty");
        let mut implies = [[true; N_COND]; N_COND];

        let mut inputs = vec![0usize; n];
        loop {
            // Every fault pattern (bitmask over processes).
            for fault_mask in 0..(1usize << n) {
                let faulty: Vec<usize> = (0..n).filter(|p| fault_mask >> p & 1 == 1).collect();
                let correct: Vec<usize> = (0..n).filter(|p| fault_mask >> p & 1 == 0).collect();
                // Every total decision assignment for correct processes.
                let m = correct.len();
                let mut decisions = vec![0usize; m];
                loop {
                    let record = RunRecord::new(inputs.clone())
                        .with_faulty(faulty.iter().copied())
                        .with_decisions(
                            correct.iter().copied().zip(decisions.iter().copied()),
                        );
                    let sat: Vec<bool> = VC::ALL
                        .iter()
                        .map(|c| c.satisfied_by(&record))
                        .collect();
                    for (ci, &cs) in sat.iter().enumerate() {
                        if !cs {
                            continue;
                        }
                        for (di, &ds) in sat.iter().enumerate() {
                            if !ds {
                                implies[ci][di] = false;
                            }
                        }
                    }
                    if !increment(&mut decisions, vals) {
                        break;
                    }
                }
            }
            if !increment(&mut inputs, vals) {
                break;
            }
        }
        Lattice { implies }
    }

    /// The transcription of the paper's Figure 1 (its transitive and
    /// reflexive closure).
    pub fn paper() -> Self {
        let mut implies = [[false; N_COND]; N_COND];
        for c in VC::ALL {
            implies[idx(c)][idx(c)] = true;
        }
        // Figure 1 arrows, stated here as "stronger implies weaker".
        let edges = Self::paper_hasse_edges();
        for (stronger, weaker) in edges {
            implies[idx(stronger)][idx(weaker)] = true;
        }
        // Transitive closure.
        for k in 0..N_COND {
            for i in 0..N_COND {
                for j in 0..N_COND {
                    if implies[i][k] && implies[k][j] {
                        implies[i][j] = true;
                    }
                }
            }
        }
        Lattice { implies }
    }

    /// Figure 1's arrows as `(stronger, weaker)` pairs — the covering
    /// (Hasse) edges of the implication order.
    pub fn paper_hasse_edges() -> [(VC, VC); 7] {
        [
            (VC::SV1, VC::SV2),
            (VC::SV1, VC::RV1),
            (VC::SV2, VC::RV2),
            (VC::RV1, VC::RV2),
            (VC::RV1, VC::WV1),
            (VC::RV2, VC::WV2),
            (VC::WV1, VC::WV2),
        ]
    }

    /// Whether condition `c` logically implies condition `d` (every run
    /// satisfying `c` satisfies `d`).
    pub fn implies(&self, c: VC, d: VC) -> bool {
        self.implies[idx(c)][idx(d)]
    }

    /// Whether `SC(c)` is weaker than `SC(d)` in the paper's sense: the
    /// validity of `SC(c)` is logically implied by the validity of `SC(d)`.
    ///
    /// Any protocol solving `SC(d)` then also solves `SC(c)`, and any
    /// impossibility for `SC(c)` transfers to `SC(d)`.
    pub fn weaker_than(&self, c: VC, d: VC) -> bool {
        self.implies(d, c)
    }

    /// Strictly-stronger test: `c` implies `d` but not conversely.
    pub fn strictly_stronger(&self, c: VC, d: VC) -> bool {
        self.implies(c, d) && !self.implies(d, c)
    }

    /// The Hasse diagram (transitive reduction) of the strict implication
    /// order, as `(stronger, weaker)` covering pairs sorted by the order of
    /// [`ValidityCondition::ALL`].
    pub fn hasse_edges(&self) -> Vec<(VC, VC)> {
        let mut edges = Vec::new();
        for &c in &VC::ALL {
            for &d in &VC::ALL {
                if !self.strictly_stronger(c, d) {
                    continue;
                }
                // Covering pair: no intermediate e with c > e > d.
                let covered = VC::ALL.iter().any(|&e| {
                    e != c && e != d && self.strictly_stronger(c, e) && self.strictly_stronger(e, d)
                });
                if !covered {
                    edges.push((c, d));
                }
            }
        }
        edges
    }

    /// ASCII rendering of the lattice in the layout of the paper's
    /// Figure 1 (arrows point from weaker to stronger, as in the paper).
    pub fn render_ascii(&self) -> String {
        // Fixed layout; correctness of the content is asserted against the
        // derived edges by the test below.
        let mut s = String::new();
        s.push_str("            SV1\n");
        s.push_str("           ^   ^\n");
        s.push_str("          /     \\\n");
        s.push_str("        SV2     RV1\n");
        s.push_str("           ^   ^   ^\n");
        s.push_str("            \\ /     \\\n");
        s.push_str("            RV2     WV1\n");
        s.push_str("               ^   ^\n");
        s.push_str("                \\ /\n");
        s.push_str("                WV2\n");
        s.push_str("\n(an arrow from C up to D means SC(C) is weaker than SC(D))\n");
        s
    }
}

/// Odometer increment over base-`vals` digit vectors; false on wraparound.
fn increment(digits: &mut [usize], vals: usize) -> bool {
    for d in digits.iter_mut() {
        *d += 1;
        if *d < vals {
            return true;
        }
        *d = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_lattice_equals_paper_figure_1() {
        // The headline check: Figure 1 is a theorem of the definitions.
        assert_eq!(Lattice::derive(), Lattice::paper());
    }

    #[test]
    fn derived_hasse_matches_paper_arrows() {
        let derived = Lattice::derive();
        let mut expected: Vec<(VC, VC)> = Lattice::paper_hasse_edges().to_vec();
        let mut got = derived.hasse_edges();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn weaker_than_is_implication_flipped() {
        let l = Lattice::paper();
        assert!(l.weaker_than(VC::RV2, VC::SV2)); // SV2 implies RV2
        assert!(l.weaker_than(VC::WV2, VC::SV1));
        assert!(!l.weaker_than(VC::SV1, VC::WV2));
    }

    #[test]
    fn sv2_and_rv1_are_incomparable() {
        let l = Lattice::derive();
        assert!(!l.implies(VC::SV2, VC::RV1));
        assert!(!l.implies(VC::RV1, VC::SV2));
        // And so are SV2 and WV1.
        assert!(!l.implies(VC::SV2, VC::WV1));
        assert!(!l.implies(VC::WV1, VC::SV2));
    }

    #[test]
    fn implication_is_reflexive_and_antisymmetric() {
        let l = Lattice::derive();
        for c in VC::ALL {
            assert!(l.implies(c, c));
            for d in VC::ALL {
                if c != d {
                    assert!(
                        !(l.implies(c, d) && l.implies(d, c)),
                        "{c} and {d} must not be equivalent"
                    );
                }
            }
        }
    }

    #[test]
    fn sv1_is_the_top_and_wv2_the_bottom() {
        let l = Lattice::derive();
        for c in VC::ALL {
            assert!(l.implies(VC::SV1, c), "SV1 must imply {c}");
            assert!(l.implies(c, VC::WV2), "{c} must imply WV2");
        }
    }

    #[test]
    fn small_universe_already_separates_everything() {
        // Even n = 3, 3 values yields the exact relation; documents that
        // the default universe has slack.
        assert_eq!(Lattice::derive_over(3, 3), Lattice::paper());
    }

    #[test]
    fn render_mentions_every_condition() {
        let art = Lattice::paper().render_ascii();
        for c in VC::ALL {
            assert!(art.contains(c.name()), "rendering must mention {c}");
        }
    }

    #[test]
    #[should_panic(expected = "universe must be non-empty")]
    fn empty_universe_panics() {
        let _ = Lattice::derive_over(0, 3);
    }
}
