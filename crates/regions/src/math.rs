//! Exact integer arithmetic for the lemma bounds.
//!
//! Every threshold in the paper is a rational inequality in `n`, `k`, `t`
//! (and sometimes `ℓ` or `f`). To keep region boundaries exact — the open
//! cells of Figures 2/4/5/6 are *single lattice points* in places — all
//! predicates here are evaluated in integer arithmetic, never floats.

/// `V(n, t, f)` from the analysis of Protocol D (before Lemma 3.16):
///
/// ```text
/// V(n,t,f) = n - f                                  if n - t - f <= 0
///          = (t + 1 - f) + f * floor((n-f)/(n-t-f)) if n - t - f >  0
/// ```
///
/// It bounds the number of distinct decisions when exactly `f` processes
/// are Byzantine: the correct broadcasters' values plus the values faulty
/// broadcasters can force different correct processes to accept.
///
/// # Panics
///
/// Panics if `f > t` or `t > n` (outside the definition's domain).
pub fn v_function(n: usize, t: usize, f: usize) -> usize {
    assert!(f <= t && t <= n, "V(n,t,f) requires f <= t <= n");
    if n <= t + f {
        n - f
    } else {
        (t + 1 - f) + f * ((n - f) / (n - t - f))
    }
}

/// `Z(n, t) = max_{0 <= f <= t} min(V(n,t,f), n-f)` — the agreement bound
/// achieved by Protocol D (Lemma 3.16) and its SIMULATION (Lemma 4.13).
///
/// # Panics
///
/// Panics if `t > n`.
pub fn z_function(n: usize, t: usize) -> usize {
    assert!(t <= n, "Z(n,t) requires t <= n");
    (0..=t)
        .map(|f| v_function(n, t, f).min(n - f))
        .max()
        .expect("f = 0 always exists")
}

/// Smallest `ℓ >= 1` for which Protocol C(ℓ) solves `SC(k, t, SV2)` in
/// MP/Byz (Lemma 3.15), or `None` if no `ℓ` works.
///
/// The two constraints are `t < (k-1)n / (2k + ℓ - 1)` (agreement) and
/// `t < ℓn / (2ℓ + 1)` (the ℓ-echo broadcast, Lemma 3.14). The first is
/// decreasing and the second increasing in `ℓ`, so a witness exists iff the
/// smallest `ℓ` satisfying the echo constraint also satisfies agreement.
pub fn protocol_c_witness(n: usize, k: usize, t: usize) -> Option<usize> {
    if t == 0 {
        // Any ℓ works when nothing fails; report the echo protocol ℓ = 1.
        return Some(1);
    }
    // Echo constraint: (2ℓ+1) t < ℓ n  <=>  ℓ (n - 2t) > t.
    if n <= 2 * t {
        return None;
    }
    let l0 = t / (n - 2 * t) + 1;
    // Agreement constraint at ℓ0: (2k + ℓ0 - 1) t < (k - 1) n.
    ((2 * k + l0 - 1) * t < (k - 1) * n).then_some(l0)
}

/// Whether Protocol C(ℓ) covers `(n, k, t)` for some `ℓ` (Lemma 3.15 /
/// Lemma 4.11).
pub fn protocol_c_covers(n: usize, k: usize, t: usize) -> bool {
    protocol_c_witness(n, k, t).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force version of [`protocol_c_witness`] scanning all ℓ.
    fn brute_c_witness(n: usize, k: usize, t: usize) -> Option<usize> {
        if t == 0 {
            return Some(1);
        }
        (1..=3 * n.max(1)).find(|&l| {
            (2 * k + l - 1) * t < (k - 1) * n && (2 * l + 1) * t < l * n
        })
    }

    #[test]
    fn v_function_matches_definition_cases() {
        // n - t - f <= 0 branch.
        assert_eq!(v_function(4, 3, 1), 3); // 4-3-1 = 0 -> n-f = 3
        assert_eq!(v_function(4, 4, 2), 2);
        // n - t - f > 0 branch: (t+1-f) + f*floor((n-f)/(n-t-f)).
        assert_eq!(v_function(10, 3, 0), 4); // t+1 = 4
        assert_eq!(v_function(10, 3, 1), 3 + 9 / 6); // 3 + 1 = 4
        assert_eq!(v_function(10, 3, 3), 1 + 3); // 1 + 3 = 4
    }

    #[test]
    #[should_panic(expected = "f <= t <= n")]
    fn v_function_rejects_f_above_t() {
        let _ = v_function(10, 2, 3);
    }

    #[test]
    fn z_function_small_t_is_t_plus_one() {
        // The paper notes: for t < n/3, floor((n-f)/(n-t-f)) = 1 for all
        // 0 <= f <= t, hence Protocol D guarantees agreement for any k > t.
        for n in [10usize, 16, 64] {
            for t in 1..(n / 3 + usize::from(n % 3 != 0)) {
                if 3 * t < n {
                    assert_eq!(z_function(n, t), t + 1, "Z({n},{t})");
                }
            }
        }
    }

    #[test]
    fn z_function_is_monotone_in_t() {
        for n in [8usize, 13, 64] {
            let mut prev = 0;
            for t in 0..=n {
                let z = z_function(n, t);
                assert!(z >= prev, "Z({n},{t}) = {z} < {prev}");
                prev = z;
            }
        }
    }

    #[test]
    fn z_function_extremes() {
        // t = 0: the only decision source is the single broadcaster p1.
        assert_eq!(z_function(64, 0), 1);
        // t = n: f = 0 gives min(t+1, n) = n.
        assert_eq!(z_function(64, 64), 64);
    }

    #[test]
    fn protocol_c_witness_matches_brute_force() {
        for n in [7usize, 16, 33, 64] {
            for k in 2..n {
                for t in 0..=n {
                    assert_eq!(
                        protocol_c_witness(n, k, t),
                        brute_c_witness(n, k, t),
                        "witness mismatch at n={n} k={k} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn protocol_c_needs_minority_of_a_third_at_least() {
        // The echo constraint alone caps t below n/2 for any ℓ.
        for t in 32..=64 {
            assert_eq!(protocol_c_witness(64, 10, t), None);
        }
        // ℓ = 1 is Bracha–Toueg: works up to t < n/3 if k is large enough.
        assert_eq!(protocol_c_witness(64, 32, 21), Some(1));
    }

    #[test]
    fn protocol_c_region_is_monotone() {
        // Solvable region grows with k and shrinks with t.
        for k in 2..63 {
            for t in 1..64 {
                if protocol_c_covers(64, k, t) {
                    assert!(protocol_c_covers(64, k + 1, t), "k-monotone at ({k},{t})");
                    assert!(protocol_c_covers(64, k, t - 1), "t-monotone at ({k},{t})");
                }
            }
        }
    }
}
