//! Whole-figure atlases: one classified grid per validity condition.

use kset_core::ValidityCondition as VC;

use crate::classify::{classify, CellClass};
use crate::model::Model;

/// One panel of a figure: the classified `(k, t)` grid for a single
/// validity condition, over the paper's domain `2 <= k <= n-1`,
/// `1 <= t <= n`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Panel {
    model: Model,
    validity: VC,
    n: usize,
    /// `grid[k - 2][t - 1]`.
    grid: Vec<Vec<CellClass>>,
}

impl Panel {
    /// Classifies the full grid for `(model, validity)` at system size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (the domain `2 <= k <= n-1` would be empty).
    pub fn compute(model: Model, validity: VC, n: usize) -> Self {
        assert!(n >= 3, "atlas domain requires n >= 3");
        let grid = (2..n)
            .map(|k| (1..=n).map(|t| classify(model, validity, n, k, t)).collect())
            .collect();
        Panel {
            model,
            validity,
            n,
            grid,
        }
    }

    /// The model of this panel.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The validity condition of this panel.
    pub fn validity(&self) -> VC {
        self.validity
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Classification of cell `(k, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `t` lies outside the panel domain.
    pub fn cell(&self, k: usize, t: usize) -> CellClass {
        assert!((2..self.n).contains(&k), "k out of panel domain");
        assert!((1..=self.n).contains(&t), "t out of panel domain");
        self.grid[k - 2][t - 1]
    }

    /// Iterates `(k, t, class)` over the whole panel.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, CellClass)> + '_ {
        self.grid.iter().enumerate().flat_map(move |(ki, row)| {
            row.iter()
                .enumerate()
                .map(move |(ti, &c)| (ki + 2, ti + 1, c))
        })
    }

    /// Counts `(solvable, impossible, open)` cells.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for (_, _, c) in self.cells() {
            match c {
                CellClass::Solvable(_) => counts.0 += 1,
                CellClass::Impossible(_) => counts.1 += 1,
                CellClass::Open => counts.2 += 1,
            }
        }
        counts
    }

    /// Distinct citations appearing in the panel, with their cell counts,
    /// solvable first — the panel's legend.
    pub fn legend(&self) -> Vec<(CellClass, usize)> {
        let mut entries: Vec<(CellClass, usize)> = Vec::new();
        for (_, _, c) in self.cells() {
            if let Some(e) = entries.iter_mut().find(|(e, _)| *e == c) {
                e.1 += 1;
            } else {
                entries.push((c, 1));
            }
        }
        entries.sort_by_key(|(c, count)| {
            (
                match c {
                    CellClass::Solvable(_) => 0u8,
                    CellClass::Impossible(_) => 1,
                    CellClass::Open => 2,
                },
                usize::MAX - count,
            )
        });
        entries
    }
}

/// A full figure: six panels (one per validity condition) for one model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atlas {
    model: Model,
    n: usize,
    panels: Vec<Panel>,
}

impl Atlas {
    /// Computes the atlas of `model` at system size `n` (the paper draws
    /// its figures for `n = 64`).
    pub fn compute(model: Model, n: usize) -> Self {
        let panels = VC::ALL
            .iter()
            .map(|&v| Panel::compute(model, v, n))
            .collect();
        Atlas { model, n, panels }
    }

    /// The model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The panel for `validity`.
    pub fn panel(&self, validity: VC) -> &Panel {
        self.panels
            .iter()
            .find(|p| p.validity() == validity)
            .expect("atlas holds all six panels")
    }

    /// All six panels in [`VC::ALL`] order.
    pub fn panels(&self) -> &[Panel] {
        &self.panels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_holds_six_panels_in_order() {
        let atlas = Atlas::compute(Model::MpCrash, 16);
        assert_eq!(atlas.panels().len(), 6);
        for (p, v) in atlas.panels().iter().zip(VC::ALL) {
            assert_eq!(p.validity(), v);
            assert_eq!(p.model(), Model::MpCrash);
            assert_eq!(p.n(), 16);
        }
    }

    #[test]
    fn panel_census_sums_to_domain_size() {
        let panel = Panel::compute(Model::MpCrash, VC::SV2, 16);
        let (s, i, o) = panel.census();
        assert_eq!(s + i + o, (16 - 2) * 16);
        assert!(s > 0 && i > 0 && o > 0, "SV2 panel has all three classes");
    }

    #[test]
    fn rv1_panel_is_a_clean_split() {
        let panel = Panel::compute(Model::MpCrash, VC::RV1, 16);
        let (_, _, open) = panel.census();
        assert_eq!(open, 0, "Lemmas 3.1/3.2 leave nothing open");
        assert_eq!(panel.cell(5, 4).glyph(), 'o');
        assert_eq!(panel.cell(5, 5).glyph(), '#');
    }

    #[test]
    fn cells_iterator_matches_cell_lookup() {
        let panel = Panel::compute(Model::SmCrash, VC::RV2, 8);
        for (k, t, c) in panel.cells() {
            assert_eq!(panel.cell(k, t), c);
        }
    }

    #[test]
    fn legend_counts_cover_the_panel() {
        let panel = Panel::compute(Model::MpByzantine, VC::WV2, 16);
        let total: usize = panel.legend().iter().map(|(_, c)| c).sum();
        assert_eq!(total, (16 - 2) * 16);
        // Legend is deduplicated.
        let legend = panel.legend();
        for (i, (a, _)) in legend.iter().enumerate() {
            for (b, _) in &legend[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k out of panel domain")]
    fn cell_out_of_domain_panics() {
        let panel = Panel::compute(Model::MpCrash, VC::RV1, 8);
        let _ = panel.cell(8, 1);
    }
}
