//! ASCII and CSV renderings of atlases — the textual form of the paper's
//! region figures.
//!
//! The paper fills solvable regions with a honeycomb pattern and impossible
//! regions with a brick pattern; we use `o` and `#` respectively, with `.`
//! for open cells, axes `t` rightwards and `k` upwards, exactly the figure
//! orientation.

use std::fmt::Write as _;

use crate::atlas::{Atlas, Panel};
use crate::classify::CellClass;

/// Renders one panel as an ASCII grid with axes and a lemma legend.
pub fn panel_ascii(panel: &Panel) -> String {
    let n = panel.n();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — validity {} (n = {})",
        panel.model(),
        panel.validity(),
        n
    );
    for k in (2..n).rev() {
        let _ = write!(out, "k={k:>3} |");
        for t in 1..=n {
            out.push(panel.cell(k, t).glyph());
        }
        out.push('\n');
    }
    let _ = write!(out, "      +");
    out.push_str(&"-".repeat(n));
    out.push('\n');
    let _ = writeln!(out, "       t = 1 .. {n}");
    let (s, i, o) = panel.census();
    let _ = writeln!(out, "cells: {s} solvable (o), {i} impossible (#), {o} open (.)");
    for (class, count) in panel.legend() {
        match class {
            CellClass::Solvable(c) => {
                let _ = writeln!(
                    out,
                    "  o {:>4} cells  {} [{}] — {}",
                    count, c.lemma, c.formula, c.means
                );
            }
            CellClass::Impossible(c) => {
                let _ = writeln!(
                    out,
                    "  # {:>4} cells  {} [{}] — {}",
                    count, c.lemma, c.formula, c.means
                );
            }
            CellClass::Open => {
                let _ = writeln!(out, "  . {count:>4} cells  open problem");
            }
        }
    }
    out
}

/// Renders a whole atlas (all six panels) as the textual Figure
/// `atlas.model().figure()`.
pub fn atlas_ascii(atlas: &Atlas) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Figure {}: {} model, n = {} ===",
        atlas.model().figure(),
        atlas.model(),
        atlas.n()
    );
    let _ = writeln!(
        out,
        "(o = solvable / honeycomb, # = impossible / brick, . = open)\n"
    );
    for panel in atlas.panels() {
        out.push_str(&panel_ascii(panel));
        out.push('\n');
    }
    out
}

/// Renders an atlas as CSV rows `model,validity,n,k,t,class,lemma`.
pub fn atlas_csv(atlas: &Atlas) -> String {
    let mut out = String::from("model,validity,n,k,t,class,lemma\n");
    for panel in atlas.panels() {
        for (k, t, cell) in panel.cells() {
            let (class, lemma) = match cell {
                CellClass::Solvable(c) => ("solvable", c.lemma),
                CellClass::Impossible(c) => ("impossible", c.lemma),
                CellClass::Open => ("open", ""),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                panel.model().shorthand(),
                panel.validity(),
                panel.n(),
                k,
                t,
                class,
                lemma
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use kset_core::ValidityCondition as VC;

    #[test]
    fn panel_ascii_has_one_row_per_k_and_full_width() {
        let panel = Panel::compute(Model::MpCrash, VC::RV1, 16);
        let art = panel_ascii(&panel);
        let rows: Vec<&str> = art.lines().filter(|l| l.starts_with("k=")).collect();
        assert_eq!(rows.len(), 14); // k = 2..=15
        for row in rows {
            let grid: &str = row.split('|').nth(1).unwrap();
            assert_eq!(grid.len(), 16);
        }
        // Top row is k = 15 (axes upward like the figures).
        assert!(art.lines().next().unwrap().contains("RV1"));
        assert!(art.contains("k= 15 |"));
    }

    #[test]
    fn rv1_panel_renders_the_diagonal() {
        let panel = Panel::compute(Model::MpCrash, VC::RV1, 8);
        let art = panel_ascii(&panel);
        // Row k=3: solvable for t in {1,2}, impossible after.
        let row = art
            .lines()
            .find(|l| l.starts_with("k=  3"))
            .expect("row for k=3");
        assert!(row.ends_with("oo######"));
    }

    #[test]
    fn atlas_ascii_mentions_figure_number_and_all_panels() {
        let atlas = Atlas::compute(Model::SmByzantine, 8);
        let art = atlas_ascii(&atlas);
        assert!(art.contains("Figure 6"));
        for v in VC::ALL {
            assert!(art.contains(&format!("validity {v}")));
        }
    }

    #[test]
    fn csv_has_header_and_full_cartesian_body() {
        let atlas = Atlas::compute(Model::MpCrash, 8);
        let csv = atlas_csv(&atlas);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "model,validity,n,k,t,class,lemma");
        assert_eq!(lines.len(), 1 + 6 * (8 - 2) * 8);
        assert!(lines[1].starts_with("MP/CR,SV1,8,2,1,impossible,"));
    }

    #[test]
    fn legend_lists_lemmas_in_ascii() {
        let panel = Panel::compute(Model::MpCrash, VC::SV2, 16);
        let art = panel_ascii(&panel);
        assert!(art.contains("Lemma 3.8"));
        assert!(art.contains("Lemma 3.6"));
        assert!(art.contains("open problem"));
    }
}
