//! The four system models and the protocol-transfer relation between them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the paper's four asynchronous models.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Model {
    /// Message passing with crash failures (paper §3.1).
    MpCrash,
    /// Message passing with Byzantine failures (paper §3.2).
    MpByzantine,
    /// Shared memory with crash failures (paper §4.1).
    SmCrash,
    /// Shared memory with Byzantine failures (paper §4.2).
    SmByzantine,
}

impl Model {
    /// All four models, in the paper's order of treatment.
    pub const ALL: [Model; 4] = [
        Model::MpCrash,
        Model::MpByzantine,
        Model::SmCrash,
        Model::SmByzantine,
    ];

    /// The paper's shorthand (MP/CR, MP/Byz, SM/CR, SM/Byz).
    pub fn shorthand(self) -> &'static str {
        match self {
            Model::MpCrash => "MP/CR",
            Model::MpByzantine => "MP/Byz",
            Model::SmCrash => "SM/CR",
            Model::SmByzantine => "SM/Byz",
        }
    }

    /// The figure of the paper whose atlas this model corresponds to.
    pub fn figure(self) -> u8 {
        match self {
            Model::MpCrash => 2,
            Model::MpByzantine => 4,
            Model::SmCrash => 5,
            Model::SmByzantine => 6,
        }
    }

    /// True if the failure mode is Byzantine.
    pub fn is_byzantine(self) -> bool {
        matches!(self, Model::MpByzantine | Model::SmByzantine)
    }

    /// True if communication is by shared memory.
    pub fn is_shared_memory(self) -> bool {
        matches!(self, Model::SmCrash | Model::SmByzantine)
    }

    /// Whether a protocol correct in `self` is also correct in `target`.
    ///
    /// Two mechanisms compose:
    ///
    /// * **SIMULATION** (paper §4): any message-passing protocol becomes a
    ///   shared-memory protocol for the same failure mode, by replacing each
    ///   send with a fresh SWMR register write and each receive with reads.
    /// * **Failure containment**: crash behaviour is a special case of
    ///   Byzantine behaviour, so a protocol whose properties hold under
    ///   Byzantine fault plans keeps them under crash plans.
    ///
    /// Conversely, an impossibility in `target` transfers back to `self`
    /// whenever `self.transfers_to(target)` — if `SC` were solvable in
    /// `self`, the transfer would solve it in `target`.
    pub fn transfers_to(self, target: Model) -> bool {
        let comm_ok = !self.is_shared_memory() || target.is_shared_memory();
        let fail_ok = self.is_byzantine() || !target.is_byzantine();
        comm_ok && fail_ok
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.shorthand())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Model::*;

    #[test]
    fn transfer_relation_matches_the_paper() {
        // MP/Byz protocols work everywhere.
        for m in Model::ALL {
            assert!(MpByzantine.transfers_to(m), "MP/Byz -> {m}");
        }
        // SM/CR protocols work only in SM/CR.
        for m in Model::ALL {
            assert_eq!(SmCrash.transfers_to(m), m == SmCrash, "SM/CR -> {m}");
        }
        // MP/CR -> {MP/CR, SM/CR} (SIMULATION, but not to Byzantine modes).
        assert!(MpCrash.transfers_to(MpCrash));
        assert!(MpCrash.transfers_to(SmCrash));
        assert!(!MpCrash.transfers_to(MpByzantine));
        assert!(!MpCrash.transfers_to(SmByzantine));
        // SM/Byz -> {SM/Byz, SM/CR}.
        assert!(SmByzantine.transfers_to(SmCrash));
        assert!(SmByzantine.transfers_to(SmByzantine));
        assert!(!SmByzantine.transfers_to(MpCrash));
        assert!(!SmByzantine.transfers_to(MpByzantine));
    }

    #[test]
    fn transfer_is_reflexive_and_transitive() {
        for a in Model::ALL {
            assert!(a.transfers_to(a));
            for b in Model::ALL {
                for c in Model::ALL {
                    if a.transfers_to(b) && b.transfers_to(c) {
                        assert!(a.transfers_to(c), "{a} -> {b} -> {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn figures_and_shorthands() {
        assert_eq!(MpCrash.figure(), 2);
        assert_eq!(MpByzantine.figure(), 4);
        assert_eq!(SmCrash.figure(), 5);
        assert_eq!(SmByzantine.figure(), 6);
        assert_eq!(MpByzantine.to_string(), "MP/Byz");
    }
}
