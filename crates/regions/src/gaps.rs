//! Gap analysis: the open problems of the paper, as data.
//!
//! The paper closes with "in a few cases there is still a gap to be
//! filled". This module makes those gaps first-class: for any panel it
//! extracts the open cells, groups them into per-`k` intervals of `t`
//! (the shape a human would describe), and summarizes each panel's
//! frontier — the largest solvable `t` and smallest impossible `t` per
//! row.

use kset_core::ValidityCondition as VC;

use crate::atlas::Panel;
use crate::classify::CellClass;
use crate::model::Model;

/// The open cells of one `k`-row, as a closed interval of `t`.
///
/// Open regions are always `t`-intervals per row because classification is
/// monotone in `t` (asserted by the classifier tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpenInterval {
    /// The row.
    pub k: usize,
    /// Smallest open `t`.
    pub t_min: usize,
    /// Largest open `t`.
    pub t_max: usize,
}

impl OpenInterval {
    /// Number of open cells in the interval.
    pub fn width(&self) -> usize {
        self.t_max - self.t_min + 1
    }
}

/// Summary of one panel's gap structure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GapReport {
    /// Model of the panel.
    pub model: Model,
    /// Validity condition of the panel.
    pub validity: VC,
    /// System size.
    pub n: usize,
    /// Open intervals, ascending by `k`.
    pub intervals: Vec<OpenInterval>,
}

impl GapReport {
    /// Extracts the gap structure of `panel`.
    pub fn of(panel: &Panel) -> Self {
        let mut intervals = Vec::new();
        for k in 2..panel.n() {
            let mut t_min = None;
            let mut t_max = None;
            for t in 1..=panel.n() {
                if matches!(panel.cell(k, t), CellClass::Open) {
                    t_min.get_or_insert(t);
                    t_max = Some(t);
                }
            }
            if let (Some(t_min), Some(t_max)) = (t_min, t_max) {
                intervals.push(OpenInterval { k, t_min, t_max });
            }
        }
        GapReport {
            model: panel.model(),
            validity: panel.validity(),
            n: panel.n(),
            intervals,
        }
    }

    /// Total number of open cells.
    pub fn open_cells(&self) -> usize {
        self.intervals.iter().map(OpenInterval::width).sum()
    }

    /// True when the panel is completely characterized.
    pub fn closed(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The widest single-row gap, if any.
    pub fn widest(&self) -> Option<OpenInterval> {
        self.intervals.iter().copied().max_by_key(OpenInterval::width)
    }

    /// Human-readable rendering, one line per interval.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {} (n = {}): {} open cells in {} row-intervals",
            self.model,
            self.validity,
            self.n,
            self.open_cells(),
            self.intervals.len()
        );
        for iv in &self.intervals {
            if iv.t_min == iv.t_max {
                let _ = writeln!(out, "  k = {:<3} open at t = {}", iv.k, iv.t_min);
            } else {
                let _ = writeln!(
                    out,
                    "  k = {:<3} open for t in {}..={}",
                    iv.k, iv.t_min, iv.t_max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atlas::Panel;

    #[test]
    fn closed_panels_report_no_gaps() {
        for v in [VC::RV1, VC::WV1, VC::SV1] {
            let panel = Panel::compute(Model::MpCrash, v, 16);
            let gaps = GapReport::of(&panel);
            assert!(gaps.closed(), "{v} should be fully characterized");
            assert_eq!(gaps.open_cells(), 0);
            assert!(gaps.widest().is_none());
        }
    }

    #[test]
    fn rv2_gaps_are_single_points_on_divisor_rows() {
        // n = 16: the isolated open points sit at k | 16, i.e. k in
        // {2, 4, 8}, each a single cell at t = (k-1)n/k.
        let panel = Panel::compute(Model::MpCrash, VC::RV2, 16);
        let gaps = GapReport::of(&panel);
        let expected = vec![
            OpenInterval { k: 2, t_min: 8, t_max: 8 },
            OpenInterval { k: 4, t_min: 12, t_max: 12 },
            OpenInterval { k: 8, t_min: 14, t_max: 14 },
        ];
        assert_eq!(gaps.intervals, expected);
        assert_eq!(gaps.open_cells(), 3);
    }

    #[test]
    fn byzantine_wv1_has_the_substantial_gap() {
        let panel = Panel::compute(Model::MpByzantine, VC::WV1, 16);
        let gaps = GapReport::of(&panel);
        assert!(!gaps.closed());
        // "Substantial": some row is open across multiple t values.
        assert!(gaps.widest().expect("has gaps").width() > 1);
    }

    #[test]
    fn render_mentions_every_interval_row() {
        let panel = Panel::compute(Model::MpCrash, VC::SV2, 16);
        let gaps = GapReport::of(&panel);
        let text = gaps.render();
        for iv in &gaps.intervals {
            assert!(text.contains(&format!("k = {:<3}", iv.k)), "{text}");
        }
        assert!(text.contains("open cells"));
    }

    #[test]
    fn open_intervals_are_really_intervals() {
        // Cross-check the monotonicity assumption: within each reported
        // interval every cell is open, outside none are.
        for model in Model::ALL {
            for v in VC::ALL {
                let panel = Panel::compute(model, v, 12);
                let gaps = GapReport::of(&panel);
                let mut from_scan = 0;
                for (k, t, c) in panel.cells() {
                    let open = matches!(c, CellClass::Open);
                    if open {
                        from_scan += 1;
                    }
                    let in_interval = gaps
                        .intervals
                        .iter()
                        .any(|iv| iv.k == k && (iv.t_min..=iv.t_max).contains(&t));
                    assert_eq!(open, in_interval, "{model} {v} k={k} t={t}");
                }
                assert_eq!(from_scan, gaps.open_cells());
            }
        }
    }
}
