//! The base lemma facts: each possibility/impossibility lemma of the paper
//! as an exact region predicate.
//!
//! Facts are stated exactly where the paper states them; the closure in
//! [`crate::classify`] propagates them along the validity lattice, the
//! crash→Byzantine containment, and the MP→SM SIMULATION. Keeping the base
//! table minimal and literal makes each entry auditable against the paper.

use kset_core::ValidityCondition as VC;

use crate::math::{protocol_c_covers, z_function};
use crate::model::Model;

/// A lemma-backed region of the `(n, k, t)` parameter space.
#[derive(Clone, Copy, Debug)]
pub struct Fact {
    /// Model the lemma is stated in.
    pub model: Model,
    /// Validity condition the lemma is stated for.
    pub validity: VC,
    /// Citation, e.g. `"Lemma 3.7"`.
    pub lemma: &'static str,
    /// The protocol or proof technique behind the lemma.
    pub means: &'static str,
    /// The paper's bounding formula, as displayed in the figure legends.
    pub formula: &'static str,
    /// The region, as an exact integer predicate over `(n, k, t)`.
    pub region: fn(usize, usize, usize) -> bool,
}

impl Fact {
    /// Whether the fact's region contains the cell.
    pub fn covers(&self, n: usize, k: usize, t: usize) -> bool {
        (self.region)(n, k, t)
    }
}

/// Possibility results: "there is a protocol for ...".
pub const SOLVABLE: &[Fact] = &[
    Fact {
        model: Model::MpCrash,
        validity: VC::RV1,
        lemma: "Lemma 3.1",
        means: "Chaudhuri's k-set consensus protocol (FloodMin)",
        formula: "t < k",
        // t < k
        region: |_n, k, t| t < k,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::RV2,
        lemma: "Lemma 3.7",
        means: "Protocol A",
        formula: "t < (k-1)n/k",
        // t < (k-1) n / k
        region: |n, k, t| k * t < (k - 1) * n,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::SV2,
        lemma: "Lemma 3.8",
        means: "Protocol B",
        formula: "t < (k-1)n/2k",
        // t < (k-1) n / (2k)
        region: |n, k, t| 2 * k * t < (k - 1) * n,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::WV2,
        lemma: "Lemma 3.12",
        means: "Protocol A",
        formula: "t < n/2 and k >= (n-t)/(n-2t) + 1",
        // t < n/2  and  k >= (n-t)/(n-2t) + 1
        region: |n, k, t| 2 * t < n && (k - 1) * (n - 2 * t) >= n - t,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::WV2,
        lemma: "Lemma 3.13",
        means: "Protocol A",
        formula: "t >= n/2 and k >= t+1",
        // t >= n/2  and  k >= t + 1
        region: |n, k, t| 2 * t >= n && k > t,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::SV2,
        lemma: "Lemma 3.15",
        means: "Protocol C(l) over the l-echo broadcast",
        formula: "exists l: t < (k-1)n/(2k+l-1) and t < ln/(2l+1)",
        // exists l >= 1: t < (k-1)n/(2k+l-1) and t < ln/(2l+1)
        region: protocol_c_covers,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::WV1,
        lemma: "Lemma 3.16",
        means: "Protocol D",
        formula: "k >= Z(n,t)",
        // k >= Z(n, t)
        region: |n, k, t| k >= z_function(n, t),
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::RV1,
        lemma: "Lemma 4.4",
        means: "SIMULATION of Chaudhuri's protocol",
        formula: "t < k",
        region: |_n, k, t| t < k,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::RV2,
        lemma: "Lemma 4.5",
        means: "Protocol E",
        formula: "any t (k >= 2)",
        // any t, once k >= 2
        region: |_n, k, _t| k >= 2,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::SV2,
        lemma: "Lemma 4.6",
        means: "SIMULATION of Protocol B",
        formula: "t < (k-1)n/2k",
        region: |n, k, t| 2 * k * t < (k - 1) * n,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::SV2,
        lemma: "Lemma 4.7",
        means: "Protocol F",
        formula: "k > t+1",
        // k > t + 1
        region: |_n, k, t| k > t + 1,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::WV2,
        lemma: "Lemma 4.10",
        means: "Protocol E",
        formula: "any t (k >= 2)",
        region: |_n, k, _t| k >= 2,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::SV2,
        lemma: "Lemma 4.11",
        means: "SIMULATION of Protocol C(l)",
        formula: "exists l: t < (k-1)n/(2k+l-1) and t < ln/(2l+1)",
        region: protocol_c_covers,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::SV2,
        lemma: "Lemma 4.12",
        means: "Protocol F",
        formula: "k > t+1",
        region: |_n, k, t| k > t + 1,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::WV1,
        lemma: "Lemma 4.13",
        means: "SIMULATION of Protocol D",
        formula: "k >= Z(n,t)",
        region: |n, k, t| k >= z_function(n, t),
    },
];

/// Impossibility results: "there is no protocol for ...".
pub const IMPOSSIBLE: &[Fact] = &[
    Fact {
        // Stated for both crash models ("In the crash models, ...").
        model: Model::SmCrash,
        validity: VC::RV1,
        lemma: "Lemma 3.2",
        means: "topological lower bound [9], [20], [30]",
        formula: "t >= k",
        // t >= k
        region: |_n, k, t| t >= k,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::WV2,
        lemma: "Lemma 3.3",
        means: "partition run (Fig. 3 of the paper)",
        formula: "t >= ((k-1)n+1)/k",
        // t >= ((k-1) n + 1) / k  <=>  k t > (k-1) n
        region: |n, k, t| k * t > (k - 1) * n,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::WV1,
        lemma: "Lemma 3.4",
        means: "reduction to RV1 (delay messages of the faulty)",
        formula: "t >= k",
        region: |_n, k, t| t >= k,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::SV1,
        lemma: "Lemma 3.5",
        means: "crash right after the last send",
        formula: "all t >= 1",
        region: |_n, _k, _t| true,
    },
    Fact {
        model: Model::MpCrash,
        validity: VC::SV2,
        lemma: "Lemma 3.6",
        means: "two-group / (k+1)-group partition runs",
        formula: "t >= kn/(2k+1)",
        // t >= k n / (2k + 1)
        region: |n, k, t| (2 * k + 1) * t >= k * n,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::WV2,
        lemma: "Lemma 3.9",
        means: "Byzantine group-mimicry runs",
        formula: "t >= kn/(2k+1) and t >= k",
        // t >= k n / (2k+1)  and  t >= k
        region: |n, k, t| (2 * k + 1) * t >= k * n && t >= k,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::RV1,
        lemma: "Lemma 3.10",
        means: "a faulty process lies about its input",
        formula: "all t >= 1",
        region: |_n, _k, _t| true,
    },
    Fact {
        model: Model::MpByzantine,
        validity: VC::RV2,
        lemma: "Lemma 3.11",
        means: "partitioned Byzantine mimicry",
        formula: "t >= kn/2(k+1)",
        // t >= k n / (2 (k+1))
        region: |n, k, t| 2 * (k + 1) * t >= k * n,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::WV1,
        lemma: "Lemma 4.1",
        means: "reduction to RV1 (delay writes of the faulty)",
        formula: "k <= t",
        // k <= t
        region: |_n, k, t| k <= t,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::SV1,
        lemma: "Lemma 4.2",
        means: "crash right after the last write",
        formula: "all t >= 1",
        region: |_n, _k, _t| true,
    },
    Fact {
        model: Model::SmCrash,
        validity: VC::SV2,
        lemma: "Lemma 4.3",
        means: "frozen-majority runs",
        formula: "t >= n/2 and t >= k",
        // t >= n/2  and  t >= k
        region: |n, k, t| 2 * t >= n && t >= k,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::RV1,
        lemma: "Lemma 4.8",
        means: "as Lemma 3.10 (proof is model-independent)",
        formula: "all t >= 1",
        region: |_n, _k, _t| true,
    },
    Fact {
        model: Model::SmByzantine,
        validity: VC::RV2,
        lemma: "Lemma 4.9",
        means: "frozen group with lying inputs",
        formula: "t >= n/2 and t >= k",
        region: |n, k, t| 2 * t >= n && t >= k,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn find(table: &'static [Fact], lemma: &str) -> &'static Fact {
        table
            .iter()
            .find(|f| f.lemma == lemma)
            .unwrap_or_else(|| panic!("{lemma} not in table"))
    }

    #[test]
    fn every_lemma_with_a_region_is_present_exactly_once() {
        let mut lemmas: Vec<&str> = SOLVABLE
            .iter()
            .chain(IMPOSSIBLE.iter())
            .map(|f| f.lemma)
            .collect();
        lemmas.sort();
        let before = lemmas.len();
        lemmas.dedup();
        assert_eq!(before, lemmas.len(), "duplicate lemma entries");
        // 15 possibility + 13 impossibility lemmas carried as base facts.
        assert_eq!(SOLVABLE.len(), 15);
        assert_eq!(IMPOSSIBLE.len(), 13);
    }

    #[test]
    fn lemma_3_1_and_3_2_tile_the_rv1_plane() {
        let s = find(SOLVABLE, "Lemma 3.1");
        let i = find(IMPOSSIBLE, "Lemma 3.2");
        for k in 2..64 {
            for t in 1..=64 {
                assert!(
                    s.covers(64, k, t) ^ i.covers(64, k, t),
                    "RV1 split must be exact at k={k}, t={t}"
                );
            }
        }
    }

    #[test]
    fn lemma_3_3_and_3_7_leave_only_multiples_of_k_open() {
        let s = find(SOLVABLE, "Lemma 3.7");
        let i = find(IMPOSSIBLE, "Lemma 3.3");
        for k in 2..64usize {
            for t in 1..=64usize {
                let gap = !s.covers(64, k, t) && !i.covers(64, k, t);
                // Open exactly on the line k t = (k-1) n, i.e. where k | n
                // (the "isolated points" the paper describes).
                assert_eq!(gap, k * t == (k - 1) * 64, "gap at k={k}, t={t}");
            }
        }
    }

    #[test]
    fn lemma_3_8_region_is_half_of_protocol_a() {
        let a = find(SOLVABLE, "Lemma 3.7");
        let b = find(SOLVABLE, "Lemma 3.8");
        for k in 2..64 {
            for t in 1..=64 {
                if b.covers(64, k, t) {
                    assert!(a.covers(64, k, t), "B region must lie inside A region");
                }
            }
        }
        // And strictly: t = 20, k = 3 is in A (60 < 128) not in B (120 >= 128... wait 2kt = 120 < 128).
        assert!(b.covers(64, 3, 20));
        assert!(a.covers(64, 3, 30) && !b.covers(64, 3, 30));
    }

    #[test]
    fn byzantine_wv2_protocol_a_facts_partition_by_half() {
        let lo = find(SOLVABLE, "Lemma 3.12");
        let hi = find(SOLVABLE, "Lemma 3.13");
        for k in 2..64 {
            for t in 1..=64 {
                assert!(
                    !(lo.covers(64, k, t) && hi.covers(64, k, t)),
                    "the two Protocol A regimes are disjoint (t < n/2 vs t >= n/2)"
                );
            }
        }
        assert!(lo.covers(64, 5, 20)); // 2t=40 < 64 and 4*24 = 96 >= 44
        assert!(hi.covers(64, 40, 33)); // 2t=66 >= 64 and 40 >= 34
    }

    #[test]
    fn impossibility_totals_for_sv1_and_byzantine_rv1() {
        for lemma in ["Lemma 3.5", "Lemma 4.2"] {
            let f = find(IMPOSSIBLE, lemma);
            assert!(f.covers(64, 2, 1) && f.covers(64, 63, 64));
        }
        for lemma in ["Lemma 3.10", "Lemma 4.8"] {
            let f = find(IMPOSSIBLE, lemma);
            assert!(f.covers(64, 2, 1) && f.covers(64, 63, 64));
        }
    }

    #[test]
    fn every_fact_has_a_nonempty_formula() {
        for f in SOLVABLE.iter().chain(IMPOSSIBLE.iter()) {
            assert!(!f.formula.is_empty(), "{} lacks a formula", f.lemma);
        }
    }

    #[test]
    fn formulas_agree_with_predicates_at_spot_points() {
        // Literal sanity of the formula strings against the predicates at
        // hand-computed points (n = 64).
        let f = find(SOLVABLE, "Lemma 3.7"); // t < (k-1)n/k
        assert!(f.covers(64, 2, 31) && !f.covers(64, 2, 32));
        let f = find(SOLVABLE, "Lemma 3.8"); // t < (k-1)n/2k
        assert!(f.covers(64, 2, 15) && !f.covers(64, 2, 16));
        let f = find(IMPOSSIBLE, "Lemma 3.6"); // t >= kn/(2k+1)
        assert!(!f.covers(64, 2, 25) && f.covers(64, 2, 26));
        let f = find(IMPOSSIBLE, "Lemma 3.11"); // t >= kn/2(k+1)
        assert!(!f.covers(64, 2, 21) && f.covers(64, 2, 22));
        let f = find(SOLVABLE, "Lemma 4.7"); // k > t+1
        assert!(f.covers(64, 10, 8) && !f.covers(64, 10, 9));
    }

    #[test]
    fn base_facts_never_contradict_each_other_directly() {
        // For every cell, no (model, validity) pair has both a solvable and
        // an impossible *base* fact (closure consistency is tested in
        // classify.rs; this checks the raw table).
        for n in [8usize, 64] {
            for k in 2..n {
                for t in 1..=n {
                    for s in SOLVABLE {
                        for i in IMPOSSIBLE {
                            if s.model == i.model && s.validity == i.validity {
                                assert!(
                                    !(s.covers(n, k, t) && i.covers(n, k, t)),
                                    "{} vs {} clash at n={n} k={k} t={t}",
                                    s.lemma,
                                    i.lemma
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
