//! # kset-regions — the solvability atlases of Figures 2, 4, 5 and 6
//!
//! Every lemma of the paper demarcates a region of the `(t, k)` plane where
//! `SC(k, t, C)` is solvable or impossible in one of the four models. This
//! crate encodes each lemma as an exact integer predicate ([`facts`]), then
//! classifies every cell by closing the base facts under the paper's own
//! propagation rules ([`classify`]):
//!
//! * **Validity lattice** (Figure 1): a protocol for a stronger validity
//!   solves every weaker one; an impossibility for a weaker validity kills
//!   every stronger one.
//! * **Failure models**: a Byzantine-tolerant protocol tolerates crashes;
//!   a crash impossibility holds a fortiori under Byzantine failures.
//! * **Communication models**: the SIMULATION transform compiles any
//!   message-passing protocol into a shared-memory one; shared-memory
//!   impossibilities apply to message passing.
//!
//! The result of classifying a full grid is an [`Atlas`], rendered to ASCII
//! or CSV by [`render`] — one atlas per model reproduces one figure of the
//! paper at `n = 64`.
//!
//! ```
//! use kset_core::ValidityCondition;
//! use kset_regions::{classify, CellClass, Model};
//!
//! // The original k-set consensus split (Lemmas 3.1 / 3.2) at n = 64:
//! let c = classify(Model::MpCrash, ValidityCondition::RV1, 64, 5, 4);
//! assert!(matches!(c, CellClass::Solvable(_)));
//! let c = classify(Model::MpCrash, ValidityCondition::RV1, 64, 5, 5);
//! assert!(matches!(c, CellClass::Impossible(_)));
//!
//! // Allowing default decisions changes everything: RV2 in shared memory
//! // is solvable for every t once k >= 2 (Protocol E, Lemma 4.5).
//! let c = classify(Model::SmCrash, ValidityCondition::RV2, 64, 2, 63);
//! assert!(matches!(c, CellClass::Solvable(_)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

mod atlas;
mod classify;
pub mod facts;
pub mod gaps;
pub mod math;
mod model;
pub mod render;

pub use atlas::{Atlas, Panel};
pub use classify::{classify, CellClass, Citation};
pub use model::Model;
