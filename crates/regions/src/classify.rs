//! Cell classification: base lemma facts closed under the paper's
//! propagation rules.

use serde::Serialize;

use kset_core::lattice::Lattice;
use kset_core::ValidityCondition as VC;

use crate::facts::{Fact, IMPOSSIBLE, SOLVABLE};
use crate::model::Model;

/// Why a cell is classified the way it is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct Citation {
    /// Lemma (or fringe rule) establishing the classification.
    pub lemma: &'static str,
    /// Protocol or technique.
    pub means: &'static str,
    /// The paper's bounding formula for the region.
    pub formula: &'static str,
}

/// The classification of one `(k, t)` cell of an atlas panel.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum CellClass {
    /// A protocol exists; the citation names it.
    Solvable(Citation),
    /// No protocol exists; the citation names the lower bound.
    Impossible(Citation),
    /// Between the known protocols and bounds — open in the paper.
    Open,
}

impl CellClass {
    /// The citation, if the cell is classified.
    pub fn citation(&self) -> Option<Citation> {
        match self {
            CellClass::Solvable(c) | CellClass::Impossible(c) => Some(*c),
            CellClass::Open => None,
        }
    }

    /// Single-character glyph used by the ASCII atlas: `o` solvable,
    /// `#` impossible (the paper's honeycomb resp. brick fill), `.` open.
    pub fn glyph(&self) -> char {
        match self {
            CellClass::Solvable(_) => 'o',
            CellClass::Impossible(_) => '#',
            CellClass::Open => '.',
        }
    }
}

/// Fringe rules outside the atlas domain `2 <= k <= n-1`, `t >= 1`.
const FRINGE_K_EQ_N: Citation = Citation {
    lemma: "trivial (k = n)",
    means: "every process decides its own input",
    formula: "k = n",
};
const FRINGE_T_EQ_0: Citation = Citation {
    lemma: "trivial (t = 0)",
    means: "wait for all n inputs, decide the minimum",
    formula: "t = 0",
};
const FRINGE_K_EQ_1: Citation = Citation {
    lemma: "FLP [17] / [24]",
    means: "consensus is unsolvable for any nontrivial validity",
    formula: "k = 1, t >= 1",
};

fn applies_solvable(fact: &Fact, model: Model, validity: VC, lat: &Lattice) -> bool {
    // A protocol transfers to `model` and its validity implies `validity`.
    fact.model.transfers_to(model) && lat.implies(fact.validity, validity)
}

fn applies_impossible(fact: &Fact, model: Model, validity: VC, lat: &Lattice) -> bool {
    // An impossibility for a weaker validity in a reachable model kills us:
    // if SC(validity) were solvable in `model`, transfer + weakening would
    // solve SC(fact.validity) in fact.model.
    model.transfers_to(fact.model) && lat.implies(validity, fact.validity)
}

/// Ranks candidate citations: exact (model, validity) matches first, then
/// exact model, then exact validity, then anything — so each cell cites the
/// most specific lemma available, like the paper's figures do.
fn specificity(fact: &Fact, model: Model, validity: VC) -> u8 {
    match (fact.model == model, fact.validity == validity) {
        (true, true) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (false, false) => 3,
    }
}

/// Classifies `SC(k, t, validity)` in `model` over `n` processes.
///
/// Outside the paper's atlas domain the trivial fringes apply: `k >= n` is
/// solvable by self-decision (even with validity SV1 under Byzantine
/// failures), `t = 0` is solvable by waiting for all inputs, and `k = 1` is
/// classical consensus, impossible for `t >= 1` by FLP / Loui–Abu-Amara.
///
/// # Panics
///
/// Panics if `n == 0`, `k == 0`, `k > n`, or `t > n`.
pub fn classify(model: Model, validity: VC, n: usize, k: usize, t: usize) -> CellClass {
    assert!(n > 0, "n must be positive");
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    assert!(t <= n, "t must be in 0..=n");

    // Fringes, in the order the paper dispatches them (§2).
    if k == n {
        return CellClass::Solvable(FRINGE_K_EQ_N);
    }
    if t == 0 {
        return CellClass::Solvable(FRINGE_T_EQ_0);
    }
    if k == 1 {
        return CellClass::Impossible(FRINGE_K_EQ_1);
    }

    let lat = Lattice::paper();

    let best = |table: &'static [Fact], applies: &dyn Fn(&Fact) -> bool| -> Option<&'static Fact> {
        table
            .iter()
            .filter(|f| applies(f) && f.covers(n, k, t))
            .min_by_key(|f| specificity(f, model, validity))
    };

    let solvable = best(SOLVABLE, &|f| applies_solvable(f, model, validity, &lat));
    let impossible = best(IMPOSSIBLE, &|f| {
        applies_impossible(f, model, validity, &lat)
    });

    match (solvable, impossible) {
        (Some(s), None) => CellClass::Solvable(Citation {
            lemma: s.lemma,
            means: s.means,
            formula: s.formula,
        }),
        (None, Some(i)) => CellClass::Impossible(Citation {
            lemma: i.lemma,
            means: i.means,
            formula: i.formula,
        }),
        (None, None) => CellClass::Open,
        (Some(s), Some(i)) => unreachable!(
            "lemmas contradict at {model} {validity} n={n} k={k} t={t}: {} vs {}",
            s.lemma, i.lemma
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 64;

    fn cls(model: Model, v: VC, k: usize, t: usize) -> CellClass {
        classify(model, v, N, k, t)
    }

    fn is_solv(c: CellClass) -> bool {
        matches!(c, CellClass::Solvable(_))
    }
    fn is_imp(c: CellClass) -> bool {
        matches!(c, CellClass::Impossible(_))
    }

    /// Total order used for monotonicity checks: more failures can only
    /// make the problem harder, larger k only easier.
    fn rank(c: CellClass) -> u8 {
        match c {
            CellClass::Impossible(_) => 0,
            CellClass::Open => 1,
            CellClass::Solvable(_) => 2,
        }
    }

    #[test]
    fn no_cell_is_ever_contradictory_and_classification_is_monotone() {
        for model in Model::ALL {
            for v in VC::ALL {
                for k in 2..N {
                    let mut prev = u8::MAX;
                    for t in 1..=N {
                        let c = cls(model, v, k, t); // panics on contradiction
                        let r = rank(c);
                        assert!(
                            r <= prev,
                            "{model} {v}: rank must not increase with t at k={k}, t={t}"
                        );
                        prev = r;
                    }
                }
                for t in 1..=N {
                    let mut prev = 0;
                    for k in 2..N {
                        let r = rank(cls(model, v, k, t));
                        assert!(
                            r >= prev,
                            "{model} {v}: rank must not decrease with k at k={k}, t={t}"
                        );
                        prev = r;
                    }
                }
            }
        }
    }

    #[test]
    fn fringes() {
        for model in Model::ALL {
            for v in VC::ALL {
                assert!(is_solv(classify(model, v, N, N, N)), "k = n trivial");
                assert!(is_solv(classify(model, v, N, 2, 0)), "t = 0 trivial");
                assert!(is_imp(classify(model, v, N, 1, 1)), "k = 1 is consensus");
            }
        }
    }

    #[test]
    fn figure_2_mp_crash_panels() {
        use Model::MpCrash as M;
        // RV1/WV1: split exactly at t = k.
        for v in [VC::RV1, VC::WV1] {
            assert!(is_solv(cls(M, v, 5, 4)));
            assert!(is_imp(cls(M, v, 5, 5)));
        }
        // SV1: impossible everywhere.
        assert!(is_imp(cls(M, VC::SV1, 63, 1)));
        // RV2/WV2: Protocol A up to kt < (k-1)n; open point at kt = (k-1)n;
        // impossible beyond. k = 2: boundary t = 32.
        for v in [VC::RV2, VC::WV2] {
            assert!(is_solv(cls(M, v, 2, 31)));
            assert_eq!(cls(M, v, 2, 32), CellClass::Open);
            assert!(is_imp(cls(M, v, 2, 33)));
            // k = 3 does not divide 64: no open cell on that row.
            assert!(is_solv(cls(M, v, 3, 42)));
            assert!(is_imp(cls(M, v, 3, 43)));
        }
        // SV2: B solvable 2kt < (k-1)n; impossible (2k+1)t >= kn; gap between.
        assert!(is_solv(cls(M, VC::SV2, 2, 15))); // 60 < 64
        assert_eq!(cls(M, VC::SV2, 2, 16), CellClass::Open); // 64 !< 64; 80 < 128
        assert!(is_imp(cls(M, VC::SV2, 2, 26))); // 130 >= 128
    }

    #[test]
    fn figure_4_mp_byzantine_panels() {
        use Model::MpByzantine as M;
        // SV1 and RV1: impossible everywhere.
        assert!(is_imp(cls(M, VC::SV1, 63, 1)));
        assert!(is_imp(cls(M, VC::RV1, 63, 1)));
        // WV1: Protocol D for k >= Z(n,t); impossible t >= k.
        // t = 10 < n/3: Z = 11.
        assert!(is_solv(cls(M, VC::WV1, 11, 10)));
        assert!(is_imp(cls(M, VC::WV1, 10, 10)));
        // SV2 via C(l): k=32, t=21 solvable with l=1; t >= n/2 never.
        assert!(is_solv(cls(M, VC::SV2, 32, 21)));
        assert!(is_imp(cls(M, VC::SV2, 32, 32))); // 65*32 >= 32*64 via L3.6
        // RV2 impossible at t >= kn/(2(k+1)).
        assert!(is_imp(cls(M, VC::RV2, 2, 22))); // 6*22 >= 128? 132 >= 128 yes
        // WV2: Protocol A large-t regime: k >= t+1, 2t >= n.
        assert!(is_solv(cls(M, VC::WV2, 40, 33)));
        // WV2 impossible needs both t >= kn/(2k+1) and t >= k.
        assert!(is_imp(cls(M, VC::WV2, 5, 30))); // 330 >= 320 and 30 >= 5
        assert_eq!(cls(M, VC::WV2, 5, 29), CellClass::Open); // 319 < 320
    }

    #[test]
    fn figure_5_sm_crash_panels() {
        use Model::SmCrash as M;
        // RV2/WV2: solvable everywhere (Protocol E).
        for v in [VC::RV2, VC::WV2] {
            for t in [1usize, 32, 63, 64] {
                assert!(is_solv(cls(M, v, 2, t)), "{v} t={t}");
            }
        }
        // RV1/WV1: exact split at t = k, same as message passing.
        for v in [VC::RV1, VC::WV1] {
            assert!(is_solv(cls(M, v, 5, 4)));
            assert!(is_imp(cls(M, v, 5, 5)));
        }
        // SV1: impossible everywhere.
        assert!(is_imp(cls(M, VC::SV1, 63, 1)));
        // SV2: Protocol F solvable whenever k > t+1, even huge t.
        assert!(is_solv(cls(M, VC::SV2, 63, 61)));
        // Impossible requires t >= n/2 and t >= k.
        assert!(is_imp(cls(M, VC::SV2, 30, 32)));
        // k = t+1 with t >= n/2 - 1 but t < n/2: open (the paper's gap).
        assert_eq!(cls(M, VC::SV2, 32, 31), CellClass::Open);
    }

    #[test]
    fn figure_6_sm_byzantine_panels() {
        use Model::SmByzantine as M;
        // SV1/RV1: impossible everywhere.
        assert!(is_imp(cls(M, VC::SV1, 63, 1)));
        assert!(is_imp(cls(M, VC::RV1, 63, 1)));
        // WV2: Protocol E still works against Byzantine writers.
        assert!(is_solv(cls(M, VC::WV2, 2, 64)));
        // RV2: unlike SM/CR, Protocol E does NOT give RV2 here; the
        // solvable region comes from SV2 protocols (F / SIM C(l)).
        assert!(is_solv(cls(M, VC::RV2, 63, 61))); // F: k > t+1
        assert!(is_imp(cls(M, VC::RV2, 30, 32))); // Lemma 4.9
        assert_eq!(cls(M, VC::RV2, 2, 20), CellClass::Open); // E unavailable
        // WV1: SIM of Protocol D.
        assert!(is_solv(cls(M, VC::WV1, 11, 10)));
        assert!(is_imp(cls(M, VC::WV1, 10, 10)));
        // SV2: F region.
        assert!(is_solv(cls(M, VC::SV2, 63, 61)));
        assert!(is_imp(cls(M, VC::SV2, 30, 32)));
    }

    #[test]
    fn citations_prefer_the_most_specific_lemma() {
        // SM/CR RV1 should cite Lemma 4.4 (the SM statement), not 3.1.
        let CellClass::Solvable(c) = cls(Model::SmCrash, VC::RV1, 5, 4) else {
            panic!("expected solvable");
        };
        assert_eq!(c.lemma, "Lemma 4.4");
        // MP/CR RV1 cites Lemma 3.1.
        let CellClass::Solvable(c) = cls(Model::MpCrash, VC::RV1, 5, 4) else {
            panic!("expected solvable");
        };
        assert_eq!(c.lemma, "Lemma 3.1");
        // MP/CR WV2 in the Protocol A region cites 3.7 via weakening
        // (the most specific available: same model, weaker validity...
        // actually Lemma 3.7 is RV2; no WV2-specific solvable fact in MP/CR).
        let CellClass::Solvable(c) = cls(Model::MpCrash, VC::WV2, 2, 31) else {
            panic!("expected solvable");
        };
        assert_eq!(c.lemma, "Lemma 3.7");
        // SM/Byz WV1 cites the SIMULATION lemma 4.13, not 3.16.
        let CellClass::Solvable(c) = cls(Model::SmByzantine, VC::WV1, 11, 10) else {
            panic!("expected solvable");
        };
        assert_eq!(c.lemma, "Lemma 4.13");
    }

    #[test]
    fn crash_solvable_cells_stay_solvable_in_shared_memory() {
        // SIMULATION direction: MP/CR solvable => SM/CR solvable.
        for v in VC::ALL {
            for k in (2..N).step_by(7) {
                for t in (1..=N).step_by(5) {
                    if is_solv(cls(Model::MpCrash, v, k, t)) {
                        assert!(
                            is_solv(cls(Model::SmCrash, v, k, t)),
                            "{v} k={k} t={t}"
                        );
                    }
                    if is_imp(cls(Model::SmCrash, v, k, t)) {
                        assert!(
                            is_imp(cls(Model::MpCrash, v, k, t)),
                            "{v} k={k} t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn byzantine_impossible_contains_crash_impossible() {
        for (cr, byz) in [
            (Model::MpCrash, Model::MpByzantine),
            (Model::SmCrash, Model::SmByzantine),
        ] {
            for v in VC::ALL {
                for k in (2..N).step_by(7) {
                    for t in (1..=N).step_by(5) {
                        if is_imp(cls(cr, v, k, t)) {
                            assert!(is_imp(cls(byz, v, k, t)), "{v} k={k} t={t}");
                        }
                        if is_solv(cls(byz, v, k, t)) {
                            assert!(is_solv(cls(cr, v, k, t)), "{v} k={k} t={t}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weaker_validity_is_never_harder() {
        

use kset_core::lattice::Lattice;
        let lat = Lattice::paper();
        for model in Model::ALL {
            for c in VC::ALL {
                for d in VC::ALL {
                    if !lat.weaker_than(c, d) {
                        continue; // c weaker than d
                    }
                    for k in (2..N).step_by(9) {
                        for t in (1..=N).step_by(7) {
                            if is_solv(cls(model, d, k, t)) {
                                assert!(is_solv(cls(model, c, k, t)));
                            }
                            if is_imp(cls(model, c, k, t)) {
                                assert!(is_imp(cls(model, d, k, t)));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn classify_rejects_k_zero() {
        let _ = classify(Model::MpCrash, VC::RV1, 4, 0, 1);
    }

    #[test]
    fn glyphs() {
        assert_eq!(cls(Model::MpCrash, VC::RV1, 5, 4).glyph(), 'o');
        assert_eq!(cls(Model::MpCrash, VC::RV1, 5, 5).glyph(), '#');
        assert_eq!(cls(Model::MpCrash, VC::SV2, 2, 16).glyph(), '.');
        assert!(cls(Model::MpCrash, VC::SV2, 2, 16).citation().is_none());
    }
}
