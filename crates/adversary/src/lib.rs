//! # kset-adversary — Byzantine strategies and fault placement
//!
//! The impossibility proofs of the paper are *constructions*: each one
//! describes a specific misbehaviour (lying about an input, mimicking a
//! different unanimous group towards each partition, splitting an echo
//! quorum) combined with a scheduling pattern. This crate packages those
//! misbehaviours as reusable process implementations that plug into the
//! Byzantine slots of an `MpSystem`/`SmSystem` fault plan:
//!
//! * [`Silent`] / [`SmSilent`] — send/write nothing, ever. The weakest
//!   Byzantine behaviour (indistinguishable from an initial crash), and the
//!   baseline for every "termination despite `t` failures" test.
//! * [`Equivocator`] — sends a *different* value to every process. Breaks
//!   protocols that assume a sender tells everyone the same thing.
//! * [`GroupMimic`] — towards each group of processes, behaves like a
//!   correct process whose input is that group's value: the engine of the
//!   runs in Lemmas 3.9 and 3.11.
//! * [`InputLiar`] — the Lemma 3.10 adversary: runs the correct protocol
//!   but on a forged input ("claiming that `v_i` is its input").
//! * [`EchoSplitter`] — attacks echo broadcasts by sending `Init` with
//!   different values to different halves of the system, driving the
//!   `l`-echo analysis of Lemma 3.14 to its bound.
//! * [`Scribbler`] — shared-memory vandal: writes a stream of garbage
//!   values to *its own* registers (the only ones it can touch — the
//!   SWMR integrity guarantee holds even for Byzantine processes).
//! * [`plans`] — fault-plan builders, including the crash-at-the-worst-
//!   moment placements the proofs of Lemmas 3.5 and 4.2 rely on.
//!
//! ```
//! use kset_adversary::{Equivocator, plans};
//! use kset_net::{DynMpProcess, MpSystem};
//! use kset_protocols::FloodMin;
//!
//! // FloodMin is a crash-model protocol; one equivocator (sending a
//! // different forged value to every process) can poison decisions with
//! // values nobody input — the essence of Lemma 3.10.
//! let n = 4;
//! let outcome = MpSystem::new(n)
//!     .seed(11)
//!     .fault_plan(plans::byzantine(n, &[0]))
//!     .run_with(|p| -> DynMpProcess<u64, u64> {
//!         if p == 0 {
//!             Box::new(Equivocator::new((1000..1000 + n as u64).collect()))
//!         } else {
//!             FloodMin::boxed(n, 1, 10 + p as u64)
//!         }
//!     })?;
//! assert!(outcome.terminated);
//! # Ok::<(), kset_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

mod mp;
pub mod plans;
mod sm;

pub use mp::{EchoSplitter, Equivocator, GroupMimic, InputLiar, Silent};
pub use sm::{Scribbler, SmSilent};
