//! Message-passing Byzantine strategies.

use std::marker::PhantomData;

use kset_core::Value;
use kset_net::{MpContext, MpProcess};
use kset_protocols::CMsg;
use kset_sim::ProcessId;

/// Sends nothing, ever — the Byzantine strategy indistinguishable from an
/// initial crash. Useful wherever a test needs "t failures exist" without
/// any active interference.
#[derive(Clone, Copy, Debug)]
pub struct Silent<M, V> {
    _marker: PhantomData<(M, V)>,
}

impl<M, V> Silent<M, V> {
    /// Creates the silent strategy.
    pub fn new() -> Self {
        Silent {
            _marker: PhantomData,
        }
    }
}

impl<M, V> Default for Silent<M, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone, V> MpProcess for Silent<M, V> {
    type Msg = M;
    type Output = V;

    fn on_start(&mut self, _ctx: &mut MpContext<'_, M, V>) {}

    fn on_message(&mut self, _from: ProcessId, _msg: M, _ctx: &mut MpContext<'_, M, V>) {}
}

/// Sends a *different* input value to every process (`values[q]` goes to
/// process `q`), then ignores all deliveries.
///
/// Against quorum-of-values protocols (FloodMin, Protocols A and B) this is
/// the canonical demonstration that crash-model validity arguments do not
/// survive Byzantine failures: decisions can contain values that were
/// nobody's input.
#[derive(Clone, Debug)]
pub struct Equivocator<V> {
    values: Vec<V>,
}

impl<V: Value> Equivocator<V> {
    /// Creates the strategy; `values[q]` is sent to process `q`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<V>) -> Self {
        assert!(!values.is_empty(), "equivocator needs at least one value");
        Equivocator { values }
    }
}

impl<V: Value> MpProcess for Equivocator<V> {
    type Msg = V;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        for to in 0..ctx.n() {
            let v = self.values[to % self.values.len()].clone();
            ctx.send(to, v);
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: V, _ctx: &mut MpContext<'_, V, V>) {}
}

/// Towards each group of processes, behaves like a correct process whose
/// input is that group's value — the adversary of the runs constructed in
/// Lemmas 3.9 and 3.11.
///
/// Combined with delay rules isolating each group, every group `g_i` sees a
/// run indistinguishable from "everyone (including the faulty) started with
/// `v_i`", and decides `v_i` — stacking up `k + 1` decisions.
#[derive(Clone, Debug)]
pub struct GroupMimic<V> {
    /// `assignment[q]` is the value this strategy shows to process `q`.
    assignment: Vec<V>,
}

impl<V: Value> GroupMimic<V> {
    /// Creates the strategy from explicit per-process values.
    pub fn from_assignment(assignment: Vec<V>) -> Self {
        GroupMimic { assignment }
    }

    /// Creates the strategy from groups: every process in `groups[i].0`
    /// is shown value `groups[i].1`; processes not mentioned get the first
    /// group's value.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or mentions a process `>= n`.
    pub fn new(n: usize, groups: &[(Vec<ProcessId>, V)]) -> Self {
        assert!(!groups.is_empty(), "group mimic needs at least one group");
        let mut assignment = vec![groups[0].1.clone(); n];
        for (members, v) in groups {
            for &p in members {
                assert!(p < n, "group member {p} out of range for n = {n}");
                assignment[p] = v.clone();
            }
        }
        GroupMimic { assignment }
    }
}

impl<V: Value> MpProcess for GroupMimic<V> {
    type Msg = V;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        for (to, v) in self.assignment.iter().cloned().enumerate() {
            if to < ctx.n() {
                ctx.send(to, v);
            }
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: V, _ctx: &mut MpContext<'_, V, V>) {}
}

/// Runs an arbitrary correct protocol, but on a forged input — the
/// Lemma 3.10 adversary ("faulty but behaves as in `α_1`, claiming that
/// `v_i` is its input, but that it has `v_i'` as its input").
///
/// The wrapper is deliberately trivial: lying about one's input *is*
/// following the protocol with a different value, which is precisely why
/// RV1 ("the decision equals the input of some process") is unachievable
/// against Byzantine failures — no protocol can tell the lie apart.
#[derive(Clone, Debug)]
pub struct InputLiar<P> {
    inner: P,
}

impl<P> InputLiar<P> {
    /// Wraps a protocol instance that was constructed with the forged
    /// input. (The type exists to make the *intent* visible at the call
    /// site and in experiment reports.)
    pub fn new(inner_with_forged_input: P) -> Self {
        InputLiar {
            inner: inner_with_forged_input,
        }
    }
}

impl<P: MpProcess> MpProcess for InputLiar<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut MpContext<'_, P::Msg, P::Output>) {
        self.inner.on_start(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: P::Msg,
        ctx: &mut MpContext<'_, P::Msg, P::Output>,
    ) {
        self.inner.on_message(from, msg, ctx);
    }

    fn on_step(&mut self, ctx: &mut MpContext<'_, P::Msg, P::Output>) {
        self.inner.on_step(ctx);
    }
}

/// Attacks echo broadcasts (Protocol C's `l`-echo) by `Init`-ing different
/// values to different slices of the system, and echoing every rumour it
/// hears — the behaviour that realizes the `l`-amplification counted in
/// Lemma 3.14's proof ("a faulty process can send `l + 1` different
/// echos").
#[derive(Clone, Debug)]
pub struct EchoSplitter<V> {
    values: Vec<V>,
    /// Rumours already amplified. Re-broadcasting an *identical* echo adds
    /// no adversarial power — receivers count distinct echo senders — so
    /// the strategy amplifies each distinct `(origin, value)` once, which
    /// keeps runs finite.
    amplified: std::collections::BTreeSet<(ProcessId, V)>,
}

impl<V: Value> EchoSplitter<V> {
    /// Creates the strategy. The system is split into `values.len()`
    /// contiguous slices; slice `i` receives `Init(values[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<V>) -> Self {
        assert!(!values.is_empty(), "echo splitter needs at least one value");
        EchoSplitter {
            values,
            amplified: std::collections::BTreeSet::new(),
        }
    }

    fn value_for(&self, to: ProcessId, n: usize) -> V {
        let slice = to * self.values.len() / n.max(1);
        self.values[slice.min(self.values.len() - 1)].clone()
    }
}

impl<V: Value> MpProcess for EchoSplitter<V> {
    type Msg = CMsg<V>;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        for to in 0..ctx.n() {
            let v = self.value_for(to, ctx.n());
            ctx.send(to, CMsg::Init(v));
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: CMsg<V>, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        // Echo every *distinct* rumour back at everyone.
        let (origin, v) = match msg {
            CMsg::Init(v) => (from, v),
            CMsg::Echo(origin, v) => (origin, v),
        };
        if self.amplified.insert((origin, v.clone())) {
            ctx.broadcast(CMsg::Echo(origin, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_net::{DynMpProcess, MpSystem};
    use kset_protocols::{FloodMin, ProtocolA, ProtocolC};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    #[test]
    fn silent_is_indistinguishable_from_initial_crash() {
        let byz = MpSystem::new(4)
            .seed(9)
            .fault_plan(FaultPlan::byzantine(4, &[0]))
            .run_with(|p| -> DynMpProcess<u64, u64> {
                if p == 0 {
                    Box::new(Silent::new())
                } else {
                    FloodMin::boxed(4, 1, 10 + p as u64)
                }
            })
            .unwrap();
        let crash = MpSystem::new(4)
            .seed(9)
            .fault_plan(FaultPlan::silent_crashes(4, &[0]))
            .run_with(|p| FloodMin::boxed(4, 1, 10 + p as u64))
            .unwrap();
        assert_eq!(byz.correct_decisions(), crash.correct_decisions());
    }

    #[test]
    fn equivocator_poisons_floodmin_with_forged_values() {
        // Lemma 3.10's essence: under a Byzantine failure, FloodMin can
        // decide values that were nobody's input. The forged values are
        // tiny, so every correct process adopts one as its minimum.
        let outcome = MpSystem::new(4)
            .seed(3)
            .fault_plan(FaultPlan::byzantine(4, &[0]))
            .run_with(|p| -> DynMpProcess<u64, u64> {
                if p == 0 {
                    Box::new(Equivocator::new(vec![1, 2, 3, 4]))
                } else {
                    FloodMin::boxed(4, 1, 100 + p as u64)
                }
            })
            .unwrap();
        assert!(outcome.terminated);
        let decisions = outcome.correct_decision_set();
        assert!(
            decisions.iter().any(|&d| d < 100),
            "at least one forged value must be decided, got {decisions:?}"
        );
    }

    #[test]
    fn group_mimic_shows_each_group_its_own_value() {
        // Two groups with different "unanimous" views; the mimic shows 1 to
        // {1, 2} and 2 to {3, 4}. With group isolation, Protocol A's groups
        // each decide their own value (the Lemma 3.9 run at small scale).
        use kset_sim::DelayRule;
        let inputs = [0u64, 1, 1, 2, 2];
        let outcome = MpSystem::new(5)
            .seed(5)
            .fault_plan(FaultPlan::byzantine(5, &[0]))
            .delay_rule(DelayRule::isolate_with_allies(vec![1, 2], vec![0]))
            .delay_rule(DelayRule::isolate_with_allies(vec![3, 4], vec![0]))
            .run_with(|p| -> DynMpProcess<u64, u64> {
                if p == 0 {
                    Box::new(GroupMimic::new(
                        5,
                        &[(vec![1, 2], 1u64), (vec![3, 4], 2u64)],
                    ))
                } else {
                    // n = 5, t = 1: quorum 4; wait: groups of 2 + mimic = 3
                    // < 4, so use t = 2 for quorum 3 = group + mimic.
                    ProtocolA::boxed(5, 2, inputs[p], DEFAULT)
                }
            })
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![1, 2]);
    }

    #[test]
    fn input_liar_is_protocol_compatible() {
        // The liar claims input 7 while the record says its input was 0.
        let outcome = MpSystem::new(3)
            .seed(2)
            .fault_plan(FaultPlan::byzantine(3, &[2]))
            .run_with(|p| -> DynMpProcess<u64, u64> {
                if p == 2 {
                    Box::new(InputLiar::new(FloodMin::new(3, 1, 7)))
                } else {
                    FloodMin::boxed(3, 1, 10 + p as u64)
                }
            })
            .unwrap();
        assert!(outcome.terminated);
        // The forged 7 can be decided by correct processes.
        assert!(outcome
            .correct_decision_set()
            .iter()
            .all(|&d| d == 7 || d >= 10));
    }

    #[test]
    fn echo_splitter_cannot_push_two_acceptances_past_a_sound_l1_echo() {
        // n = 7, t = 1, l = 1 (sound: 3 < 7): threshold (7+1)/2 + 1 = 5.
        // The splitter inits 111 to half and 222 to the other half; correct
        // echo camps of size 3 and 3 both fall short of 5 even with the
        // splitter's own double-echo.
        let outcome = MpSystem::new(7)
            .seed(6)
            .fault_plan(FaultPlan::byzantine(7, &[0]))
            .run_with(|p| -> DynMpProcess<kset_protocols::CMsg<u64>, u64> {
                if p == 0 {
                    Box::new(EchoSplitter::new(vec![111u64, 222]))
                } else {
                    ProtocolC::boxed(7, 1, 1, 5u64, DEFAULT)
                }
            })
            .unwrap();
        assert!(outcome.terminated);
        // All correct processes share input 5 and must decide 5 (SV2).
        assert_eq!(outcome.correct_decision_set(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "equivocator needs at least one value")]
    fn equivocator_rejects_empty_values() {
        let _ = Equivocator::<u64>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_mimic_rejects_bad_members() {
        let _ = GroupMimic::new(3, &[(vec![5], 1u64)]);
    }
}
