//! Fault-plan builders for the paper's constructions.
//!
//! Thin, intention-revealing wrappers over [`kset_sim::FaultPlan`]: the
//! proofs place crashes at *specific instants* (right after the last send,
//! right after the last write), which under the action-budget crash model
//! becomes a precise arithmetic of handler and effect counts.

use kset_sim::{FaultPlan, FaultSpec, ProcessId};

/// All `n` processes correct.
pub fn all_correct(n: usize) -> FaultPlan {
    FaultPlan::all_correct(n)
}

/// The listed processes never take a single step.
pub fn silent_crashes(n: usize, crashed: &[ProcessId]) -> FaultPlan {
    FaultPlan::silent_crashes(n, crashed)
}

/// The listed processes run caller-supplied Byzantine strategies.
pub fn byzantine(n: usize, byzantine: &[ProcessId]) -> FaultPlan {
    FaultPlan::byzantine(n, byzantine)
}

/// Process `pid` crashes *immediately after completing its initial
/// broadcast to all `n` processes* — the placement of Lemma 3.5's run
/// ("fails right after sending its last message").
///
/// Budget arithmetic: one action for handling the start event plus `n`
/// actions for the `n` sends of the broadcast.
pub fn crash_after_initial_broadcast(n: usize, pid: ProcessId) -> FaultPlan {
    let mut plan = FaultPlan::all_correct(n);
    plan.set(
        pid,
        FaultSpec::Crash {
            after_actions: 1 + n as u64,
        },
    );
    plan
}

/// Process `pid` crashes mid-broadcast, after sending to only the first
/// `sent` recipients — the partial-broadcast crash that separates the
/// crash model from clean stopping failures.
pub fn crash_mid_broadcast(n: usize, pid: ProcessId, sent: usize) -> FaultPlan {
    let mut plan = FaultPlan::all_correct(n);
    plan.set(
        pid,
        FaultSpec::Crash {
            after_actions: 1 + sent as u64,
        },
    );
    plan
}

/// Process `pid` crashes right after issuing its first register write —
/// the placement of Lemma 4.2's run ("crashes right after completing its
/// last write operation"). The write's linearization point is its
/// invocation, so the value is visible despite the crash.
pub fn crash_after_first_write(n: usize, pid: ProcessId) -> FaultPlan {
    let mut plan = FaultPlan::all_correct(n);
    plan.set(pid, FaultSpec::Crash { after_actions: 2 });
    plan
}

/// A plan with exactly `t` silent crashes on the *last* `t` processes —
/// the bulk fault pattern used by termination sweeps.
///
/// # Panics
///
/// Panics if `t > n`.
pub fn last_t_silent(n: usize, t: usize) -> FaultPlan {
    assert!(t <= n, "cannot crash more processes than exist");
    let crashed: Vec<ProcessId> = (n - t..n).collect();
    FaultPlan::silent_crashes(n, &crashed)
}

/// Every silent-crash pattern with at most `t` crashed processes, i.e. one
/// [`FaultPlan`] per subset of `{0, …, n-1}` of size `<= t`, starting with
/// the failure-free plan.
///
/// This is the crash-pattern quantifier of the schedule-space model checker
/// (`kset-experiments`): "the protocol solves `SC(k, t, V)`" means every
/// schedule of every such pattern satisfies the spec, matching the
/// exhaustive interleaving enumerator's fault model (crashed processes
/// never take a step). The order is deterministic — by subset size, then
/// lexicographically — so checker run records are stable across runs.
///
/// # Panics
///
/// Panics if `t > n`.
pub fn all_silent_crash_patterns(n: usize, t: usize) -> Vec<FaultPlan> {
    assert!(t <= n, "cannot crash more processes than exist");
    let mut patterns = Vec::new();
    let mut subset: Vec<ProcessId> = Vec::new();
    for size in 0..=t {
        subsets_of_size(n, size, 0, &mut subset, &mut patterns);
    }
    patterns
}

fn subsets_of_size(
    n: usize,
    size: usize,
    from: ProcessId,
    subset: &mut Vec<ProcessId>,
    out: &mut Vec<FaultPlan>,
) {
    if subset.len() == size {
        out.push(FaultPlan::silent_crashes(n, subset));
        return;
    }
    for p in from..n {
        subset.push(p);
        subsets_of_size(n, size, p + 1, subset, out);
        subset.pop();
    }
}

/// Every bounded-Byzantine fault pattern with at most `t` faulty processes:
/// one [`FaultPlan`] per subset of `{0, …, n-1}` of size `<= t` per
/// assignment of each subset member to one of two behaviours —
///
/// * **Silent** ([`FaultSpec::Crash`] with budget 0): the process never
///   takes a step. A Byzantine process may always act crashed, so the
///   quantifier must cover silence explicitly — for several frontier cells
///   the winning adversary strategy *is* to say nothing.
/// * **Active** ([`FaultSpec::Byzantine`]): the process runs the normal
///   protocol, but every delivery it sources is a deviation branch point
///   for the scheduler (equivocation, value corruption, selective silence —
///   see `kset_sim::DeviationPolicy`). The process itself needs no strategy
///   object: the deviation space lives entirely in transit, which is what
///   makes it finitely enumerable.
///
/// The order is deterministic — by subset size, then lexicographic subset,
/// then assignment (binary counting, all-Silent first) — so checker run
/// records are stable. The failure-free plan comes first. Callers with an
/// *inactive* deviation policy (empty menu, no silence) should use
/// [`all_silent_crash_patterns`] instead: with no deviations available an
/// Active slot behaves exactly like a correct process, and the collapsed
/// space is the crash checker's, verdict for verdict.
///
/// # Panics
///
/// Panics if `t > n`.
pub fn all_byzantine_patterns(n: usize, t: usize) -> Vec<FaultPlan> {
    assert!(t <= n, "cannot corrupt more processes than exist");
    let mut patterns = Vec::new();
    let mut subset: Vec<ProcessId> = Vec::new();
    for size in 0..=t {
        byz_subsets_of_size(n, size, 0, &mut subset, &mut patterns);
    }
    patterns
}

fn byz_subsets_of_size(
    n: usize,
    size: usize,
    from: ProcessId,
    subset: &mut Vec<ProcessId>,
    out: &mut Vec<FaultPlan>,
) {
    if subset.len() == size {
        for bits in 0..(1u64 << size) {
            let mut plan = FaultPlan::all_correct(n);
            for (i, &p) in subset.iter().enumerate() {
                let spec = if bits & (1 << i) != 0 {
                    FaultSpec::Byzantine
                } else {
                    FaultSpec::Crash { after_actions: 0 }
                };
                plan.set(p, spec);
            }
            out.push(plan);
        }
        return;
    }
    for p in from..n {
        subset.push(p);
        byz_subsets_of_size(n, size, p + 1, subset, out);
        subset.pop();
    }
}

/// A plan with exactly `t` Byzantine slots on the *first* `t` processes —
/// the bulk fault pattern for Byzantine sweeps (the paper's constructions
/// habitually corrupt a prefix).
///
/// # Panics
///
/// Panics if `t > n`.
pub fn first_t_byzantine(n: usize, t: usize) -> FaultPlan {
    assert!(t <= n, "cannot corrupt more processes than exist");
    let byz: Vec<ProcessId> = (0..t).collect();
    FaultPlan::byzantine(n, &byz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_net::MpSystem;
    use kset_protocols::ProtocolA;

    const DEFAULT: u64 = u64::MAX;

    #[test]
    fn crash_after_initial_broadcast_lets_all_sends_out() {
        // n = 3: process 0 crashes after its full broadcast; everyone
        // still receives its input, so all-same inputs decide normally.
        let outcome = MpSystem::new(3)
            .seed(8)
            .fault_plan(crash_after_initial_broadcast(3, 0))
            .run_with(|_| ProtocolA::boxed(3, 1, 5u64, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![5]);
        // Process 0 crashed before it could decide.
        assert!(!outcome.decisions.contains_key(&0));
    }

    #[test]
    fn crash_mid_broadcast_cuts_the_tail() {
        // Process 0 sends only to itself (recipient 0), then crashes:
        // processes 1 and 2 never see its value.
        let outcome = MpSystem::new(3)
            .seed(8)
            .fault_plan(crash_mid_broadcast(3, 0, 1))
            .run_with(|p| ProtocolA::boxed(3, 1, if p == 0 { 9u64 } else { 5 }, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        // 1 and 2 each see {5, 5}: unanimous 5.
        assert_eq!(outcome.correct_decision_set(), vec![5]);
    }

    #[test]
    fn bulk_plans_have_the_right_shape() {
        let p = last_t_silent(6, 2);
        assert_eq!(p.faulty_set(), vec![4, 5]);
        let p = first_t_byzantine(6, 2);
        assert_eq!(p.faulty_set(), vec![0, 1]);
        assert!(all_correct(4).failure_free());
        assert_eq!(silent_crashes(4, &[1]).fault_count(), 1);
        assert_eq!(byzantine(4, &[2]).fault_count(), 1);
        assert_eq!(
            crash_after_first_write(4, 3).remaining_budget(3, 0),
            Some(2)
        );
    }

    #[test]
    #[should_panic(expected = "cannot crash more processes than exist")]
    fn last_t_silent_rejects_overflow() {
        let _ = last_t_silent(3, 4);
    }

    #[test]
    fn all_silent_crash_patterns_enumerates_subsets_in_order() {
        // n = 4, t = 1: the failure-free pattern plus one per process.
        let plans = all_silent_crash_patterns(4, 1);
        let sets: Vec<Vec<usize>> = plans.iter().map(|p| p.faulty_set()).collect();
        assert_eq!(
            sets,
            vec![vec![], vec![0], vec![1], vec![2], vec![3]]
        );

        // n = 4, t = 2: C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11 patterns,
        // sized then lexicographic.
        let plans = all_silent_crash_patterns(4, 2);
        assert_eq!(plans.len(), 11);
        assert_eq!(plans[5].faulty_set(), vec![0, 1]);
        assert_eq!(plans[10].faulty_set(), vec![2, 3]);
    }

    #[test]
    fn all_silent_crash_patterns_t_zero_is_failure_free_only() {
        let plans = all_silent_crash_patterns(3, 0);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].failure_free());
    }

    #[test]
    fn all_silent_crash_patterns_never_contain_byzantine_slots() {
        // The crash-pattern quantifier's contract: every plan it emits is
        // consumable by crash-only helpers (silent-crash reconstruction,
        // exhaustive cross-validation) without miscounting faults.
        for plan in all_silent_crash_patterns(4, 2) {
            assert!(!plan.has_byzantine());
        }
    }

    #[test]
    fn all_byzantine_patterns_enumerates_subsets_times_assignments() {
        // n = 3, t = 1: failure-free + 3 subsets × {Silent, Active} = 7.
        let plans = all_byzantine_patterns(3, 1);
        assert_eq!(plans.len(), 7);
        assert!(plans[0].failure_free());
        // Per subset: all-Silent assignment first, then Active.
        assert_eq!(plans[1].faulty_set(), vec![0]);
        assert!(!plans[1].has_byzantine());
        assert_eq!(plans[1].remaining_budget(0, 0), Some(0));
        assert_eq!(plans[2].faulty_set(), vec![0]);
        assert!(plans[2].has_byzantine());

        // n = 3, t = 2: 1 + 3·2 + 3·4 = 19.
        let plans = all_byzantine_patterns(3, 2);
        assert_eq!(plans.len(), 19);
        // The last plan: subset {1, 2}, both Active.
        let last = plans.last().unwrap();
        assert_eq!(last.faulty_set(), vec![1, 2]);
        assert_eq!(last.spec(1).kind(), kset_sim::FaultKind::Byzantine);
        assert_eq!(last.spec(2).kind(), kset_sim::FaultKind::Byzantine);
    }

    #[test]
    fn all_byzantine_patterns_silent_assignments_match_crash_patterns() {
        // Filtering the Byzantine space down to its all-Silent assignments
        // recovers exactly the silent-crash quantifier, plan for plan.
        let byz: Vec<_> = all_byzantine_patterns(4, 2)
            .into_iter()
            .filter(|p| !p.has_byzantine())
            .collect();
        assert_eq!(byz, all_silent_crash_patterns(4, 2));
    }
}
