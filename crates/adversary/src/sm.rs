//! Shared-memory Byzantine strategies.
//!
//! The shared-memory Byzantine model is deliberately narrow: the memory
//! preserves its integrity and access restrictions, so a Byzantine process
//! can only corrupt state reachable through the legitimate interface — its
//! *own* single-writer registers. These strategies explore that surface.

use std::marker::PhantomData;

use kset_core::Value;
use kset_shmem::{RegisterId, SmContext, SmProcess};

/// Never writes, never reads, never decides — the shared-memory analogue
/// of [`crate::Silent`].
#[derive(Clone, Copy, Debug)]
pub struct SmSilent<V, O> {
    _marker: PhantomData<(V, O)>,
}

impl<V, O> SmSilent<V, O> {
    /// Creates the silent strategy.
    pub fn new() -> Self {
        SmSilent {
            _marker: PhantomData,
        }
    }
}

impl<V, O> Default for SmSilent<V, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone, O> SmProcess for SmSilent<V, O> {
    type Val = V;
    type Output = O;

    fn on_start(&mut self, _ctx: &mut SmContext<'_, V, O>) {}

    fn on_read(&mut self, _reg: RegisterId, _value: Option<V>, _ctx: &mut SmContext<'_, V, O>) {}
}

/// Writes a stream of misleading values into its own registers, repeatedly
/// overwriting slot 0 (the slot the paper's protocols scan) — the
/// strongest interference the SWMR model permits.
///
/// Each value in `values` is written in order; `on_write_ack` triggers the
/// next write, so the overwrites are spread across the schedule rather
/// than batched, maximizing the chance different scanners read different
/// values.
#[derive(Clone, Debug)]
pub struct Scribbler<V, O> {
    values: Vec<V>,
    next: usize,
    slot: usize,
    _marker: PhantomData<O>,
}

impl<V: Value, O> Scribbler<V, O> {
    /// Creates a scribbler cycling through `values` on register slot 0.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<V>) -> Self {
        Self::on_slot(values, 0)
    }

    /// Creates a scribbler targeting a specific slot of its own registers.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn on_slot(values: Vec<V>, slot: usize) -> Self {
        assert!(!values.is_empty(), "scribbler needs at least one value");
        Scribbler {
            values,
            next: 0,
            slot,
            _marker: PhantomData,
        }
    }
}

impl<V: Value, O> SmProcess for Scribbler<V, O> {
    type Val = V;
    type Output = O;

    fn on_start(&mut self, ctx: &mut SmContext<'_, V, O>) {
        let v = self.values[0].clone();
        self.next = 1;
        ctx.write(self.slot, v);
    }

    fn on_read(&mut self, _reg: RegisterId, _value: Option<V>, _ctx: &mut SmContext<'_, V, O>) {}

    fn on_write_ack(&mut self, _slot: usize, ctx: &mut SmContext<'_, V, O>) {
        if self.next < self.values.len() {
            let v = self.values[self.next].clone();
            self.next += 1;
            ctx.write(self.slot, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_protocols::{ProtocolE, ProtocolF};
    use kset_shmem::{DynSmProcess, SmSystem};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    #[test]
    fn silent_behaves_like_an_unwritten_register() {
        let outcome = SmSystem::new(4)
            .seed(1)
            .fault_plan(FaultPlan::byzantine(4, &[3]))
            .run_with(|p| -> DynSmProcess<u64, u64> {
                if p == 3 {
                    Box::new(SmSilent::new())
                } else {
                    ProtocolE::boxed(4, 1, 6u64, DEFAULT)
                }
            })
            .unwrap();
        assert!(outcome.terminated);
        // ⊥ registers are skipped by Protocol E's scan, so the unanimous
        // correct value goes through.
        assert_eq!(outcome.correct_decision_set(), vec![6]);
        assert!(!outcome.memory.contains_key(&RegisterId::new(3, 0)));
    }

    #[test]
    fn scribbler_can_split_protocol_e_scans_but_never_past_two_values() {
        // Different scanners may catch different scribbles, but Lemma 4.10's
        // argument (first correct write is seen by everyone) still caps the
        // correct decision set at {v, v0}.
        for seed in 0..30 {
            let outcome = SmSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(5, &[0]))
                .run_with(|p| -> DynSmProcess<u64, u64> {
                    if p == 0 {
                        Box::new(Scribbler::new(vec![1, 2, 3, 4, 5]))
                    } else {
                        ProtocolE::boxed(5, 1, 7u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            let set = outcome.correct_decision_set();
            assert!(set.len() <= 2, "seed {seed}: {set:?}");
            for d in set {
                assert!(d == 7 || d == DEFAULT, "seed {seed}: decided {d}");
            }
        }
    }

    #[test]
    fn scribbler_cannot_break_protocol_f_sv2() {
        for seed in 0..20 {
            let outcome = SmSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(6, &[5]))
                .run_with(|p| -> DynSmProcess<u64, u64> {
                    if p == 5 {
                        Box::new(Scribbler::new(vec![100, 200, 300]))
                    } else {
                        ProtocolF::boxed(6, 1, 9u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![9], "seed {seed}");
        }
    }

    #[test]
    fn scribbler_writes_land_in_its_own_registers_only() {
        let outcome = SmSystem::new(3)
            .seed(4)
            .fault_plan(FaultPlan::byzantine(3, &[1]))
            .run_with(|p| -> DynSmProcess<u64, u64> {
                if p == 1 {
                    Box::new(Scribbler::on_slot(vec![13, 14], 2))
                } else {
                    ProtocolE::boxed(3, 1, 5u64, DEFAULT)
                }
            })
            .unwrap();
        // Slot 2 of process 1 holds a scribble (how many landed depends on
        // when the run ended); nobody else's registers were touched.
        let scribble = outcome.memory.get(&RegisterId::new(1, 2));
        assert!(scribble == Some(&13) || scribble == Some(&14));
        assert_eq!(outcome.memory.get(&RegisterId::new(0, 0)), Some(&5));
        assert_eq!(outcome.memory.get(&RegisterId::new(2, 0)), Some(&5));
    }

    #[test]
    #[should_panic(expected = "scribbler needs at least one value")]
    fn scribbler_rejects_empty_values() {
        let _ = Scribbler::<u64, u64>::new(vec![]);
    }
}
