//! PROTOCOL E (paper §4.1.2): write, scan once, unanimity-or-default.
//!
//! > Each process writes its own input into a single-writer register. The
//! > process then scans the registers of all other processes exactly once.
//! > If all the values it reads in this single scan (including its own) are
//! > identical, it decides that value, otherwise it decides `v0`.
//!
//! Solves `SC(k, t, RV2)` in SM/CR for **every** `t` once `k >= 2`
//! (Lemma 4.5), and `SC(k, t, WV2)` in SM/Byz (Lemma 4.10): let `v` be the
//! value of the first completed write (by a correct process); every scan
//! happens after the scanner's own write, hence after that first write, so
//! every scan *reads* `v` — making `v` and the default the only two
//! possible decisions.
//!
//! A register that was never written reads as `⊥`. `⊥` is the *absence* of
//! a value, not a value: the unanimity test applies to the written values
//! the scan found (the scanner's own register is always among them). This
//! reading is forced by the paper's validity argument — "if all of the
//! processes start with the same value `v`, then this is the only value
//! written and so the only possible decision value" — which would fail if
//! a scan racing a slow writer's `⊥` fell to the default.

use kset_core::Value;
use kset_shmem::{DynSmProcess, RegisterId, SmContext, SmProcess};
use kset_sim::{Fnv64, StateDigest};


/// Which phase of the (single) scan the process is in.
#[derive(Clone, Debug)]
enum Phase<V> {
    /// Waiting for the own-input write to be issued.
    Fresh,
    /// Collecting the single scan's `n` read responses.
    Scanning {
        /// Responses still outstanding.
        pending: usize,
        /// Running unanimity over *written* values: `None` until the first
        /// non-`⊥` response, `Some(None)` once mixed, `Some(Some(v))` while
        /// unanimous.
        so_far: Option<Option<V>>,
    },
}

/// One process of Protocol E.
///
/// ```
/// use kset_shmem::SmSystem;
/// use kset_protocols::ProtocolE;
///
/// // Works for ANY fault budget, here t = n - 1.
/// let outcome = SmSystem::new(4)
///     .seed(3)
///     .run_with(|_| ProtocolE::boxed(4, 3, 6u64, u64::MAX))?;
/// assert_eq!(outcome.correct_decision_set(), vec![6]);
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolE<V> {
    n: usize,
    input: V,
    default: V,
    phase: Phase<V>,
}

impl<V: Value> ProtocolE<V> {
    /// Creates the process with its input and the default decision `v0`.
    ///
    /// Protocol E has no `t`-dependent thresholds — that is exactly its
    /// point (Lemma 4.5 holds for *every* `t`, up to and including `n`).
    /// `t` is accepted for interface uniformity and only range-checked.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t > n`.
    pub fn new(n: usize, t: usize, input: V, default: V) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(t <= n, "t must be at most n");
        ProtocolE {
            n,
            input,
            default,
            phase: Phase::Fresh,
        }
    }

    /// Boxed form for [`kset_shmem::SmSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V, default: V) -> DynSmProcess<V, V>
    where
        V: StateDigest + 'static,
    {
        Box::new(Self::new(n, t, input, default))
    }
}

impl<V: Value + StateDigest + 'static> SmProcess for ProtocolE<V> {
    type Val = V;
    type Output = V;

    fn fork(&self) -> Option<DynSmProcess<V, V>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.input.digest_into(&mut h);
        self.default.digest_into(&mut h);
        match &self.phase {
            Phase::Fresh => h.write_u8(0),
            Phase::Scanning { pending, so_far } => {
                h.write_u8(1);
                h.write_usize(*pending);
                so_far.digest_into(&mut h);
            }
        }
        h.finish()
    }

    fn on_start(&mut self, ctx: &mut SmContext<'_, V, V>) {
        ctx.write(0, self.input.clone());
        // The write's linearization point is its invocation, so the scan
        // may be issued immediately — it will observe the write.
        self.phase = Phase::Scanning {
            pending: self.n,
            so_far: None,
        };
        ctx.read_all(0);
    }

    fn on_read(&mut self, _reg: RegisterId, value: Option<V>, ctx: &mut SmContext<'_, V, V>) {
        let Phase::Scanning { pending, so_far } = &mut self.phase else {
            return;
        };
        *pending -= 1;
        // ⊥ (an unwritten register) is skipped; only written values vote.
        if let Some(v) = value {
            *so_far = Some(match so_far.take() {
                None => Some(v),
                Some(None) => None,
                Some(Some(a)) => (a == v).then_some(a),
            });
        }
        if *pending == 0 && !ctx.has_decided() {
            let decision = match so_far.clone().flatten() {
                Some(v) => v,
                // Unreachable in practice: the scanner's own write precedes
                // its scan, so at least one written value was seen.
                None => self.default.clone(),
            };
            ctx.decide(decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_shmem::{SmOutcome, SmSystem};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    fn check(outcome: &SmOutcome<u64, u64>, inputs: Vec<u64>, k: usize, t: usize) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV2).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for seed in 0..20 {
            let outcome = SmSystem::new(5)
                .seed(seed)
                .run_with(|_| ProtocolE::boxed(5, 2, 8u64, DEFAULT))
                .unwrap();
            assert_eq!(outcome.correct_decision_set(), vec![8], "seed {seed}");
        }
    }

    #[test]
    fn at_most_two_values_even_with_maximal_failures() {
        // t = n - 1 — far beyond anything the message-passing protocols
        // tolerate; Protocol E still gives SC(2, t, RV2).
        for seed in 0..30 {
            let inputs: Vec<u64> = (0..6).map(|p| p as u64 % 3).collect();
            let outcome = SmSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(6, &[0, 2, 3, 4]))
                .run_with(|p| ProtocolE::boxed(6, 5, inputs[p], DEFAULT))
                .unwrap();
            assert!(outcome.terminated);
            check(&outcome, inputs, 2, 5);
            assert!(outcome.correct_decision_set().len() <= 2);
        }
    }

    #[test]
    fn mixed_inputs_decide_first_writer_or_default() {
        for seed in 0..40 {
            let inputs: Vec<u64> = (0..5).map(|p| p as u64).collect();
            let outcome = SmSystem::new(5)
                .seed(seed)
                .run_with(|p| ProtocolE::boxed(5, 1, inputs[p], DEFAULT))
                .unwrap();
            let set = outcome.correct_decision_set();
            assert!(set.len() <= 2, "seed {seed}: {set:?}");
            // All non-default decisions are a single input value.
            let nondefault: Vec<u64> = set.into_iter().filter(|&v| v != DEFAULT).collect();
            assert!(nondefault.len() <= 1, "seed {seed}: {nondefault:?}");
        }
    }

    #[test]
    fn unwritten_registers_do_not_break_unanimity() {
        // Process 1 never writes (crashed before starting). Its ⊥ is
        // skipped: the surviving processes agree on 4 and must decide 4 —
        // this is exactly the RV2 case that forces the ⊥-skipping reading.
        use kset_sim::FifoScheduler;
        let outcome = SmSystem::new(3)
            .scheduler(FifoScheduler::new())
            .fault_plan(FaultPlan::silent_crashes(3, &[1]))
            .run_with(|_| ProtocolE::boxed(3, 1, 4u64, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![4]);
    }

    #[test]
    fn genuine_value_clash_falls_to_default() {
        // Two live writers with different inputs under FIFO: every scan
        // sees both 4 and 5 and must fall to the default.
        use kset_sim::FifoScheduler;
        let outcome = SmSystem::new(3)
            .scheduler(FifoScheduler::new())
            .fault_plan(FaultPlan::silent_crashes(3, &[1]))
            .run_with(|p| ProtocolE::boxed(3, 1, if p == 0 { 4u64 } else { 5 }, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![DEFAULT]);
    }

    #[test]
    fn rv2_spec_holds_across_seeds_and_fault_patterns() {
        for seed in 0..25 {
            let inputs: Vec<u64> = (0..6).map(|p| (p as u64 * seed) % 2).collect();
            let faulty = [(seed % 6) as usize];
            let outcome = SmSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(6, &faulty))
                .run_with(|p| ProtocolE::boxed(6, 1, inputs[p], DEFAULT))
                .unwrap();
            check(&outcome, inputs, 2, 1);
        }
    }

    #[test]
    fn wv2_against_byzantine_writers() {
        // A Byzantine process may write garbage to its own register; in a
        // failure-free premise WV2 does not bind, but agreement (<= 2
        // values) must still hold because the first *correct* write is
        // read by everyone.
        struct Garbage;
        impl SmProcess for Garbage {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.write(0, 999);
                ctx.write(0, 777); // overwrite: registers are SWMR, own only
            }
            fn on_read(
                &mut self,
                _r: RegisterId,
                _v: Option<u64>,
                _c: &mut SmContext<'_, u64, u64>,
            ) {
            }
        }
        for seed in 0..20 {
            let outcome = SmSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(5, &[2]))
                .run_with(|p| {
                    if p == 2 {
                        Box::new(Garbage) as DynSmProcess<u64, u64>
                    } else {
                        ProtocolE::boxed(5, 1, 3u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated);
            assert!(outcome.correct_decision_set().len() <= 2, "seed {seed}");
        }
    }

    #[test]
    fn accepts_t_equals_n() {
        // The t = n column of the SM/CR RV2 panel is solvable (Lemma 4.5).
        let _ = ProtocolE::new(4, 4, 0u64, DEFAULT);
    }

    #[test]
    #[should_panic(expected = "t must be at most n")]
    fn rejects_t_above_n() {
        let _ = ProtocolE::new(4, 5, 0u64, DEFAULT);
    }
}
