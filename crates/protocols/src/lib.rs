//! # kset-protocols — every protocol of the paper, executable
//!
//! This crate implements the protocols of *"On k-Set Consensus Problems in
//! Asynchronous Systems"* against the `kset-net` (message passing) and
//! `kset-shmem` (shared memory) substrates:
//!
//! | Protocol | Model | Solves | Bound | Paper |
//! |---|---|---|---|---|
//! | [`FloodMin`] | MP/CR | `SC(k, RV1)` | `t < k` | Lemma 3.1 \[13\] |
//! | [`ProtocolA`] | MP/CR | `SC(k, RV2)` | `t < (k-1)n/k` | Lemma 3.7 |
//! | [`ProtocolA`] | MP/Byz | `SC(k, WV2)` | Lemmas 3.12 / 3.13 | §3.2.2 |
//! | [`ProtocolB`] | MP/CR | `SC(k, SV2)` | `t < (k-1)n/2k` | Lemma 3.8 |
//! | [`ProtocolC`] | MP/Byz | `SC(k, SV2)` | `t < (k-1)n/(2k+l-1)`, `t < ln/(2l+1)` | Lemma 3.15 |
//! | [`ProtocolD`] | MP/Byz | `SC(k, WV1)` | `k >= Z(n,t)` | Lemma 3.16 |
//! | [`ProtocolE`] | SM/CR | `SC(k, RV2)` | `k >= 2`, any `t` | Lemma 4.5 |
//! | [`ProtocolE`] | SM/Byz | `SC(k, WV2)` | `k >= 2`, any `t` | Lemma 4.10 |
//! | [`ProtocolF`] | SM/CR+Byz | `SC(k, SV2)` | `k > t+1` | Lemmas 4.7 / 4.12 |
//! | [`Simulated`] | MP → SM | transform | — | §4 SIMULATION |
//!
//! plus the [`echo::LEcho`] broadcast — the `l`-echo generalization of
//! Bracha–Toueg's echo broadcast (Lemma 3.14) that powers `ProtocolC`.
//!
//! All protocols are *one-shot*: construct one instance per process with
//! the system parameters `(n, t)`, the process's input, and (where the
//! paper uses one) the default decision value `v0`, then hand the boxed
//! instances to `MpSystem::run` / `SmSystem::run`.
//!
//! ```
//! use kset_net::MpSystem;
//! use kset_protocols::FloodMin;
//! use kset_sim::FaultPlan;
//!
//! // SC(3, 2, RV1) with n = 5: FloodMin tolerates t < k.
//! let (n, t) = (5, 2);
//! let outcome = MpSystem::new(n)
//!     .seed(42)
//!     .fault_plan(FaultPlan::silent_crashes(n, &[0, 4]))
//!     .run_with(|p| FloodMin::boxed(n, t, 100 + p as u64))?;
//! assert!(outcome.terminated);
//! assert!(outcome.correct_decision_set().len() <= t + 1);
//! # Ok::<(), kset_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

pub mod echo;
mod emulation;
mod flood_min;
mod protocol_a;
mod protocol_b;
mod protocol_c;
mod protocol_d;
mod protocol_e;
mod protocol_f;
mod simulation;
mod trivial;

pub use emulation::{AbdMsg, ByzEmulated, Emulated};
pub use flood_min::FloodMin;
pub use protocol_a::ProtocolA;
pub use protocol_b::ProtocolB;
pub use protocol_c::{CMsg, ProtocolC};
pub use protocol_d::{DMsg, DecisionRule, ProtocolD};
pub use protocol_e::ProtocolE;
pub use protocol_f::ProtocolF;
pub use simulation::{SimSlot, Simulated};
pub use trivial::{CollectAll, SelfDecide};

/// Checks the common preconditions shared by every protocol constructor.
///
/// # Panics
///
/// Panics if `n == 0` or `t >= n` (no protocol here can wait on an empty
/// quorum).
pub(crate) fn check_params(n: usize, t: usize) {
    assert!(n > 0, "n must be positive");
    assert!(
        t < n,
        "t must be smaller than n (quorums of n - t must be non-empty)"
    );
}
