//! Chaudhuri's k-set consensus protocol (Lemma 3.1, [13]).
//!
//! The classic one-shot asynchronous algorithm: broadcast the input, wait
//! for values from `n - t` processes (counting your own), decide the
//! minimum received.
//!
//! Why it solves `SC(k, t, RV1)` for `t < k`: a correct process misses at
//! most `t` of the `n` inputs, so the minimum it sees is among the `t + 1`
//! smallest inputs — at most `t + 1 <= k` distinct decisions. Every decision
//! is somebody's input, giving RV1.

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::{Fnv64, ProcessId, StateDigest};

use crate::check_params;

/// One process of Chaudhuri's protocol. Decides the minimum of the first
/// `n - t` inputs it receives.
///
/// ```
/// use kset_net::MpSystem;
/// use kset_protocols::FloodMin;
///
/// // SC(3, 2, RV1): at most t + 1 = 3 distinct decisions.
/// let outcome = MpSystem::new(5)
///     .seed(7)
///     .run_with(|p| FloodMin::boxed(5, 2, 10 + p as u64))?;
/// assert!(outcome.correct_decision_set().len() <= 3);
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FloodMin<V> {
    n: usize,
    t: usize,
    input: V,
    received: usize,
    best: Option<V>,
}

impl<V: Value> FloodMin<V> {
    /// Creates the process with system parameters `(n, t)` and its input.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, input: V) -> Self {
        check_params(n, t);
        FloodMin {
            n,
            t,
            input,
            received: 0,
            best: None,
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V) -> DynMpProcess<V, V>
    where
        V: StateDigest + 'static,
    {
        Box::new(Self::new(n, t, input))
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }
}

impl<V: Value + StateDigest + 'static> MpProcess for FloodMin<V> {
    type Msg = V;
    type Output = V;

    fn fork(&self) -> Option<DynMpProcess<V, V>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.input.digest_into(&mut h);
        h.write_usize(self.received);
        self.best.digest_into(&mut h);
        h.finish()
    }

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        ctx.broadcast(self.input.clone());
    }

    fn on_message(&mut self, _from: ProcessId, msg: V, ctx: &mut MpContext<'_, V, V>) {
        if ctx.has_decided() {
            return;
        }
        self.best = Some(match self.best.take() {
            Some(b) => b.min(msg),
            None => msg,
        });
        self.received += 1;
        if self.received >= self.quorum() {
            let v = self.best.clone().expect("quorum >= 1 values received");
            ctx.decide(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::MpSystem;
    use kset_sim::{FaultPlan, LifoScheduler};

    fn run(n: usize, t: usize, crashed: &[usize], seed: u64) -> kset_net::MpOutcome<u64> {
        MpSystem::new(n)
            .seed(seed)
            .fault_plan(FaultPlan::silent_crashes(n, crashed))
            .run_with(|p| FloodMin::boxed(n, t, 1000 + p as u64))
            .unwrap()
    }

    fn check_rv1(n: usize, k: usize, t: usize, outcome: &kset_net::MpOutcome<u64>) {
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV1).unwrap();
        let record = RunRecord::new((0..n).map(|p| 1000 + p as u64).collect())
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn failure_free_runs_satisfy_sc() {
        for seed in 0..20 {
            let outcome = run(6, 2, &[], seed);
            check_rv1(6, 3, 2, &outcome);
        }
    }

    #[test]
    fn runs_with_crashes_satisfy_sc() {
        for seed in 0..20 {
            let outcome = run(6, 2, &[1, 4], seed);
            check_rv1(6, 3, 2, &outcome);
        }
    }

    #[test]
    fn decision_count_is_at_most_t_plus_one() {
        for seed in 0..50 {
            let outcome = run(8, 3, &[0], seed);
            assert!(outcome.correct_decision_set().len() <= 4, "seed {seed}");
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let outcome = MpSystem::new(5)
            .seed(1)
            .run_with(|_| FloodMin::boxed(5, 2, 7u64))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec![7]);
    }

    #[test]
    fn lifo_schedule_still_terminates() {
        let outcome = MpSystem::new(5)
            .scheduler(LifoScheduler::new())
            .run_with(|p| FloodMin::boxed(5, 1, p as u64))
            .unwrap();
        assert!(outcome.terminated);
    }

    #[test]
    fn decisions_are_minima_of_received_sets() {
        // With no failures and t = 0 every process receives everything and
        // decides the global minimum.
        let outcome = MpSystem::new(4)
            .seed(9)
            .run_with(|p| FloodMin::boxed(4, 0, 50 - p as u64))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec![47]);
    }

    #[test]
    #[should_panic(expected = "t must be smaller than n")]
    fn rejects_t_equal_n() {
        let _ = FloodMin::new(3, 3, 0u64);
    }

    #[test]
    fn works_with_string_values() {
        let inputs = ["pear", "apple", "quince"];
        let outcome = MpSystem::new(3)
            .seed(3)
            .run_with(|p| FloodMin::boxed(3, 0, inputs[p].to_string()))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec!["apple".to_string()]);
    }
}
