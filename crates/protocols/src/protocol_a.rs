//! PROTOCOL A (paper §3.1.2): unanimity-or-default.
//!
//! > Each process broadcasts its input and waits for `n - t` messages. If
//! > all `n - t` messages contain the same value `v`, then the process
//! > decides `v`, else it decides a default value `v0`.
//!
//! * In MP/CR it solves `SC(k, t, RV2)` for `t < (k-1)n/k` (Lemma 3.7):
//!   `k` non-default decisions would need `k` disjoint groups of `n - t`
//!   senders, i.e. `k(n - t) > n` processes.
//! * In MP/Byz the same code solves `SC(k, t, WV2)` for
//!   `t < n/2, k >= (n-t)/(n-2t) + 1` (Lemma 3.12) and for
//!   `t >= n/2, k >= t + 1` (Lemma 3.13).

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::{Fnv64, ProcessId, StateDigest};

use crate::check_params;

/// One process of Protocol A.
///
/// ```
/// use kset_net::MpSystem;
/// use kset_protocols::ProtocolA;
///
/// // Unanimous inputs decide that value (RV2's binding case).
/// let outcome = MpSystem::new(4)
///     .seed(1)
///     .run_with(|_| ProtocolA::boxed(4, 1, 9u64, u64::MAX))?;
/// assert_eq!(outcome.correct_decision_set(), vec![9]);
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolA<V> {
    n: usize,
    t: usize,
    input: V,
    default: V,
    seen: Vec<V>,
}

impl<V: Value> ProtocolA<V> {
    /// Creates the process with system parameters `(n, t)`, its input, and
    /// the default decision `v0` used when the first `n - t` values are not
    /// unanimous.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, input: V, default: V) -> Self {
        check_params(n, t);
        ProtocolA {
            n,
            t,
            input,
            default,
            seen: Vec::new(),
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V, default: V) -> DynMpProcess<V, V>
    where
        V: StateDigest + 'static,
    {
        Box::new(Self::new(n, t, input, default))
    }
}

impl<V: Value + StateDigest + 'static> MpProcess for ProtocolA<V> {
    type Msg = V;
    type Output = V;

    fn fork(&self) -> Option<DynMpProcess<V, V>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.input.digest_into(&mut h);
        self.default.digest_into(&mut h);
        self.seen.digest_into(&mut h);
        h.finish()
    }

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        ctx.broadcast(self.input.clone());
    }

    fn on_message(&mut self, _from: ProcessId, msg: V, ctx: &mut MpContext<'_, V, V>) {
        if ctx.has_decided() {
            return;
        }
        self.seen.push(msg);
        if self.seen.len() == self.n - self.t {
            let first = &self.seen[0];
            let unanimous = self.seen.iter().all(|v| v == first);
            let decision = if unanimous {
                first.clone()
            } else {
                self.default.clone()
            };
            ctx.decide(decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::{MpOutcome, MpSystem};
    use kset_sim::{DelayRule, FaultPlan};

    const DEFAULT: u64 = u64::MAX;

    fn check(
        outcome: &MpOutcome<u64>,
        inputs: Vec<u64>,
        k: usize,
        t: usize,
        v: ValidityCondition,
    ) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, v).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let outcome = MpSystem::new(6)
            .seed(4)
            .fault_plan(FaultPlan::silent_crashes(6, &[5]))
            .run_with(|_| ProtocolA::boxed(6, 1, 3u64, DEFAULT))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec![3]);
    }

    #[test]
    fn mixed_inputs_yield_defaults_or_inputs_within_k() {
        // n = 6, t = 1: Protocol A solves RV2 for k with kt < (k-1)n,
        // i.e. k >= 2 (2*1 < 1*6). Run many seeds and check SC(2,1,RV2).
        for seed in 0..30 {
            let inputs: Vec<u64> = (0..6).map(|p| p as u64 % 2).collect();
            let outcome = MpSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(6, &[2]))
                .run_with(|p| ProtocolA::boxed(6, 1, inputs[p], DEFAULT))
                .unwrap();
            check(&outcome, inputs, 2, 1, ValidityCondition::RV2);
        }
    }

    #[test]
    fn agreement_bound_holds_across_random_inputs() {
        // n = 8, t = 3: bound needs k t < (k-1) n: k=2: 6 < 8 ok.
        for seed in 0..40 {
            let inputs: Vec<u64> = (0..8).map(|p| (p as u64 * seed) % 4).collect();
            let outcome = MpSystem::new(8)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(8, &[1, 2, 3]))
                .run_with(|p| ProtocolA::boxed(8, 3, inputs[p], DEFAULT))
                .unwrap();
            check(&outcome, inputs, 2, 3, ValidityCondition::RV2);
        }
    }

    #[test]
    fn partition_schedule_forces_multiple_unanimous_groups() {
        // Re-enactment of why the bound is tight (cf. Lemma 3.3's
        // construction): n = 4, t = 2, quorum = 2. Isolate {0,1} (both
        // with input 1) and {2,3} (both with input 2): each group reaches
        // its quorum internally and decides its own value unanimously.
        let inputs = [1u64, 1, 2, 2];
        let outcome = MpSystem::new(4)
            .seed(0)
            .delay_rule(DelayRule::isolate_until_decided(vec![0, 1]))
            .delay_rule(DelayRule::isolate_until_decided(vec![2, 3]))
            .run_with(|p| ProtocolA::boxed(4, 2, inputs[p], DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![1, 2]);
        // Two values decided: SC(2) is met here, but with three groups this
        // becomes the k+1 violation exhibited in kset-experiments.
    }

    #[test]
    fn default_decision_appears_when_quorum_is_mixed() {
        // Force every process to see both values: no delay rules, FIFO
        // delivery interleaves inputs 0 and 1 across the quorum of 4.
        let inputs = [0u64, 1, 0, 1];
        let outcome = MpSystem::new(4)
            .scheduler(kset_sim::FifoScheduler::new())
            .run_with(|p| ProtocolA::boxed(4, 0, inputs[p], DEFAULT))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec![DEFAULT]);
    }

    #[test]
    fn wv2_holds_in_failure_free_byzantine_free_runs() {
        for seed in 0..20 {
            let inputs: Vec<u64> = vec![9; 5];
            let outcome = MpSystem::new(5)
                .seed(seed)
                .run_with(|p| ProtocolA::boxed(5, 2, inputs[p], DEFAULT))
                .unwrap();
            check(&outcome, inputs, 3, 2, ValidityCondition::WV2);
        }
    }

    #[test]
    #[should_panic(expected = "t must be smaller than n")]
    fn rejects_degenerate_quorum() {
        let _ = ProtocolA::new(2, 2, 0u64, DEFAULT);
    }
}
