//! The `l`-echo broadcast (paper §3.2.2, Lemma 3.14) — a generalization of
//! Bracha and Toueg's echo broadcast (`l = 1`).
//!
//! To `l`-echo broadcast `m`, the sender sends `<init, s, m>` to everyone.
//! On the *first* `<init, s, m>` from `s`, a process sends `<echo, s, m>`
//! to everyone (and never echoes for `s` again). A process **accepts** `m`
//! as sent by `s` once it has received `<echo, s, m>` from *more than*
//! `(n + l t) / (l + 1)` distinct processes.
//!
//! Lemma 3.14: if `t < l n / (2l + 1)` then (1) correct processes accept at
//! most `l` different messages per sender, and (2) a correct sender's
//! message is accepted by every correct process.
//!
//! [`LEcho`] is a pure state machine over these rules, reusable by any
//! protocol: feed it incoming `init`/`echo` messages, forward the echoes it
//! asks you to send, and consume the acceptances it reports.

use std::collections::{BTreeMap, BTreeSet};

use kset_core::Value;
use kset_sim::ProcessId;

/// What the caller must do after feeding a message into [`LEcho`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EchoAction<V> {
    /// Broadcast `<echo, origin, value>` to every process.
    SendEcho {
        /// The original sender being echoed.
        origin: ProcessId,
        /// The value being echoed.
        value: V,
    },
    /// `value` is now accepted as broadcast by `origin`.
    Accept {
        /// The original sender.
        origin: ProcessId,
        /// The accepted value.
        value: V,
    },
}

/// Per-origin echo bookkeeping.
#[derive(Clone, Debug)]
struct OriginState<V> {
    /// The value we echoed for this origin, if any (at most one, ever).
    echoed: Option<V>,
    /// Echo senders per candidate value.
    echoes: BTreeMap<V, BTreeSet<ProcessId>>,
    /// Values accepted so far, in acceptance order.
    accepted: Vec<V>,
}

impl<V> Default for OriginState<V> {
    fn default() -> Self {
        OriginState {
            echoed: None,
            echoes: BTreeMap::new(),
            accepted: Vec::new(),
        }
    }
}

/// The `l`-echo broadcast state of one process.
///
/// Deterministic and side-effect free: all sends are returned as
/// [`EchoAction`]s for the caller to perform.
#[derive(Clone, Debug)]
pub struct LEcho<V> {
    n: usize,
    t: usize,
    l: usize,
    origins: BTreeMap<ProcessId, OriginState<V>>,
}

impl<V: Value> LEcho<V> {
    /// Creates the broadcast component for a system of `n` processes with
    /// at most `t` failures, with amplification parameter `l >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `l == 0`.
    pub fn new(n: usize, t: usize, l: usize) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(l >= 1, "l-echo requires l >= 1");
        LEcho {
            n,
            t,
            l,
            origins: BTreeMap::new(),
        }
    }

    /// The amplification parameter `l`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Minimum number of distinct echoes that *accepts* a value: the
    /// smallest integer strictly greater than `(n + l t) / (l + 1)`.
    pub fn acceptance_threshold(&self) -> usize {
        (self.n + self.l * self.t) / (self.l + 1) + 1
    }

    /// Whether the system parameters satisfy Lemma 3.14's premise
    /// `t < l n / (2l + 1)` under which the broadcast guarantees hold.
    pub fn parameters_sound(&self) -> bool {
        (2 * self.l + 1) * self.t < self.l * self.n
    }

    /// Handles `<init, origin, value>`. Returns the echo to broadcast on
    /// the first init from `origin`; later inits from the same origin are
    /// ignored per the protocol.
    pub fn on_init(&mut self, origin: ProcessId, value: V) -> Option<EchoAction<V>> {
        let st = self.origins.entry(origin).or_default();
        if st.echoed.is_some() {
            return None;
        }
        st.echoed = Some(value.clone());
        Some(EchoAction::SendEcho { origin, value })
    }

    /// Handles `<echo, origin, value>` received from `from`. Returns an
    /// acceptance the first time `value` crosses the threshold for
    /// `origin`. Duplicate echoes from the same process are ignored.
    pub fn on_echo(
        &mut self,
        from: ProcessId,
        origin: ProcessId,
        value: V,
    ) -> Option<EchoAction<V>> {
        let threshold = self.acceptance_threshold();
        let st = self.origins.entry(origin).or_default();
        if st.accepted.contains(&value) {
            return None;
        }
        let senders = st.echoes.entry(value.clone()).or_default();
        if !senders.insert(from) {
            return None;
        }
        if senders.len() >= threshold {
            st.accepted.push(value.clone());
            return Some(EchoAction::Accept { origin, value });
        }
        None
    }

    /// Values accepted from `origin`, in acceptance order.
    pub fn accepted(&self, origin: ProcessId) -> &[V] {
        self.origins
            .get(&origin)
            .map(|s| s.accepted.as_slice())
            .unwrap_or(&[])
    }

    /// The first value accepted from `origin`, if any.
    pub fn first_accepted(&self, origin: ProcessId) -> Option<&V> {
        self.accepted(origin).first()
    }

    /// Number of origins with at least one accepted value.
    pub fn origins_accepted(&self) -> usize {
        self.origins
            .values()
            .filter(|s| !s.accepted.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_strictly_more_than_the_bound() {
        // n = 10, t = 2, l = 1: (10 + 2)/2 = 6, accept needs >= 7.
        let e: LEcho<u8> = LEcho::new(10, 2, 1);
        assert_eq!(e.acceptance_threshold(), 7);
        // n = 10, t = 2, l = 2: (10 + 4)/3 = 4 (floor 4.67 = 4) -> 5.
        let e: LEcho<u8> = LEcho::new(10, 2, 2);
        assert_eq!(e.acceptance_threshold(), 5);
        // Exactness: n = 9, t = 3, l = 1: (9+3)/2 = 6 -> 7.
        let e: LEcho<u8> = LEcho::new(9, 3, 1);
        assert_eq!(e.acceptance_threshold(), 7);
    }

    #[test]
    fn parameters_soundness_matches_lemma_3_14() {
        assert!(LEcho::<u8>::new(10, 3, 1).parameters_sound()); // 3 < 10/3? 9 < 10
        assert!(!LEcho::<u8>::new(9, 3, 1).parameters_sound()); // 9 !< 9
        assert!(LEcho::<u8>::new(10, 3, 2).parameters_sound()); // 15 < 20
    }

    #[test]
    fn first_init_echoes_later_inits_ignored() {
        let mut e: LEcho<u8> = LEcho::new(4, 1, 1);
        assert_eq!(
            e.on_init(2, 7),
            Some(EchoAction::SendEcho { origin: 2, value: 7 })
        );
        // A Byzantine origin sending a different init later gets nothing.
        assert_eq!(e.on_init(2, 8), None);
        assert_eq!(e.on_init(2, 7), None);
    }

    #[test]
    fn acceptance_fires_exactly_once_at_threshold() {
        let mut e: LEcho<u8> = LEcho::new(4, 1, 1);
        // Threshold: (4 + 1)/2 = 2 -> 3 echoes needed.
        assert_eq!(e.on_echo(0, 3, 9), None);
        assert_eq!(e.on_echo(1, 3, 9), None);
        assert_eq!(
            e.on_echo(2, 3, 9),
            Some(EchoAction::Accept { origin: 3, value: 9 })
        );
        // Further echoes do not re-accept.
        assert_eq!(e.on_echo(3, 3, 9), None);
        assert_eq!(e.accepted(3), &[9]);
        assert_eq!(e.first_accepted(3), Some(&9));
        assert_eq!(e.origins_accepted(), 1);
    }

    #[test]
    fn duplicate_echoes_from_one_process_count_once() {
        let mut e: LEcho<u8> = LEcho::new(4, 1, 1);
        assert_eq!(e.on_echo(0, 3, 9), None);
        assert_eq!(e.on_echo(0, 3, 9), None);
        assert_eq!(e.on_echo(0, 3, 9), None);
        assert_eq!(e.accepted(3), &[] as &[u8]);
    }

    #[test]
    fn at_most_l_values_acceptable_with_honest_echoers() {
        // Directly verify the counting at the heart of Lemma 3.14 for
        // l = 2, n = 10, t = 2 (sound: 5*2 = 10 < 20): threshold 5.
        // Split 10 echoers into two camps of 5 — two values accepted.
        let mut e: LEcho<u8> = LEcho::new(10, 2, 2);
        for p in 0..5 {
            e.on_echo(p, 9, 1);
        }
        for p in 5..10 {
            e.on_echo(p, 9, 2);
        }
        assert_eq!(e.accepted(9), &[1, 2]);
        // A third value cannot reach 5 echoes with the remaining 0 honest
        // processes; even all-new echoes from the 2 faulty ones fall short.
        e.on_echo(0, 9, 3);
        e.on_echo(1, 9, 3);
        assert_eq!(e.accepted(9).len(), 2);
    }

    #[test]
    fn l1_with_sound_parameters_accepts_a_single_value() {
        // l = 1, n = 10, t = 3 (sound): threshold 7. Two disjoint camps of
        // 7 would need 14 > 10 processes: only one value can ever make it.
        let mut e: LEcho<u8> = LEcho::new(10, 3, 1);
        for p in 0..7 {
            e.on_echo(p, 0, 1);
        }
        assert_eq!(e.accepted(0), &[1]);
        // The other camp can muster at most 3 fresh echoes (the faulty
        // ones double-voting) plus the 3 remaining correct = 6 < 7.
        for p in 7..10 {
            e.on_echo(p, 0, 2);
        }
        for p in 0..3 {
            e.on_echo(p, 0, 2); // faulty double votes
        }
        assert_eq!(e.accepted(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "l-echo requires l >= 1")]
    fn rejects_l_zero() {
        let _ = LEcho::<u8>::new(4, 1, 0);
    }
}
