//! The trivial fringe protocols (paper §2).
//!
//! The paper dismisses two corners of the parameter space before the
//! analysis starts, and both deserve runnable witnesses:
//!
//! * `k = n`: *"each process decides its own value"* — [`SelfDecide`]
//!   solves `SC(n, t, SV1)` for **any** `t`, even Byzantine, because a
//!   correct process's own input is trivially a correct process's input.
//! * `t = 0`: with no failures a process may wait for everybody —
//!   [`CollectAll`] gathers all `n` inputs and decides the minimum,
//!   giving a single decision that satisfies SV1 (and hence everything).

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::ProcessId;

/// Decides its own input immediately: the `k = n` fringe protocol.
#[derive(Clone, Debug)]
pub struct SelfDecide<V> {
    input: V,
}

impl<V: Value> SelfDecide<V> {
    /// Creates the process with its input.
    pub fn new(input: V) -> Self {
        SelfDecide { input }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(input: V) -> DynMpProcess<V, V>
    where
        V: 'static,
    {
        Box::new(Self::new(input))
    }
}

impl<V: Value> MpProcess for SelfDecide<V> {
    type Msg = V;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        ctx.decide(self.input.clone());
    }

    fn on_message(&mut self, _from: ProcessId, _msg: V, _ctx: &mut MpContext<'_, V, V>) {}
}

/// Waits for all `n` inputs and decides the minimum: the `t = 0` fringe
/// protocol (FloodMin with a full quorum).
///
/// With any actual failure this loses termination — which is exactly the
/// observation that opens the paper's impossibility arguments ("a process
/// must be able to decide after communicating with at most `n - t`
/// processes").
#[derive(Clone, Debug)]
pub struct CollectAll<V> {
    n: usize,
    input: V,
    seen: Vec<V>,
}

impl<V: Value> CollectAll<V> {
    /// Creates the process for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, input: V) -> Self {
        assert!(n > 0, "n must be positive");
        CollectAll {
            n,
            input,
            seen: Vec::new(),
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, input: V) -> DynMpProcess<V, V>
    where
        V: 'static,
    {
        Box::new(Self::new(n, input))
    }
}

impl<V: Value> MpProcess for CollectAll<V> {
    type Msg = V;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        ctx.broadcast(self.input.clone());
    }

    fn on_message(&mut self, _from: ProcessId, msg: V, ctx: &mut MpContext<'_, V, V>) {
        if ctx.has_decided() {
            return;
        }
        self.seen.push(msg);
        if self.seen.len() == self.n {
            ctx.decide(self.seen.iter().min().expect("n >= 1").clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::MpSystem;
    use kset_sim::FaultPlan;

    #[test]
    fn self_decide_solves_sc_n_even_with_maximal_byzantine_budget() {
        let n = 5;
        let inputs: Vec<u64> = (0..n as u64).collect();
        let outcome = MpSystem::new(n)
            .seed(1)
            .run_with(|p| SelfDecide::boxed(inputs[p]))
            .unwrap();
        assert!(outcome.terminated);
        let spec = ProblemSpec::new(n, n, n, ValidityCondition::SV1).unwrap();
        let record = RunRecord::new(inputs)
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        assert!(spec.check(&record).is_ok());
    }

    #[test]
    fn collect_all_yields_one_sv1_decision_without_failures() {
        let n = 6;
        let inputs: Vec<u64> = vec![9, 3, 7, 5, 3, 8];
        for seed in 0..10 {
            let outcome = MpSystem::new(n)
                .seed(seed)
                .run_with(|p| CollectAll::boxed(n, inputs[p]))
                .unwrap();
            assert!(outcome.terminated);
            assert_eq!(outcome.correct_decision_set(), vec![3]);
            let spec = ProblemSpec::new(n, 2, 0, ValidityCondition::SV1).unwrap();
            let record = RunRecord::new(inputs.clone())
                .with_decisions(outcome.decisions.clone())
                .with_terminated(outcome.terminated);
            assert!(spec.check(&record).is_ok());
        }
    }

    #[test]
    fn collect_all_loses_termination_under_a_single_crash() {
        // The observation behind every n - t quorum in the paper.
        let n = 4;
        let outcome = MpSystem::new(n)
            .seed(2)
            .fault_plan(FaultPlan::silent_crashes(n, &[3]))
            .run_with(|p| CollectAll::boxed(n, p as u64))
            .unwrap();
        assert!(!outcome.terminated);
        assert!(outcome.decisions.is_empty());
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn collect_all_rejects_empty_system() {
        let _ = CollectAll::new(0, 0u64);
    }
}
