//! PROTOCOL F (paper §4.1.2): repeated scans with support counting;
//! solves `SC(k, t, SV2)` for `k > t + 1` in SM/CR (Lemma 4.7) and SM/Byz
//! (Lemma 4.12).
//!
//! > Each process writes its own input into a single-writer register. The
//! > process then scans the registers of all other processes repeatedly,
//! > until in a single scan of all registers it successfully reads from
//! > some `r >= n - t` process' registers. If `r <= t` (possible if
//! > `n <= 2t`), then the process decides on its own input. Otherwise,
//! > i.e., if `r = t + i` for some `i >= 1`, then it decides its own input
//! > if at least `i` registers of these `r` (including its own) hold its
//! > input value, and a default value `v0` otherwise.
//!
//! "Successfully reads" means the register has been written (`⊥` reads are
//! unsuccessful). The agreement intuition: once `t + 1` writes have
//! completed, a scan of `r = t + i` successful registers deciding `v`
//! needs `i` copies of `v`, which pins `v` to one of the first `t + 1`
//! written values — at most `t + 2` decisions including the default.

use kset_core::Value;
use kset_shmem::{DynSmProcess, RegisterId, SmContext, SmProcess};
use kset_sim::{Fnv64, StateDigest};

use crate::check_params;

/// One process of Protocol F.
///
/// ```
/// use kset_shmem::SmSystem;
/// use kset_protocols::ProtocolF;
///
/// // SC(k, t, SV2) with k > t + 1: unanimous correct inputs win.
/// let outcome = SmSystem::new(5)
///     .seed(4)
///     .run_with(|_| ProtocolF::boxed(5, 1, 8u64, u64::MAX))?;
/// assert_eq!(outcome.correct_decision_set(), vec![8]);
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolF<V> {
    n: usize,
    t: usize,
    input: V,
    default: V,
    /// Responses outstanding in the current scan.
    pending: usize,
    /// Successfully-read values of the current scan.
    scan: Vec<V>,
}

impl<V: Value> ProtocolF<V> {
    /// Creates the process with system parameters `(n, t)`, its input, and
    /// the default decision `v0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, input: V, default: V) -> Self {
        check_params(n, t);
        ProtocolF {
            n,
            t,
            input,
            default,
            pending: 0,
            scan: Vec::new(),
        }
    }

    /// Boxed form for [`kset_shmem::SmSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V, default: V) -> DynSmProcess<V, V>
    where
        V: StateDigest + 'static,
    {
        Box::new(Self::new(n, t, input, default))
    }

    fn start_scan(&mut self, ctx: &mut SmContext<'_, V, V>) {
        self.pending = self.n;
        self.scan.clear();
        ctx.read_all(0);
    }

    fn finish_scan(&mut self, ctx: &mut SmContext<'_, V, V>) {
        let r = self.scan.len();
        if r < self.n - self.t {
            self.start_scan(ctx);
            return;
        }
        let decision = if r <= self.t {
            self.input.clone()
        } else {
            // r = t + i, i >= 1: own input needs support of at least i.
            let i = r - self.t;
            let support = self.scan.iter().filter(|v| **v == self.input).count();
            if support >= i {
                self.input.clone()
            } else {
                self.default.clone()
            }
        };
        ctx.decide(decision);
    }
}

impl<V: Value + StateDigest + 'static> SmProcess for ProtocolF<V> {
    type Val = V;
    type Output = V;

    fn fork(&self) -> Option<DynSmProcess<V, V>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.input.digest_into(&mut h);
        self.default.digest_into(&mut h);
        h.write_usize(self.pending);
        self.scan.digest_into(&mut h);
        h.finish()
    }

    fn on_start(&mut self, ctx: &mut SmContext<'_, V, V>) {
        ctx.write(0, self.input.clone());
        self.start_scan(ctx);
    }

    fn on_read(&mut self, _reg: RegisterId, value: Option<V>, ctx: &mut SmContext<'_, V, V>) {
        if ctx.has_decided() {
            return;
        }
        if let Some(v) = value {
            self.scan.push(v);
        }
        self.pending -= 1;
        if self.pending == 0 {
            self.finish_scan(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_shmem::{SmOutcome, SmSystem};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    fn check_sv2(outcome: &SmOutcome<u64, u64>, inputs: Vec<u64>, k: usize, t: usize) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn unanimous_correct_inputs_force_the_value() {
        // n = 6, t = 2, k = 4 > t + 1. Crashed processes had other inputs.
        let inputs = [7u64, 7, 7, 7, 1, 2];
        for seed in 0..30 {
            let outcome = SmSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(6, &[4, 5]))
                .run_with(|p| ProtocolF::boxed(6, 2, inputs[p], DEFAULT))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![7], "seed {seed}");
            check_sv2(&outcome, inputs.to_vec(), 4, 2);
        }
    }

    #[test]
    fn agreement_is_at_most_t_plus_2() {
        for seed in 0..50 {
            let inputs: Vec<u64> = (0..7).map(|p| p as u64).collect();
            let outcome = SmSystem::new(7)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(7, &[3]))
                .run_with(|p| ProtocolF::boxed(7, 1, inputs[p], DEFAULT))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert!(
                outcome.correct_decision_set().len() <= 3, // t + 2 = 3
                "seed {seed}: {:?}",
                outcome.correct_decision_set()
            );
            check_sv2(&outcome, inputs, 3, 1);
        }
    }

    #[test]
    fn decisions_are_own_input_or_default() {
        for seed in 0..20 {
            let inputs: Vec<u64> = (0..5).map(|p| 10 * p as u64).collect();
            let outcome = SmSystem::new(5)
                .seed(seed)
                .run_with(|p| ProtocolF::boxed(5, 1, inputs[p], DEFAULT))
                .unwrap();
            for (&p, &d) in &outcome.decisions {
                assert!(d == inputs[p] || d == DEFAULT, "p{p} decided {d}");
            }
        }
    }

    #[test]
    fn majority_crash_regime_still_terminates() {
        // n = 5, t = 3 (n <= 2t): quorums of n - t = 2; the r <= t branch
        // becomes reachable. k = 5 is out of the atlas domain but the
        // protocol still runs; with k > t + 1 = 4 within domain use n = 7.
        for seed in 0..25 {
            let inputs: Vec<u64> = (0..7).map(|p| p as u64 % 2).collect();
            let outcome = SmSystem::new(7)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(7, &[0, 1, 2, 3]))
                .run_with(|p| ProtocolF::boxed(7, 4, inputs[p], DEFAULT))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            check_sv2(&outcome, inputs, 6, 4);
        }
    }

    #[test]
    fn rescans_until_enough_registers_are_written() {
        // Freeze process 1's events until 0 and 2 decided — impossible
        // here, so instead: hold 1's start behind 0's decision. Process 0
        // needs n - t = 2 successful reads; its own plus process 2's.
        use kset_sim::{DelayRule, Until};
        let outcome = SmSystem::new(3)
            .seed(4)
            .delay_rule(DelayRule::freeze_process(1, Until::AllDecided(vec![0, 2])))
            .run_with(|_| ProtocolF::boxed(3, 1, 5u64, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![5]);
    }

    #[test]
    fn byzantine_writer_cannot_break_sv2() {
        // Byzantine process 4 writes a bogus value; all correct share 9.
        struct Bogus;
        impl SmProcess for Bogus {
            type Val = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut SmContext<'_, u64, u64>) {
                ctx.write(0, 123456);
            }
            fn on_read(
                &mut self,
                _r: RegisterId,
                _v: Option<u64>,
                _c: &mut SmContext<'_, u64, u64>,
            ) {
            }
        }
        for seed in 0..25 {
            let outcome = SmSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(6, &[4]))
                .run_with(|p| {
                    if p == 4 {
                        Box::new(Bogus) as DynSmProcess<u64, u64>
                    } else {
                        ProtocolF::boxed(6, 1, 9u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![9], "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "t must be smaller than n")]
    fn rejects_bad_params() {
        let _ = ProtocolF::new(2, 2, 0u64, DEFAULT);
    }
}
