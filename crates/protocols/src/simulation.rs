//! SIMULATION (paper §4): compile any message-passing protocol into a
//! shared-memory protocol.
//!
//! > Whenever protocol X prescribes that `p` send its `i`th message `m` to
//! > process `q`, `p` writes `m` to a single-writer single-reader register
//! > designated for `p`'s `i`th message to `q`; `q` repeatedly reads the
//! > register until it reads a value there.
//!
//! [`Simulated<P>`] wraps an [`MpProcess`] `P` and implements
//! [`SmProcess`]: each send by the inner protocol becomes a write to the
//! next register in the per-recipient channel `(p → q)`, and every process
//! continuously polls the head of each incoming channel, delivering values
//! as they appear. Registers are single-writer by construction (each
//! process writes only its own), and the designated-reader discipline is
//! preserved because `slot = seq * n + recipient` partitions each writer's
//! register space by recipient.
//!
//! Polling is the honest price of the transformation — the paper's `q`
//! "repeatedly reads the register until it reads a value there". A read
//! that comes back `⊥` is simply reissued; the kernel's schedulers
//! guarantee the pending write fires eventually. Polling continues after
//! the inner protocol decides so that echo-style protocols keep helping
//! slower processes, exactly as the paper's §5 termination remark
//! describes.
//!
//! This is the transform behind Lemmas 4.4 (FloodMin), 4.6 (Protocol B),
//! 4.11 (Protocol C(l)) and 4.13 (Protocol D).

use kset_core::Value;
use kset_net::{MpContext, MpProcess, RawAction};
use kset_shmem::{DynSmProcess, RegisterId, SmContext, SmProcess};
use kset_sim::ProcessId;

/// One simulated channel message, as stored in a register.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SimSlot<M> {
    /// The designated reader of this register.
    pub to: ProcessId,
    /// The message.
    pub msg: M,
}

/// Shared-memory wrapper executing a message-passing protocol via the
/// SIMULATION transform.
pub struct Simulated<P: MpProcess> {
    inner: P,
    n: usize,
    /// Per-recipient outgoing sequence numbers: `next_seq[q]` is the index
    /// of our next message to `q` ("p's i-th message to q").
    next_seq: Vec<usize>,
    /// Per-sender incoming cursor: the sequence number we poll next.
    cursors: Vec<usize>,
    /// Our process id, learned at `on_start`.
    me: Option<ProcessId>,
}

impl<P: MpProcess> std::fmt::Debug for Simulated<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulated")
            .field("n", &self.n)
            .field("next_seq", &self.next_seq)
            .field("cursors", &self.cursors)
            .finish()
    }
}

impl<P: MpProcess> Simulated<P> {
    /// Wraps `inner` for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, inner: P) -> Self {
        assert!(n > 0, "n must be positive");
        Simulated {
            inner,
            n,
            next_seq: vec![0; n],
            cursors: vec![0; n],
            me: None,
        }
    }

    /// Boxed form for [`kset_shmem::SmSystem::run_with`].
    pub fn boxed(n: usize, inner: P) -> DynSmProcess<SimSlot<P::Msg>, P::Output>
    where
        P: 'static,
        P::Msg: Value,
        P::Output: 'static,
    {
        Box::new(Self::new(n, inner))
    }

    /// The register of `sender`'s message with sequence number `seq`
    /// designated for `recipient`.
    fn slot_for(&self, recipient: ProcessId, seq: usize) -> usize {
        seq * self.n + recipient
    }

    /// Polls the head register of the channel `sender -> me`.
    fn poll(&self, sender: ProcessId, ctx: &mut SmContext<'_, SimSlot<P::Msg>, P::Output>)
    where
        P::Msg: Clone,
    {
        let me = self.me.expect("poll after start");
        let slot = self.slot_for(me, self.cursors[sender]);
        ctx.read(RegisterId::new(sender, slot));
    }

    /// Runs an inner-protocol callback, translating its buffered effects
    /// into register writes / decisions.
    fn drive(
        &mut self,
        ctx: &mut SmContext<'_, SimSlot<P::Msg>, P::Output>,
        f: impl FnOnce(&mut P, &mut MpContext<'_, P::Msg, P::Output>),
    ) where
        P::Msg: Clone,
    {
        let me = self.me.expect("drive after start");
        let mut buf = Vec::new();
        {
            let mut mp_ctx = MpContext::new(me, self.n, ctx.now(), ctx.has_decided(), &mut buf);
            f(&mut self.inner, &mut mp_ctx);
        }
        for action in buf {
            match action {
                RawAction::Send(to, msg) => {
                    let slot = self.slot_for(to, self.next_seq[to]);
                    self.next_seq[to] += 1;
                    ctx.write(slot, SimSlot { to, msg });
                }
                RawAction::Decide(v) => ctx.decide(v),
                RawAction::ScheduleStep => ctx.schedule_step(),
            }
        }
    }
}

impl<P: MpProcess> SmProcess for Simulated<P>
where
    P::Msg: Value,
{
    type Val = SimSlot<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut SmContext<'_, SimSlot<P::Msg>, P::Output>) {
        self.me = Some(ctx.me());
        self.drive(ctx, |p, mp_ctx| p.on_start(mp_ctx));
        // Open a poll on every incoming channel (including self-sends).
        for sender in 0..self.n {
            self.poll(sender, ctx);
        }
    }

    fn on_read(
        &mut self,
        reg: RegisterId,
        value: Option<SimSlot<P::Msg>>,
        ctx: &mut SmContext<'_, SimSlot<P::Msg>, P::Output>,
    ) {
        let me = self.me.expect("read response before start");
        let sender = reg.owner;
        let expected = self.slot_for(me, self.cursors[sender]);
        if reg.slot != expected {
            // A response from an outdated poll (cursor already advanced by
            // a racing read of the same register): ignore it, the live
            // poll is still in flight.
            return;
        }
        match value {
            Some(slot_value) => {
                // The writer labelled this register with its designated
                // reader; the labelling is part of the register layout, so
                // a mismatch can only come from a Byzantine writer abusing
                // its own register space — drop it and move on.
                self.cursors[sender] += 1;
                if slot_value.to == me {
                    self.drive(ctx, |p, mp_ctx| p.on_message(sender, slot_value.msg, mp_ctx));
                }
                self.poll(sender, ctx);
            }
            None => {
                // Not written yet: poll again (the paper's "repeatedly
                // reads the register until it reads a value there").
                self.poll(sender, ctx);
            }
        }
    }

    fn on_step(&mut self, ctx: &mut SmContext<'_, SimSlot<P::Msg>, P::Output>) {
        self.drive(ctx, |p, mp_ctx| p.on_step(mp_ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FloodMin, ProtocolA, ProtocolB};
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_shmem::SmSystem;
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    #[test]
    fn simulated_floodmin_solves_rv1_in_shared_memory() {
        // Lemma 4.4: SIMULATION of Chaudhuri's protocol, SC(k, t<k, RV1).
        let (n, t, k) = (5, 2, 3);
        for seed in 0..10 {
            let inputs: Vec<u64> = (0..n).map(|p| 100 + p as u64).collect();
            let outcome = SmSystem::new(n)
                .seed(seed)
                .event_limit(5_000_000)
                .fault_plan(FaultPlan::silent_crashes(n, &[1, 3]))
                .run_with(|p| Simulated::boxed(n, FloodMin::new(n, t, inputs[p])))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            let spec = ProblemSpec::new(n, k, t, ValidityCondition::RV1).unwrap();
            let record = RunRecord::new(inputs)
                .with_faulty(outcome.faulty.iter().copied())
                .with_decisions(outcome.decisions.clone())
                .with_terminated(outcome.terminated);
            let report = spec.check(&record);
            assert!(report.is_ok(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn simulated_protocol_a_matches_its_mp_guarantees() {
        // Lemma 4.5 uses Protocol E natively, but SIM(A) also gives RV2
        // within A's bound. n = 4, t = 1, k = 2: 2*1 < 1*4.
        for seed in 0..10 {
            let inputs = [3u64, 3, 3, 9];
            let outcome = SmSystem::new(4)
                .seed(seed)
                .event_limit(5_000_000)
                .fault_plan(FaultPlan::silent_crashes(4, &[3]))
                .run_with(|p| Simulated::boxed(4, ProtocolA::new(4, 1, inputs[p], DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![3], "seed {seed}");
        }
    }

    #[test]
    fn simulated_protocol_b_gives_sv2_in_shared_memory() {
        // Lemma 4.6: SIMULATION of Protocol B. n = 8, t = 1, k = 2.
        for seed in 0..8 {
            let inputs = [5u64; 8];
            let outcome = SmSystem::new(8)
                .seed(seed)
                .event_limit(5_000_000)
                .fault_plan(FaultPlan::silent_crashes(8, &[0]))
                .run_with(|p| Simulated::boxed(8, ProtocolB::new(8, 1, inputs[p], DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![5], "seed {seed}");
        }
    }

    #[test]
    fn register_layout_partitions_by_recipient() {
        let sim = Simulated::new(4, FloodMin::new(4, 1, 0u64));
        // Writer's slots: seq 0 to recipient 2 -> slot 2; seq 1 to 0 -> 4.
        assert_eq!(sim.slot_for(2, 0), 2);
        assert_eq!(sim.slot_for(0, 1), 4);
        assert_eq!(sim.slot_for(3, 2), 11);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            SmSystem::new(3)
                .seed(seed)
                .event_limit(5_000_000)
                .run_with(|p| Simulated::boxed(3, FloodMin::new(3, 1, p as u64)))
                .unwrap()
                .into_run()
                .decisions
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn rejects_empty_system() {
        let _ = Simulated::new(0, FloodMin::new(1, 0, 0u64));
    }
}
