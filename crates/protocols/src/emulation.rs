//! EMULATION: run a shared-memory protocol over message passing, with
//! registers emulated by majority replication — the reverse of the
//! SIMULATION transform, and the construction behind the paper's remark
//! that its shared-memory model "is motivated by many recent middleware
//! systems that provide shared memory emulation using replication".
//!
//! The emulation is the classic ABD algorithm of Attiya, Bar-Noy & Dolev
//! (the paper's reference [4]), specialized to SWMR registers:
//!
//! * every process keeps a replica `(timestamp, value)` of every register;
//! * **write** (only by the owner): bump the register's timestamp, send
//!   `Store` to everyone, complete after `n - t` acks;
//! * **read**: query everyone, take the highest-timestamped of `n - t`
//!   replies, *write it back* (`Store` again) and complete after `n - t`
//!   write-back acks — the write-back is what makes reads atomic rather
//!   than merely regular.
//!
//! [`Emulated`] is correct for crash failures with `t < n/2` (two quorums
//! of `n - t` intersect in a correct process). This is strictly weaker
//! than native shared memory — Protocol E over ABD needs `t < n/2`, while
//! over real registers it tolerates any `t` — which is exactly the
//! paper's point about the models' relative power.
//!
//! [`ByzEmulated`] is the Byzantine-tolerant counterpart using
//! Malkhi–Reiter **masking quorums** (`n > 4t`), providing regular
//! registers against lying replicas — the construction behind the
//! Phalanx-style middleware the paper cites as motivation for its
//! shared-memory Byzantine model.

use std::collections::{BTreeMap, VecDeque};

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_shmem::{RawSmAction, RegisterId, SmContext, SmProcess};
use kset_sim::ProcessId;

use crate::check_params;

/// A timestamped register replica.
type Stamped<V> = (u64, V);

/// Wire messages of the ABD register emulation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AbdMsg<V> {
    /// Store `value` for `reg` at `ts` (a write, or a read's write-back);
    /// `tag` identifies the requester's pending operation.
    Store {
        /// Register being stored.
        reg: RegisterId,
        /// Writer-assigned timestamp.
        ts: u64,
        /// The value.
        value: V,
        /// Operation tag for the ack.
        tag: u64,
    },
    /// Acknowledges a `Store`.
    StoreAck {
        /// Echoed operation tag.
        tag: u64,
    },
    /// Asks for the replica of `reg`.
    Query {
        /// Register being queried.
        reg: RegisterId,
        /// Operation tag for the reply.
        tag: u64,
    },
    /// Replies with the local replica (or `None` if never stored).
    QueryReply {
        /// Echoed operation tag.
        tag: u64,
        /// The replier's replica of the register.
        latest: Option<(u64, V)>,
    },
}

/// A pending emulated operation.
#[derive(Clone, Debug)]
enum Op<V> {
    /// Owner write: counting store acks; completes into `on_write_ack`.
    Write {
        slot: usize,
        acks: usize,
    },
    /// Read phase 1: collecting query replies.
    ReadQuery {
        reg: RegisterId,
        replies: usize,
        best: Option<Stamped<V>>,
    },
    /// Read phase 2: counting write-back acks; completes into `on_read`.
    ReadWriteBack {
        reg: RegisterId,
        result: Option<Stamped<V>>,
        acks: usize,
    },
}

/// Message-passing wrapper executing a shared-memory protocol over
/// ABD-emulated registers.
pub struct Emulated<P: SmProcess> {
    inner: P,
    n: usize,
    t: usize,
    me: Option<ProcessId>,
    /// Local replicas of all registers.
    replicas: BTreeMap<RegisterId, Stamped<P::Val>>,
    /// Own write timestamps per slot.
    write_ts: BTreeMap<usize, u64>,
    /// In-flight operations by tag (at most one, plus its write-back).
    ops: BTreeMap<u64, Op<P::Val>>,
    /// Register operations waiting their turn: the emulation executes one
    /// operation at a time per process, in issue order. ABD's atomicity
    /// argument — and Protocol E's "my write completes before my scan" —
    /// presumes sequential processes; pipelining would let a read
    /// linearize before the write issued just before it.
    queue: VecDeque<RawSmAction<P::Val, P::Output>>,
    busy: bool,
    next_tag: u64,
}

impl<P: SmProcess> std::fmt::Debug for Emulated<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emulated")
            .field("n", &self.n)
            .field("t", &self.t)
            .field("replicas", &self.replicas.len())
            .field("ops_in_flight", &self.ops.len())
            .finish()
    }
}

impl<P: SmProcess> Emulated<P>
where
    P::Val: Value,
{
    /// Wraps `inner` for a system of `n` processes tolerating `t` crashes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `t >= n`, or `2t >= n` — ABD requires a correct
    /// majority; without it the emulation cannot even terminate.
    pub fn new(n: usize, t: usize, inner: P) -> Self {
        check_params(n, t);
        assert!(
            2 * t < n,
            "ABD register emulation requires t < n/2 (got n = {n}, t = {t})"
        );
        Emulated {
            inner,
            n,
            t,
            me: None,
            replicas: BTreeMap::new(),
            write_ts: BTreeMap::new(),
            ops: BTreeMap::new(),
            queue: VecDeque::new(),
            busy: false,
            next_tag: 0,
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, inner: P) -> DynMpProcess<AbdMsg<P::Val>, P::Output>
    where
        P: 'static,
        P::Output: 'static,
    {
        Box::new(Self::new(n, t, inner))
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Applies a store to the local replica (higher timestamps win; SWMR
    /// makes per-register timestamps totally ordered, so ties are equal
    /// values and harmless).
    fn absorb(&mut self, reg: RegisterId, ts: u64, value: P::Val) {
        match self.replicas.get(&reg) {
            Some((have, _)) if *have >= ts => {}
            _ => {
                self.replicas.insert(reg, (ts, value));
            }
        }
    }

    /// Runs an inner-protocol callback and translates its buffered effects
    /// into emulated operations.
    fn drive(
        &mut self,
        ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>,
        f: impl FnOnce(&mut P, &mut SmContext<'_, P::Val, P::Output>),
    ) {
        let me = self.me.expect("drive after start");
        let mut buf: Vec<RawSmAction<P::Val, P::Output>> = Vec::new();
        {
            let mut sm_ctx = SmContext::new(me, self.n, ctx.now(), ctx.has_decided(), &mut buf);
            f(&mut self.inner, &mut sm_ctx);
        }
        for action in buf {
            match action {
                op @ (RawSmAction::Write(..) | RawSmAction::Read(..)) => {
                    self.queue.push_back(op);
                }
                RawSmAction::Decide(v) => ctx.decide(v),
                RawSmAction::ScheduleStep => ctx.schedule_step(),
            }
        }
        self.pump(ctx);
    }

    /// Starts the next queued operation if none is in flight.
    fn pump(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        if self.busy {
            return;
        }
        let me = self.me.expect("pump after start");
        let Some(op) = self.queue.pop_front() else {
            return;
        };
        self.busy = true;
        match op {
            RawSmAction::Write(slot, value) => {
                let ts = self.write_ts.entry(slot).or_insert(0);
                *ts += 1;
                let ts = *ts;
                let reg = RegisterId::new(me, slot);
                let tag = self.next_tag;
                self.next_tag += 1;
                self.ops.insert(tag, Op::Write { slot, acks: 0 });
                // The owner is its own replica too; its self-store is
                // counted through the broadcast like everyone else's.
                ctx.broadcast(AbdMsg::Store {
                    reg,
                    ts,
                    value,
                    tag,
                });
            }
            RawSmAction::Read(reg) => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.ops.insert(
                    tag,
                    Op::ReadQuery {
                        reg,
                        replies: 0,
                        best: None,
                    },
                );
                ctx.broadcast(AbdMsg::Query { reg, tag });
            }
            _ => unreachable!("only register ops are queued"),
        }
    }

    fn on_store_ack(&mut self, tag: u64, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        let quorum = self.quorum();
        let completed = match self.ops.get_mut(&tag) {
            Some(Op::Write { acks, .. }) | Some(Op::ReadWriteBack { acks, .. }) => {
                *acks += 1;
                *acks >= quorum
            }
            _ => false,
        };
        if !completed {
            return;
        }
        match self.ops.remove(&tag) {
            Some(Op::Write { slot, .. }) => {
                self.busy = false;
                self.drive(ctx, |p, sm_ctx| p.on_write_ack(slot, sm_ctx));
            }
            Some(Op::ReadWriteBack { reg, result, .. }) => {
                self.busy = false;
                let value = result.map(|(_, v)| v);
                self.drive(ctx, |p, sm_ctx| p.on_read(reg, value, sm_ctx));
            }
            _ => unreachable!("completion checked above"),
        }
    }

    fn on_query_reply(
        &mut self,
        tag: u64,
        latest: Option<Stamped<P::Val>>,
        ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>,
    ) {
        let quorum = self.quorum();
        let Some(Op::ReadQuery { replies, best, .. }) = self.ops.get_mut(&tag) else {
            return;
        };
        *replies += 1;
        if let Some((ts, v)) = latest {
            match best {
                Some((have, _)) if *have >= ts => {}
                _ => *best = Some((ts, v)),
            }
        }
        if *replies < quorum {
            return;
        }
        let Some(Op::ReadQuery { reg, best, .. }) = self.ops.remove(&tag) else {
            unreachable!("matched above");
        };
        match best {
            Some((ts, value)) => {
                // Phase 2: write back before reporting, for atomicity.
                let wb_tag = self.next_tag;
                self.next_tag += 1;
                self.ops.insert(
                    wb_tag,
                    Op::ReadWriteBack {
                        reg,
                        result: Some((ts, value.clone())),
                        acks: 0,
                    },
                );
                ctx.broadcast(AbdMsg::Store {
                    reg,
                    ts,
                    value,
                    tag: wb_tag,
                });
            }
            None => {
                // Nothing written anywhere yet: report ⊥ immediately (an
                // unwritten register needs no write-back).
                self.busy = false;
                self.drive(ctx, |p, sm_ctx| p.on_read(reg, None, sm_ctx));
            }
        }
    }
}

impl<P: SmProcess> MpProcess for Emulated<P>
where
    P::Val: Value,
{
    type Msg = AbdMsg<P::Val>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        self.me = Some(ctx.me());
        self.drive(ctx, |p, sm_ctx| p.on_start(sm_ctx));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: AbdMsg<P::Val>,
        ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>,
    ) {
        match msg {
            AbdMsg::Store { reg, ts, value, tag } => {
                // Single-writer enforcement at the replica: only the
                // register's owner may originate a store with a fresh
                // timestamp; write-backs relay the owner's value, so any
                // (reg, ts) pair is owner-authenticated in the crash model.
                self.absorb(reg, ts, value);
                ctx.send(from, AbdMsg::StoreAck { tag });
            }
            AbdMsg::StoreAck { tag } => self.on_store_ack(tag, ctx),
            AbdMsg::Query { reg, tag } => {
                let latest = self.replicas.get(&reg).cloned();
                ctx.send(from, AbdMsg::QueryReply { tag, latest });
            }
            AbdMsg::QueryReply { tag, latest } => self.on_query_reply(tag, latest, ctx),
        }
    }

    fn on_step(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        self.drive(ctx, |p, sm_ctx| p.on_step(sm_ctx));
    }
}

/// Byzantine-tolerant register emulation with **masking quorums**
/// (Malkhi–Reiter; the Phalanx middleware line the paper's §4 motivation
/// points to), giving *regular* SWMR registers over message passing with
/// up to `t` Byzantine processes, for `n > 4t`.
///
/// Differences from the crash-tolerant [`Emulated`]:
///
/// * quorums have size `⌈(n + 2t + 1) / 2⌉`, so any two intersect in at
///   least `2t + 1` processes — `t + 1` of them correct;
/// * replicas accept a `Store` for register `r` **only from `r`'s owner**
///   (sender identities are unforgeable in the model), so a Byzantine
///   process can still only corrupt its own registers;
/// * reads return the highest-timestamped value *vouched by at least
///   `t + 1` distinct repliers* — fewer vouchers could all be liars;
/// * there is **no write-back**: a Byzantine reader must not be able to
///   inject state, which costs atomicity. The emulation provides regular
///   registers — enough for the one-shot scans of Protocols E and F,
///   whose writers write once before any correct scan completes.
pub struct ByzEmulated<P: SmProcess> {
    inner: P,
    n: usize,
    t: usize,
    me: Option<ProcessId>,
    replicas: BTreeMap<RegisterId, Stamped<P::Val>>,
    write_ts: BTreeMap<usize, u64>,
    ops: BTreeMap<u64, ByzOp<P::Val>>,
    queue: VecDeque<RawSmAction<P::Val, P::Output>>,
    busy: bool,
    next_tag: u64,
}

/// A pending masking-quorum operation.
///
/// All counting is by *distinct sender*: a Byzantine replica that repeats
/// an ack or a reply must not be able to vote twice (two liars repeating
/// themselves could otherwise fake the `t + 1` vouchers a forged value
/// needs).
#[derive(Clone, Debug)]
enum ByzOp<V> {
    Write {
        slot: usize,
        acked: std::collections::BTreeSet<ProcessId>,
    },
    Read {
        reg: RegisterId,
        repliers: std::collections::BTreeSet<ProcessId>,
        /// Vouching senders per reported replica value.
        votes: Vec<(Stamped<V>, std::collections::BTreeSet<ProcessId>)>,
    },
}

impl<P: SmProcess> std::fmt::Debug for ByzEmulated<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzEmulated")
            .field("n", &self.n)
            .field("t", &self.t)
            .field("ops_in_flight", &self.ops.len())
            .finish()
    }
}

impl<P: SmProcess> ByzEmulated<P>
where
    P::Val: Value,
{
    /// Wraps `inner` for a system of `n` processes tolerating `t`
    /// Byzantine failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `t >= n`, or `n <= 4t` (masking quorums need
    /// `n > 4t`).
    pub fn new(n: usize, t: usize, inner: P) -> Self {
        check_params(n, t);
        assert!(
            n > 4 * t,
            "masking-quorum emulation requires n > 4t (got n = {n}, t = {t})"
        );
        ByzEmulated {
            inner,
            n,
            t,
            me: None,
            replicas: BTreeMap::new(),
            write_ts: BTreeMap::new(),
            ops: BTreeMap::new(),
            queue: VecDeque::new(),
            busy: false,
            next_tag: 0,
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, inner: P) -> DynMpProcess<AbdMsg<P::Val>, P::Output>
    where
        P: 'static,
        P::Output: 'static,
    {
        Box::new(Self::new(n, t, inner))
    }

    /// Masking quorum size: `⌈(n + 2t + 1) / 2⌉`.
    fn quorum(&self) -> usize {
        (self.n + 2 * self.t).div_ceil(2)
    }

    fn drive(
        &mut self,
        ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>,
        f: impl FnOnce(&mut P, &mut SmContext<'_, P::Val, P::Output>),
    ) {
        let me = self.me.expect("drive after start");
        let mut buf: Vec<RawSmAction<P::Val, P::Output>> = Vec::new();
        {
            let mut sm_ctx = SmContext::new(me, self.n, ctx.now(), ctx.has_decided(), &mut buf);
            f(&mut self.inner, &mut sm_ctx);
        }
        for action in buf {
            match action {
                op @ (RawSmAction::Write(..) | RawSmAction::Read(..)) => {
                    self.queue.push_back(op);
                }
                RawSmAction::Decide(v) => ctx.decide(v),
                RawSmAction::ScheduleStep => ctx.schedule_step(),
            }
        }
        self.pump(ctx);
    }

    fn pump(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        if self.busy {
            return;
        }
        let me = self.me.expect("pump after start");
        let Some(op) = self.queue.pop_front() else {
            return;
        };
        self.busy = true;
        match op {
            RawSmAction::Write(slot, value) => {
                let ts = self.write_ts.entry(slot).or_insert(0);
                *ts += 1;
                let ts = *ts;
                let tag = self.next_tag;
                self.next_tag += 1;
                self.ops.insert(
                    tag,
                    ByzOp::Write {
                        slot,
                        acked: Default::default(),
                    },
                );
                ctx.broadcast(AbdMsg::Store {
                    reg: RegisterId::new(me, slot),
                    ts,
                    value,
                    tag,
                });
            }
            RawSmAction::Read(reg) => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.ops.insert(
                    tag,
                    ByzOp::Read {
                        reg,
                        repliers: Default::default(),
                        votes: Vec::new(),
                    },
                );
                ctx.broadcast(AbdMsg::Query { reg, tag });
            }
            _ => unreachable!("only register ops are queued"),
        }
    }
}

impl<P: SmProcess> MpProcess for ByzEmulated<P>
where
    P::Val: Value,
{
    type Msg = AbdMsg<P::Val>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        self.me = Some(ctx.me());
        self.drive(ctx, |p, sm_ctx| p.on_start(sm_ctx));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: AbdMsg<P::Val>,
        ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>,
    ) {
        match msg {
            AbdMsg::Store { reg, ts, value, tag } => {
                // Only the register's owner may store into it; the network
                // does not forge senders, so this enforces SWMR integrity
                // against Byzantine writers.
                if reg.owner == from {
                    match self.replicas.get(&reg) {
                        Some((have, _)) if *have >= ts => {}
                        _ => {
                            self.replicas.insert(reg, (ts, value));
                        }
                    }
                    ctx.send(from, AbdMsg::StoreAck { tag });
                }
            }
            AbdMsg::StoreAck { tag } => {
                let quorum = self.quorum();
                let done = match self.ops.get_mut(&tag) {
                    Some(ByzOp::Write { acked, .. }) => {
                        acked.insert(from);
                        acked.len() >= quorum
                    }
                    _ => false,
                };
                if done {
                    let Some(ByzOp::Write { slot, .. }) = self.ops.remove(&tag) else {
                        unreachable!("matched above");
                    };
                    self.busy = false;
                    self.drive(ctx, |p, sm_ctx| p.on_write_ack(slot, sm_ctx));
                }
            }
            AbdMsg::Query { reg, tag } => {
                let latest = self.replicas.get(&reg).cloned();
                ctx.send(from, AbdMsg::QueryReply { tag, latest });
            }
            AbdMsg::QueryReply { tag, latest } => {
                let quorum = self.quorum();
                let t = self.t;
                let Some(ByzOp::Read {
                    repliers, votes, ..
                }) = self.ops.get_mut(&tag)
                else {
                    return;
                };
                if !repliers.insert(from) {
                    return; // duplicate reply from the same (faulty) sender
                }
                if let Some(stamped) = latest {
                    if let Some(entry) = votes.iter_mut().find(|(s, _)| *s == stamped) {
                        entry.1.insert(from);
                    } else {
                        let mut voters = std::collections::BTreeSet::new();
                        voters.insert(from);
                        votes.push((stamped, voters));
                    }
                }
                if repliers.len() < quorum {
                    return;
                }
                let Some(ByzOp::Read { reg, votes, .. }) = self.ops.remove(&tag) else {
                    unreachable!("matched above");
                };
                // Highest-timestamped value vouched by > t distinct
                // repliers; fewer vouchers could all be Byzantine.
                let result = votes
                    .into_iter()
                    .filter(|(_, voters)| voters.len() > t)
                    .max_by_key(|((ts, _), _)| *ts)
                    .map(|((_, v), _)| v);
                self.busy = false;
                self.drive(ctx, |p, sm_ctx| p.on_read(reg, result, sm_ctx));
            }
        }
    }

    fn on_step(&mut self, ctx: &mut MpContext<'_, AbdMsg<P::Val>, P::Output>) {
        self.drive(ctx, |p, sm_ctx| p.on_step(sm_ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolE, ProtocolF};
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::MpSystem;
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    #[test]
    fn emulated_protocol_e_decides_unanimous_value() {
        // Protocol E over ABD: n = 5, t = 2 (< n/2).
        for seed in 0..15 {
            let outcome = MpSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(5, &[1, 3]))
                .run_with(|_| Emulated::boxed(5, 2, ProtocolE::new(5, 2, 7u64, DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![7], "seed {seed}");
        }
    }

    #[test]
    fn emulated_protocol_e_meets_rv2_with_mixed_inputs() {
        for seed in 0..15 {
            let inputs: Vec<u64> = (0..5).map(|p| p as u64 % 2).collect();
            let outcome = MpSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(5, &[4]))
                .run_with(|p| Emulated::boxed(5, 2, ProtocolE::new(5, 2, inputs[p], DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            let spec = ProblemSpec::new(5, 2, 2, ValidityCondition::RV2).unwrap();
            let record = RunRecord::new(inputs)
                .with_faulty(outcome.faulty.iter().copied())
                .with_decisions(outcome.decisions.clone())
                .with_terminated(outcome.terminated);
            let report = spec.check(&record);
            assert!(report.is_ok(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn emulated_protocol_f_meets_sv2() {
        // n = 7, t = 2, k = 4 > t + 1.
        for seed in 0..10 {
            let inputs: Vec<u64> = vec![9; 7];
            let outcome = MpSystem::new(7)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(7, &[0, 6]))
                .run_with(|p| Emulated::boxed(7, 2, ProtocolF::new(7, 2, inputs[p], DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![9], "seed {seed}");
        }
    }

    #[test]
    fn crash_mid_write_still_lets_readers_converge() {
        use kset_sim::FaultSpec;
        // The writer crashes after storing on a sub-quorum of replicas; the
        // read write-back completes the broken write, so two sequential
        // readers can never see it flicker. We run many seeds and assert
        // the protocol-level property (at most {v, default} decided).
        for seed in 0..20 {
            let mut plan = FaultPlan::all_correct(5);
            plan.set(0, FaultSpec::Crash { after_actions: 4 + seed % 4 });
            let inputs = [1u64, 2, 2, 2, 2];
            let outcome = MpSystem::new(5)
                .seed(seed)
                .fault_plan(plan)
                .run_with(|p| Emulated::boxed(5, 2, ProtocolE::new(5, 2, inputs[p], DEFAULT)))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert!(
                outcome.correct_decision_set().len() <= 2,
                "seed {seed}: {:?}",
                outcome.correct_decision_set()
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires t < n/2")]
    fn rejects_majority_fault_budgets() {
        let _ = Emulated::new(4, 2, ProtocolE::new(4, 2, 0u64, DEFAULT));
    }

    /// A Byzantine replica that answers every query with a forged
    /// max-timestamp value and stays silent otherwise.
    struct LyingReplica;
    impl MpProcess for LyingReplica {
        type Msg = AbdMsg<u64>;
        type Output = u64;
        fn on_start(&mut self, _ctx: &mut MpContext<'_, AbdMsg<u64>, u64>) {}
        fn on_message(
            &mut self,
            from: ProcessId,
            msg: AbdMsg<u64>,
            ctx: &mut MpContext<'_, AbdMsg<u64>, u64>,
        ) {
            if let AbdMsg::Query { tag, .. } = msg {
                ctx.send(
                    from,
                    AbdMsg::QueryReply {
                        tag,
                        latest: Some((u64::MAX, 666)),
                    },
                );
            }
        }
    }

    #[test]
    fn byz_emulated_protocol_e_survives_a_lying_replica() {
        // n = 9, t = 2 (n > 4t): two lying replicas cannot muster the
        // t + 1 = 3 vouchers a forged value needs.
        for seed in 0..10 {
            let outcome = MpSystem::new(9)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(9, &[0, 8]))
                .run_with(|p| -> kset_net::DynMpProcess<AbdMsg<u64>, u64> {
                    if p == 0 || p == 8 {
                        Box::new(LyingReplica)
                    } else {
                        ByzEmulated::boxed(9, 2, ProtocolE::new(9, 2, 5u64, DEFAULT))
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            // All correct share 5; the forged 666 must never be decided,
            // and Protocol E's two-value bound holds.
            let set = outcome.correct_decision_set();
            assert!(!set.contains(&666), "seed {seed}: {set:?}");
            assert!(set.len() <= 2, "seed {seed}: {set:?}");
            assert!(set.contains(&5) || set.contains(&DEFAULT), "seed {seed}");
        }
    }

    #[test]
    fn byz_emulated_protocol_f_holds_sv2_against_liars() {
        // n = 9, t = 2, k = 4 > t + 1: SV2 forces the unanimous value.
        for seed in 0..10 {
            let outcome = MpSystem::new(9)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(9, &[4]))
                .run_with(|p| -> kset_net::DynMpProcess<AbdMsg<u64>, u64> {
                    if p == 4 {
                        Box::new(LyingReplica)
                    } else {
                        ByzEmulated::boxed(9, 2, ProtocolF::new(9, 2, 7u64, DEFAULT))
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![7], "seed {seed}");
        }
    }

    /// A replica that replies to every query *twice* with a forged
    /// max-timestamp value — the duplicate-vote attack. Sender
    /// deduplication must keep its effective vouch count at one.
    struct DoubleVoter;
    impl MpProcess for DoubleVoter {
        type Msg = AbdMsg<u64>;
        type Output = u64;
        fn on_start(&mut self, _ctx: &mut MpContext<'_, AbdMsg<u64>, u64>) {}
        fn on_message(
            &mut self,
            from: ProcessId,
            msg: AbdMsg<u64>,
            ctx: &mut MpContext<'_, AbdMsg<u64>, u64>,
        ) {
            if let AbdMsg::Query { tag, .. } = msg {
                for _ in 0..2 {
                    ctx.send(
                        from,
                        AbdMsg::QueryReply {
                            tag,
                            latest: Some((u64::MAX, 666)),
                        },
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_votes_from_one_liar_do_not_forge_a_value() {
        // n = 5, t = 1: a forged value needs t + 1 = 2 DISTINCT vouchers.
        // One replica voting twice must not reach that bar.
        for seed in 0..15 {
            let outcome = MpSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(5, &[2]))
                .run_with(|p| -> kset_net::DynMpProcess<AbdMsg<u64>, u64> {
                    if p == 2 {
                        Box::new(DoubleVoter)
                    } else {
                        ByzEmulated::boxed(5, 1, ProtocolE::new(5, 1, 3u64, DEFAULT))
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            let set = outcome.correct_decision_set();
            assert!(!set.contains(&666), "seed {seed}: forged value decided {set:?}");
        }
    }

    #[test]
    fn byz_emulated_works_cleanly_without_failures() {
        let outcome = MpSystem::new(5)
            .seed(3)
            .run_with(|_| ByzEmulated::boxed(5, 1, ProtocolE::new(5, 1, 2u64, DEFAULT)))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "requires n > 4t")]
    fn byz_emulated_rejects_tight_populations() {
        let _ = ByzEmulated::new(8, 2, ProtocolE::new(8, 2, 0u64, DEFAULT));
    }
}
