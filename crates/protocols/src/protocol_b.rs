//! PROTOCOL B (paper §3.1.2): own-value-confirmation.
//!
//! > Each process broadcasts its input and waits for `n - t` messages. One
//! > of these `n - t` messages is the process' own message. If `n - 2t`
//! > messages contain the same value as its own, say `v`, the process
//! > decides `v`, else it decides a default value `v0`.
//!
//! Solves `SC(k, t, SV2)` in MP/CR for `t < (k-1)n/2k` (Lemma 3.8): a
//! correct process only ever decides its own input or the default, and `k`
//! distinct non-default decisions would need `k` disjoint groups of
//! `n - 2t` senders.
//!
//! Note the waiting rule: the process waits until it has `n - t` values
//! *among which its own broadcast is included* — we wait for `n - t`
//! deliveries of which one will be the self-delivery (the substrate
//! delivers broadcasts to the sender too).

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::{Fnv64, ProcessId, StateDigest};

use crate::check_params;

/// One process of Protocol B.
///
/// ```
/// use kset_net::MpSystem;
/// use kset_protocols::ProtocolB;
///
/// // All correct processes share input 4: SV2 forces the decision.
/// let outcome = MpSystem::new(6)
///     .seed(2)
///     .run_with(|_| ProtocolB::boxed(6, 1, 4u64, u64::MAX))?;
/// assert_eq!(outcome.correct_decision_set(), vec![4]);
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolB<V> {
    n: usize,
    t: usize,
    input: V,
    default: V,
    received: usize,
    own_seen: bool,
    matching_own: usize,
    /// Deliveries that arrived while waiting for the self-delivery would be
    /// miscounted if we decided before seeing our own; we simply require
    /// both `received >= n - t` and `own_seen`.
    _private: (),
}

impl<V: Value> ProtocolB<V> {
    /// Creates the process with system parameters `(n, t)`, its input and
    /// the default decision `v0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, input: V, default: V) -> Self {
        check_params(n, t);
        ProtocolB {
            n,
            t,
            input,
            default,
            received: 0,
            own_seen: false,
            matching_own: 0,
            _private: (),
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V, default: V) -> DynMpProcess<V, V>
    where
        V: StateDigest + 'static,
    {
        Box::new(Self::new(n, t, input, default))
    }

    fn threshold(&self) -> usize {
        self.n.saturating_sub(2 * self.t)
    }
}

impl<V: Value + StateDigest + 'static> MpProcess for ProtocolB<V> {
    type Msg = V;
    type Output = V;

    fn fork(&self) -> Option<DynMpProcess<V, V>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.input.digest_into(&mut h);
        self.default.digest_into(&mut h);
        h.write_usize(self.received);
        h.write_u8(self.own_seen as u8);
        h.write_usize(self.matching_own);
        h.finish()
    }

    fn on_start(&mut self, ctx: &mut MpContext<'_, V, V>) {
        ctx.broadcast(self.input.clone());
    }

    fn on_message(&mut self, from: ProcessId, msg: V, ctx: &mut MpContext<'_, V, V>) {
        if ctx.has_decided() {
            return;
        }
        if from == ctx.me() {
            self.own_seen = true;
        }
        if msg == self.input {
            self.matching_own += 1;
        }
        self.received += 1;
        if self.received >= self.n - self.t && self.own_seen {
            let decision = if self.matching_own >= self.threshold() {
                self.input.clone()
            } else {
                self.default.clone()
            };
            ctx.decide(decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::{MpOutcome, MpSystem};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    fn check_sv2(outcome: &MpOutcome<u64>, inputs: Vec<u64>, k: usize, t: usize) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn unanimous_correct_inputs_decide_that_value() {
        // n = 8, t = 1: bound 2kt < (k-1)n for k = 2: 4 < 8 holds.
        // The crashed process has a deviant input; SV2 must still force 5.
        let inputs = [5u64, 5, 5, 5, 5, 5, 5, 9];
        for seed in 0..25 {
            let outcome = MpSystem::new(8)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(8, &[7]))
                .run_with(|p| ProtocolB::boxed(8, 1, inputs[p], DEFAULT))
                .unwrap();
            assert_eq!(outcome.correct_decision_set(), vec![5], "seed {seed}");
            check_sv2(&outcome, inputs.to_vec(), 2, 1);
        }
    }

    #[test]
    fn mixed_inputs_respect_agreement() {
        // n = 12, t = 2: k = 2 needs 2*2*2 = 8 < 12 — holds.
        for seed in 0..30 {
            let inputs: Vec<u64> = (0..12).map(|p| (p as u64 + seed) % 3).collect();
            let outcome = MpSystem::new(12)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(12, &[0, 6]))
                .run_with(|p| ProtocolB::boxed(12, 2, inputs[p], DEFAULT))
                .unwrap();
            check_sv2(&outcome, inputs, 2, 2);
        }
    }

    #[test]
    fn decisions_are_own_input_or_default() {
        for seed in 0..20 {
            let inputs: Vec<u64> = (0..6).map(|p| p as u64).collect();
            let outcome = MpSystem::new(6)
                .seed(seed)
                .run_with(|p| ProtocolB::boxed(6, 1, inputs[p], DEFAULT))
                .unwrap();
            for (&p, &d) in &outcome.decisions {
                assert!(
                    d == inputs[p] || d == DEFAULT,
                    "process {p} decided {d}, neither its input nor default"
                );
            }
        }
    }

    #[test]
    fn all_distinct_inputs_with_small_support_yield_default() {
        // n - 2t = 4 matching copies needed, but each value exists once.
        let outcome = MpSystem::new(6)
            .seed(7)
            .fault_plan(FaultPlan::silent_crashes(6, &[5]))
            .run_with(|p| ProtocolB::boxed(6, 1, p as u64, DEFAULT))
            .unwrap();
        assert_eq!(outcome.correct_decision_set(), vec![DEFAULT]);
    }

    #[test]
    fn waits_for_own_message_before_deciding() {
        // Delay process 0's self-delivery behind everything else: it must
        // not decide until its own broadcast arrives. With n = 3, t = 1,
        // quorum 2, a premature decision would miscount matching_own.
        use kset_sim::{DelayRule, Until};
        let outcome = MpSystem::new(3)
            .seed(2)
            .delay_rule(DelayRule::new(
                "hold 0 -> 0 until 1 and 2 decided",
                Box::new(|m: &kset_sim::EventMeta| m.channel() == Some((0, 0))),
                Until::AllDecided(vec![1, 2]),
            ))
            .run_with(|_| ProtocolB::boxed(3, 1, 4u64, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.correct_decision_set(), vec![4]);
    }

    #[test]
    fn n_not_exceeding_2t_never_decides_nondefault_on_disagreement() {
        // n = 4, t = 2: threshold n - 2t = 0, so every process confirms its
        // own value trivially — this regime is outside Lemma 3.8's bound
        // (2kt < (k-1)n fails for every k <= n), and indeed agreement
        // degrades to one decision per input value. Document that behaviour.
        let inputs = [1u64, 2, 3, 4];
        let outcome = MpSystem::new(4)
            .seed(5)
            .run_with(|p| ProtocolB::boxed(4, 2, inputs[p], DEFAULT))
            .unwrap();
        assert_eq!(outcome.correct_decision_set().len(), 4);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn rejects_empty_system() {
        let _ = ProtocolB::new(0, 0, 1u64, DEFAULT);
    }
}
