//! PROTOCOL D (paper §3.2.2): designated broadcasters with echo-confirmed
//! adoption; solves `SC(k, t, WV1)` in MP/Byz for `k >= Z(n, t)`
//! (Lemma 3.16).
//!
//! > Processes `p_1, ..., p_{t+1}` each broadcast their input value. A
//! > process that receives a value `v_i` from `p_i` broadcasts an
//! > `<echo, v_i, p_i>` message and never echoes a value for `p_i` again.
//! > Each process `p_1, ..., p_k` decides on its own value. Every other
//! > process decides the first value `v_i` for which it receives identical
//! > `<echo, v_i, p_i>` from `n - t` processes.
//!
//! **A note on "`p_1 .. p_k`":** the agreement analysis of Lemma 3.16
//! counts the decisions of the *broadcasters* `p_1 .. p_{t+1}` plus the
//! echo-accepted values; letting additional processes self-decide when
//! `k > t + 1` is harmless for termination and WV1 but does not fit the
//! counting argument. We therefore default to the proof-consistent reading
//! — exactly the `t + 1` broadcasters self-decide — and expose the literal
//! reading as [`DecisionRule::FirstK`] for comparison (the two coincide
//! when `k = t + 1`, and `Z(n, t) >= t + 1` always).

use std::collections::{BTreeMap, BTreeSet};

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::ProcessId;

use crate::check_params;

/// Message alphabet of Protocol D.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DMsg<V> {
    /// A designated broadcaster announcing its input.
    Input(V),
    /// `<echo, value, origin>`: the sender vouches it received `value`
    /// from broadcaster `origin`.
    Echo(ProcessId, V),
}

/// Who self-decides in Protocol D (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecisionRule {
    /// The `t + 1` designated broadcasters decide their own values
    /// (proof-consistent reading; the default).
    Broadcasters,
    /// Processes `p_1 .. p_k` decide their own values (the paper's literal
    /// text).
    FirstK(usize),
}

/// One process of Protocol D.
///
/// ```
/// use kset_net::MpSystem;
/// use kset_protocols::ProtocolD;
///
/// // WV1: in this failure-free run every decision is somebody's input.
/// let inputs = [3u64, 1, 4, 1, 5, 9];
/// let outcome = MpSystem::new(6)
///     .seed(5)
///     .run_with(|p| ProtocolD::boxed(6, 1, inputs[p]))?;
/// assert!(outcome
///     .correct_decision_set()
///     .iter()
///     .all(|d| inputs.contains(d)));
/// # Ok::<(), kset_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolD<V> {
    n: usize,
    t: usize,
    input: V,
    rule: DecisionRule,
    /// Broadcasters whose value we already echoed.
    echoed: BTreeSet<ProcessId>,
    /// Echo senders per (origin, value).
    echoes: BTreeMap<(ProcessId, V), BTreeSet<ProcessId>>,
}

impl<V: Value> ProtocolD<V> {
    /// Creates the process with the proof-consistent decision rule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, input: V) -> Self {
        Self::with_rule(n, t, input, DecisionRule::Broadcasters)
    }

    /// Creates the process with an explicit [`DecisionRule`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `t >= n`, or the rule is `FirstK(k)` with
    /// `k < t + 1` or `k > n` (the literal text presumes `k >= t + 1`).
    pub fn with_rule(n: usize, t: usize, input: V, rule: DecisionRule) -> Self {
        check_params(n, t);
        if let DecisionRule::FirstK(k) = rule {
            assert!(
                k > t && k <= n,
                "FirstK(k) requires t + 1 <= k <= n, got k = {k}, t = {t}, n = {n}"
            );
        }
        ProtocolD {
            n,
            t,
            input,
            rule,
            echoed: BTreeSet::new(),
            echoes: BTreeMap::new(),
        }
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, input: V) -> DynMpProcess<DMsg<V>, V>
    where
        V: 'static,
    {
        Box::new(Self::new(n, t, input))
    }

    fn is_broadcaster(&self, pid: ProcessId) -> bool {
        pid <= self.t
    }

    fn self_decides(&self, pid: ProcessId) -> bool {
        match self.rule {
            DecisionRule::Broadcasters => self.is_broadcaster(pid),
            DecisionRule::FirstK(k) => pid < k,
        }
    }
}

impl<V: Value> MpProcess for ProtocolD<V> {
    type Msg = DMsg<V>;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, DMsg<V>, V>) {
        if self.is_broadcaster(ctx.me()) {
            ctx.broadcast(DMsg::Input(self.input.clone()));
        }
        if self.self_decides(ctx.me()) {
            ctx.decide(self.input.clone());
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: DMsg<V>, ctx: &mut MpContext<'_, DMsg<V>, V>) {
        match msg {
            DMsg::Input(v) => {
                // Only the designated broadcasters may be echoed; anything
                // else is Byzantine noise and is dropped.
                if !self.is_broadcaster(from) || self.echoed.contains(&from) {
                    return;
                }
                self.echoed.insert(from);
                ctx.broadcast(DMsg::Echo(from, v));
            }
            DMsg::Echo(origin, v) => {
                if !self.is_broadcaster(origin) {
                    return;
                }
                let senders = self.echoes.entry((origin, v.clone())).or_default();
                if !senders.insert(from) {
                    return;
                }
                if senders.len() >= self.n - self.t && !ctx.has_decided() {
                    ctx.decide(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::{MpOutcome, MpSystem};
    use kset_sim::FaultPlan;

    fn check_wv1(outcome: &MpOutcome<u64>, inputs: Vec<u64>, k: usize, t: usize) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::WV1).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn failure_free_runs_decide_broadcaster_values() {
        // n = 6, t = 1: broadcasters p0, p1. Z(6,1) = 2, so SC(2,1,WV1).
        for seed in 0..25 {
            let inputs: Vec<u64> = (0..6).map(|p| 10 + p as u64).collect();
            let outcome = MpSystem::new(6)
                .seed(seed)
                .run_with(|p| ProtocolD::boxed(6, 1, inputs[p]))
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            check_wv1(&outcome, inputs.clone(), 2, 1);
            // Non-broadcasters adopt a broadcaster value.
            for p in 2..6 {
                let d = outcome.decisions[&p];
                assert!(d == 10 || d == 11, "p{p} decided {d}");
            }
            assert_eq!(outcome.decisions[&0], 10);
            assert_eq!(outcome.decisions[&1], 11);
        }
    }

    #[test]
    fn terminates_with_silent_byzantine_broadcaster() {
        /// Byzantine slot that never sends anything.
        struct Silent;
        impl MpProcess for Silent {
            type Msg = DMsg<u64>;
            type Output = u64;
            fn on_start(&mut self, _ctx: &mut MpContext<'_, DMsg<u64>, u64>) {}
            fn on_message(
                &mut self,
                _f: ProcessId,
                _m: DMsg<u64>,
                _c: &mut MpContext<'_, DMsg<u64>, u64>,
            ) {
            }
        }
        // t = 1, broadcaster p0 silent: p1 remains correct, everyone can
        // still accept p1's value from n - t = 5 echoes.
        for seed in 0..20 {
            let outcome = MpSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(6, &[0]))
                .run_with(|p| {
                    if p == 0 {
                        Box::new(Silent) as DynMpProcess<DMsg<u64>, u64>
                    } else {
                        ProtocolD::boxed(6, 1, 20 + p as u64)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            for p in 2..6 {
                assert_eq!(outcome.decisions[&p], 21, "seed {seed}");
            }
        }
    }

    #[test]
    fn agreement_stays_within_z_bound_under_schedules() {
        use kset_regions::math::z_function;
        // n = 8, t = 2: Z(8,2) = 3 (t < n/3 regime).
        let z = z_function(8, 2);
        assert_eq!(z, 3);
        for seed in 0..40 {
            let inputs: Vec<u64> = (0..8).map(|p| p as u64).collect();
            let outcome = MpSystem::new(8)
                .seed(seed)
                .run_with(|p| ProtocolD::boxed(8, 2, inputs[p]))
                .unwrap();
            assert!(
                outcome.correct_decision_set().len() <= z,
                "seed {seed}: {:?}",
                outcome.correct_decision_set()
            );
        }
    }

    #[test]
    fn non_broadcaster_inputs_are_never_echoed() {
        // A non-broadcaster (Byzantine) claiming to be a broadcaster by
        // sending Input is ignored: no process may decide its value.
        struct Impostor;
        impl MpProcess for Impostor {
            type Msg = DMsg<u64>;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut MpContext<'_, DMsg<u64>, u64>) {
                ctx.broadcast(DMsg::Input(666));
            }
            fn on_message(
                &mut self,
                _f: ProcessId,
                _m: DMsg<u64>,
                _c: &mut MpContext<'_, DMsg<u64>, u64>,
            ) {
            }
        }
        for seed in 0..15 {
            let outcome = MpSystem::new(6)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(6, &[5]))
                .run_with(|p| {
                    if p == 5 {
                        Box::new(Impostor) as DynMpProcess<DMsg<u64>, u64>
                    } else {
                        ProtocolD::boxed(6, 1, p as u64)
                    }
                })
                .unwrap();
            assert!(outcome.terminated);
            assert!(
                !outcome.correct_decision_set().contains(&666),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn literal_first_k_rule_lets_extra_processes_self_decide() {
        let outcome = MpSystem::new(6)
            .seed(1)
            .run_with(|p| {
                Box::new(ProtocolD::with_rule(
                    6,
                    1,
                    30 + p as u64,
                    DecisionRule::FirstK(4),
                )) as DynMpProcess<DMsg<u64>, u64>
            })
            .unwrap();
        for p in 0..4 {
            assert_eq!(outcome.decisions[&p], 30 + p as u64);
        }
    }

    #[test]
    fn wv1_holds_under_many_seeds() {
        for seed in 0..20 {
            let inputs: Vec<u64> = (0..7).map(|p| (p as u64) * 3).collect();
            let outcome = MpSystem::new(7)
                .seed(seed)
                .run_with(|p| ProtocolD::boxed(7, 2, inputs[p]))
                .unwrap();
            // Z(7,2) = 3.
            check_wv1(&outcome, inputs, 3, 2);
        }
    }

    #[test]
    #[should_panic(expected = "FirstK(k) requires")]
    fn literal_rule_rejects_k_below_broadcasters() {
        let _ = ProtocolD::with_rule(6, 2, 0u64, DecisionRule::FirstK(2));
    }

    #[test]
    fn literal_rule_can_exceed_the_z_bound_justifying_our_default() {
        // The documented reason for the proof-consistent default: with the
        // paper's literal "p_1..p_k decide their own values" and k > Z(n,t),
        // the extra self-deciders alone exceed the Lemma 3.16 agreement
        // bound. n = 8, t = 1: Z = 2, but FirstK(4) with distinct inputs
        // yields at least 4 distinct decisions.
        use kset_regions::math::z_function;
        let (n, t, k) = (8, 1, 4);
        assert_eq!(z_function(n, t), 2);
        let inputs: Vec<u64> = (0..n as u64).collect();
        let outcome = MpSystem::new(n)
            .seed(9)
            .run_with(|p| -> DynMpProcess<DMsg<u64>, u64> {
                Box::new(ProtocolD::with_rule(
                    n,
                    t,
                    inputs[p],
                    DecisionRule::FirstK(k),
                ))
            })
            .unwrap();
        assert!(outcome.terminated);
        assert!(
            outcome.correct_decision_set().len() >= k,
            "literal reading must blow past Z = 2: {:?}",
            outcome.correct_decision_set()
        );
        // The proof-consistent default stays within Z on the same run.
        let outcome = MpSystem::new(n)
            .seed(9)
            .run_with(|p| ProtocolD::boxed(n, t, inputs[p]))
            .unwrap();
        assert!(outcome.correct_decision_set().len() <= 2);
    }
}
