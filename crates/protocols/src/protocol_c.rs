//! PROTOCOL C(l) (paper §3.2.2): Protocol B over the `l`-echo broadcast.
//!
//! > Each process broadcasts its input using the `l`-echo protocol and
//! > waits for `n - t` messages to be accepted, where one of these `n - t`
//! > messages is the process' own message. If `n - 2t` messages contain the
//! > same value `v`, then the process decides `v`, else it decides a
//! > default value `v0`.
//!
//! Solves `SC(k, t, SV2)` in MP/Byz for `t < (k-1)n/(2k+l-1)` and
//! `t < ln/(2l+1)` (Lemma 3.15).
//!
//! As in Protocol B, the validity argument ("since `p` starts with `v` it
//! either decides `v` or `v0`") shows the decision test compares against
//! the process's *own* input; we implement exactly that. Acceptance is
//! counted per origin — the first value accepted from each origin is that
//! origin's contribution to the quorum (a Byzantine origin may get up to
//! `l` values accepted system-wide, which is what the `(2k+l-1)` term in
//! the agreement bound pays for).

use std::collections::BTreeMap;

use kset_core::Value;
use kset_net::{DynMpProcess, MpContext, MpProcess};
use kset_sim::ProcessId;

use crate::check_params;
use crate::echo::{EchoAction, LEcho};

/// Message alphabet of Protocol C: the `l`-echo broadcast wire format.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CMsg<V> {
    /// `<init, sender, value>` — sender is the transport-level sender.
    Init(V),
    /// `<echo, origin, value>` relayed on behalf of `origin`.
    Echo(ProcessId, V),
}

/// One process of Protocol C(l).
#[derive(Clone, Debug)]
pub struct ProtocolC<V> {
    n: usize,
    t: usize,
    input: V,
    default: V,
    echo: LEcho<V>,
    /// First accepted value per origin (quorum contributions).
    quorum: BTreeMap<ProcessId, V>,
    done_counting: bool,
    /// If set, the process stops participating (echoing) once it has
    /// decided — the naive "terminating" variant whose failure mode is the
    /// paper's §5 open problem. See [`ProtocolC::with_halting`].
    halting: bool,
}

impl<V: Value> ProtocolC<V> {
    /// Creates the process with system parameters `(n, t)`, the echo
    /// amplification `l >= 1`, its input, and the default decision `v0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `t >= n`, or `l == 0`.
    pub fn new(n: usize, t: usize, l: usize, input: V, default: V) -> Self {
        check_params(n, t);
        ProtocolC {
            n,
            t,
            input,
            default,
            echo: LEcho::new(n, t, l),
            quorum: BTreeMap::new(),
            done_counting: false,
            halting: false,
        }
    }

    /// Makes the process halt (stop echoing) as soon as it decides.
    ///
    /// The paper's §5 remark: its Byzantine protocols require processes to
    /// "help" forever, and whether *terminating* protocols exist for the
    /// same settings is open. This variant is the obvious attempt — and it
    /// demonstrably loses liveness: a process whose deliveries are delayed
    /// past everyone else's decisions can no longer assemble its quorum
    /// (see the `halting_variant_starves_a_slow_process` test and the
    /// `ablations` bench).
    pub fn with_halting(mut self) -> Self {
        self.halting = true;
        self
    }

    /// Boxed form for [`kset_net::MpSystem::run_with`].
    pub fn boxed(n: usize, t: usize, l: usize, input: V, default: V) -> DynMpProcess<CMsg<V>, V>
    where
        V: 'static,
    {
        Box::new(Self::new(n, t, l, input, default))
    }

    fn apply(&mut self, action: Option<EchoAction<V>>, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        match action {
            Some(EchoAction::SendEcho { origin, value }) => {
                ctx.broadcast(CMsg::Echo(origin, value));
            }
            Some(EchoAction::Accept { origin, value }) => {
                self.quorum.entry(origin).or_insert(value);
                self.maybe_decide(ctx);
            }
            None => {}
        }
    }

    fn maybe_decide(&mut self, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        if self.done_counting || ctx.has_decided() {
            return;
        }
        let me = ctx.me();
        if self.quorum.len() < self.n - self.t || !self.quorum.contains_key(&me) {
            return;
        }
        self.done_counting = true;
        let matching = self
            .quorum
            .values()
            .filter(|v| **v == self.input)
            .count();
        let decision = if matching >= self.n.saturating_sub(2 * self.t) {
            self.input.clone()
        } else {
            self.default.clone()
        };
        ctx.decide(decision);
    }
}

impl<V: Value> MpProcess for ProtocolC<V> {
    type Msg = CMsg<V>;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        ctx.broadcast(CMsg::Init(self.input.clone()));
    }

    fn on_message(&mut self, from: ProcessId, msg: CMsg<V>, ctx: &mut MpContext<'_, CMsg<V>, V>) {
        // By default processes keep echoing after deciding — the paper's
        // Byzantine protocols forgo halting so that slower processes can
        // still assemble their quorums (§5 remark). The halting variant
        // (an ablation) stops here instead.
        if self.halting && ctx.has_decided() {
            return;
        }
        match msg {
            CMsg::Init(v) => {
                let action = self.echo.on_init(from, v);
                self.apply(action, ctx);
            }
            CMsg::Echo(origin, v) => {
                let action = self.echo.on_echo(from, origin, v);
                self.apply(action, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::{ProblemSpec, RunRecord, ValidityCondition};
    use kset_net::{MpOutcome, MpSystem};
    use kset_sim::FaultPlan;

    const DEFAULT: u64 = u64::MAX;

    fn check_sv2(outcome: &MpOutcome<u64>, inputs: Vec<u64>, k: usize, t: usize) {
        let n = inputs.len();
        let spec = ProblemSpec::new(n, k, t, ValidityCondition::SV2).unwrap();
        let record = RunRecord::new(inputs)
            .with_faulty(outcome.faulty.iter().copied())
            .with_decisions(outcome.decisions.clone())
            .with_terminated(outcome.terminated);
        let report = spec.check(&record);
        assert!(report.is_ok(), "{report}");
    }

    /// A crash-style Byzantine slot: stays silent forever. (Richer
    /// strategies live in kset-adversary; the protocol tests only need
    /// the failure to exist.)
    struct Silent;
    impl MpProcess for Silent {
        type Msg = CMsg<u64>;
        type Output = u64;
        fn on_start(&mut self, _ctx: &mut MpContext<'_, CMsg<u64>, u64>) {}
        fn on_message(
            &mut self,
            _f: ProcessId,
            _m: CMsg<u64>,
            _c: &mut MpContext<'_, CMsg<u64>, u64>,
        ) {
        }
    }

    #[test]
    fn failure_free_unanimous_run_decides_the_value() {
        // n = 10, t = 2, l = 1: sound (2 < 10/3? 6 < 10 yes).
        for seed in 0..15 {
            let outcome = MpSystem::new(10)
                .seed(seed)
                .run_with(|_| ProtocolC::boxed(10, 2, 1, 6u64, DEFAULT))
                .unwrap();
            assert_eq!(outcome.correct_decision_set(), vec![6], "seed {seed}");
        }
    }

    #[test]
    fn tolerates_silent_byzantine_processes() {
        // n = 10, t = 2, l = 1. Byzantine slots 0 and 9 stay silent.
        // All correct processes start with 4: SV2 forces 4.
        for seed in 0..15 {
            let outcome = MpSystem::new(10)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(10, &[0, 9]))
                .run_with(|p| {
                    if p == 0 || p == 9 {
                        Box::new(Silent) as DynMpProcess<CMsg<u64>, u64>
                    } else {
                        ProtocolC::boxed(10, 2, 1, 4u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![4], "seed {seed}");
        }
    }

    #[test]
    fn mixed_inputs_meet_sv2_and_agreement() {
        // n = 12, t = 1, l = 1: agreement bound t < (k-1)n/(2k):
        // k = 2 -> 1 < 12/4 = 3 holds.
        for seed in 0..20 {
            let inputs: Vec<u64> = (0..12).map(|p| (p as u64) % 2).collect();
            let outcome = MpSystem::new(12)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(12, &[3]))
                .run_with(|p| {
                    if p == 3 {
                        Box::new(Silent) as DynMpProcess<CMsg<u64>, u64>
                    } else {
                        ProtocolC::boxed(12, 1, 1, inputs[p], DEFAULT)
                    }
                })
                .unwrap();
            check_sv2(&outcome, inputs, 2, 1);
        }
    }

    #[test]
    fn decisions_are_own_input_or_default() {
        for seed in 0..10 {
            let outcome = MpSystem::new(7)
                .seed(seed)
                .run_with(|p| ProtocolC::boxed(7, 1, 1, p as u64, DEFAULT))
                .unwrap();
            for (&p, &d) in &outcome.decisions {
                assert!(d == p as u64 || d == DEFAULT);
            }
        }
    }

    #[test]
    fn l2_parameters_extend_the_fault_range() {
        // n = 9, t = 3: l = 1 is unsound ((2+1)*3 = 9 !< 9), while l = 2
        // is sound ((4+1)*3 = 15 < 18) — the regime where the l-echo
        // generalization genuinely buys fault tolerance.
        let e1 = LEcho::<u64>::new(9, 3, 1);
        let e2 = LEcho::<u64>::new(9, 3, 2);
        assert!(!e1.parameters_sound());
        assert!(e2.parameters_sound());
        for seed in 0..10 {
            let outcome = MpSystem::new(9)
                .seed(seed)
                .fault_plan(FaultPlan::byzantine(9, &[0, 1, 2]))
                .run_with(|p| {
                    if p < 3 {
                        Box::new(Silent) as DynMpProcess<CMsg<u64>, u64>
                    } else {
                        ProtocolC::boxed(9, 3, 2, 5u64, DEFAULT)
                    }
                })
                .unwrap();
            assert!(outcome.terminated, "seed {seed}");
            assert_eq!(outcome.correct_decision_set(), vec![5], "seed {seed}");
        }
    }

    #[test]
    fn continues_echoing_after_deciding() {
        // Regression guard: if processes stopped echoing at decision time,
        // late processes could starve. Freeze process 5's deliveries until
        // everyone else decided, then it must still assemble a quorum.
        use kset_sim::{DelayRule, Until};
        let others: Vec<usize> = (0..5).collect();
        let outcome = MpSystem::new(6)
            .seed(3)
            .delay_rule(DelayRule::freeze_process(5, Until::AllDecided(others)))
            .run_with(|_| ProtocolC::boxed(6, 1, 1, 2u64, DEFAULT))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions.len(), 6);
        assert_eq!(outcome.correct_decision_set(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "l-echo requires l >= 1")]
    fn rejects_l_zero() {
        let _ = ProtocolC::new(4, 1, 0, 0u64, DEFAULT);
    }

    #[test]
    fn halting_variant_starves_a_slow_process() {
        // The §5 ablation: identical configuration to
        // `continues_echoing_after_deciding`, but processes halt at their
        // decision. The frozen process can no longer assemble a quorum —
        // the naive terminating variant loses liveness.
        use kset_sim::{DelayRule, Until};
        let others: Vec<usize> = (0..5).collect();
        let run = |halting: bool| {
            MpSystem::new(6)
                .seed(3)
                .delay_rule(DelayRule::freeze_process(5, Until::AllDecided(others.clone())))
                .run_with(|_| -> DynMpProcess<CMsg<u64>, u64> {
                    let p = ProtocolC::new(6, 1, 1, 2u64, DEFAULT);
                    Box::new(if halting { p.with_halting() } else { p })
                })
                .unwrap()
        };
        let helping = run(false);
        assert!(helping.terminated);
        assert_eq!(helping.decisions.len(), 6);

        let halting = run(true);
        assert!(!halting.terminated, "halting must starve the frozen process");
        assert!(!halting.decisions.contains_key(&5));
    }
}
