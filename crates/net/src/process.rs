//! The message-passing process trait and its effect context.

use std::ops::Deref;

use kset_sim::{CallInfo, ContextCore, ProcessId};

/// Buffered effect produced by a process callback.
///
/// Public so that *custom runtimes* — most importantly the SIMULATION
/// transform in `kset-protocols`, which executes message-passing protocols
/// over shared memory — can build an [`MpContext`], run a callback, and
/// translate the buffered effects into their own substrate's operations.
#[derive(Clone, Debug)]
pub enum RawAction<M, V> {
    /// Send a message to a process.
    Send(ProcessId, M),
    /// Irreversibly decide a value.
    Decide(V),
    /// Request a spontaneous `on_step` callback.
    ScheduleStep,
}

/// The effect interface handed to every [`MpProcess`] callback.
///
/// Effects are buffered while the callback runs and applied by the runtime
/// afterwards, each costing one atomic action against the process's crash
/// budget. A process whose budget runs out mid-buffer has the remaining
/// effects silently dropped — that *is* the crash.
#[derive(Debug)]
pub struct MpContext<'a, M, V> {
    core: ContextCore<'a, RawAction<M, V>>,
}

/// The identity accessors (`me`, `n`, `now`, `has_decided`) are provided by
/// the shared [`ContextCore`].
impl<'a, M, V> Deref for MpContext<'a, M, V> {
    type Target = ContextCore<'a, RawAction<M, V>>;

    fn deref(&self) -> &Self::Target {
        &self.core
    }
}

impl<'a, M: Clone, V> MpContext<'a, M, V> {
    /// Builds a context over a caller-owned action buffer.
    ///
    /// Normally only the [`crate::MpSystem`] runtime does this; custom
    /// runtimes (the SIMULATION transform) may construct contexts to drive
    /// an [`MpProcess`] over a different substrate, applying the buffered
    /// [`RawAction`]s themselves afterwards.
    pub fn new(
        me: ProcessId,
        n: usize,
        now: u64,
        decided: bool,
        actions: &'a mut Vec<RawAction<M, V>>,
    ) -> Self {
        let info = CallInfo {
            me,
            n,
            now,
            decided,
        };
        MpContext {
            core: ContextCore::new(info, actions),
        }
    }

    /// Sends `msg` to process `to` over the reliable network.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.core.push(RawAction::Send(to, msg));
    }

    /// Sends `msg` to every process, *including itself*.
    ///
    /// The paper's protocols count the sender's own message among those it
    /// waits for ("one of these `n - t` messages is the process' own
    /// message"), so self-delivery is part of the broadcast.
    pub fn broadcast(&mut self, msg: M) {
        for to in 0..self.core.n() {
            self.core.push(RawAction::Send(to, msg.clone()));
        }
    }

    /// Irreversibly decides `value`.
    ///
    /// Subsequent `decide` calls in the same run are ignored by the runtime
    /// (the first decision wins), matching the designated single "decide"
    /// instruction of the problem statement.
    pub fn decide(&mut self, value: V) {
        self.core.mark_decided();
        self.core.push(RawAction::Decide(value));
    }

    /// Requests another spontaneous [`MpProcess::on_step`] callback, at a
    /// time of the scheduler's choosing. Byzantine strategies use this to
    /// act without external stimulus.
    pub fn schedule_step(&mut self) {
        self.core.push(RawAction::ScheduleStep);
    }
}

/// A process of the asynchronous message-passing model.
///
/// Implementations are *state machines*: each callback runs to completion
/// (atomically, as one process step plus its buffered effects) and must not
/// block. The runtime guarantees:
///
/// * [`MpProcess::on_start`] is invoked exactly once, before any other
///   callback of this process;
/// * [`MpProcess::on_message`] is invoked exactly once per message sent to
///   this process (reliable, unforgeable, possibly reordered delivery);
/// * [`MpProcess::on_step`] is invoked once per
///   [`MpContext::schedule_step`] request.
pub trait MpProcess {
    /// The message alphabet of the protocol.
    type Msg: Clone;
    /// The decision value type.
    type Output;

    /// The process's first step.
    fn on_start(&mut self, ctx: &mut MpContext<'_, Self::Msg, Self::Output>);

    /// Delivery of `msg` from `from`.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut MpContext<'_, Self::Msg, Self::Output>,
    );

    /// A spontaneous local step (only delivered if previously requested via
    /// [`MpContext::schedule_step`]). Default: do nothing.
    fn on_step(&mut self, ctx: &mut MpContext<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// A stable fingerprint of this process's protocol state, used by the
    /// model checker to deduplicate explored system states (see
    /// `kset_sim::StateDigest` and `MpSystem::run_digested`).
    ///
    /// Two system states whose digests agree are treated as interchangeable
    /// by the checker, so an override must hash *every* state field that
    /// influences future behaviour. The default (a constant) makes distinct
    /// internal states collide and is only safe when state-digest
    /// deduplication is disabled — every protocol in this workspace
    /// overrides it.
    fn state_digest(&self) -> u64 {
        0
    }

    /// A boxed copy of this process in its *current* state, used by the
    /// model checker's forking executor to snapshot a run mid-execution.
    ///
    /// The default (`None`) marks the process as unforkable, which silently
    /// degrades the checker to replay-from-root execution — always sound,
    /// just slower. Protocols with `Clone` state machines should override
    /// this with `Some(Box::new(self.clone()))`.
    fn fork(&self) -> Option<DynMpProcess<Self::Msg, Self::Output>> {
        None
    }
}

/// Boxed process with erased concrete type, the unit the runtime stores.
///
/// Correct processes and Byzantine strategies share this shape, which is
/// what lets a [`crate::MpSystem`] mix them freely in one run.
pub type DynMpProcess<M, V> = Box<dyn MpProcess<Msg = M, Output = V>>;

impl<M: Clone, V> MpProcess for DynMpProcess<M, V> {
    type Msg = M;
    type Output = V;

    fn on_start(&mut self, ctx: &mut MpContext<'_, M, V>) {
        (**self).on_start(ctx)
    }

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut MpContext<'_, M, V>) {
        (**self).on_message(from, msg, ctx)
    }

    fn on_step(&mut self, ctx: &mut MpContext<'_, M, V>) {
        (**self).on_step(ctx)
    }

    fn state_digest(&self) -> u64 {
        (**self).state_digest()
    }

    fn fork(&self) -> Option<DynMpProcess<M, V>> {
        (**self).fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_targets_every_process_including_self() {
        let mut buf: Vec<RawAction<u8, u8>> = Vec::new();
        let mut ctx = MpContext::new(1, 3, 0, false, &mut buf);
        ctx.broadcast(7);
        let targets: Vec<ProcessId> = buf
            .iter()
            .map(|a| match a {
                RawAction::Send(to, 7) => *to,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn decide_is_reflected_in_context_view() {
        let mut buf: Vec<RawAction<u8, u8>> = Vec::new();
        let mut ctx = MpContext::new(0, 1, 0, false, &mut buf);
        assert!(!ctx.has_decided());
        ctx.decide(3);
        assert!(ctx.has_decided());
        assert!(matches!(buf[0], RawAction::Decide(3)));
    }

    #[test]
    fn context_reports_identity() {
        let mut buf: Vec<RawAction<u8, u8>> = Vec::new();
        let ctx = MpContext::new(2, 5, 17, true, &mut buf);
        assert_eq!(ctx.me(), 2);
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.now(), 17);
        assert!(ctx.has_decided());
    }

    #[test]
    fn schedule_step_buffers_a_step_request() {
        let mut buf: Vec<RawAction<u8, u8>> = Vec::new();
        let mut ctx = MpContext::new(0, 1, 0, false, &mut buf);
        ctx.schedule_step();
        assert!(matches!(buf[0], RawAction::ScheduleStep));
    }
}
