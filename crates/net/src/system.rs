//! The message-passing runtime: builder and run loop.

use std::collections::BTreeMap;

use kset_sim::{
    DelayRule, EventKind, EventMeta, FaultPlan, Fnv64, GatedScheduler, Kernel, MetricsConfig,
    ProcessId, RandomScheduler, Scheduler, SimError, StateDigest,
};

use crate::outcome::MpOutcome;
use crate::process::{DynMpProcess, MpContext, RawAction};

/// Kernel payloads of the message-passing model.
#[derive(Clone, Debug)]
enum Payload<M> {
    /// The process's initial step.
    Start,
    /// A requested spontaneous step.
    Step,
    /// A message in transit.
    Msg(M),
}

/// Builder/runtime for one run of a message-passing system.
///
/// Configure the fault plan, scheduler, delay rules, and limits, then call
/// [`MpSystem::run`] with one process per slot. Byzantine slots (per the
/// fault plan) are filled by the caller with strategy objects — see the
/// `kset-adversary` crate.
///
/// # Examples
///
/// See the crate-level documentation.
pub struct MpSystem {
    n: usize,
    plan: FaultPlan,
    scheduler: Option<Box<dyn Scheduler>>,
    rules: Vec<DelayRule>,
    event_limit: Option<u64>,
    trace_capacity: usize,
    metrics: MetricsConfig,
}

impl std::fmt::Debug for MpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpSystem")
            .field("n", &self.n)
            .field("plan", &self.plan)
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl MpSystem {
    /// A system of `n` processes, all correct, randomly scheduled (seed 0).
    pub fn new(n: usize) -> Self {
        MpSystem {
            n,
            plan: FaultPlan::all_correct(n),
            scheduler: None,
            rules: Vec::new(),
            event_limit: None,
            trace_capacity: 0,
            metrics: MetricsConfig::disabled(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets the fault plan. Its size must equal `n` (checked at run time).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Uses an explicit scheduler (adversary).
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Some(Box::new(scheduler));
        self
    }

    /// Shorthand for a [`RandomScheduler`] with the given seed.
    pub fn seed(self, seed: u64) -> Self {
        self.scheduler(RandomScheduler::from_seed(seed))
    }

    /// Adds a delay rule; the scheduler is wrapped in a
    /// [`GatedScheduler`] when any rules are present.
    pub fn delay_rule(mut self, rule: DelayRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds several delay rules at once.
    pub fn delay_rules(mut self, rules: impl IntoIterator<Item = DelayRule>) -> Self {
        self.rules.extend(rules);
        self
    }

    /// Overrides the kernel event limit.
    pub fn event_limit(mut self, limit: u64) -> Self {
        self.event_limit = Some(limit);
        self
    }

    /// Enables trace recording with the given capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Configures metrics collection; the outcome's
    /// [`metrics`](MpOutcome::metrics) field is populated when enabled.
    pub fn metrics(mut self, config: MetricsConfig) -> Self {
        self.metrics = config;
        self
    }

    /// Runs the system with one boxed process per slot, taken from an
    /// iterator in process-id order.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_boxed<M: Clone, V>(
        self,
        procs: impl IntoIterator<Item = DynMpProcess<M, V>>,
    ) -> Result<MpOutcome<V>, SimError> {
        self.run(procs.into_iter().collect())
    }

    /// Runs the system, building each process from a factory closure.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_with<M: Clone, V>(
        self,
        mut factory: impl FnMut(ProcessId) -> DynMpProcess<M, V>,
    ) -> Result<MpOutcome<V>, SimError> {
        let procs = (0..self.n).map(&mut factory).collect();
        self.run(procs)
    }

    /// Runs the system to completion.
    ///
    /// The run ends when every correct process has decided, when no events
    /// remain (in which case `terminated` is `false` if some correct process
    /// is still undecided), or with an error.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] if `procs.len()` or the fault plan size
    ///   differ from `n`, or `n == 0`.
    /// * [`SimError::EventLimitExceeded`] if the protocol livelocks.
    /// * [`SimError::ProcessOutOfRange`] if a process sends to an index
    ///   outside `0..n`.
    pub fn run<M: Clone, V>(
        self,
        procs: Vec<DynMpProcess<M, V>>,
    ) -> Result<MpOutcome<V>, SimError> {
        self.run_core(procs, |_, _, _| {})
    }

    /// Runs the system like [`MpSystem::run`], additionally computing a
    /// stable digest of the whole system state after every fired event.
    ///
    /// `digests[i]` fingerprints the state reached after the `i`-th event:
    /// every process's [`crate::MpProcess::state_digest`], its crashed flag and
    /// decision, plus an order-insensitive multiset hash of the pending
    /// event pool (kind, target, source, payload). Event *ids* are
    /// deliberately excluded, so two schedules reaching the same protocol
    /// state digest equal — the property the model checker's state
    /// deduplication relies on.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_digested<M, V>(
        self,
        procs: Vec<DynMpProcess<M, V>>,
    ) -> Result<(MpOutcome<V>, Vec<u64>), SimError>
    where
        M: Clone + StateDigest,
        V: StateDigest,
    {
        let mut digests = Vec::new();
        let outcome = self.run_core(procs, |kernel, procs, decisions| {
            digests.push(mp_state_digest(kernel, procs, decisions));
        })?;
        Ok((outcome, digests))
    }

    /// The shared run loop: `observe` is called once after every fired
    /// event (whether or not it dispatched a callback) with the kernel, the
    /// processes and the decision table.
    fn run_core<M: Clone, V>(
        self,
        mut procs: Vec<DynMpProcess<M, V>>,
        mut observe: impl FnMut(&Kernel<Payload<M>>, &[DynMpProcess<M, V>], &[Option<V>]),
    ) -> Result<MpOutcome<V>, SimError> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig("n must be positive".into()));
        }
        if procs.len() != self.n {
            return Err(SimError::InvalidConfig(format!(
                "expected {} processes, got {}",
                self.n,
                procs.len()
            )));
        }
        if self.plan.n() != self.n {
            return Err(SimError::InvalidConfig(format!(
                "fault plan covers {} processes, system has {}",
                self.plan.n(),
                self.n
            )));
        }

        let n = self.n;
        let plan = self.plan;
        let inner: Box<dyn Scheduler> = self
            .scheduler
            .unwrap_or_else(|| Box::new(RandomScheduler::from_seed(0)));
        let mut kernel: Kernel<Payload<M>> = if self.rules.is_empty() {
            Kernel::with_processes(inner, n)
        } else {
            Kernel::with_processes(GatedScheduler::new(inner, self.rules), n)
        };
        if let Some(limit) = self.event_limit {
            kernel = kernel.event_limit(limit);
        }
        if self.trace_capacity > 0 {
            kernel = kernel.trace_capacity(self.trace_capacity);
        }
        if self.metrics.enabled {
            kernel = kernel.collect_metrics(self.metrics);
        }

        for pid in 0..n {
            if plan.spec(pid).kind() == kset_sim::FaultKind::Byzantine {
                kernel.state_mut().mark_byzantine(pid);
            }
        }
        for pid in 0..n {
            kernel.post(EventMeta::new(EventKind::LocalStep, pid), Payload::Start);
        }

        let mut decisions: Vec<Option<V>> = (0..n).map(|_| None).collect();
        let mut started = vec![false; n];

        // Dispatches one callback to `pid` under its crash budget, then
        // drains the buffered effects. Returns early (after marking the
        // crash) when the budget runs out.
        #[allow(clippy::too_many_arguments)]
        fn dispatch<M: Clone, V>(
            kernel: &mut Kernel<Payload<M>>,
            procs: &mut [DynMpProcess<M, V>],
            decisions: &mut [Option<V>],
            plan: &FaultPlan,
            n: usize,
            pid: ProcessId,
            call: impl FnOnce(&mut DynMpProcess<M, V>, &mut MpContext<'_, M, V>),
        ) -> Result<(), SimError> {
            let done = kernel.state().actions_of(pid);
            if plan.remaining_budget(pid, done) == Some(0) {
                crash(kernel, pid);
                return Ok(());
            }
            kernel.state_mut().charge_action(pid);

            let mut buf: Vec<RawAction<M, V>> = Vec::new();
            {
                let mut ctx =
                    MpContext::new(pid, n, kernel.now(), decisions[pid].is_some(), &mut buf);
                call(&mut procs[pid], &mut ctx);
            }

            for action in buf {
                let done = kernel.state().actions_of(pid);
                if plan.remaining_budget(pid, done) == Some(0) {
                    crash(kernel, pid);
                    break;
                }
                kernel.state_mut().charge_action(pid);
                match action {
                    RawAction::Send(to, m) => {
                        if to >= n {
                            return Err(SimError::ProcessOutOfRange { pid: to, n });
                        }
                        kernel.post(
                            EventMeta::new(EventKind::MessageDelivery, to).from_process(pid),
                            Payload::Msg(m),
                        );
                    }
                    RawAction::Decide(v) => {
                        if decisions[pid].is_none() {
                            decisions[pid] = Some(v);
                            kernel.note_decision(pid);
                        }
                    }
                    RawAction::ScheduleStep => {
                        kernel.post(EventMeta::new(EventKind::LocalStep, pid), Payload::Step);
                    }
                }
            }
            Ok(())
        }

        loop {
            if kernel.state().all_correct_decided() {
                break;
            }
            let Some((meta, payload)) = kernel.next_checked()? else {
                break;
            };
            'event: {
                let pid = meta.target;
                if kernel.state().has_crashed(pid) {
                    break 'event;
                }
                // A process's first step is always its `on_start`: if
                // another event (an early delivery) reaches it before its
                // explicit start event fired, start it lazily first.
                if !started[pid] {
                    started[pid] = true;
                    dispatch(&mut kernel, &mut procs, &mut decisions, &plan, n, pid, |p, ctx| {
                        p.on_start(ctx)
                    })?;
                    if matches!(payload, Payload::Start) {
                        break 'event;
                    }
                    if kernel.state().has_crashed(pid) {
                        break 'event;
                    }
                } else if matches!(payload, Payload::Start) {
                    // Explicit start event arriving after a lazy start: spent.
                    break 'event;
                }
                match payload {
                    Payload::Start => unreachable!("start handled above"),
                    Payload::Step => {
                        dispatch(&mut kernel, &mut procs, &mut decisions, &plan, n, pid, |p, ctx| {
                            p.on_step(ctx)
                        })?;
                    }
                    Payload::Msg(m) => {
                        let from = meta.source.expect("message delivery has a source");
                        dispatch(&mut kernel, &mut procs, &mut decisions, &plan, n, pid, |p, ctx| {
                            p.on_message(from, m, ctx)
                        })?;
                    }
                }
            }
            observe(&kernel, &procs, &decisions);
        }

        let terminated = kernel.state().all_correct_decided();
        let decisions: BTreeMap<ProcessId, V> = decisions
            .into_iter()
            .enumerate()
            .filter_map(|(p, d)| d.map(|v| (p, v)))
            .collect();
        Ok(MpOutcome {
            decisions,
            correct: plan.correct_set(),
            faulty: plan.faulty_set(),
            terminated,
            stats: *kernel.stats(),
            trace: kernel.trace().clone(),
            metrics: kernel.metrics().cloned(),
        })
    }
}

fn crash<M>(kernel: &mut Kernel<Payload<M>>, pid: ProcessId) {
    kernel.state_mut().mark_crashed(pid);
    // Steps and deliveries *to* the crashed process will never be handled;
    // messages it already sent stay in flight (the network is reliable).
    kernel.cancel_where(|m| m.target == pid);
}

/// Digest of the full system state: per-process protocol state, crash and
/// decision status, plus the pending pool as an id-insensitive multiset.
fn mp_state_digest<M, V>(
    kernel: &Kernel<Payload<M>>,
    procs: &[DynMpProcess<M, V>],
    decisions: &[Option<V>],
) -> u64
where
    M: Clone + StateDigest,
    V: StateDigest,
{
    let mut h = Fnv64::new();
    for (pid, proc) in procs.iter().enumerate() {
        h.write_u64(proc.state_digest());
        h.write_u8(u8::from(kernel.state().has_crashed(pid)));
        decisions[pid].as_ref().digest_into(&mut h);
    }
    // The pending pool hashes as a sum over per-event digests: insensitive
    // to pool order and to event ids, both of which are schedule artifacts.
    let mut pool = 0u64;
    kernel.for_each_pending(|meta, payload| {
        let mut eh = Fnv64::new();
        eh.write_usize(meta.target);
        meta.source.digest_into(&mut eh);
        match payload {
            Payload::Start => eh.write_u8(0),
            Payload::Step => eh.write_u8(1),
            Payload::Msg(m) => {
                eh.write_u8(2);
                m.digest_into(&mut eh);
            }
        }
        pool = pool.wrapping_add(eh.finish());
    });
    h.write_u64(pool);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MpProcess;
    use kset_sim::FaultSpec;

    /// Broadcasts the input; decides the multiset minimum of the first
    /// `quorum` values received (its own included).
    struct MinOfQuorum {
        input: u64,
        quorum: usize,
        seen: Vec<u64>,
    }

    impl MinOfQuorum {
        fn boxed(input: u64, quorum: usize) -> DynMpProcess<u64, u64> {
            Box::new(MinOfQuorum {
                input,
                quorum,
                seen: Vec::new(),
            })
        }
    }

    impl MpProcess for MinOfQuorum {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut MpContext<'_, u64, u64>) {
            ctx.broadcast(self.input);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64, ctx: &mut MpContext<'_, u64, u64>) {
            if ctx.has_decided() {
                return;
            }
            self.seen.push(msg);
            if self.seen.len() >= self.quorum {
                ctx.decide(*self.seen.iter().min().expect("quorum >= 1"));
            }
        }
    }

    #[test]
    fn failure_free_run_decides_everywhere() {
        let outcome = MpSystem::new(4)
            .seed(3)
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(10 + i, 4)))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions.len(), 4);
        // Everyone waited for all four values, so everyone decided min = 10.
        assert_eq!(outcome.correct_decision_set(), vec![10]);
        assert_eq!(outcome.stats.messages_delivered, 16);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            MpSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(5, &[4]))
                .run_boxed((0..5).map(|i| MinOfQuorum::boxed(i, 4)))
                .unwrap()
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn silent_crash_means_no_messages_from_that_process() {
        let outcome = MpSystem::new(3)
            .seed(9)
            .fault_plan(FaultPlan::silent_crashes(3, &[0]))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // Process 0 never started: only 1 and 2 decided, and neither can
        // have seen 0's input.
        assert!(!outcome.decisions.contains_key(&0));
        assert!(outcome.correct_decision_set().iter().all(|&v| v >= 1));
    }

    #[test]
    fn waiting_for_too_many_messages_fails_termination() {
        // 3 processes, one silent: waiting for all 3 inputs can never finish.
        let outcome = MpSystem::new(3)
            .seed(1)
            .fault_plan(FaultPlan::silent_crashes(3, &[2]))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 3)))
            .unwrap();
        assert!(!outcome.terminated);
        assert!(outcome.decisions.is_empty());
    }

    #[test]
    fn crash_budget_cuts_a_broadcast() {
        // Process 0 may perform 2 actions: handling its start event and
        // sending to process 0 (itself). Its sends to 1 and 2 are cut.
        let mut plan = FaultPlan::all_correct(3);
        plan.set(0, FaultSpec::Crash { after_actions: 2 });
        let outcome = MpSystem::new(3)
            .seed(5)
            .fault_plan(plan)
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // 1 and 2 decide from {1, 2}: 0's input never reached them.
        assert_eq!(outcome.correct_decision_set(), vec![1]);
    }

    #[test]
    fn mismatched_process_count_is_rejected() {
        let err = MpSystem::new(3)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn mismatched_plan_size_is_rejected() {
        let err = MpSystem::new(3)
            .fault_plan(FaultPlan::all_correct(2))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn zero_processes_is_rejected() {
        let err = MpSystem::new(0)
            .run_boxed(std::iter::empty::<DynMpProcess<u64, u64>>())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn event_limit_surfaces_as_error() {
        /// Pathological protocol: every step schedules another step.
        struct Spinner;
        impl MpProcess for Spinner {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut MpContext<'_, (), ()>) {
                ctx.schedule_step();
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut MpContext<'_, (), ()>) {}
            fn on_step(&mut self, ctx: &mut MpContext<'_, (), ()>) {
                ctx.schedule_step();
            }
        }
        let err = MpSystem::new(1)
            .event_limit(100)
            .run_boxed(std::iter::once(
                Box::new(Spinner) as DynMpProcess<(), ()>
            ))
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 100 });
    }

    #[test]
    fn trace_capacity_records_schedule() {
        let outcome = MpSystem::new(2)
            .seed(2)
            .trace_capacity(64)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(!outcome.trace.entries().is_empty());
    }

    #[test]
    fn metrics_follow_the_run() {
        let outcome = MpSystem::new(4)
            .seed(3)
            .metrics(MetricsConfig::enabled())
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(10 + i, 4)))
            .unwrap();
        let m = outcome.metrics.as_ref().expect("metrics enabled");
        // Every process broadcast once (4 sends each) and received all 16.
        assert_eq!(m.total_messages_sent(), 16);
        assert_eq!(
            m.per_process.iter().map(|p| p.messages_delivered).sum::<u64>(),
            outcome.stats.messages_delivered
        );
        // All four decided; decision latencies are recorded in virtual time.
        assert_eq!(m.decisions(), 4);
        for p in &m.per_process {
            assert_eq!(p.messages_sent, 4);
            assert!(p.decided_at.is_some());
        }
        assert!(m.peak_pending >= 4);
        assert!(m.peak_pending_bytes > m.peak_pending);
        // Disabled (the default) leaves the field empty.
        let off = MpSystem::new(2)
            .seed(3)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(off.metrics.is_none());
    }

    #[test]
    fn metrics_attribute_crash_drops() {
        let outcome = MpSystem::new(3)
            .seed(9)
            .metrics(MetricsConfig::enabled())
            .fault_plan(FaultPlan::silent_crashes(3, &[0]))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        let m = outcome.metrics.unwrap();
        // Only the crashed process loses events to cancellation.
        assert!(m.per_process[0].events_dropped_by_crash > 0);
        assert_eq!(m.per_process[1].events_dropped_by_crash, 0);
        assert_eq!(m.per_process[2].events_dropped_by_crash, 0);
        assert_eq!(
            m.per_process.iter().map(|p| p.events_dropped_by_crash).sum::<u64>(),
            outcome.stats.events_dropped_by_crash
        );
        assert!(m.per_process[0].decided_at.is_none());
    }

    #[test]
    fn delay_rule_shapes_the_run() {
        use kset_sim::DelayRule;
        // Isolate {0,1}: they must decide before hearing from {2,3}.
        let outcome = MpSystem::new(4)
            .seed(4)
            .delay_rule(DelayRule::isolate_until_decided(vec![0, 1]))
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // 0 and 1 can only have seen inputs from {0, 1}.
        for p in [0usize, 1] {
            assert!(outcome.decisions[&p] <= 1);
        }
    }

    #[test]
    fn on_start_always_precedes_deliveries() {
        /// Records whether a message ever arrived before on_start.
        struct StartGuard {
            started: bool,
        }
        impl MpProcess for StartGuard {
            type Msg = u8;
            type Output = bool;
            fn on_start(&mut self, ctx: &mut MpContext<'_, u8, bool>) {
                self.started = true;
                ctx.broadcast(1);
            }
            fn on_message(&mut self, _f: ProcessId, _m: u8, ctx: &mut MpContext<'_, u8, bool>) {
                if !ctx.has_decided() {
                    // A delivery firing before our start would see
                    // started == false.
                    ctx.decide(self.started);
                }
            }
        }
        // LIFO maximally perturbs start ordering: late starts, early
        // deliveries. Every process must still observe its own start first.
        for seed in 0..20u64 {
            let outcome = MpSystem::new(5)
                .seed(seed)
                .run_boxed((0..5).map(|_| {
                    Box::new(StartGuard { started: false }) as DynMpProcess<u8, bool>
                }))
                .unwrap();
            assert!(
                outcome.decisions.values().all(|&ok| ok),
                "seed {seed}: a delivery fired before on_start"
            );
        }
    }

    #[test]
    fn first_decision_wins() {
        /// Decides twice; the second decision must be ignored.
        struct DoubleDecider;
        impl MpProcess for DoubleDecider {
            type Msg = ();
            type Output = u32;
            fn on_start(&mut self, ctx: &mut MpContext<'_, (), u32>) {
                ctx.decide(1);
                ctx.decide(2);
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut MpContext<'_, (), u32>) {}
        }
        let outcome = MpSystem::new(1)
            .run_boxed(std::iter::once(
                Box::new(DoubleDecider) as DynMpProcess<(), u32>
            ))
            .unwrap();
        assert_eq!(outcome.decisions[&0], 1);
    }
}
