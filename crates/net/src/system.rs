//! The message-passing runtime: the [`MpSubstrate`] implementation plus the
//! [`MpSystem`] facade over the substrate-generic [`kset_sim::System`].

use std::marker::PhantomData;

use kset_sim::{
    CallInfo, DelayRule, Effect, EventKind, FaultPlan, Fnv64, MetricsConfig, ProcessId, Scheduler,
    Session, SimError, StateDigest, Substrate, SubstrateAdv, SubstrateDigest, SubstrateFork,
    System,
};

use crate::outcome::MpOutcome;
use crate::process::{DynMpProcess, MpContext, MpProcess, RawAction};

/// The message-passing substrate: reliable point-to-point delivery over a
/// completely connected network.
///
/// Plugged into [`kset_sim::System`], this drives [`crate::MpProcess`]
/// state machines: the event payload is a message in transit, a `Send`
/// action posts a delivery event to its destination, and there is no shared
/// state — all communication is through the event pool. [`MpSystem`] is the
/// ready-made facade; use `MpSubstrate` directly only in substrate-generic
/// tooling.
pub struct MpSubstrate<M, V>(PhantomData<fn() -> (M, V)>);

impl<M, V> std::fmt::Debug for MpSubstrate<M, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MpSubstrate")
    }
}

impl<M: Clone, V> Substrate for MpSubstrate<M, V> {
    type Payload = M;
    type Process = DynMpProcess<M, V>;
    type Action = RawAction<M, V>;
    type Output = V;
    type Shared = ();

    fn new_shared(_n: usize) -> Self::Shared {}

    fn on_start(
        proc: &mut Self::Process,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = MpContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_start(&mut ctx);
    }

    fn on_step(
        proc: &mut Self::Process,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let mut ctx = MpContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_step(&mut ctx);
    }

    fn on_payload(
        proc: &mut Self::Process,
        msg: M,
        source: Option<ProcessId>,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let from = source.expect("message delivery has a source");
        let mut ctx = MpContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_message(from, msg, &mut ctx);
    }

    fn apply(
        action: Self::Action,
        me: ProcessId,
        n: usize,
        _shared: &mut Self::Shared,
    ) -> Result<Effect<M, V>, SimError> {
        Ok(match action {
            RawAction::Send(to, m) => {
                if to >= n {
                    return Err(SimError::ProcessOutOfRange { pid: to, n });
                }
                Effect::Post {
                    kind: EventKind::MessageDelivery,
                    target: to,
                    source: me,
                    payload: m,
                }
            }
            RawAction::Decide(v) => Effect::Decide(v),
            RawAction::ScheduleStep => Effect::Step,
        })
    }
}

/// Byzantine in-transit corruption for `u64`-valued protocol messages: a
/// forged delivery hands the receiver the adversary's value in place of the
/// sent one, through the exact same `on_message` path. Only the
/// `u64`-message instantiation can interpret a forged `u64`, so the impl is
/// deliberately not generic over `M`.
impl<V> SubstrateAdv for MpSubstrate<u64, V> {
    fn on_forged(
        proc: &mut Self::Process,
        _msg: u64,
        forged: u64,
        source: Option<ProcessId>,
        _shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    ) {
        let from = source.expect("message delivery has a source");
        let mut ctx = MpContext::new(info.me, info.n, info.now, info.decided, out);
        proc.on_message(from, forged, &mut ctx);
    }
}

impl<M, V> SubstrateDigest for MpSubstrate<M, V>
where
    M: Clone + StateDigest,
    V: StateDigest,
{
    fn digest_process(proc: &Self::Process) -> u64 {
        proc.state_digest()
    }

    fn digest_payload(msg: &M, h: &mut Fnv64) {
        h.write_u8(2);
        msg.digest_into(h);
    }

    fn digest_shared(_shared: &Self::Shared, _h: &mut Fnv64) {}
}

impl<M, V> SubstrateFork for MpSubstrate<M, V>
where
    M: Clone + StateDigest,
    V: StateDigest,
{
    fn fork_process(proc: &Self::Process) -> Option<Self::Process> {
        proc.fork()
    }

    fn fork_shared(_shared: &Self::Shared) -> Self::Shared {}
}

/// Builder/runtime for one run of a message-passing system.
///
/// A thin facade binding [`kset_sim::System`] to the [`MpSubstrate`]:
/// configure the fault plan, scheduler, delay rules, and limits, then call
/// [`MpSystem::run`] with one process per slot. Byzantine slots (per the
/// fault plan) are filled by the caller with strategy objects — see the
/// `kset-adversary` crate.
///
/// # Examples
///
/// See the crate-level documentation.
#[derive(Debug)]
pub struct MpSystem(System);

impl MpSystem {
    /// A system of `n` processes, all correct, randomly scheduled (seed 0).
    pub fn new(n: usize) -> Self {
        MpSystem(System::new(n))
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.0.n()
    }

    /// Sets the fault plan. Its size must equal `n` (checked at run time).
    pub fn fault_plan(self, plan: FaultPlan) -> Self {
        MpSystem(self.0.fault_plan(plan))
    }

    /// Uses an explicit scheduler (adversary).
    pub fn scheduler(self, scheduler: impl Scheduler + 'static) -> Self {
        MpSystem(self.0.scheduler(scheduler))
    }

    /// Shorthand for a [`kset_sim::RandomScheduler`] with the given seed.
    pub fn seed(self, seed: u64) -> Self {
        MpSystem(self.0.seed(seed))
    }

    /// Adds a delay rule; the scheduler is wrapped in a
    /// [`kset_sim::GatedScheduler`] when any rules are present.
    pub fn delay_rule(self, rule: DelayRule) -> Self {
        MpSystem(self.0.delay_rule(rule))
    }

    /// Adds several delay rules at once.
    pub fn delay_rules(self, rules: impl IntoIterator<Item = DelayRule>) -> Self {
        MpSystem(self.0.delay_rules(rules))
    }

    /// Overrides the kernel event limit.
    pub fn event_limit(self, limit: u64) -> Self {
        MpSystem(self.0.event_limit(limit))
    }

    /// Enables trace recording with the given capacity.
    pub fn trace_capacity(self, capacity: usize) -> Self {
        MpSystem(self.0.trace_capacity(capacity))
    }

    /// Configures metrics collection; the outcome's
    /// [`metrics`](MpOutcome::metrics) field is populated when enabled.
    pub fn metrics(self, config: MetricsConfig) -> Self {
        MpSystem(self.0.metrics(config))
    }

    /// Runs the system with one boxed process per slot, taken from an
    /// iterator in process-id order.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_boxed<M: Clone, V>(
        self,
        procs: impl IntoIterator<Item = DynMpProcess<M, V>>,
    ) -> Result<MpOutcome<V>, SimError> {
        self.run(procs.into_iter().collect())
    }

    /// Runs the system, building each process from a factory closure.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_with<M: Clone, V>(
        self,
        factory: impl FnMut(ProcessId) -> DynMpProcess<M, V>,
    ) -> Result<MpOutcome<V>, SimError> {
        self.0.run_with::<MpSubstrate<M, V>, _>(factory)
    }

    /// Runs the system to completion.
    ///
    /// The run ends when every correct process has decided, when no events
    /// remain (in which case `terminated` is `false` if some correct process
    /// is still undecided), or with an error.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] if `procs.len()` or the fault plan size
    ///   differ from `n`, or `n == 0`.
    /// * [`SimError::EventLimitExceeded`] if the protocol livelocks.
    /// * [`SimError::ProcessOutOfRange`] if a process sends to an index
    ///   outside `0..n`.
    pub fn run<M: Clone, V>(self, procs: Vec<DynMpProcess<M, V>>) -> Result<MpOutcome<V>, SimError> {
        self.0.run::<MpSubstrate<M, V>>(procs)
    }

    /// Runs the system like [`MpSystem::run`], additionally computing a
    /// stable digest of the whole system state after every fired event.
    ///
    /// `digests[i]` fingerprints the state reached after the `i`-th event:
    /// every process's [`crate::MpProcess::state_digest`], its crashed flag and
    /// decision, plus an order-insensitive multiset hash of the pending
    /// event pool (kind, target, source, payload). Event *ids* are
    /// deliberately excluded — see [`kset_sim::System::run_digested`].
    /// Digests are maintained incrementally (only the dispatched process
    /// re-hashes; the pool hash is a running sum), with values identical
    /// to a from-scratch recomputation.
    ///
    /// # Errors
    ///
    /// See [`MpSystem::run`].
    pub fn run_digested<M, V>(
        self,
        procs: Vec<DynMpProcess<M, V>>,
    ) -> Result<(MpOutcome<V>, Vec<u64>), SimError>
    where
        M: Clone + StateDigest,
        V: StateDigest,
    {
        self.0.run_digested::<MpSubstrate<M, V>>(procs)
    }

    /// Builds a steppable [`MpSession`] instead of running to completion:
    /// drive it with [`kset_sim::Session::step`] until it reports
    /// [`kset_sim::Poll::Decided`] or [`kset_sim::Poll::Idle`], then
    /// collect the outcome with [`kset_sim::Session::finish`]. This is how
    /// a server interleaves many concurrent runs — `kset-serve` multiplexes
    /// millions of these over a worker pool.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] as for [`MpSystem::run`]; run-time
    /// errors surface from `step` instead.
    pub fn session<M: Clone, V>(
        self,
        procs: Vec<DynMpProcess<M, V>>,
    ) -> Result<MpSession<M, V>, SimError> {
        self.0.session::<MpSubstrate<M, V>>(procs)
    }
}

/// A steppable message-passing run: [`kset_sim::Session`] bound to the
/// [`MpSubstrate`], as built by [`MpSystem::session`].
pub type MpSession<M, V> = Session<MpSubstrate<M, V>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MpProcess;
    use kset_sim::FaultSpec;

    /// Broadcasts the input; decides the multiset minimum of the first
    /// `quorum` values received (its own included).
    struct MinOfQuorum {
        input: u64,
        quorum: usize,
        seen: Vec<u64>,
    }

    impl MinOfQuorum {
        fn boxed(input: u64, quorum: usize) -> DynMpProcess<u64, u64> {
            Box::new(MinOfQuorum {
                input,
                quorum,
                seen: Vec::new(),
            })
        }
    }

    impl MpProcess for MinOfQuorum {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut MpContext<'_, u64, u64>) {
            ctx.broadcast(self.input);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64, ctx: &mut MpContext<'_, u64, u64>) {
            if ctx.has_decided() {
                return;
            }
            self.seen.push(msg);
            if self.seen.len() >= self.quorum {
                ctx.decide(*self.seen.iter().min().expect("quorum >= 1"));
            }
        }
    }

    #[test]
    fn failure_free_run_decides_everywhere() {
        let outcome = MpSystem::new(4)
            .seed(3)
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(10 + i, 4)))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.decisions.len(), 4);
        // Everyone waited for all four values, so everyone decided min = 10.
        assert_eq!(outcome.correct_decision_set(), vec![10]);
        assert_eq!(outcome.stats.messages_delivered, 16);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            MpSystem::new(5)
                .seed(seed)
                .fault_plan(FaultPlan::silent_crashes(5, &[4]))
                .run_boxed((0..5).map(|i| MinOfQuorum::boxed(i, 4)))
                .unwrap()
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn silent_crash_means_no_messages_from_that_process() {
        let outcome = MpSystem::new(3)
            .seed(9)
            .fault_plan(FaultPlan::silent_crashes(3, &[0]))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // Process 0 never started: only 1 and 2 decided, and neither can
        // have seen 0's input.
        assert!(!outcome.decisions.contains_key(&0));
        assert!(outcome.correct_decision_set().iter().all(|&v| v >= 1));
    }

    #[test]
    fn waiting_for_too_many_messages_fails_termination() {
        // 3 processes, one silent: waiting for all 3 inputs can never finish.
        let outcome = MpSystem::new(3)
            .seed(1)
            .fault_plan(FaultPlan::silent_crashes(3, &[2]))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 3)))
            .unwrap();
        assert!(!outcome.terminated);
        assert!(outcome.decisions.is_empty());
    }

    #[test]
    fn crash_budget_cuts_a_broadcast() {
        // Process 0 may perform 2 actions: handling its start event and
        // sending to process 0 (itself). Its sends to 1 and 2 are cut.
        let mut plan = FaultPlan::all_correct(3);
        plan.set(0, FaultSpec::Crash { after_actions: 2 });
        let outcome = MpSystem::new(3)
            .seed(5)
            .fault_plan(plan)
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // 1 and 2 decide from {1, 2}: 0's input never reached them.
        assert_eq!(outcome.correct_decision_set(), vec![1]);
    }

    #[test]
    fn mismatched_process_count_is_rejected() {
        let err = MpSystem::new(3)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn mismatched_plan_size_is_rejected() {
        let err = MpSystem::new(3)
            .fault_plan(FaultPlan::all_correct(2))
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn zero_processes_is_rejected() {
        let err = MpSystem::new(0)
            .run_boxed(std::iter::empty::<DynMpProcess<u64, u64>>())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn event_limit_surfaces_as_error() {
        /// Pathological protocol: every step schedules another step.
        struct Spinner;
        impl MpProcess for Spinner {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut MpContext<'_, (), ()>) {
                ctx.schedule_step();
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut MpContext<'_, (), ()>) {}
            fn on_step(&mut self, ctx: &mut MpContext<'_, (), ()>) {
                ctx.schedule_step();
            }
        }
        let err = MpSystem::new(1)
            .event_limit(100)
            .run_boxed(std::iter::once(
                Box::new(Spinner) as DynMpProcess<(), ()>
            ))
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 100 });
    }

    #[test]
    fn trace_capacity_records_schedule() {
        let outcome = MpSystem::new(2)
            .seed(2)
            .trace_capacity(64)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(!outcome.trace.entries().is_empty());
    }

    #[test]
    fn metrics_follow_the_run() {
        let outcome = MpSystem::new(4)
            .seed(3)
            .metrics(MetricsConfig::enabled())
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(10 + i, 4)))
            .unwrap();
        let m = outcome.metrics.as_ref().expect("metrics enabled");
        // Every process broadcast once (4 sends each) and received all 16.
        assert_eq!(m.total_messages_sent(), 16);
        assert_eq!(
            m.per_process.iter().map(|p| p.messages_delivered).sum::<u64>(),
            outcome.stats.messages_delivered
        );
        // All four decided; decision latencies are recorded in virtual time.
        assert_eq!(m.decisions(), 4);
        for p in &m.per_process {
            assert_eq!(p.messages_sent, 4);
            assert!(p.decided_at.is_some());
        }
        assert!(m.peak_pending >= 4);
        assert!(m.peak_pending_bytes > m.peak_pending);
        // Disabled (the default) leaves the field empty.
        let off = MpSystem::new(2)
            .seed(3)
            .run_boxed((0..2).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(off.metrics.is_none());
    }

    #[test]
    fn metrics_attribute_crash_drops() {
        // Process 0's budget covers its start handler and the first send of
        // its broadcast — the send to itself. The crash then cancels that
        // pending self-delivery, so a drop is attributed to process 0 on
        // every schedule (a silent crash only drops events if the scheduler
        // happens to delay the start past other broadcasts).
        let mut plan = FaultPlan::all_correct(3);
        plan.set(0, FaultSpec::Crash { after_actions: 2 });
        let outcome = MpSystem::new(3)
            .seed(9)
            .metrics(MetricsConfig::enabled())
            .fault_plan(plan)
            .run_boxed((0..3).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        let m = outcome.metrics.unwrap();
        // Only the crashed process loses events to cancellation.
        assert!(m.per_process[0].events_dropped_by_crash > 0);
        assert_eq!(m.per_process[1].events_dropped_by_crash, 0);
        assert_eq!(m.per_process[2].events_dropped_by_crash, 0);
        assert_eq!(
            m.per_process.iter().map(|p| p.events_dropped_by_crash).sum::<u64>(),
            outcome.stats.events_dropped_by_crash
        );
        assert!(m.per_process[0].decided_at.is_none());
    }

    #[test]
    fn delay_rule_shapes_the_run() {
        use kset_sim::DelayRule;
        // Isolate {0,1}: they must decide before hearing from {2,3}.
        let outcome = MpSystem::new(4)
            .seed(4)
            .delay_rule(DelayRule::isolate_until_decided(vec![0, 1]))
            .run_boxed((0..4).map(|i| MinOfQuorum::boxed(i, 2)))
            .unwrap();
        assert!(outcome.terminated);
        // 0 and 1 can only have seen inputs from {0, 1}.
        for p in [0usize, 1] {
            assert!(outcome.decisions[&p] <= 1);
        }
    }

    #[test]
    fn on_start_always_precedes_deliveries() {
        /// Records whether a message ever arrived before on_start.
        struct StartGuard {
            started: bool,
        }
        impl MpProcess for StartGuard {
            type Msg = u8;
            type Output = bool;
            fn on_start(&mut self, ctx: &mut MpContext<'_, u8, bool>) {
                self.started = true;
                ctx.broadcast(1);
            }
            fn on_message(&mut self, _f: ProcessId, _m: u8, ctx: &mut MpContext<'_, u8, bool>) {
                if !ctx.has_decided() {
                    // A delivery firing before our start would see
                    // started == false.
                    ctx.decide(self.started);
                }
            }
        }
        // LIFO maximally perturbs start ordering: late starts, early
        // deliveries. Every process must still observe its own start first.
        for seed in 0..20u64 {
            let outcome = MpSystem::new(5)
                .seed(seed)
                .run_boxed((0..5).map(|_| {
                    Box::new(StartGuard { started: false }) as DynMpProcess<u8, bool>
                }))
                .unwrap();
            assert!(
                outcome.decisions.values().all(|&ok| ok),
                "seed {seed}: a delivery fired before on_start"
            );
        }
    }

    #[test]
    fn first_decision_wins() {
        /// Decides twice; the second decision must be ignored.
        struct DoubleDecider;
        impl MpProcess for DoubleDecider {
            type Msg = ();
            type Output = u32;
            fn on_start(&mut self, ctx: &mut MpContext<'_, (), u32>) {
                ctx.decide(1);
                ctx.decide(2);
            }
            fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut MpContext<'_, (), u32>) {}
        }
        let outcome = MpSystem::new(1)
            .run_boxed(std::iter::once(
                Box::new(DoubleDecider) as DynMpProcess<(), u32>
            ))
            .unwrap();
        assert_eq!(outcome.decisions[&0], 1);
    }
}
