//! Result of a message-passing run.

/// Everything observable at the end of a message-passing run.
///
/// Since the runtime became substrate-generic this is an alias for the
/// shared [`kset_sim::Outcome`]; all fields and helpers
/// ([`correct_decision_set`](kset_sim::Outcome::correct_decision_set),
/// [`decision_set`](kset_sim::Outcome::decision_set),
/// [`correct_decisions`](kset_sim::Outcome::correct_decisions)) live there.
pub type MpOutcome<V> = kset_sim::Outcome<V>;
