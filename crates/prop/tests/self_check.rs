//! Self-tests for the harness's failure contract: a failing property
//! shrinks to a stable minimal case, the report carries a replay seed,
//! and `KSET_PROP_SEED` reproduces the identical shrunk case.

use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

use kset_prop::{in_range, prop_assert, vec_exact, Runner, SEED_ENV};

/// Serializes the tests that mutate the process environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f`, which must panic, and return its panic message.
fn failure_report(f: impl FnOnce()) -> String {
    let payload = std::panic::catch_unwind(AssertUnwindSafe(f))
        .expect_err("property was expected to fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload");
    }
}

/// The `minimal case:` and `error:` lines of a report — the part that
/// must be identical between a fresh run and a seed replay.
fn minimal_case_of(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            l.starts_with("minimal case:") || l.starts_with("error:")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The seed printed after the first `KSET_PROP_SEED=` in a report.
fn replay_seed_of(report: &str) -> u64 {
    let tail = report
        .split(&format!("{SEED_ENV}="))
        .nth(1)
        .expect("report must print a replay seed");
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("replay seed must be a decimal u64")
}

/// A deliberately failing property: fails whenever `n >= 10`, so the
/// shrunk minimal case is exactly `n = 10` with an all-zero vector.
fn run_failing_property() {
    Runner::new("self_check_failing_property").cases(64).run(
        (in_range(2usize..30), vec_exact(in_range(0u64..100), 4)),
        |(n, extras)| {
            prop_assert!(n < 10, "n = {n}, extras = {extras:?}");
            Ok(())
        },
    );
}

#[test]
fn failing_property_shrinks_to_a_stable_minimal_case() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(SEED_ENV);
    let first = failure_report(run_failing_property);
    let second = failure_report(run_failing_property);
    assert_eq!(first, second, "shrinking must be deterministic");
    assert!(
        first.contains("minimal case: (10, [0, 0, 0, 0])"),
        "greedy shrinking should reach the boundary case; report was:\n{first}"
    );
    assert!(first.contains(&format!("{SEED_ENV}=")), "report must print a replay seed");
}

#[test]
fn seed_env_replays_the_identical_shrunk_case() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(SEED_ENV);
    let fresh = failure_report(run_failing_property);
    let seed = replay_seed_of(&fresh);

    std::env::set_var(SEED_ENV, seed.to_string());
    let replayed = failure_report(run_failing_property);
    std::env::remove_var(SEED_ENV);

    assert!(replayed.contains(&format!("under {SEED_ENV}={seed} replay")));
    assert_eq!(
        minimal_case_of(&fresh),
        minimal_case_of(&replayed),
        "the replayed run must shrink to the identical minimal case"
    );
}

#[test]
fn passing_property_does_not_panic_under_replay_seed() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var(SEED_ENV, "12345");
    Runner::new("self_check_passing_property")
        .cases(16)
        .run(in_range(0u64..100), |v| {
            prop_assert!(v < 100);
            Ok(())
        });
    std::env::remove_var(SEED_ENV);
}

#[test]
fn rejected_cases_are_discarded_not_failed() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(SEED_ENV);
    // Rejecting every case must not fail the property.
    Runner::new("self_check_all_rejected")
        .cases(8)
        .run(in_range(0u64..100), |v| {
            kset_prop::prop_assume!(v >= 100);
            Ok(())
        });
}

#[test]
fn prop_assert_eq_reports_both_sides() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(SEED_ENV);
    let report = failure_report(|| {
        Runner::new("self_check_assert_eq").cases(8).run(in_range(0u64..100), |v| {
            kset_prop::prop_assert_eq!(v % 2, 0, "v = {v}");
            Ok(())
        });
    });
    assert!(report.contains("left:"), "report was:\n{report}");
    assert!(report.contains("right:"), "report was:\n{report}");
}

#[test]
fn panicking_property_is_shrunk_like_a_failing_one() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(SEED_ENV);
    let report = failure_report(|| {
        Runner::new("self_check_panicking_property")
            .cases(64)
            .run(in_range(0u64..1000), |v| {
                assert!(v < 10, "plain assert, not prop_assert");
                Ok(())
            });
    });
    assert!(report.contains("minimal case: 10"), "report was:\n{report}");
    assert!(report.contains("panicked"), "report was:\n{report}");
}
