//! # kset-prop — in-tree deterministic property testing
//!
//! A minimal, dependency-free property-testing harness for the `kset`
//! workspace, replacing the external `proptest` dev-dependency so the
//! randomized property tier builds and runs fully offline.
//!
//! ## Model
//!
//! * **Generators** ([`Gen`], built from [`in_range`], [`choice`],
//!   [`bools`], [`unit_f64`], [`vec_in`]/[`vec_exact`], [`option_of`],
//!   [`btree_map_in`], tuples, and [`GenExt::map`]) draw raw `u64`
//!   choices from a [`Source`] — a recorded *choice tape*.
//! * **The runner** ([`Runner`]) derives a stable base seed from the
//!   property name, evaluates a configurable number of cases, and on
//!   failure **shrinks the tape greedily** (block deletions, then
//!   per-choice reductions toward zero). Raw choice `0` always maps to
//!   a generator's simplest value, so tape-level shrinking composes
//!   through arbitrary generator nesting.
//! * **Replay**: every failure report prints a `KSET_PROP_SEED=<seed>`
//!   line; exporting that variable ([`SEED_ENV`]) re-runs exactly that
//!   case and re-shrinks it deterministically to the identical minimal
//!   case — mirroring how the model checker replays counterexample
//!   schedules byte-stably.
//!
//! ## Example
//!
//! ```
//! use kset_prop::{in_range, prop_assert, vec_in, Runner};
//!
//! Runner::new("doctest_sum_is_bounded").cases(64).run(
//!     (in_range(0u64..10), vec_in(in_range(0u64..10), 0..5)),
//!     |(x, xs)| {
//!         prop_assert!(x + xs.iter().sum::<u64>() < 50, "x = {x}, xs = {xs:?}");
//!         Ok(())
//!     },
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

mod gen;
mod rng;
mod source;
mod runner;

pub use gen::{
    bools, btree_map_in, choice, in_range, option_of, unit_f64, vec_exact, vec_in, BTreeMapGen,
    BoolGen, Choice, Gen, GenExt, Map, OptionGen, RangeGen, TapeInt, UnitF64, VecGen,
};
pub use rng::{fnv64, SplitMix64};
pub use runner::{CaseResult, Failed, Runner, SEED_ENV};
pub use source::Source;

/// Fail the current case unless `cond` holds.
///
/// Expands to an early `return Err(...)`, so it is only usable inside a
/// property closure returning [`CaseResult`]. An optional trailing
/// format string and arguments are appended to the report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::new(::std::format!(
                "assertion failed: `{}` at {}:{}",
                ::core::stringify!($cond),
                ::core::file!(),
                ::core::line!(),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::new(::std::format!(
                "assertion failed: `{}` at {}:{}: {}",
                ::core::stringify!($cond),
                ::core::file!(),
                ::core::line!(),
                ::std::format!($($fmt)+),
            )));
        }
    };
}

/// Fail the current case unless the two expressions compare equal,
/// reporting both values. Optional trailing format arguments as in
/// [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::Failed::new(::std::format!(
                "assertion failed: `{} == {}` at {}:{}\n    left: {:?}\n    right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::core::file!(),
                ::core::line!(),
                l,
                r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::Failed::new(::std::format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n    left: {:?}\n    right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::core::file!(),
                ::core::line!(),
                ::std::format!($($fmt)+),
                l,
                r,
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds: the runner counts it
/// as rejected rather than failed, and the shrinker never accepts a
/// candidate that trips an assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::rejected());
        }
    };
}
