//! Deterministic pseudo-randomness for the harness.
//!
//! The harness never touches OS entropy: every case is derived from a
//! stable base seed (a hash of the property name, unless overridden via
//! the replay environment variable), so a red property fails identically
//! on every machine and every run.

/// SplitMix64 (Steele, Lea & Flood): a tiny full-period 64-bit generator.
///
/// Chosen because it is seedable from a single `u64`, has no warm-up
/// weakness on small seeds, and is trivially portable — the whole
/// deterministic-replay contract of the harness rests on this function
/// producing the same stream everywhere.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over `bytes`: the stable name→seed hash for [`crate::Runner`].
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fnv64_separates_names() {
        assert_ne!(fnv64(b"floodmin"), fnv64(b"protocol_a"));
        // Pinned so a silent hash change (which would re-seed every
        // property in the tree) shows up as a test failure.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
    }
}
