//! Value generators over the choice tape.
//!
//! Every generator maps raw choice `0` to its simplest value (range
//! minimum, `false`, `None`, empty/shortest collection), which is the
//! contract the tape shrinker relies on: driving raw choices toward
//! zero drives generated values toward simple.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::source::Source;

/// A deterministic value generator: same tape in, same value out.
pub trait Gen {
    /// The type of generated values.
    type Value;

    /// Produce one value, consuming choices from `src`.
    fn generate(&self, src: &mut Source) -> Self::Value;
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;

    fn generate(&self, src: &mut Source) -> Self::Value {
        (**self).generate(src)
    }
}

/// Combinators available on every generator.
pub trait GenExt: Gen + Sized {
    /// A generator applying `f` to each generated value — the composed
    /// value shrinks exactly as the underlying tuple of parts does.
    fn map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<G: Gen> GenExt for G {}

/// See [`GenExt::map`].
#[derive(Debug, Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;

    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait TapeInt: Copy + PartialOrd + std::fmt::Debug {
    /// Map a raw choice into `lo..hi` (requires `lo < hi`); raw `0`
    /// must map to `lo`.
    fn from_raw(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_tape_int {
    ($($t:ty),*) => {$(
        impl TapeInt for $t {
            fn from_raw(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + (raw % span) as $t
            }
        }
    )*};
}

impl_tape_int!(u8, u16, u32, u64, usize);

/// See [`in_range`].
#[derive(Debug, Clone)]
pub struct RangeGen<T> {
    lo: T,
    hi: T,
}

/// Uniform integers in `lo..hi` (half-open, like proptest's `lo..hi`).
///
/// Panics at construction if the range is empty. Shrinks toward `lo`.
pub fn in_range<T: TapeInt>(r: Range<T>) -> RangeGen<T> {
    assert!(r.start < r.end, "in_range: empty range {:?}..{:?}", r.start, r.end);
    RangeGen { lo: r.start, hi: r.end }
}

impl<T: TapeInt> Gen for RangeGen<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        T::from_raw(src.next_raw(), self.lo, self.hi)
    }
}

/// See [`bools`].
#[derive(Debug, Clone)]
pub struct BoolGen;

/// Uniform booleans; shrinks toward `false`.
pub fn bools() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, src: &mut Source) -> bool {
        src.next_raw() & 1 == 1
    }
}

/// See [`unit_f64`].
#[derive(Debug, Clone)]
pub struct UnitF64;

/// Uniform `f64` in `[0, 1)`; shrinks toward `0.0`.
pub fn unit_f64() -> UnitF64 {
    UnitF64
}

impl Gen for UnitF64 {
    type Value = f64;

    fn generate(&self, src: &mut Source) -> f64 {
        // 53 high-entropy bits, the exact precision of an f64 mantissa.
        (src.next_raw() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// See [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T> {
    items: Vec<T>,
}

/// One of the given items, uniformly; shrinks toward the first.
///
/// Panics at construction if `items` is empty.
pub fn choice<T: Clone>(items: Vec<T>) -> Choice<T> {
    assert!(!items.is_empty(), "choice: no items to choose from");
    Choice { items }
}

impl<T: Clone> Gen for Choice<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> T {
        self.items[(src.next_raw() % self.items.len() as u64) as usize].clone()
    }
}

/// See [`option_of`].
#[derive(Debug, Clone)]
pub struct OptionGen<G> {
    inner: G,
}

/// `None` one time in four, `Some(inner)` otherwise; shrinks toward
/// `None` (raw choice `0` selects it).
pub fn option_of<G: Gen>(inner: G) -> OptionGen<G> {
    OptionGen { inner }
}

impl<G: Gen> Gen for OptionGen<G> {
    type Value = Option<G::Value>;

    fn generate(&self, src: &mut Source) -> Option<G::Value> {
        if src.next_raw() % 4 == 0 {
            None
        } else {
            Some(self.inner.generate(src))
        }
    }
}

/// See [`vec_in`] / [`vec_exact`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

/// A `Vec` whose length is drawn from `len` (half-open); shrinks toward
/// the minimum length and element-wise toward each element's simplest
/// value.
pub fn vec_in<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "vec_in: empty length range");
    VecGen { elem, len }
}

/// A `Vec` of exactly `len` elements (no length choice on the tape).
pub fn vec_exact<G: Gen>(elem: G, len: usize) -> VecGen<G> {
    VecGen { elem, len: len..len + 1 }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, src: &mut Source) -> Vec<G::Value> {
        let len = if self.len.start + 1 == self.len.end {
            self.len.start
        } else {
            usize::from_raw(src.next_raw(), self.len.start, self.len.end)
        };
        (0..len).map(|_| self.elem.generate(src)).collect()
    }
}

/// See [`btree_map_in`].
#[derive(Debug, Clone)]
pub struct BTreeMapGen<K, V> {
    key: K,
    val: V,
    len: Range<usize>,
}

/// A `BTreeMap` built from up to `len` drawn key/value pairs (duplicate
/// keys collapse, so the map may come out smaller than the drawn
/// length); shrinks toward empty.
pub fn btree_map_in<K: Gen, V: Gen>(key: K, val: V, len: Range<usize>) -> BTreeMapGen<K, V>
where
    K::Value: Ord,
{
    assert!(len.start < len.end, "btree_map_in: empty length range");
    BTreeMapGen { key, val, len }
}

impl<K: Gen, V: Gen> Gen for BTreeMapGen<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, src: &mut Source) -> BTreeMap<K::Value, V::Value> {
        let len = usize::from_raw(src.next_raw(), self.len.start, self.len.end);
        (0..len)
            .map(|_| (self.key.generate(src), self.val.generate(src)))
            .collect()
    }
}

macro_rules! impl_tuple_gen {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, src: &mut Source) -> Self::Value {
                // Left-to-right, matching declaration order, so a tape
                // prefix always corresponds to a prefix of the fields.
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}

impl_tuple_gen!(A.0, B.1);
impl_tuple_gen!(A.0, B.1, C.2);
impl_tuple_gen!(A.0, B.1, C.2, D.3);
impl_tuple_gen!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_gen!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with<G: Gen>(g: &G, tape: Vec<u64>) -> G::Value {
        g.generate(&mut Source::replay(tape))
    }

    #[test]
    fn zero_tape_yields_simplest_values() {
        assert_eq!(gen_with(&in_range(3usize..9), vec![]), 3);
        assert!(!gen_with(&bools(), vec![]));
        assert_eq!(gen_with(&unit_f64(), vec![]), 0.0);
        assert_eq!(gen_with(&choice(vec!['a', 'b']), vec![]), 'a');
        assert_eq!(gen_with(&option_of(in_range(0u8..4)), vec![]), None);
        assert_eq!(gen_with(&vec_in(in_range(0u64..5), 2..7), vec![]), vec![0, 0]);
        assert!(gen_with(&btree_map_in(in_range(0u8..4), bools(), 0..5), vec![]).is_empty());
    }

    #[test]
    fn values_land_in_their_ranges() {
        let g = (in_range(2usize..10), in_range(0u64..8), unit_f64());
        let mut src = Source::record(99);
        for _ in 0..200 {
            let (n, v, f) = g.generate(&mut src);
            assert!((2..10).contains(&n));
            assert!(v < 8);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_exact_consumes_no_length_choice() {
        let v = gen_with(&vec_exact(in_range(0u64..100), 3), vec![7, 8, 9]);
        assert_eq!(v, vec![7, 8, 9]);
    }

    #[test]
    fn map_composes_over_the_same_tape() {
        let g = (in_range(0u64..10), in_range(0u64..10)).map(|(a, b)| a + b);
        assert_eq!(gen_with(&g, vec![3, 4]), 7);
    }

    #[test]
    fn btree_map_collapses_duplicate_keys() {
        let g = btree_map_in(in_range(0u8..2), in_range(0u64..9), 4..5);
        let m = gen_with(&g, vec![0, 1, 5, 1, 6, 0, 7, 1, 8]);
        assert_eq!(m.len(), 2); // keys 1 and 0, later values win
        assert_eq!(m[&1], 8);
    }
}
