//! The choice tape: the single level at which shrinking operates.
//!
//! Generators never hold randomness of their own; they pull raw `u64`
//! choices from a [`Source`]. In *record* mode the source draws fresh
//! choices from a seeded PRNG and remembers them; in *replay* mode it
//! feeds back a previously recorded (possibly mutated) tape, padding
//! with zeros once the tape runs out. Because every generator maps
//! raw choice `0` to its simplest value, "pad with zeros" means
//! "simplify whatever the tape no longer specifies" — which is what
//! makes tape-level greedy shrinking sound for arbitrarily composed
//! generators.

use crate::rng::SplitMix64;

/// Hard cap on choices drawn for a single case, so a generator bug
/// (e.g. a length computed from an unbounded draw) fails fast instead
/// of consuming unbounded memory.
const MAX_DRAWS: usize = 1 << 20;

/// A stream of raw `u64` choices, recorded or replayed.
#[derive(Debug)]
pub struct Source {
    /// `Some` in record mode; `None` when replaying a fixed tape.
    rng: Option<SplitMix64>,
    tape: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A recording source: draws come from a PRNG seeded with `seed`
    /// and are appended to the tape.
    pub fn record(seed: u64) -> Self {
        Self {
            rng: Some(SplitMix64::new(seed)),
            tape: Vec::new(),
            pos: 0,
        }
    }

    /// A replaying source: draws come from `tape`, then zeros.
    pub fn replay(tape: Vec<u64>) -> Self {
        Self {
            rng: None,
            tape,
            pos: 0,
        }
    }

    /// The next raw choice.
    pub fn next_raw(&mut self) -> u64 {
        assert!(
            self.pos < MAX_DRAWS,
            "kset-prop: a single case drew more than {MAX_DRAWS} choices; \
             a generator is likely unbounded"
        );
        let v = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else if let Some(rng) = &mut self.rng {
            let v = rng.next_u64();
            self.tape.push(v);
            v
        } else {
            0
        };
        self.pos += 1;
        v
    }

    /// The prefix of the tape actually consumed so far.
    ///
    /// In replay mode a candidate tape may be longer than what the
    /// generator reads (structure changed under mutation); the shrinker
    /// keeps only this prefix so trailing junk cannot accumulate.
    pub fn consumed(&self) -> &[u64] {
        &self.tape[..self.pos.min(self.tape.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_yields_identical_draws() {
        let mut rec = Source::record(7);
        let drawn: Vec<u64> = (0..16).map(|_| rec.next_raw()).collect();
        let mut rep = Source::replay(rec.consumed().to_vec());
        let replayed: Vec<u64> = (0..16).map(|_| rep.next_raw()).collect();
        assert_eq!(drawn, replayed);
    }

    #[test]
    fn replay_pads_with_zeros_past_the_tape() {
        let mut rep = Source::replay(vec![9, 9]);
        assert_eq!(rep.next_raw(), 9);
        assert_eq!(rep.next_raw(), 9);
        assert_eq!(rep.next_raw(), 0);
        assert_eq!(rep.next_raw(), 0);
        assert_eq!(rep.consumed(), &[9, 9]);
    }

    #[test]
    fn consumed_is_the_read_prefix_only() {
        let mut rep = Source::replay(vec![1, 2, 3, 4]);
        rep.next_raw();
        rep.next_raw();
        assert_eq!(rep.consumed(), &[1, 2]);
    }
}
