//! The case runner: seeded case generation, greedy tape shrinking, and
//! the replay-seed failure contract.
//!
//! A property is a closure `Fn(Value) -> CaseResult`. The runner derives
//! a stable base seed from the property name, draws `cases` case seeds
//! from it, generates one value per case, and evaluates the property.
//! On the first failure it greedily shrinks the recorded choice tape
//! (block deletions, then per-choice value reductions) and panics with
//! the minimal case, the error, and a `KSET_PROP_SEED=<seed>` line;
//! exporting that variable re-runs exactly that case — generation and
//! shrinking are deterministic, so the replay reaches the identical
//! minimal case.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::gen::Gen;
use crate::rng::{fnv64, SplitMix64};
use crate::source::Source;

/// Environment variable holding a decimal case seed to replay.
///
/// The seed applies to every [`Runner`] in the process, so combine it
/// with a test filter: `KSET_PROP_SEED=123 cargo test my_property`.
pub const SEED_ENV: &str = "KSET_PROP_SEED";

/// Why a property case did not pass: a real failure, or a rejected
/// (assumption-violating) case that the runner discards.
#[derive(Debug, Clone)]
pub struct Failed {
    message: String,
    rejected: bool,
}

impl Failed {
    /// A genuine assertion failure carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), rejected: false }
    }

    /// A discarded case (see the `prop_assume!` macro).
    pub fn rejected() -> Self {
        Self { message: String::new(), rejected: true }
    }
}

/// What a property returns per case. Build `Err` values with the
/// `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
pub type CaseResult = Result<(), Failed>;

// Suppress the default panic hook while the runner probes a case, so
// shrinking a panicking property does not spam hundreds of backtraces.
// The hook chains to the previous one for panics outside the harness
// (the flag is thread-local, so parallel non-harness tests still
// report normally).
thread_local! {
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// A configured property run; see the crate docs for the full contract.
#[derive(Debug)]
pub struct Runner {
    name: String,
    cases: u32,
    shrink_budget: u32,
}

/// Outcome of probing one candidate tape.
enum Probe {
    Pass,
    Reject,
    /// Still failing: the consumed tape prefix and the failure message.
    Fail(Vec<u64>, String),
}

impl Runner {
    /// A runner for the property called `name` (use the test function's
    /// name: it seeds the deterministic case stream and is printed in
    /// failure reports). Defaults: 256 cases, shrink budget 4096.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), cases: 256, shrink_budget: 4096 }
    }

    /// Number of cases to run (each case draws a fresh seeded value).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Cap on shrink probes after a failure (the minimal case is only
    /// as minimal as this budget allows; the default is plenty for
    /// tapes of a few hundred choices).
    pub fn shrink_budget(mut self, budget: u32) -> Self {
        self.shrink_budget = budget;
        self
    }

    /// Run the property, panicking on the first (shrunk) failure.
    ///
    /// Honors [`SEED_ENV`]: when set, only that single case seed is
    /// generated, evaluated, and (if failing) shrunk — reproducing a
    /// previously reported failure byte-for-byte.
    pub fn run<G, P>(&self, gen: G, prop: P)
    where
        G: Gen,
        G::Value: Debug,
        P: Fn(G::Value) -> CaseResult,
    {
        install_quiet_hook();
        if let Ok(raw) = std::env::var(SEED_ENV) {
            let seed: u64 = raw.trim().parse().unwrap_or_else(|_| {
                panic!("[kset-prop] {SEED_ENV}={raw:?} is not a decimal u64 seed")
            });
            match self.probe_seed(&gen, &prop, seed) {
                Probe::Pass => eprintln!(
                    "[kset-prop] property '{}': {SEED_ENV}={seed} replay passed",
                    self.name
                ),
                Probe::Reject => eprintln!(
                    "[kset-prop] property '{}': {SEED_ENV}={seed} replay was rejected by prop_assume!",
                    self.name
                ),
                Probe::Fail(tape, message) => {
                    let header = format!("failed under {SEED_ENV}={seed} replay");
                    self.report(&gen, &prop, tape, message, seed, &header);
                }
            }
            return;
        }

        let mut seeds = SplitMix64::new(fnv64(self.name.as_bytes()));
        let mut rejected = 0u32;
        for case in 0..self.cases {
            let seed = seeds.next_u64();
            match self.probe_seed(&gen, &prop, seed) {
                Probe::Pass => {}
                Probe::Reject => rejected += 1,
                Probe::Fail(tape, message) => {
                    let header = format!("failed at case {}/{}", case + 1, self.cases);
                    self.report(&gen, &prop, tape, message, seed, &header);
                }
            }
        }
        if rejected == self.cases && self.cases > 0 {
            eprintln!(
                "[kset-prop] property '{}': all {} cases were rejected by prop_assume! — \
                 the property asserted nothing",
                self.name, rejected
            );
        }
    }

    /// Generate and evaluate the case drawn from `seed`.
    fn probe_seed<G, P>(&self, gen: &G, prop: &P, seed: u64) -> Probe
    where
        G: Gen,
        P: Fn(G::Value) -> CaseResult,
    {
        probe(gen, prop, &mut Source::record(seed))
    }

    /// Shrink the failing tape, then panic with the final report.
    fn report<G, P>(
        &self,
        gen: &G,
        prop: &P,
        tape: Vec<u64>,
        message: String,
        seed: u64,
        header: &str,
    ) -> !
    where
        G: Gen,
        G::Value: Debug,
        P: Fn(G::Value) -> CaseResult,
    {
        let (tape, message, steps, probes) =
            shrink(gen, prop, tape, message, self.shrink_budget);
        // Regenerate the minimal value for display; replay is exact.
        let value = gen.generate(&mut Source::replay(tape));
        panic!(
            "[kset-prop] property '{name}' {header}.\n  \
             minimal case: {value:?}\n  \
             error: {message}\n  \
             shrunk: {steps} step(s), {probes} probe(s)\n  \
             replay: {SEED_ENV}={seed} reruns exactly this case \
             (e.g. `{SEED_ENV}={seed} cargo test {name}`)",
            name = self.name,
        );
    }
}

/// Replay `src` through the generator and property, catching panics so
/// a panicking property shrinks like an `Err`-returning one.
fn probe<G, P>(gen: &G, prop: &P, src: &mut Source) -> Probe
where
    G: Gen,
    P: Fn(G::Value) -> CaseResult,
{
    PROBING.with(|p| p.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(gen.generate(src))));
    PROBING.with(|p| p.set(false));
    match outcome {
        Ok(Ok(())) => Probe::Pass,
        Ok(Err(f)) if f.rejected => Probe::Reject,
        Ok(Err(f)) => Probe::Fail(src.consumed().to_vec(), f.message),
        Err(payload) => Probe::Fail(src.consumed().to_vec(), panic_message(payload)),
    }
}

/// Greedy tape shrinking: repeat (block deletions of sizes 8/4/2/1,
/// then per-choice reductions toward zero) until a fixpoint or the
/// probe budget runs out. Every accepted candidate strictly shortens
/// the tape or lowers one choice, so the loop terminates.
fn shrink<G, P>(
    gen: &G,
    prop: &P,
    mut tape: Vec<u64>,
    mut message: String,
    budget: u32,
) -> (Vec<u64>, String, u32, u32)
where
    G: Gen,
    P: Fn(G::Value) -> CaseResult,
{
    let mut steps = 0u32;
    let mut probes = 0u32;
    let try_accept = |tape: &mut Vec<u64>,
                          message: &mut String,
                          steps: &mut u32,
                          probes: &mut u32,
                          cand: Vec<u64>|
     -> bool {
        *probes += 1;
        match probe(gen, prop, &mut Source::replay(cand)) {
            Probe::Fail(consumed, msg) => {
                *tape = consumed;
                *message = msg;
                *steps += 1;
                true
            }
            _ => false,
        }
    };

    'passes: loop {
        let mut improved = false;
        // Block deletions: drop `size` consecutive choices. Padding
        // zeros past the tape end means deletion simplifies whatever
        // structure those choices were feeding.
        for size in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= tape.len() {
                if probes >= budget {
                    break 'passes;
                }
                let mut cand = tape[..i].to_vec();
                cand.extend_from_slice(&tape[i + size..]);
                if try_accept(&mut tape, &mut message, &mut steps, &mut probes, cand) {
                    improved = true; // same i: the next block shifted into place
                } else {
                    i += 1;
                }
            }
        }
        // Per-choice value reductions: zero, halve, decrement.
        let mut i = 0;
        while i < tape.len() {
            loop {
                if probes >= budget {
                    break 'passes;
                }
                let v = tape[i];
                let mut lowered = false;
                for cand_v in [0, v / 2, v.saturating_sub(1)] {
                    if cand_v >= v {
                        continue;
                    }
                    let mut cand = tape.clone();
                    cand[i] = cand_v;
                    if try_accept(&mut tape, &mut message, &mut steps, &mut probes, cand) {
                        improved = true;
                        lowered = true;
                        break;
                    }
                }
                if !lowered || i >= tape.len() {
                    break;
                }
            }
            i += 1;
        }
        if !improved {
            break;
        }
    }
    (tape, message, steps, probes)
}
