//! Figure 6 bench: the SM/Byz protocols — Protocol E against register
//! scribblers (WV2 panel) and Protocol F against silent Byzantine slots
//! (SV2/RV2 panels) — plus the analytic classification of the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_adversary::{plans, SmSilent};
use kset_bench::{inputs, run_protocol_e_byz, DEFAULT_VALUE};
use kset_protocols::ProtocolF;
use kset_regions::{Atlas, Model};
use kset_shmem::{DynSmProcess, SmSystem};

const N: usize = 64;

fn bench_protocols(c: &mut Criterion) {
    // WV2 panel: Protocol E vs scribbling adversaries.
    let mut group = c.benchmark_group("fig6/protocol_e_wv2_byz");
    group.sample_size(10);
    for t in [1usize, 8, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_protocol_e_byz(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // SV2 panel: Protocol F with silent Byzantine prefixes, k > t + 1.
    let mut group = c.benchmark_group("fig6/protocol_f_sv2_byz");
    group.sample_size(10);
    for t in [1usize, 8, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| {
                let ins = inputs(N);
                let outcome = SmSystem::new(N)
                    .seed(1)
                    .fault_plan(plans::first_t_byzantine(N, t))
                    .run_with(|p| -> DynSmProcess<u64, u64> {
                        if p < t {
                            Box::new(SmSilent::new())
                        } else {
                            ProtocolF::boxed(N, t, ins[p], DEFAULT_VALUE)
                        }
                    })
                    .unwrap();
                black_box(outcome)
            })
        });
    }
    group.finish();

    c.bench_function("fig6/atlas_classification_n64", |b| {
        b.iter(|| black_box(Atlas::compute(Model::SmByzantine, N)))
    });
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
