//! Figure 2 bench: the MP/CR protocols behind the panels, at the paper's
//! `n = 64`, sweeping the fault budget `t` across each solvable region,
//! plus the analytic classification of the whole figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_bench::{run_floodmin, run_protocol_a, run_protocol_b};
use kset_regions::{Atlas, Model};

const N: usize = 64;

fn bench_protocols(c: &mut Criterion) {
    // RV1 panel: FloodMin, solvable for t < k; sweep t.
    let mut group = c.benchmark_group("fig2/floodmin_rv1");
    group.sample_size(10);
    for t in [1usize, 7, 15, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_floodmin(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // RV2/WV2 panels: Protocol A, solvable for t < (k-1)n/k.
    let mut group = c.benchmark_group("fig2/protocol_a_rv2");
    group.sample_size(10);
    for t in [1usize, 8, 16, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_protocol_a(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // SV2 panel: Protocol B, solvable for t < (k-1)n/(2k).
    let mut group = c.benchmark_group("fig2/protocol_b_sv2");
    group.sample_size(10);
    for t in [1usize, 5, 10, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_protocol_b(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // The analytic figure itself: classifying all six panels at n = 64.
    c.bench_function("fig2/atlas_classification_n64", |b| {
        b.iter(|| black_box(Atlas::compute(Model::MpCrash, N)))
    });
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
