//! Figure 4 bench: the MP/Byz protocols — Protocol C(l) over the l-echo
//! broadcast (SV2/RV2 panels) and Protocol D (WV1 panel) — with silent
//! Byzantine prefixes, plus the analytic classification of the figure.
//!
//! Echo traffic is cubic in `n`, so the protocol sweeps run at `n = 32`
//! and a single paper-scale `n = 64` point is included for the record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_bench::{run_protocol_c, run_protocol_d};
use kset_regions::{Atlas, Model};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/protocol_c_sv2");
    group.sample_size(10);
    for (n, t, l) in [(32usize, 2usize, 1usize), (32, 6, 1), (32, 9, 2), (64, 4, 1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}_l{l}")),
            &(n, t, l),
            |b, &(n, t, l)| b.iter(|| black_box(run_protocol_c(n, t, l, 1).unwrap())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig4/protocol_d_wv1");
    group.sample_size(10);
    for (n, t) in [(32usize, 2usize), (32, 8), (64, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| b.iter(|| black_box(run_protocol_d(n, t, 1).unwrap())),
        );
    }
    group.finish();

    c.bench_function("fig4/atlas_classification_n64", |b| {
        b.iter(|| black_box(Atlas::compute(Model::MpByzantine, 64)))
    });
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
