//! Model-checker workloads, so regressions in the checker's throughput
//! show up next to the figure benchmarks:
//!
//! * **Single re-executed schedule**: one `execute_schedule` call is the
//!   checker's unit of work — exploration cost is this times the number
//!   of explored runs, so per-run overhead multiplies directly.
//! * **Whole-cell certification**: `check_cell` on the FloodMin `n = 3`
//!   cell certified by `model_check --smoke`, with all reductions on.
//! * **Reduction ablation**: the same cell with sleep-set partial-order
//!   reduction and state-digest dedup toggled off, one at a time. The
//!   gap is what each reduction buys (the verdict is identical either
//!   way — see `reductions_do_not_change_the_verdict`).
//! * **Thread scaling**: the same cell on 1, 2 and 4 engine workers.
//!   Verdicts and counters are identical for every count (pinned by the
//!   `parallel_engine` integration tests); the ratio is the engine's
//!   speedup on this host. CI runs this group in quick mode and uploads
//!   the timing JSON as an artifact.
//! * **Fork-mode ablation**: the same cell under the replay oracle, the
//!   forking executor, and the budgeted default. Verdicts and counters
//!   are identical for every mode (pinned by `fork_parity`); the gap is
//!   what snapshot/resume buys over re-executing prefixes from the root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_core::ValidityCondition;
use kset_experiments::checker::{
    canonical_inputs, check_cell, execute_schedule, CheckerConfig, ForkMode,
};
use kset_experiments::exhaustive::QuorumProtocol;
use kset_sim::FaultPlan;

fn bench_single_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/single_schedule");
    for n in [4usize, 8, 16] {
        let inputs = canonical_inputs(n);
        let plan = FaultPlan::all_correct(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = execute_schedule(
                    QuorumProtocol::FloodMin,
                    &inputs,
                    1,
                    &plan,
                    None,
                    &[],
                    true,
                    false,
                )
                .expect("schedule executes");
                assert!(run.terminated);
                black_box(run)
            })
        });
    }
    group.finish();
}

fn smoke_cell() -> CheckerConfig {
    CheckerConfig::new(QuorumProtocol::FloodMin, 3, 2, 1, ValidityCondition::RV1)
}

fn bench_check_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/check_cell");
    group.sample_size(10);
    group.bench_function("floodmin_n3_k2_t1", |b| {
        b.iter(|| {
            let verdict = check_cell(&smoke_cell());
            assert!(verdict.complete && verdict.holds());
            black_box(verdict)
        })
    });
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/reductions");
    group.sample_size(10);
    for (name, por, dedup) in [
        ("por+dedup", true, true),
        ("por_only", true, false),
        ("dedup_only", false, true),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(por, dedup),
            |b, &(por, dedup)| {
                b.iter(|| {
                    let mut cfg = smoke_cell();
                    cfg.por = por;
                    cfg.dedup = dedup;
                    let verdict = check_cell(&cfg);
                    assert!(verdict.complete && verdict.holds());
                    black_box(verdict)
                })
            },
        );
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = smoke_cell();
                    cfg.threads = threads;
                    let verdict = check_cell(&cfg);
                    assert!(verdict.complete && verdict.holds());
                    black_box(verdict)
                })
            },
        );
    }
    group.finish();
}

fn bench_fork_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/fork_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("replay", ForkMode::Replay),
        ("fork", ForkMode::Fork),
        ("auto", ForkMode::Auto),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                let mut cfg = smoke_cell();
                cfg.fork = mode;
                let verdict = check_cell(&cfg);
                assert!(verdict.complete && verdict.holds());
                black_box(verdict)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_schedule,
    bench_check_cell,
    bench_reductions,
    bench_threads,
    bench_fork_modes
);
criterion_main!(benches);
