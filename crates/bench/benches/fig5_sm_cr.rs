//! Figure 5 bench: the SM/CR protocols — Protocol E (RV2/WV2 panels, any
//! `t`), Protocol F (SV2 panel, `k > t+1`), and the SIMULATION transform
//! that carries the message-passing protocols into shared memory — plus
//! the analytic classification of the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_bench::{run_protocol_e, run_protocol_f};
use kset_protocols::{FloodMin, Simulated};
use kset_regions::{Atlas, Model};
use kset_shmem::SmSystem;
use kset_sim::FaultPlan;

const N: usize = 64;

fn bench_protocols(c: &mut Criterion) {
    // RV2 panel: Protocol E at arbitrary t, including t = n - 1.
    let mut group = c.benchmark_group("fig5/protocol_e_rv2");
    group.sample_size(10);
    for t in [1usize, 16, 32, 63] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_protocol_e(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // SV2 panel: Protocol F for k > t + 1.
    let mut group = c.benchmark_group("fig5/protocol_f_sv2");
    group.sample_size(10);
    for t in [1usize, 8, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("t{t}")), &t, |b, &t| {
            b.iter(|| black_box(run_protocol_f(N, t, 1).unwrap()))
        });
    }
    group.finish();

    // RV1 panel: the SIMULATION transform (Lemma 4.4). Polling makes it
    // quadratic-with-retries, so sweep n at fixed t.
    let mut group = c.benchmark_group("fig5/sim_floodmin_rv1");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &n, |b, &n| {
            b.iter(|| {
                let ins: Vec<u64> = (0..n as u64).collect();
                let outcome = SmSystem::new(n)
                    .seed(1)
                    .event_limit(50_000_000)
                    .fault_plan(FaultPlan::silent_crashes(n, &[0]))
                    .run_with(|p| Simulated::boxed(n, FloodMin::new(n, 1, ins[p])))
                    .unwrap();
                black_box(outcome)
            })
        });
    }
    group.finish();

    c.bench_function("fig5/atlas_classification_n64", |b| {
        b.iter(|| black_box(Atlas::compute(Model::SmCrash, N)))
    });
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
