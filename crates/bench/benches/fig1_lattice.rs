//! Figure 1 bench: deriving the validity lattice by exhaustive
//! enumeration, across universe sizes, plus the closure-based paper
//! transcription and lattice queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_core::lattice::Lattice;
use kset_core::ValidityCondition;

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/derive");
    group.sample_size(10);
    for (n, vals) in [(3usize, 3usize), (4, 3), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_v{vals}")),
            &(n, vals),
            |b, &(n, vals)| b.iter(|| black_box(Lattice::derive_over(n, vals))),
        );
    }
    group.finish();

    c.bench_function("fig1/paper_closure", |b| {
        b.iter(|| black_box(Lattice::paper()))
    });

    let lattice = Lattice::paper();
    c.bench_function("fig1/hasse_reduction", |b| {
        b.iter(|| black_box(lattice.hasse_edges()))
    });

    c.bench_function("fig1/implication_queries", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for c1 in ValidityCondition::ALL {
                for c2 in ValidityCondition::ALL {
                    if lattice.implies(c1, c2) {
                        count += 1;
                    }
                }
            }
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_lattice);
criterion_main!(benches);
