//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * **help-forever vs halting** (paper §5): Protocol C with processes
//!   that keep echoing after deciding, against the naive halting variant —
//!   in benign runs halting is cheaper, which is exactly the temptation;
//!   the liveness loss only shows under adversarial schedules (see the
//!   protocol tests).
//! * **Protocol D decision rules**: the proof-consistent broadcaster rule
//!   vs the paper's literal `p_1..p_k` rule.
//! * **l-echo amplification sweep**: Protocol C at `l = 1, 2, 3` — higher
//!   `l` buys fault range at constant message complexity per run.
//! * **Scheduler machinery overhead**: a FloodMin run under a bare random
//!   scheduler vs the same run wrapped in (never-triggering) delay rules
//!   and vs FIFO-per-channel delivery.
//! * **Metrics collection overhead**: the same run with metrics disabled
//!   (the default — one `Option` branch per event), enabled, and enabled
//!   with sparse depth sampling. The disabled-vs-enabled gap is the price
//!   of `--json` observability; the OBSERVABILITY.md budget is < 5%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_bench::DEFAULT_VALUE;
use kset_net::{DynMpProcess, MpSystem};
use kset_protocols::{CMsg, DecisionRule, FloodMin, ProtocolC, ProtocolD};
use kset_sim::{ChannelFifo, DelayRule, MetricsConfig, RandomScheduler, Until};

fn bench_halting(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/c_help_vs_halt");
    group.sample_size(10);
    let (n, t, l) = (24usize, 2usize, 1usize);
    for halting in [false, true] {
        let name = if halting { "halting" } else { "help-forever" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &halting, |b, &halting| {
            b.iter(|| {
                let outcome = MpSystem::new(n)
                    .seed(1)
                    .run_with(|p| -> DynMpProcess<CMsg<u64>, u64> {
                        let proto = ProtocolC::new(n, t, l, p as u64 % 2, DEFAULT_VALUE);
                        Box::new(if halting { proto.with_halting() } else { proto })
                    })
                    .unwrap();
                assert!(outcome.terminated);
                black_box(outcome)
            })
        });
    }
    group.finish();
}

fn bench_d_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/d_decision_rule");
    group.sample_size(10);
    let (n, t) = (32usize, 3usize);
    group.bench_function("broadcasters", |b| {
        b.iter(|| {
            let outcome = MpSystem::new(n)
                .seed(1)
                .run_with(|p| ProtocolD::boxed(n, t, p as u64))
                .unwrap();
            black_box(outcome)
        })
    });
    group.bench_function("first_k_literal", |b| {
        b.iter(|| {
            let outcome = MpSystem::new(n)
                .seed(1)
                .run_with(|p| -> DynMpProcess<_, u64> {
                    Box::new(ProtocolD::with_rule(
                        n,
                        t,
                        p as u64,
                        DecisionRule::FirstK(t + 3),
                    ))
                })
                .unwrap();
            black_box(outcome)
        })
    });
    group.finish();
}

fn bench_l_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/c_l_sweep");
    group.sample_size(10);
    let (n, t) = (24usize, 3usize);
    for l in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("l{l}")), &l, |b, &l| {
            b.iter(|| {
                let outcome = MpSystem::new(n)
                    .seed(1)
                    .run_with(|_| ProtocolC::boxed(n, t, l, 5u64, DEFAULT_VALUE))
                    .unwrap();
                assert!(outcome.terminated);
                black_box(outcome)
            })
        });
    }
    group.finish();
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/scheduler_machinery");
    group.sample_size(10);
    let n = 48usize;
    group.bench_function("bare_random", |b| {
        b.iter(|| {
            let outcome = MpSystem::new(n)
                .seed(1)
                .run_with(|p| FloodMin::boxed(n, 4, p as u64))
                .unwrap();
            black_box(outcome)
        })
    });
    group.bench_function("gated_noop_rules", |b| {
        b.iter(|| {
            // Rules that never hold anything: pure gate overhead.
            let rules = (0..4)
                .map(|_| {
                    DelayRule::new(
                        "noop",
                        Box::new(|_: &kset_sim::EventMeta| false),
                        Until::Forever,
                    )
                })
                .collect::<Vec<_>>();
            let outcome = MpSystem::new(n)
                .seed(1)
                .delay_rules(rules)
                .run_with(|p| FloodMin::boxed(n, 4, p as u64))
                .unwrap();
            black_box(outcome)
        })
    });
    group.bench_function("channel_fifo", |b| {
        b.iter(|| {
            let outcome = MpSystem::new(n)
                .scheduler(ChannelFifo::new(RandomScheduler::from_seed(1)))
                .run_with(|p| FloodMin::boxed(n, 4, p as u64))
                .unwrap();
            black_box(outcome)
        })
    });
    group.finish();
}

fn bench_metrics_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/metrics_collection");
    group.sample_size(10);
    let n = 48usize;
    let run = |config: MetricsConfig| {
        let outcome = MpSystem::new(n)
            .seed(1)
            .metrics(config)
            .run_with(|p| FloodMin::boxed(n, 4, p as u64))
            .unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.metrics.is_some(), config.enabled);
        outcome
    };
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(run(MetricsConfig::disabled())))
    });
    group.bench_function("enabled", |b| {
        b.iter(|| black_box(run(MetricsConfig::enabled())))
    });
    group.bench_function("enabled_sparse_depth", |b| {
        b.iter(|| {
            black_box(run(MetricsConfig {
                depth_sample_interval: 64,
                ..MetricsConfig::enabled()
            }))
        })
    });
    group.finish();
}

fn bench_substrate_transforms(c: &mut Criterion) {
    use kset_protocols::{ByzEmulated, Emulated, ProtocolE, Simulated};
    use kset_shmem::SmSystem;

    // The same protocol (E) over four substrates: native registers, the
    // SIMULATION-compiled form is not applicable (E is already SM), the
    // crash ABD emulation, and the Byzantine masking-quorum emulation.
    let mut group = c.benchmark_group("ablation/e_substrates");
    group.sample_size(10);
    let n = 16usize;
    group.bench_function("native_registers", |b| {
        b.iter(|| {
            let o = SmSystem::new(n)
                .seed(1)
                .run_with(|p| ProtocolE::boxed(n, 3, p as u64, DEFAULT_VALUE))
                .unwrap();
            black_box(o)
        })
    });
    group.bench_function("abd_emulation", |b| {
        b.iter(|| {
            let o = MpSystem::new(n)
                .seed(1)
                .run_with(|p| Emulated::boxed(n, 3, ProtocolE::new(n, 3, p as u64, DEFAULT_VALUE)))
                .unwrap();
            black_box(o)
        })
    });
    group.bench_function("masking_quorum_emulation", |b| {
        b.iter(|| {
            let o = MpSystem::new(n)
                .seed(1)
                .run_with(|p| {
                    ByzEmulated::boxed(n, 3, ProtocolE::new(n, 3, p as u64, DEFAULT_VALUE))
                })
                .unwrap();
            black_box(o)
        })
    });
    group.finish();

    // SIMULATION cost: FloodMin native vs compiled onto registers.
    let mut group = c.benchmark_group("ablation/sim_transform");
    group.sample_size(10);
    let n = 8usize;
    group.bench_function("floodmin_native", |b| {
        b.iter(|| {
            let o = MpSystem::new(n)
                .seed(1)
                .run_with(|p| FloodMin::boxed(n, 2, p as u64))
                .unwrap();
            black_box(o)
        })
    });
    group.bench_function("floodmin_simulated", |b| {
        b.iter(|| {
            let o = SmSystem::new(n)
                .seed(1)
                .event_limit(50_000_000)
                .run_with(|p| Simulated::boxed(n, FloodMin::new(n, 2, p as u64)))
                .unwrap();
            black_box(o)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_halting,
    bench_d_rules,
    bench_l_sweep,
    bench_scheduler_overhead,
    bench_metrics_ablation,
    bench_substrate_transforms
);
criterion_main!(benches);
