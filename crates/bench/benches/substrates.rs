//! Substrate microbenchmarks: kernel event dispatch, network delivery,
//! register operations, the gated scheduler, and the region classifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kset_core::ValidityCondition;
use kset_regions::{classify, math, Model};
use kset_sim::{
    DelayRule, EventKind, EventMeta, FifoScheduler, GatedScheduler, Kernel, MetricsConfig,
    RandomScheduler,
};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/kernel_drain");
    for &events in &[1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("random", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut k: Kernel<u64> = Kernel::new(RandomScheduler::from_seed(1));
                    for i in 0..events {
                        k.post(EventMeta::new(EventKind::LocalStep, i % 64), i as u64);
                    }
                    let mut acc = 0u64;
                    while let Some((_, p)) = k.next_event() {
                        acc = acc.wrapping_add(p);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fifo", events), &events, |b, &events| {
            b.iter(|| {
                let mut k: Kernel<u64> = Kernel::new(FifoScheduler::new());
                for i in 0..events {
                    k.post(EventMeta::new(EventKind::LocalStep, i % 64), i as u64);
                }
                let mut acc = 0u64;
                while let Some((_, p)) = k.next_event() {
                    acc = acc.wrapping_add(p);
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // The raw hot-loop cost of metrics collection: the same drain with the
    // collector absent (default — one `Option` branch per event) vs
    // present. OBSERVABILITY.md budgets the enabled overhead at < 5% of a
    // full protocol run; this group isolates the per-event cost itself.
    let mut group = c.benchmark_group("substrate/metrics_ablation");
    for enabled in [false, true] {
        let name = if enabled { "enabled" } else { "disabled" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &enabled, |b, &enabled| {
            b.iter(|| {
                let mut k: Kernel<u64> = Kernel::with_processes(FifoScheduler::new(), 64);
                if enabled {
                    k = k.collect_metrics(MetricsConfig::enabled());
                }
                for i in 0..10_000usize {
                    k.post(
                        EventMeta::new(EventKind::MessageDelivery, i % 64)
                            .from_process((i + 1) % 64),
                        i as u64,
                    );
                }
                let mut acc = 0u64;
                while let Some((_, p)) = k.next_event() {
                    acc = acc.wrapping_add(p);
                }
                assert_eq!(k.metrics().is_some(), enabled);
                black_box(acc)
            })
        });
    }
    group.finish();

    c.bench_function("substrate/gated_drain_2000", |b| {
        b.iter(|| {
            let rules = vec![DelayRule::isolate_until_decided((0..8).collect())];
            let mut k: Kernel<u64> =
                Kernel::new(GatedScheduler::new(FifoScheduler::new(), rules));
            for i in 0..2_000usize {
                k.post(
                    EventMeta::new(EventKind::MessageDelivery, i % 64).from_process((i + 9) % 64),
                    i as u64,
                );
            }
            let mut acc = 0u64;
            while let Some((_, p)) = k.next_event() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
}

fn bench_classifier(c: &mut Criterion) {
    c.bench_function("substrate/classify_cell", |b| {
        b.iter(|| {
            black_box(classify(
                Model::MpByzantine,
                ValidityCondition::WV2,
                64,
                17,
                23,
            ))
        })
    });

    c.bench_function("substrate/z_function_n64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in 0..=64 {
                acc += math::z_function(64, t);
            }
            black_box(acc)
        })
    });

    c.bench_function("substrate/protocol_c_witness_sweep", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for k in 2..64 {
                for t in 1..=64 {
                    if math::protocol_c_covers(64, k, t) {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
}

criterion_group!(benches, bench_kernel, bench_classifier);
criterion_main!(benches);
