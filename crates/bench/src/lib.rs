//! # kset-bench — shared workload builders for the Criterion benches
//!
//! One bench target per figure of the paper (`fig1_lattice`, `fig2_mp_cr`,
//! `fig4_mp_byz`, `fig5_sm_cr`, `fig6_sm_byz`) plus substrate
//! microbenchmarks (`substrates`). The workloads here are the runnable
//! form of each figure's solvable regions: for a figure's panel, the bench
//! sweeps `t` across the region and runs the designated protocol at the
//! paper's scale, reporting wall-clock per full consensus run and the
//! message/operation counts behind it.

#![forbid(unsafe_code)]
#![deny(missing_docs, missing_debug_implementations)]

use kset_adversary::{plans, Silent, SmSilent};
use kset_net::{DynMpProcess, MpOutcome, MpSystem};
use kset_protocols::{
    CMsg, DMsg, FloodMin, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ProtocolE, ProtocolF,
};
use kset_shmem::{DynSmProcess, SmOutcome, SmSystem};
use kset_sim::SimError;

/// Default decision value for the default-deciding protocols.
pub const DEFAULT_VALUE: u64 = u64::MAX;

/// Spread inputs `0..n` used by all workloads.
pub fn inputs(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// One FloodMin run at `(n, t)` with `t` silent crashes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_floodmin(n: usize, t: usize, seed: u64) -> Result<MpOutcome<u64>, SimError> {
    let ins = inputs(n);
    MpSystem::new(n)
        .seed(seed)
        .fault_plan(plans::last_t_silent(n, t))
        .run_with(|p| FloodMin::boxed(n, t, ins[p]))
}

/// One Protocol A run at `(n, t)` with `t` silent crashes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_a(n: usize, t: usize, seed: u64) -> Result<MpOutcome<u64>, SimError> {
    let ins = inputs(n);
    MpSystem::new(n)
        .seed(seed)
        .fault_plan(plans::last_t_silent(n, t))
        .run_with(|p| ProtocolA::boxed(n, t, ins[p], DEFAULT_VALUE))
}

/// One Protocol B run at `(n, t)` with `t` silent crashes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_b(n: usize, t: usize, seed: u64) -> Result<MpOutcome<u64>, SimError> {
    let ins = inputs(n);
    MpSystem::new(n)
        .seed(seed)
        .fault_plan(plans::last_t_silent(n, t))
        .run_with(|p| ProtocolB::boxed(n, t, ins[p], DEFAULT_VALUE))
}

/// One Protocol C(l) run at `(n, t)` with `t` silent Byzantine slots.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_c(n: usize, t: usize, l: usize, seed: u64) -> Result<MpOutcome<u64>, SimError> {
    let ins = inputs(n);
    MpSystem::new(n)
        .seed(seed)
        .fault_plan(plans::first_t_byzantine(n, t))
        .run_with(|p| -> DynMpProcess<CMsg<u64>, u64> {
            if p < t {
                Box::new(Silent::new())
            } else {
                ProtocolC::boxed(n, t, l, ins[p], DEFAULT_VALUE)
            }
        })
}

/// One Protocol D run at `(n, t)` with `t` silent Byzantine slots.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_d(n: usize, t: usize, seed: u64) -> Result<MpOutcome<u64>, SimError> {
    let ins = inputs(n);
    MpSystem::new(n)
        .seed(seed)
        .fault_plan(plans::first_t_byzantine(n, t))
        .run_with(|p| -> DynMpProcess<DMsg<u64>, u64> {
            if p < t {
                Box::new(Silent::new())
            } else {
                ProtocolD::boxed(n, t, ins[p])
            }
        })
}

/// One Protocol E run at `(n, t)` with `t` silent crashes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_e(n: usize, t: usize, seed: u64) -> Result<SmOutcome<u64, u64>, SimError> {
    let ins = inputs(n);
    SmSystem::new(n)
        .seed(seed)
        .fault_plan(plans::last_t_silent(n, t))
        .run_with(|p| ProtocolE::boxed(n, t, ins[p], DEFAULT_VALUE))
}

/// One Protocol E run with `t` Byzantine register scribblers.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_e_byz(n: usize, t: usize, seed: u64) -> Result<SmOutcome<u64, u64>, SimError> {
    use kset_adversary::Scribbler;
    let ins = inputs(n);
    SmSystem::new(n)
        .seed(seed)
        .fault_plan(plans::first_t_byzantine(n, t))
        .run_with(|p| -> DynSmProcess<u64, u64> {
            if p < t {
                if p % 2 == 0 {
                    Box::new(Scribbler::new(vec![seed, seed + 1, seed + 2]))
                } else {
                    Box::new(SmSilent::new())
                }
            } else {
                ProtocolE::boxed(n, t, ins[p], DEFAULT_VALUE)
            }
        })
}

/// One Protocol F run at `(n, t)` with `t` silent crashes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_protocol_f(n: usize, t: usize, seed: u64) -> Result<SmOutcome<u64, u64>, SimError> {
    let ins = inputs(n);
    SmSystem::new(n)
        .seed(seed)
        .fault_plan(plans::last_t_silent(n, t))
        .run_with(|p| ProtocolF::boxed(n, t, ins[p], DEFAULT_VALUE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_terminate_at_paper_scale() {
        assert!(run_floodmin(64, 7, 1).unwrap().terminated);
        assert!(run_protocol_a(64, 16, 1).unwrap().terminated);
        assert!(run_protocol_b(64, 10, 1).unwrap().terminated);
        assert!(run_protocol_e(64, 32, 1).unwrap().terminated);
        assert!(run_protocol_f(64, 8, 1).unwrap().terminated);
    }

    #[test]
    fn byzantine_workloads_terminate_at_mid_scale() {
        assert!(run_protocol_c(32, 4, 1, 1).unwrap().terminated);
        assert!(run_protocol_d(32, 4, 1).unwrap().terminated);
        assert!(run_protocol_e_byz(32, 4, 1).unwrap().terminated);
    }
}
