//! The substrate abstraction: what distinguishes one communication model
//! from another.
//!
//! The paper studies k-set consensus across a *four-model* map — message
//! passing and shared memory, each under crash and Byzantine failures. The
//! two communication substrates share almost all of their runtime: the
//! builder, the kernel-driving loop, crash budgets, metrics, tracing, and
//! the outcome shape are identical. What actually differs is captured by
//! the [`Substrate`] trait:
//!
//! * the **payload** carried by kernel events beyond the universal
//!   `Start`/`Step` pair (a message in transit vs. a pending register
//!   operation response);
//! * the **process interface** (callback set and buffered action type);
//! * the **delivery semantics**: how a buffered action turns into kernel
//!   events and mutations of the shared state (message posting vs. register
//!   linearization);
//! * the **digest hooks** used by the model checker's state deduplication.
//!
//! [`crate::System`] owns everything else and drives any substrate through
//! one generic run loop. `kset-net` and `kset-shmem` are thin
//! implementations of this trait plus backward-compatible facades.

use crate::digest::Fnv64;
use crate::error::SimError;
use crate::event::{EventKind, ProcessId};

/// Per-callback context handed to the substrate when it invokes a process:
/// who is being called, in which system, at what virtual time, and whether
/// it already decided. Substrates repackage this into their model-specific
/// context type (`MpContext`, `SmContext`, ...).
#[derive(Clone, Copy, Debug)]
pub struct CallInfo {
    /// The process being called.
    pub me: ProcessId,
    /// Number of processes in the system.
    pub n: usize,
    /// Kernel virtual time of the event being dispatched.
    pub now: u64,
    /// Whether the process has already decided.
    pub decided: bool,
}

/// Shared core of the per-callback effect contexts (`MpContext`,
/// `SmContext`, ...): the caller's identity view plus the buffered-action
/// sink. Model crates wrap this in their context type (adding the
/// model-specific verbs like `send` or `write`) and `Deref` to it, so the
/// identity accessors are written once here.
#[derive(Debug)]
pub struct ContextCore<'a, A> {
    info: CallInfo,
    actions: &'a mut Vec<A>,
}

impl<'a, A> ContextCore<'a, A> {
    /// Builds a core over a caller-owned action buffer.
    pub fn new(info: CallInfo, actions: &'a mut Vec<A>) -> Self {
        ContextCore { info, actions }
    }

    /// This process's identifier, in `0..n`.
    pub fn me(&self) -> ProcessId {
        self.info.me
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.info.n
    }

    /// Current virtual time (events fired so far). Protocols in this
    /// workspace never branch on it; it exists for logging and debugging.
    pub fn now(&self) -> u64 {
        self.info.now
    }

    /// Whether this process has already decided in this run.
    ///
    /// Deciding is irreversible but not terminal: the paper's Byzantine
    /// protocols require processes to keep echoing after deciding.
    pub fn has_decided(&self) -> bool {
        self.info.decided
    }

    /// Marks the process decided, so [`ContextCore::has_decided`] flips
    /// within the same callback. Called by the wrapping context's `decide`.
    pub fn mark_decided(&mut self) {
        self.info.decided = true;
    }

    /// Buffers one action for the runtime to apply after the callback.
    pub fn push(&mut self, action: A) {
        self.actions.push(action);
    }
}

/// What one buffered process action amounts to, as seen by the generic run
/// loop. Returned by [`Substrate::apply`] after the substrate performed any
/// model-specific mutation of the shared state (e.g. a register write,
/// which linearizes at apply time).
#[derive(Clone, Debug)]
pub enum Effect<P, V> {
    /// Post a substrate event to the kernel (a message delivery, an
    /// operation response, ...). `source` is the process the event is
    /// attributed to; `target` is the process whose handler will run.
    Post {
        /// Event kind, for schedulers, delay rules and metrics attribution.
        kind: EventKind,
        /// Process whose handler fires when the event is scheduled.
        target: ProcessId,
        /// Process the event originates from.
        source: ProcessId,
        /// Substrate payload delivered with the event.
        payload: P,
    },
    /// The process decided `V` (first decision wins; later ones are
    /// ignored by the run loop).
    Decide(V),
    /// The process requested another spontaneous local step.
    Step,
}

/// One communication model, plugged into the generic [`crate::System`].
///
/// All methods are static: a substrate is a type-level description, not a
/// value. Mutable per-run state lives either in the processes themselves or
/// in the run's [`Substrate::Shared`] state (the shared-memory model keeps
/// its register store there; message passing has none).
pub trait Substrate {
    /// Event payload beyond the universal start/step events: a message in
    /// transit, a pending operation response, ...
    type Payload: Clone;
    /// The (usually boxed) protocol state machine driven by this substrate.
    type Process;
    /// Buffered effect type produced by process callbacks.
    type Action;
    /// Decision value type.
    type Output;
    /// Run-global state owned by the substrate (register store, ...); `()`
    /// when the model has none.
    type Shared;

    /// Fresh shared state for a run of `n` processes.
    fn new_shared(n: usize) -> Self::Shared;

    /// Invokes the process's start callback, buffering actions into `out`.
    fn on_start(
        proc: &mut Self::Process,
        shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    );

    /// Invokes the process's spontaneous-step callback.
    fn on_step(
        proc: &mut Self::Process,
        shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    );

    /// Delivers a substrate event to the process. This is where delivery
    /// semantics live: the shared-memory substrate resolves the register
    /// content *here* (the read's linearization point); message passing
    /// hands over the message as sent.
    fn on_payload(
        proc: &mut Self::Process,
        payload: Self::Payload,
        source: Option<ProcessId>,
        shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    );

    /// Converts one buffered action of process `me` into an [`Effect`],
    /// mutating the shared state if the model calls for it (a register
    /// write linearizes here, while the acting process is still within its
    /// crash budget).
    ///
    /// # Errors
    ///
    /// Model-specific validation, e.g. [`SimError::ProcessOutOfRange`] for
    /// a send to a process outside `0..n`.
    fn apply(
        action: Self::Action,
        me: ProcessId,
        n: usize,
        shared: &mut Self::Shared,
    ) -> Result<Effect<Self::Payload, Self::Output>, SimError>;
}

/// Digest hooks for substrates whose runs can be fingerprinted — what
/// [`crate::System::run_digested`] and the model checker's state
/// deduplication build on.
///
/// A separate trait because digests constrain the substrate's value types
/// (`StateDigest` bounds) that plain execution does not need.
pub trait SubstrateDigest: Substrate {
    /// Stable digest of one process's protocol state.
    fn digest_process(proc: &Self::Process) -> u64;

    /// Feeds one pending substrate payload into a per-event hasher. Tags
    /// must not collide with the run loop's own `Start = 0` / `Step = 1`.
    fn digest_payload(payload: &Self::Payload, h: &mut Fnv64);

    /// Feeds the shared state (if any) into the run digest. Called after
    /// the per-process digests and before the pending-pool digest.
    fn digest_shared(shared: &Self::Shared, h: &mut Fnv64);

    /// Feeds the part of the shared state *owned by* `owner` into `h` —
    /// the shared-memory substrate hashes `owner`'s registers as
    /// `(slot, value)` pairs, dropping the owner id itself. Used by the
    /// symmetry-canonical digest, which folds each process's registers
    /// into that process's id-free component so the combined fingerprint
    /// is invariant under process-id permutation. Substrates without
    /// per-process shared state (message passing) keep the default no-op.
    fn digest_shared_of(_shared: &Self::Shared, _owner: ProcessId, _h: &mut Fnv64) {}

    /// Like [`SubstrateDigest::digest_payload`] but **process-id-free**:
    /// any process id the payload carries redundantly with the event's
    /// `target`/`source` (e.g. the register owner inside a shared-memory
    /// read response, which always equals the event source) must be
    /// dropped, because the symmetry-canonical digest re-keys events by
    /// the id-free components of their target and source instead. The
    /// default forwards to `digest_payload`, which is correct whenever the
    /// payload carries no process ids (the message-passing substrate's
    /// protocol messages carry values, not ids).
    fn digest_payload_symm(payload: &Self::Payload, h: &mut Fnv64) {
        Self::digest_payload(payload, h);
    }
}

/// Adversarial-delivery hook for substrates whose payloads can be corrupted
/// in transit — what [`crate::System::run_digested_adv_in`] and the Byzantine /
/// lossy-network model checker build on.
///
/// A [`crate::Deviation::Forge`] replaces the *value content* of a delivery
/// with a forged `u64` drawn from the proposal domain while keeping the
/// event's envelope (source, target, kind) intact: the receiver observes a
/// syntactically well-formed message or register read that simply carries a
/// value the faithful execution never produced. This models a Byzantine
/// sender (message passing) or a Byzantine register owner (shared memory)
/// without simulating the deviating process's internals — the deviation
/// space lives entirely in the scheduler's branch points.
///
/// A separate trait because only value-carrying substrates instantiated at
/// `u64` proposal values can interpret a forged `u64`; plain execution and
/// generic substrates never need this.
pub trait SubstrateAdv: Substrate {
    /// Delivers `payload` to the process as if its carried value were
    /// `forged`. Implementations mirror [`Substrate::on_payload`] exactly,
    /// substituting the forged value for the payload's own at the same
    /// linearization point; payloads that carry no corruptible value (e.g.
    /// a write acknowledgement) must be delivered faithfully.
    fn on_forged(
        proc: &mut Self::Process,
        payload: Self::Payload,
        forged: u64,
        source: Option<ProcessId>,
        shared: &Self::Shared,
        info: CallInfo,
        out: &mut Vec<Self::Action>,
    );
}

/// Fork hooks for substrates whose mid-run state can be snapshotted — what
/// the forking model-checker executor (`crate::ForkSession`) builds on.
///
/// Forking a run means duplicating everything that evolves during it: the
/// kernel's share (pending pool, clock, run state) is handled generically
/// by [`crate::Kernel::snapshot`]; the substrate's share is its processes
/// and its shared state, which only the substrate knows how to clone.
///
/// A separate trait (rather than `Clone` bounds on [`Substrate`]'s
/// associated types) because processes are usually boxed trait objects:
/// cloning one needs a virtual hook on the process trait, and a process
/// without such a hook — a caller-supplied Byzantine strategy, say — must
/// degrade the checker to replay execution, not fail to compile.
pub trait SubstrateFork: SubstrateDigest {
    /// Clones one process's protocol state, or `None` when this process
    /// cannot be forked. A single unforkable process disables snapshotting
    /// for the whole run (the forking executor falls back to replay), so
    /// returning `None` is always safe — just slower.
    fn fork_process(proc: &Self::Process) -> Option<Self::Process>;

    /// Clones the substrate's shared state (the register store; `()` for
    /// message passing).
    fn fork_shared(shared: &Self::Shared) -> Self::Shared;
}
