//! Observable run state shared between the runtime and the scheduler.

use crate::event::ProcessId;

/// The adversary-observable state of a run.
///
/// Delay rules in the paper's constructions are phrased in terms of run
/// progress — "*until all processes in `g_j` make a decision*" — so
/// schedulers and [`crate::DelayRule`]s receive a read-only view of this
/// structure alongside the pending event list.
///
/// The runtime (in `kset-net` / `kset-shmem`) keeps it up to date as
/// processes decide, crash, or halt.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RunState {
    decided: Vec<bool>,
    crashed: Vec<bool>,
    byzantine: Vec<bool>,
    actions: Vec<u64>,
    drops: u64,
    now: u64,
}

impl RunState {
    /// Creates the initial state for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        RunState {
            decided: vec![false; n],
            crashed: vec![false; n],
            byzantine: vec![false; n],
            actions: vec![0; n],
            drops: 0,
            now: 0,
        }
    }

    /// Current virtual time (events fired so far), kept up to date by the
    /// kernel. Delay rules with an expiry deadline compare against this.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Updates the virtual clock (called by the kernel before each pick).
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.decided.len()
    }

    /// Whether process `pid` has irreversibly decided.
    pub fn has_decided(&self, pid: ProcessId) -> bool {
        self.decided.get(pid).copied().unwrap_or(false)
    }

    /// Whether process `pid` has crashed (stopped taking steps).
    pub fn has_crashed(&self, pid: ProcessId) -> bool {
        self.crashed.get(pid).copied().unwrap_or(false)
    }

    /// Whether process `pid` is running a Byzantine strategy.
    pub fn is_byzantine(&self, pid: ProcessId) -> bool {
        self.byzantine.get(pid).copied().unwrap_or(false)
    }

    /// Number of atomic actions (event handlings + sends + register
    /// operations) process `pid` has performed so far.
    pub fn actions_of(&self, pid: ProcessId) -> u64 {
        self.actions.get(pid).copied().unwrap_or(0)
    }

    /// True when every process in `group` has decided.
    ///
    /// This is the standard release condition of the paper's partition
    /// schedules; see [`crate::Until::AllDecided`].
    pub fn all_decided(&self, group: &[ProcessId]) -> bool {
        group.iter().all(|&p| self.has_decided(p))
    }

    /// True when every process that is neither crashed nor Byzantine has
    /// decided — the runtime's termination condition.
    pub fn all_correct_decided(&self) -> bool {
        (0..self.n()).all(|p| self.decided[p] || self.crashed[p] || self.byzantine[p])
    }

    /// Iterator over the processes currently marked crashed.
    pub fn crashed_set(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashed
            .iter()
            .enumerate()
            .filter_map(|(p, &c)| c.then_some(p))
    }

    /// Records that `pid` decided.
    pub fn mark_decided(&mut self, pid: ProcessId) {
        self.decided[pid] = true;
    }

    /// Records that `pid` crashed.
    pub fn mark_crashed(&mut self, pid: ProcessId) {
        self.crashed[pid] = true;
    }

    /// Records that `pid` runs a Byzantine strategy.
    pub fn mark_byzantine(&mut self, pid: ProcessId) {
        self.byzantine[pid] = true;
    }

    /// Charges one atomic action to `pid` and returns its new total.
    pub fn charge_action(&mut self, pid: ProcessId) -> u64 {
        self.actions[pid] += 1;
        self.actions[pid]
    }

    /// Number of deliveries suppressed so far by a [`crate::Deviation::Drop`]
    /// (Byzantine silence or network loss). Lossy-network policies compare
    /// this against their loss budget; it is zero throughout any run of the
    /// crash model.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Charges one suppressed delivery and returns the new total. Called by
    /// the runtime when a drop deviation fires.
    pub fn charge_drop(&mut self) -> u64 {
        self.drops += 1;
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_all_false() {
        let s = RunState::new(3);
        assert_eq!(s.n(), 3);
        for p in 0..3 {
            assert!(!s.has_decided(p));
            assert!(!s.has_crashed(p));
            assert!(!s.is_byzantine(p));
            assert_eq!(s.actions_of(p), 0);
        }
        assert!(!s.all_correct_decided());
    }

    #[test]
    fn out_of_range_queries_are_false_not_panics() {
        let s = RunState::new(2);
        assert!(!s.has_decided(99));
        assert!(!s.has_crashed(99));
        assert!(!s.is_byzantine(99));
        assert_eq!(s.actions_of(99), 0);
    }

    #[test]
    fn termination_ignores_faulty_processes() {
        let mut s = RunState::new(4);
        s.mark_crashed(0);
        s.mark_byzantine(1);
        s.mark_decided(2);
        assert!(!s.all_correct_decided());
        s.mark_decided(3);
        assert!(s.all_correct_decided());
    }

    #[test]
    fn group_decision_release_condition() {
        let mut s = RunState::new(4);
        let g = vec![1, 2];
        assert!(!s.all_decided(&g));
        s.mark_decided(1);
        assert!(!s.all_decided(&g));
        s.mark_decided(2);
        assert!(s.all_decided(&g));
        assert!(s.all_decided(&[]));
    }

    #[test]
    fn action_charging_accumulates() {
        let mut s = RunState::new(1);
        assert_eq!(s.charge_action(0), 1);
        assert_eq!(s.charge_action(0), 2);
        assert_eq!(s.actions_of(0), 2);
    }

    #[test]
    fn drop_charging_accumulates() {
        let mut s = RunState::new(2);
        assert_eq!(s.drops(), 0);
        assert_eq!(s.charge_drop(), 1);
        assert_eq!(s.charge_drop(), 2);
        assert_eq!(s.drops(), 2);
    }

    #[test]
    fn crashed_set_enumerates_crashed_processes() {
        let mut s = RunState::new(5);
        s.mark_crashed(1);
        s.mark_crashed(4);
        let set: Vec<_> = s.crashed_set().collect();
        assert_eq!(set, vec![1, 4]);
    }
}
